#!/usr/bin/env python
"""2D heat diffusion with Cartesian topology + MPI profiling.

An extension beyond the paper's applications: Jacobi relaxation on a
row-partitioned grid, halo rows exchanged along a 1D Cartesian
communicator each iteration.  The PMPI-style profiling wrapper shows
where the simulated microseconds go, and the result is verified against
the serial NumPy reference.

Run:  python examples/heat_diffusion.py [rows]
"""

import sys

import numpy as np

from repro.apps import initial_grid, jacobi_heat, reference_jacobi
from repro.apps.jacobi import FLOPS_PER_CELL
from repro.bench.tables import format_table
from repro.mpi import World
from repro.mpi.profiling import profile


def main():
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 32
    iters = 20

    def app(comm):
        holder = {}

        def wrap(cart):
            p = profile(cart)
            holder["stats"] = p.stats
            return p

        grid, elapsed = yield from jacobi_heat(comm, nx=n, ny=n, iters=iters, wrap=wrap)
        return grid, elapsed, holder["stats"]

    rows = []
    stats0 = None
    for device in ("lowlatency", "mpich"):
        for nprocs in (1, 2, 4, 8):
            world = World(nprocs, platform="meiko", device=device)
            results = world.run(app)
            grid = results[0][0]
            elapsed = max(r[1] for r in results)
            expected = reference_jacobi(initial_grid(n, n), iters)
            assert np.allclose(grid, expected), "diverged from the serial reference!"
            rows.append([device, nprocs, elapsed])
            if device == "lowlatency" and nprocs == 8:
                stats0 = results[0][2]
    print(format_table(
        ["device", "procs", "time (us)"],
        rows,
        title=f"Jacobi heat diffusion, {n}x{n} grid, {iters} iterations (verified)",
    ))
    print("\nMPI profile of rank 0 (lowlatency, 8 procs):")
    print(stats0.summary())
    print(f"\n(each iteration: 2 halo sendrecvs + "
          f"{(n // 8) * (n - 2) * FLOPS_PER_CELL} flops per rank)")


if __name__ == "__main__":
    main()
