#!/usr/bin/env python
"""Particle pairwise interactions in a ring (paper, Section 6.2,
Figures 8 and 9).

Runs the ring-pipeline n-body force computation on the Meiko (24
particles, Figure 8) and on both workstation clusters (128 particles,
Figure 9), verifying every result against the O(n²) NumPy reference.

Run:  python examples/particle_ring.py
"""

import numpy as np

from repro.apps import generate_particles, nbody_ring, reference_forces
from repro.bench.tables import format_table
from repro.mpi import World


def run(platform, device, nprocs, nparticles, flop_time):
    def app(comm):
        f, elapsed = yield from nbody_ring(
            comm, nparticles=nparticles, seed=9, flop_time=flop_time
        )
        return f, elapsed

    world = World(nprocs, platform=platform, device=device)
    results = world.run(app)
    forces = results[0][0]
    expected = reference_forces(generate_particles(nparticles, seed=9))
    assert np.allclose(forces, expected, atol=1e-9), "forces diverge from reference!"
    return max(r[1] for r in results)


def main():
    print("Figure 8 configuration: 24 particles on the Meiko CS/2")
    rows = []
    for device in ("lowlatency", "mpich"):
        for nprocs in (1, 2, 4, 8):
            t = run("meiko", device, nprocs, 24, flop_time=0.1)
            rows.append([device, nprocs, t])
    print(format_table(["device", "procs", "time (us)"], rows))

    print("\nFigure 9 configuration: 128 particles on the clusters (TCP)")
    rows = []
    for platform in ("ethernet", "atm"):
        for nprocs in (1, 2, 4, 8):
            t = run(platform, "tcp", nprocs, 128, flop_time=0.03)
            rows.append([platform, nprocs, t])
    print(format_table(["network", "procs", "time (us)"], rows))
    print("\nATM wins at scale: no shared-segment contention and higher bandwidth.")
    print("All force results verified against the O(n^2) NumPy reference.")


if __name__ == "__main__":
    main()
