#!/usr/bin/env python
"""Distributed linear equation solver (paper, Section 6.1 / Figure 7).

Solves a dense N×N system by broadcast-based Gaussian elimination on
the simulated Meiko CS/2, comparing the low-latency implementation
(hardware broadcast) against MPICH (point-to-point broadcast), and
verifies the answer against NumPy.

Run:  python examples/linear_solver.py [N]
"""

import sys

import numpy as np

from repro.apps import generate_system, linsolve
from repro.bench.tables import format_table
from repro.mpi import World


def main():
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 96

    def app(comm):
        x, elapsed = yield from linsolve(comm, n=n, seed=42)
        return x, elapsed

    rows = []
    for device in ("lowlatency", "mpich"):
        for nprocs in (1, 4, 16, 32):
            world = World(nprocs, platform="meiko", device=device)
            results = world.run(app)
            x = results[0][0]
            elapsed = max(r[1] for r in results)
            # verify against the direct solve
            a, b = generate_system(n, seed=42)
            residual = float(np.linalg.norm(a @ x - b))
            rows.append([device, nprocs, elapsed / 1e6, f"{residual:.2e}"])
    print(format_table(
        ["device", "procs", "time (s)", "|Ax-b|"],
        rows,
        title=f"Linear equation solver, N={n} (Figure 7 configuration)",
    ))
    print("\nThe hardware-broadcast (lowlatency) implementation scales;")
    print("MPICH's point-to-point broadcast flattens out — the paper's Figure 7.")


if __name__ == "__main__":
    main()
