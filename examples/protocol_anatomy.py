#!/usr/bin/env python
"""Protocol anatomy: where the microseconds go.

Reproduces the paper's two key protocol studies interactively:

1. the **eager/rendezvous trade-off** on the Meiko — sweeps the
   crossover threshold and shows why 180 bytes is the right switch
   point (Figure 1);
2. the **Table 1 overhead breakdown** of MPI over TCP — the cost of
   each read syscall, the 25-byte header, and matching, on Ethernet
   and ATM.

Run:  python examples/protocol_anatomy.py
"""

from repro.bench import figures, harness
from repro.bench.tables import format_series, format_table
from repro.mpi.device.lowlatency import LowLatencyConfig


def eager_vs_rendezvous():
    result = figures.fig01_transfer_mechanisms()
    print(format_series(result["series"], xlabel="bytes",
                        title="Figure 1: buffered (eager) vs no-buffering (rendezvous) RTT, us"))
    print(f"\nmeasured crossover: {result['crossover']:.0f} bytes "
          f"(paper adopted {result['paper']['crossover']})")


def threshold_sweep():
    """What happens if the protocol switches at the wrong size?"""
    sizes = (64, 180, 512)
    rows = []
    for threshold in (0, 64, 180, 512, 4096):
        cfg = LowLatencyConfig(eager_threshold=threshold)
        rtts = [
            harness.mpi_pingpong_rtt("meiko", "lowlatency", n, device_config=cfg)
            for n in sizes
        ]
        rows.append([threshold] + [round(r, 1) for r in rtts])
    print(format_table(
        ["threshold"] + [f"RTT@{n}B" for n in sizes],
        rows,
        title="\nAblation: eager/rendezvous threshold (us)",
    ))
    print("Too low wastes round trips on small messages; too high pays the")
    print("slow word-by-word transfer path for large ones. 180 B balances them.")


def table1():
    result = figures.table1_overheads()
    headers = ["row", "ATM", "Ethernet"]
    rows = []
    for key in (
        "1 byte round-trip latency",
        "25 byte info overhead",
        "Read for msg type",
        "Read for envelope",
        "Overheads for matching",
        "measured MPI 1B RTT",
    ):
        rows.append([key, result["rows"]["ATM"][key], result["rows"]["Ethernet"][key]])
    print(format_table(headers, rows, title="\nTable 1: MPI round-trip overheads with TCP (us)"))
    print("Every MPI message costs two extra kernel reads (type byte, then")
    print("envelope) plus matching — the price of tags and MPI_ANY_SOURCE.")


if __name__ == "__main__":
    eager_vs_rendezvous()
    threshold_sweep()
    table1()
