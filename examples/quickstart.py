#!/usr/bin/env python
"""Quickstart: MPI ping-pong on every simulated platform.

Builds each platform/device combination the paper evaluates, runs a
tagged ping-pong plus a broadcast, and prints the measured round-trip
latencies next to the paper's numbers.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.bench.tables import format_table
from repro.mpi import ANY_SOURCE, World


def pingpong(comm):
    """Rank 0 measures a 1-byte round trip, then everyone broadcasts."""
    rtt = None
    if comm.rank == 0:
        t0 = comm.wtime()
        yield from comm.send(b"!", dest=1, tag=7)
        data, status = yield from comm.recv(source=ANY_SOURCE, tag=8)
        rtt = comm.wtime() - t0
        assert bytes(data) == b"!" and status.source == 1
    elif comm.rank == 1:
        data, _ = yield from comm.recv(source=0, tag=7)
        yield from comm.send(data, dest=0, tag=8)

    # a broadcast for good measure (hardware broadcast on the Meiko)
    buf = np.arange(8, dtype=np.float64) if comm.rank == 0 else np.zeros(8)
    yield from comm.bcast(buf, root=0)
    assert buf.sum() == 28.0
    return rtt


def main():
    configs = [
        ("meiko", "lowlatency", "104 (paper)"),
        ("meiko", "mpich", "210 (paper)"),
        ("ethernet", "tcp", "~1345 (925 + overheads)"),
        ("atm", "tcp", "~1485 (1065 + overheads)"),
        ("ethernet", "udp", "similar to TCP"),
        ("atm", "udp", "similar to TCP"),
        ("modern", "rdma", "~2-3 (2020s fabric)"),
        ("modern", "cxl", "~2-3 (2020s fabric)"),
    ]
    rows = []
    for platform, device, paper in configs:
        world = World(nprocs=4, platform=platform, device=device)
        results = world.run(pingpong)
        rows.append([f"{platform}/{device}", results[0], paper])
    print(format_table(
        ["configuration", "1-byte RTT (us)", "reference"],
        rows,
        title="MPI ping-pong round-trip latency across simulated platforms",
    ))


if __name__ == "__main__":
    main()
