"""Legacy setup shim.

The offline environment lacks the ``wheel`` package, so the PEP-517
editable install path (which builds a wheel) fails.  This shim lets
``pip install -e . --no-build-isolation`` fall back to the legacy
``setup.py develop`` route.  All metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
