"""Parallel experiment engine: sharded multi-process sweeps with a
content-addressed result cache.

Every headline artifact of this reproduction — figure latency curves,
chaos sweeps, the fuzz corpus, the conformance device matrix, the
kernel perf suite — is a set of independent single-process simulations.
:func:`~repro.parallel.engine.run_cells` fans those *cells* out over a
worker pool with seed-stable partitioning and a canonical-order merge
that is byte-identical to the serial run; the
:class:`~repro.parallel.cache.ResultCache` skips unchanged cells
entirely on re-runs (keyed by the ``src/repro`` code digest + cell
spec).  See ``docs/PERF.md`` for the worker model, cache layout, and
determinism contract.
"""

from repro.parallel.cache import ResultCache, cell_key, code_digest
from repro.parallel.engine import (
    SKIPPED,
    CellError,
    RunReport,
    ShardReport,
    plan_shards,
    run_cells,
)
from repro.parallel.tasks import TASKS, run_cell, task

__all__ = [
    "ResultCache",
    "cell_key",
    "code_digest",
    "SKIPPED",
    "CellError",
    "RunReport",
    "ShardReport",
    "plan_shards",
    "run_cells",
    "TASKS",
    "run_cell",
    "task",
]
