"""Deterministic sharded execution of independent simulation cells.

The engine fans a list of *cells* (see :mod:`repro.parallel.tasks`) out
over a ``multiprocessing`` pool and reassembles results in canonical
(submission) order.  The contract every caller relies on:

* **Seed-stable partitioning.**  Shard assignment is a pure function of
  the cell's position — shard ``i`` gets cells ``i, i+W, i+2W, ...`` —
  never of timing or pool scheduling.  Since every cell builds a fresh
  deterministic world seeded only by its own spec, results cannot
  depend on the shard that ran them; static partitioning makes the
  per-shard accounting reproducible too.
* **Canonical merge.**  ``RunReport.results[i]`` is cell ``i``'s result
  whatever shard produced it, so a parallel run is byte-identical to
  the serial run (the determinism goldens are the oracle — see
  ``tests/parallel/``).
* **Content-addressed caching.**  Unless a cell opts out
  (``"_nocache"``) or the caller disables it, results are stored in the
  :class:`~repro.parallel.cache.ResultCache` keyed by the ``src/repro``
  code digest plus the cell spec; a warm re-run of an unchanged tree
  dispatches zero work.

Workers are forked when the platform supports it (cheap, inherits the
imported simulator) and spawned otherwise; cells and results only need
to be picklable.  A worker exception is captured per cell and re-raised
in the parent as :class:`CellError` naming the cell.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence, Union

from repro.parallel.cache import ResultCache, cell_key
from repro.parallel.tasks import cacheable_spec, run_cell

__all__ = [
    "SKIPPED",
    "CellError",
    "ShardReport",
    "RunReport",
    "plan_shards",
    "retry_backoff_s",
    "run_cells",
]


class _Skipped:
    """Sentinel for cells not run (wall-clock budget exhausted)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<SKIPPED>"


SKIPPED = _Skipped()


class CellError(RuntimeError):
    """A worker raised while executing a cell."""

    def __init__(self, index: int, cell: dict, message: str):
        super().__init__(f"cell {index} ({cell.get('kind')}): {message}")
        self.index = index
        self.cell = cell


@dataclass
class ShardReport:
    """Per-shard accounting, emitted into BENCH output by the callers."""

    shard: int
    cells: int
    wall_s: float
    skipped: int = 0

    def to_dict(self) -> dict:
        return {
            "shard": self.shard, "cells": self.cells,
            "wall_s": round(self.wall_s, 6), "skipped": self.skipped,
        }


@dataclass
class RunReport:
    """Merged outcome of one engine run."""

    results: List[Any]
    workers: int
    shards: List[ShardReport] = field(default_factory=list)
    cached: int = 0          #: cells answered from the cache
    executed: int = 0        #: cells actually simulated
    skipped: int = 0         #: cells skipped (budget)
    wall_s: float = 0.0

    def stats_line(self) -> str:
        bits = [f"workers={self.workers}",
                f"cells={len(self.results)}",
                f"cached={self.cached}",
                f"executed={self.executed}"]
        if self.skipped:
            bits.append(f"skipped={self.skipped}")
        bits.append(f"wall={self.wall_s:.2f}s")
        shards = " ".join(
            f"shard{s.shard}:{s.cells}c/{s.wall_s:.2f}s" for s in self.shards
        )
        return "parallel: " + " ".join(bits) + (f" [{shards}]" if shards else "")


def plan_shards(n: int, workers: int) -> List[List[int]]:
    """Round-robin cell indices over *workers* shards (seed-stable)."""
    workers = max(1, workers)
    return [list(range(shard, n, workers)) for shard in range(workers)]


#: per-attempt backoff for ``_retries`` cells: 50 ms, 100 ms, 200 ms, ...
#: capped at 1 s — deterministic (attempt-indexed, no jitter source)
RETRY_BACKOFF_BASE_S = 0.05
RETRY_BACKOFF_CAP_S = 1.0


def retry_backoff_s(attempt: int) -> float:
    """Seconds to wait before retry *attempt* (1-based): capped doubling."""
    return min(RETRY_BACKOFF_BASE_S * (2 ** (attempt - 1)), RETRY_BACKOFF_CAP_S)


def _run_cell_with_retries(cell):
    """Run one cell, honouring its opt-in ``_retries`` budget.

    ``{"_retries": N}`` grants N extra attempts after a worker exception,
    each preceded by a deterministic capped backoff, so one transiently
    flaky cell (an OOM-killed fork, a full /tmp) doesn't abort a
    multi-hour sweep.  The key is underscore-prefixed: retry policy is an
    execution detail, never part of the content address, and a cell that
    eventually succeeds returns the same value it would have serially —
    every attempt rebuilds the same deterministic world from the spec.
    Exhausting the budget re-raises the last exception, annotated with
    the attempt count for the parent's :class:`CellError`.
    """
    retries = int(cell.get("_retries", 0) or 0)
    attempt = 0
    while True:
        try:
            return run_cell(cell)
        except Exception as exc:  # noqa: BLE001 - re-raised in the parent
            attempt += 1
            if attempt > retries:
                if retries:
                    exc.args = (
                        f"{exc.args[0] if exc.args else exc} "
                        f"[failed {attempt}x, retries exhausted]",
                    ) + exc.args[1:]
                raise
            time.sleep(retry_backoff_s(attempt))


def _run_shard(spec):
    """Worker entry: run one shard's cells in order, honouring the budget."""
    shard_id, items, budget_s = spec
    t0 = time.monotonic()
    out = []
    for index, cell in items:
        if budget_s is not None and time.monotonic() - t0 > budget_s:
            out.append((index, "skip", None))
            continue
        started = time.monotonic()
        try:
            value = _run_cell_with_retries(cell)
        except Exception as exc:  # noqa: BLE001 - re-raised in the parent
            out.append((index, "error", f"{type(exc).__name__}: {exc}"))
            continue
        out.append((index, "ok", (value, time.monotonic() - started)))
    return shard_id, out, time.monotonic() - t0


def _pool_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX fallback
        return multiprocessing.get_context("spawn")


def run_cells(
    cells: Sequence[dict],
    workers: Optional[int] = None,
    cache: Union[ResultCache, bool, None] = True,
    budget_s: Optional[float] = None,
) -> RunReport:
    """Run *cells*, possibly in parallel, and merge in canonical order.

    ``workers=None``/``0``/``1`` runs in-process (no pool) through the
    exact same cache/merge path.  ``cache`` may be ``True`` (default
    location), an explicit :class:`ResultCache`, or ``False``/``None``
    to disable all cache reads and writes (the ``--no-cache`` contract).
    """
    t0 = time.monotonic()
    workers = max(1, int(workers or 1))
    if cache is True:
        cache = ResultCache()
    elif cache is False:
        cache = None

    n = len(cells)
    results: List[Any] = [SKIPPED] * n
    report = RunReport(results=results, workers=workers)

    # cache pass (parent-side): a warm run dispatches no work at all
    pending: List[int] = []
    keys: List[Optional[str]] = [None] * n
    for i, cell in enumerate(cells):
        spec = cacheable_spec(cell) if cache is not None else None
        if spec is not None:
            keys[i] = cell_key(cell["kind"], spec)
            hit, value = cache.get(keys[i])
            if hit:
                results[i] = value
                report.cached += 1
                continue
        pending.append(i)

    shard_specs = []
    for shard_id, idxs in enumerate(plan_shards(len(pending), workers)):
        items = [(pending[j], cells[pending[j]]) for j in idxs]
        if items:
            shard_specs.append((shard_id, items, budget_s))
    if workers == 1 or len(shard_specs) <= 1:
        shard_outs = [_run_shard(spec) for spec in shard_specs]
    else:
        with _pool_context().Pool(processes=len(shard_specs)) as pool:
            shard_outs = pool.map(_run_shard, shard_specs)

    errors: List[CellError] = []
    for shard_id, out, shard_wall in shard_outs:
        ran = skipped = 0
        for index, status, payload in out:
            if status == "skip":
                report.skipped += 1
                skipped += 1
            elif status == "error":
                errors.append(CellError(index, cells[index], payload))
            else:
                value, _cell_wall = payload
                results[index] = value
                report.executed += 1
                ran += 1
                if cache is not None and keys[index] is not None:
                    cache.put(keys[index], cells[index]["kind"],
                              cacheable_spec(cells[index]), value)
        report.shards.append(ShardReport(shard_id, ran, shard_wall, skipped))
    report.wall_s = time.monotonic() - t0
    if errors:
        raise errors[0]
    return report
