"""Content-addressed on-disk result cache for experiment cells.

Every independent simulation cell (a fuzz seed, a figure sweep point, a
chaos scenario, a conformance platform/device run) is deterministic: its
result is a pure function of (the code in ``src/repro``, the cell spec).
The cache exploits that by addressing results with

    sha256(code digest of src/repro  +  cell kind  +  canonical cell JSON)

so a re-run after *any* source change misses everything (the digest
covers every ``.py`` file under the package), while a re-run of an
unchanged tree skips unchanged cells entirely.

Layout (default root ``.repro-cache/``, override with the
``REPRO_CACHE_DIR`` environment variable)::

    .repro-cache/objects/<key[:2]>/<key>.json

Each object file records the key's ingredients next to the value, so a
cache entry is self-describing and auditable.  Values must be
JSON-serializable; cells that produce richer results (e.g. live event
streams for trace export) are marked uncacheable by the engine.
"""

from __future__ import annotations

import hashlib
import json
import os
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Optional, Tuple

__all__ = ["code_digest", "cell_key", "ResultCache", "default_cache_root"]

_MISS = object()

#: memoized (per-process) digest of the src/repro tree
_code_digest_cache: Optional[str] = None


def code_digest() -> str:
    """sha256 over every ``.py`` file of the installed ``repro`` package.

    Sorted relative paths and file bytes both enter the hash, so moving,
    renaming, adding, or editing any module changes the digest — which
    invalidates every cached cell.  Memoized per process.
    """
    global _code_digest_cache
    if _code_digest_cache is not None:
        return _code_digest_cache
    import repro

    root = Path(repro.__file__).resolve().parent
    h = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        h.update(str(path.relative_to(root)).encode())
        h.update(b"\0")
        h.update(path.read_bytes())
        h.update(b"\0")
    _code_digest_cache = h.hexdigest()
    return _code_digest_cache


def cell_key(kind: str, cell: Any, code: Optional[str] = None) -> str:
    """Content address of one cell: code digest + kind + canonical spec."""
    material = json.dumps(
        {"code": code if code is not None else code_digest(),
         "kind": kind, "cell": cell},
        sort_keys=True, separators=(",", ":"),
    )
    return hashlib.sha256(material.encode()).hexdigest()


def default_cache_root() -> str:
    return os.environ.get("REPRO_CACHE_DIR", ".repro-cache")


class ResultCache:
    """Content-addressed JSON store under *root* (see module docstring)."""

    def __init__(self, root: Optional[str] = None):
        self.root = Path(root if root is not None else default_cache_root())
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.quarantined = 0

    def _path(self, key: str) -> Path:
        return self.root / "objects" / key[:2] / f"{key}.json"

    def get(self, key: str) -> Tuple[bool, Any]:
        """``(True, value)`` on a hit, ``(False, None)`` on a miss.

        A present-but-unusable entry — unparsable JSON, a ``key`` field
        that does not match the file name, or no ``value`` at all — is
        *quarantined*: renamed to ``<key>.json.corrupt`` so the bad bytes
        stay auditable without shadowing the slot on every future run.
        """
        path = self._path(key)
        try:
            with open(path) as fh:
                entry = json.load(fh)
        except OSError:
            self.misses += 1
            return False, None
        except ValueError:
            self._quarantine(path)
            self.misses += 1
            return False, None
        if (
            not isinstance(entry, dict)
            or entry.get("key") != key  # truncated or misfiled write
            or "value" not in entry
        ):
            self._quarantine(path)
            self.misses += 1
            return False, None
        self.hits += 1
        return True, entry["value"]

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry aside (or delete it if even that fails)."""
        try:
            os.replace(path, path.with_suffix(path.suffix + ".corrupt"))
        except OSError:
            try:
                os.unlink(path)
            except OSError:  # pragma: no cover - raced by another process
                return
        self.quarantined += 1

    def put(self, key: str, kind: str, cell: Any, value: Any) -> bool:
        """Store *value*; returns False (and stores nothing) if the value
        is not JSON-serializable."""
        try:
            blob = json.dumps(
                {
                    "key": key,
                    "kind": kind,
                    "code": code_digest(),
                    "cell": cell,
                    "value": value,
                    "created": datetime.now(timezone.utc).isoformat(),
                },
                sort_keys=True,
            )
        except (TypeError, ValueError):
            return False
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(blob + "\n")
        os.replace(tmp, path)  # atomic: concurrent writers race benignly
        self.stores += 1
        return True
