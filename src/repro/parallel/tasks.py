"""The cell-kind registry: what a worker actually runs.

A *cell* is a plain JSON dict describing one independent simulation —
``{"kind": "<task name>", ...parameters...}``.  Cells are the unit of
sharding, caching, and merging: pure data in, a JSON-serializable result
out, with the simulation seeded entirely by the cell spec so the result
never depends on which shard (or process) ran it.

Cells with a truthy ``"_nocache"`` field bypass the result cache — used
for wall-clock measurements (kernel perf) and for cells that return live
:class:`~repro.obs.bus.Event` objects (trace capture).  Underscore keys
are stripped before cache-key computation so ``_nocache`` never changes
a cell's content address.
"""

from __future__ import annotations

from typing import Any, Callable, Dict

__all__ = ["TASKS", "task", "run_cell", "cacheable_spec"]

TASKS: Dict[str, Callable[[dict], Any]] = {}


def task(name: str):
    """Register a top-level cell function under *name*."""
    def register(fn):
        TASKS[name] = fn
        return fn
    return register


def run_cell(cell: dict) -> Any:
    """Execute one cell (in whatever process this is called from)."""
    return TASKS[cell["kind"]](cell)


def cacheable_spec(cell: dict):
    """The cache-key material of a cell: underscore keys stripped.
    Returns None when the cell opts out of caching."""
    if cell.get("_nocache"):
        return None
    return {k: v for k, v in cell.items() if not k.startswith("_")}


# ------------------------------------------------------- figure sweep points
def _device_config(cell):
    """Rebuild the cell's device-config dataclass from its plain dict.

    The config class follows the cell's device: figure sweeps override
    per-device knobs (e.g. a forced ``eager_threshold``) and the cells
    must round-trip through the engine's JSON-ish cell spec.
    """
    cfg = cell.get("config")
    if not cfg:
        return None
    device = cell.get("device")
    if device == "rdma":
        from repro.mpi.device.rdma import RdmaConfig

        return RdmaConfig(**cfg)
    if device == "cxl":
        from repro.mpi.device.cxl import CxlConfig

        return CxlConfig(**cfg)
    from repro.mpi.device.lowlatency import LowLatencyConfig

    return LowLatencyConfig(**cfg)


@task("pingpong_rtt")
def _pingpong_rtt(cell):
    from repro.bench import harness

    return harness.mpi_pingpong_rtt(
        cell["platform"], cell["device"], cell["nbytes"],
        device_config=_device_config(cell),
    )


@task("bandwidth")
def _bandwidth(cell):
    from repro.bench import harness

    return harness.mpi_bandwidth(cell["platform"], cell["device"], cell["nbytes"])


@task("tport_rtt")
def _tport_rtt(cell):
    from repro.bench import harness

    return harness.tport_rtt(cell["nbytes"])


@task("tport_bandwidth")
def _tport_bandwidth(cell):
    from repro.bench import harness

    return harness.tport_bandwidth(cell["nbytes"])


@task("raw_rtt")
def _raw_rtt(cell):
    from repro.bench import harness

    return harness.raw_stream_rtt(cell["network"], cell["transport"], cell["nbytes"])


@task("raw_bandwidth")
def _raw_bandwidth(cell):
    from repro.bench import harness

    return harness.raw_stream_bandwidth(
        cell["network"], cell["transport"], cell["nbytes"]
    )


@task("fore_rtt")
def _fore_rtt(cell):
    from repro.bench import harness

    return harness.fore_rtt(cell["nbytes"])


@task("app_time")
def _app_time(cell):
    from repro import apps
    from repro.mpi import World

    app = getattr(apps, cell["app"])
    kwargs = cell.get("kwargs") or {}

    def main(comm):
        _, elapsed = yield from app(comm, **kwargs)
        return elapsed

    world = World(cell["nprocs"], platform=cell["platform"], device=cell["device"])
    return max(world.run(main))


# ------------------------------------------------------------ chaos scenarios
@task("chaos_cell")
def _chaos_cell(cell):
    from repro.bench.chaos import chaos_cell

    bus = None
    if cell.get("_trace"):
        from repro.obs import EventBus

        bus = EventBus()
    row = chaos_cell(
        cell["platform"], cell["loss"], workload=cell["workload"],
        nprocs=cell["nprocs"], nbytes=cell["nbytes"],
        repeats=cell["repeats"], seed=cell["seed"], obs=bus,
    )
    if bus is None:
        return {"row": row}
    return {"row": row, "events": bus.events}


@task("soak_cell")
def _soak_cell(cell):
    """One chaos-soak cell: pinned crash through ULFM recovery.

    Never cached (``soak_sweep`` sets ``_nocache``): the digest of a
    fresh run is the determinism evidence the gate compares.
    """
    from repro.bench.chaos import soak_cell

    bus = None
    if cell.get("_trace"):
        from repro.obs import EventBus

        bus = EventBus()
    row = soak_cell(
        cell["platform"], cell["device"], nprocs=cell["nprocs"],
        victim=cell["victim"], crash_at=cell["crash_at"], n=cell["n"],
        iters=cell["iters"], checkpoint_every=cell["checkpoint_every"],
        seed=cell["seed"], obs=bus,
    )
    if bus is None:
        return {"row": row}
    return {"row": row, "events": bus.events}


# ----------------------------------------------------- conformance/fuzz cells
@task("conformance_cell")
def _conformance_cell(cell):
    from repro.conformance.executor import canonical_trace, run_program
    from repro.conformance.grammar import Program

    program = Program.from_dict(cell["program"])
    try:
        trace = run_program(
            program, cell["platform"], cell["device"], fault=cell.get("fault", False)
        )
        return {"canon": canonical_trace(trace)}
    except Exception as exc:  # noqa: BLE001 - any failure is a finding
        return {"error": f"{type(exc).__name__}: {exc}"}


@task("fuzz_entry")
def _fuzz_entry(cell):
    """One corpus entry: differential (+ fault-composed) for one seed.

    Returns exactly what the serial corpus loop needs to print the same
    line and the parent needs to decide on shrinking — plus the
    reference canonical trace, the merged "semantic trace" artifact.
    """
    from repro.conformance.executor import check_faulty, differential
    from repro.conformance.grammar import generate

    matrix = cell.get("matrix")
    if matrix is not None:
        matrix = [tuple(pair) for pair in matrix]
    program = generate(cell["seed"], nprocs=cell.get("nprocs"),
                       profile=cell["profile"])
    result = differential(program, matrix=matrix)
    out = {
        "summary": result.summary(),
        "ok": result.ok,
        "canon": None if result.reference is None
        else result.canons[result.reference],
        "fault_checked": False,
        "fault_summary": None,
        "fault_ok": True,
        "has_fault": program.fault is not None,
    }
    if result.ok and program.fault is not None:
        fault_result = check_faulty(program)
        out["fault_checked"] = True
        out["fault_summary"] = fault_result.summary()
        out["fault_ok"] = fault_result.ok
    return out


# ------------------------------------------------------- kernel perf workload
@task("kernel_workload")
def _kernel_workload(cell):
    from repro.bench.kernel_perf import run_workload

    return run_workload(
        cell["name"], quick=cell["quick"], repeats=cell["repeats"]
    )


# ------------------------------------------------------------------ self-test
@task("_selftest")
def _selftest(cell):
    """Deterministic toy cell for the engine's own tests: no simulation,
    just a digest of the spec (plus an optional busy-loop)."""
    import hashlib
    import json as _json

    spin = cell.get("spin", 0)
    acc = 0
    for i in range(spin):
        acc += i
    material = _json.dumps(cacheable_spec(cell) or cell, sort_keys=True)
    return {"digest": hashlib.sha256(material.encode()).hexdigest()[:16],
            "acc": acc}


@task("_flaky_selftest")
def _flaky_selftest(cell):
    """Self-test cell that fails its first ``_fail_times`` attempts.

    Attempts are counted in the scratch file named by ``_counter`` so
    the count survives retries inside forked workers.  Every knob is an
    underscore key, so the success value is exactly the ``_selftest``
    digest of the visible spec — a retried run merges byte-identical to
    a run that never flaked.  Used only by the engine's retry tests.
    """
    import os

    fails = int(cell.get("_fail_times", 0) or 0)
    if fails:
        path = cell["_counter"]
        with open(path, "a") as fh:
            fh.write("x")
        if os.path.getsize(path) <= fails:
            raise RuntimeError("transient selftest failure")
    return _selftest(cell)
