"""The Fore API: direct user access to the ATM adaptation layers.

Fore's API lets applications send AAL3/4 (or AAL5) PDUs without TCP/IP
— but the data still crosses the kernel through the same STREAMS
modules, so (as the paper measures in Figure 4) its latency is barely
better than TCP's.  We charge ``fore_out``/``fore_in`` from the ATM
kernel profile plus the usual syscalls, and ship PDUs straight to the
NIC with AAL3/4 segmentation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.errors import NetworkError
from repro.hw.atm.aal import AAL34
from repro.sim import Store

__all__ = ["ForeMessage", "ForeApi"]


@dataclass
class ForeMessage:
    """One AAL PDU exchanged through the Fore API."""

    sport: int
    dport: int
    data: bytes

    @property
    def nbytes(self) -> int:
        return len(self.data)


class ForeApi:
    """Per-host Fore API instance (requires an ATM NIC)."""

    def __init__(self, kernel, aal: str = AAL34):
        from repro.hw.atm.nic import AtmNic

        if not isinstance(kernel.nic, AtmNic):
            raise NetworkError("the Fore API requires an ATM interface")
        self.kernel = kernel
        self.nic = kernel.nic
        self.aal = aal
        self._queues: Dict[int, Store] = {}
        kernel.register_handler(ForeMessage, self._on_message)

    def bind(self, port: int) -> int:
        if port in self._queues:
            raise NetworkError(f"Fore port {port} already bound")
        self._queues[port] = Store(self.kernel.sim)
        return port

    def send(self, dst_host: int, dst_port: int, data: bytes, sport: int = 0):
        """Generator: send one PDU."""
        data = bytes(data)
        p = self.kernel.params
        yield from self.kernel.syscall_write(len(data))
        yield from self.kernel.charge(p.fore_out)
        self.nic.send(dst_host, len(data), ForeMessage(sport, dst_port, data), aal=self.aal)

    def recv(self, port: int):
        """Generator -> (bytes): block for the next PDU on *port*."""
        if port not in self._queues:
            raise NetworkError(f"Fore port {port} not bound")
        msg = yield self._queues[port].get()
        yield from self.kernel.syscall_read(len(msg.data))
        return msg.data

    def _on_message(self, msg: ForeMessage):
        """Generator (kernel worker context)."""
        yield from self.kernel.charge(self.kernel.params.fore_in)
        q = self._queues.get(msg.dport)
        if q is not None:
            q.put(msg)
