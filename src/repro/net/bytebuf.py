"""ByteQueue: a FIFO byte buffer built from reference-held chunks.

The protocol stacks used to keep their stream buffers as one big
``bytearray`` and consume with ``bytes(buf[:n]); del buf[:n]`` — every
consume copies the head *and* shifts the remainder, so pushing B bytes
through a buffer costs O(B²/chunk).  A :class:`ByteQueue` instead keeps
the chunks exactly as they were appended (bytes or memoryview — no copy
on ingest) plus an offset into the head chunk:

* ``append`` is O(1) and zero-copy (the chunk is held by reference);
* ``take``/``peek`` materialize exactly the n requested bytes — and
  return the head chunk itself, copy-free, when the request is
  chunk-aligned (the common case for packet-framed streams);
* ``drop`` is O(dropped chunks): acknowledged data is released by
  reference, never shifted.

This is the simulator-side analogue of the paper's no-intermediate-copy
rendezvous discipline: a B-byte transfer costs O(B), not O(B²).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Union

__all__ = ["ByteQueue"]

Chunk = Union[bytes, bytearray, memoryview]


class ByteQueue:
    """FIFO byte queue over immutable chunks (see module docstring).

    Appended chunks must not be mutated afterwards by the caller —
    append a ``bytes`` (or a memoryview over one) when in doubt.
    """

    __slots__ = ("_chunks", "_len", "_offset")

    def __init__(self) -> None:
        self._chunks: Deque[Chunk] = deque()
        self._len = 0
        #: consumed bytes of the head chunk (avoids re-slicing the head)
        self._offset = 0

    def __len__(self) -> int:
        return self._len

    def __bool__(self) -> bool:
        return self._len > 0

    def append(self, data: Chunk) -> None:
        """Queue *data* by reference (no copy).  Empty appends are dropped."""
        n = len(data)
        if n:
            self._chunks.append(data)
            self._len += n

    def take(self, n: int) -> bytes:
        """Remove and return the first *n* bytes (one join, no shifting)."""
        if n < 0:
            raise ValueError(f"negative take size {n}")
        if n == 0:
            return b""
        if n > self._len:
            raise ValueError(f"take({n}) from a {self._len}-byte queue")
        chunks = self._chunks
        head = chunks[0]
        off = self._offset
        avail = len(head) - off
        # fast path: the request is exactly the (remaining) head chunk
        if avail == n:
            chunks.popleft()
            self._offset = 0
            self._len -= n
            if off:
                head = head[off:]
            return head if isinstance(head, bytes) else bytes(head)
        if avail > n:
            # consume part of the head: advance the offset, copy n bytes
            self._offset = off + n
            self._len -= n
            out = head[off : off + n]
            return out if isinstance(out, bytes) else bytes(out)
        # spans chunks: gather views, one join
        parts = []
        need = n
        while need:
            head = chunks[0]
            avail = len(head) - off
            if avail <= need:
                parts.append(memoryview(head)[off:] if off else head)
                chunks.popleft()
                off = 0
                need -= avail
            else:
                parts.append(memoryview(head)[off : off + need])
                off += need
                need = 0
        self._offset = off
        self._len -= n
        return b"".join(parts)

    def peek(self, n: int) -> bytes:
        """The first *n* bytes without consuming them."""
        if n < 0:
            raise ValueError(f"negative peek size {n}")
        if n == 0:
            return b""
        if n > self._len:
            raise ValueError(f"peek({n}) into a {self._len}-byte queue")
        off = self._offset
        head = self._chunks[0]
        if len(head) - off >= n:
            out = head[off : off + n]
            return out if isinstance(out, bytes) else bytes(out)
        parts = []
        need = n
        for chunk in self._chunks:
            avail = len(chunk) - off
            if avail >= need:
                parts.append(memoryview(chunk)[off : off + need])
                break
            parts.append(memoryview(chunk)[off:] if off else chunk)
            need -= avail
            off = 0
        return b"".join(parts)

    def drop(self, n: int) -> None:
        """Discard the first *n* bytes (releases whole chunks by reference)."""
        if n < 0:
            raise ValueError(f"negative drop size {n}")
        if n > self._len:
            raise ValueError(f"drop({n}) from a {self._len}-byte queue")
        chunks = self._chunks
        off = self._offset
        self._len -= n
        while n:
            head = chunks[0]
            avail = len(head) - off
            if avail <= n:
                chunks.popleft()
                n -= avail
                off = 0
            else:
                off += n
                n = 0
        self._offset = off

    def clear(self) -> None:
        self._chunks.clear()
        self._len = 0
        self._offset = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ByteQueue {self._len}B in {len(self._chunks)} chunks>"
