"""UDP: unreliable datagrams over IP.

Datagrams larger than the link MTU are IP-fragmented; a finite
per-socket receive queue drops datagrams when full (so even a loss-free
fabric can lose UDP under overload, as in life).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.errors import NetworkError
from repro.sim import Store

__all__ = ["UDP_HEADER", "UdpDatagram", "UdpSocket", "UdpLayer"]

#: UDP header bytes
UDP_HEADER = 8


@dataclass
class UdpDatagram:
    sport: int
    dport: int
    data: bytes

    @property
    def nbytes(self) -> int:
        return UDP_HEADER + len(self.data)


class UdpSocket:
    """A bound UDP port."""

    def __init__(self, layer: "UdpLayer", port: int, queue_limit: int = 64):
        self.layer = layer
        self.kernel = layer.kernel
        self.port = port
        self._queue: Store = Store(layer.kernel.sim)
        self.queue_limit = queue_limit
        self.drops = 0
        #: optional callback on datagram arrival
        self.on_data: Optional[Callable] = None

    def sendto(self, dst_host: int, dst_port: int, data: bytes):
        """Generator: transmit one datagram."""
        data = bytes(data)
        p = self.kernel.params
        yield from self.kernel.syscall_write(len(data))
        yield from self.kernel.charge(p.udp_out)
        dgram = UdpDatagram(self.port, dst_port, data)
        self.kernel.ip.send(dst_host, "udp", dgram, dgram.nbytes)

    def recvfrom(self):
        """Generator -> (src_host, bytes): block for the next datagram."""
        src, dgram = yield self._queue.get()
        yield from self.kernel.syscall_read(len(dgram.data))
        return src, dgram.data

    @property
    def pending(self) -> int:
        return len(self._queue)

    def _deliver(self, src_host: int, dgram: UdpDatagram) -> None:
        if len(self._queue) >= self.queue_limit:
            self.drops += 1
            return
        self._queue.put((src_host, dgram))
        if self.on_data is not None:
            self.on_data()


class UdpLayer:
    """Per-host UDP instance."""

    def __init__(self, kernel):
        self.kernel = kernel
        self.sockets: Dict[int, UdpSocket] = {}

    def bind(self, port: int, queue_limit: int = 64) -> UdpSocket:
        if port in self.sockets:
            raise NetworkError(f"UDP port {port} already bound")
        sock = UdpSocket(self, port, queue_limit)
        self.sockets[port] = sock
        return sock

    def on_datagram(self, src_host: int, dgram: UdpDatagram):
        """Generator (kernel worker context)."""
        yield from self.kernel.charge(self.kernel.params.udp_in)
        sock = self.sockets.get(dgram.dport)
        if sock is not None:
            sock._deliver(src_host, dgram)
        # datagrams to unbound ports vanish (a real stack sends ICMP)
