"""TCP: reliable in-order byte streams over IP.

A deliberately LAN-scale TCP: three-way handshake (or pre-established
static pairs, which is what the paper's MPI uses), MSS segmentation, a
fixed advertised window, cumulative ACKs, out-of-order reassembly, and
timeout retransmission.  No congestion control (single-switch LAN,
1996) and no urgent/PSH subtleties — DESIGN.md records the
simplifications.

Cost accounting (the heart of Figures 4-6 and Table 1):

* ``send()`` charges the write syscall + user→kernel copy;
* each segment charges ``tcp_out``/``tcp_in`` + software checksum on
  the host CPU;
* each ``recv_exact()`` charges one read syscall + kernel→user copy —
  the MPI device's read-type/read-envelope/read-data sequence therefore
  pays exactly the per-read costs the paper tabulates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import ConnectionClosed, NetworkError, RetransmitExhausted
from repro.net.bytebuf import ByteQueue
from repro.sim import Store
from repro.sim.notify import Notify

__all__ = ["TCP_HEADER", "TcpSegment", "TcpConnection", "TcpListener", "TcpLayer"]

#: TCP header bytes (no options)
TCP_HEADER = 20

# connection states
SYN_SENT = "syn-sent"
SYN_RCVD = "syn-rcvd"
ESTABLISHED = "established"
CLOSED = "closed"


@dataclass
class TcpSegment:
    sport: int
    dport: int
    seq: int
    ack: int
    data: bytes = b""
    syn: bool = False
    fin: bool = False
    rst: bool = False
    window: int = 65535

    @property
    def nbytes(self) -> int:
        """Wire bytes of this segment (header + payload)."""
        return TCP_HEADER + len(self.data)


class TcpConnection:
    """One endpoint of a TCP connection."""

    def __init__(self, layer: "TcpLayer", local_port: int, remote_host: int, remote_port: int):
        self.layer = layer
        self.kernel = layer.kernel
        self.sim = layer.kernel.sim
        p = self.kernel.params
        self.local_port = local_port
        self.remote_host = remote_host
        self.remote_port = remote_port
        self.state = CLOSED
        # send side
        self.snd_una = 0
        self.snd_nxt = 0
        self._unsent = ByteQueue()
        self._unacked = ByteQueue()
        self.peer_window = p.window
        self._send_kick = Notify(self.sim, "tcp-send")
        self._space = Notify(self.sim, "tcp-space")
        self._ack_version = 0
        # retransmission timer: a cancellable callback, no dedicated
        # process — see _arm_retx for the draw-order contract
        self._retx_timer = None
        self._retx_arming = False
        self._retx_attempts = 0
        self._retx_epoch = 0
        self._retx_deadline = -1.0
        # receive side
        self.rcv_nxt = 0
        self._rcvbuf = ByteQueue()
        self._ooo: Dict[int, bytes] = {}
        self._readable = Notify(self.sim, "tcp-read")
        self._established = Notify(self.sim, "tcp-est")
        self.peer_closed = False
        #: optional callback fired whenever new in-order data arrives
        self.on_data = None
        #: terminal failure (RetransmitExhausted / reset); raised by send/recv
        self.error: Optional[NetworkError] = None
        # delayed-ACK state: acks ride outgoing data when possible; a
        # standalone ACK goes out after ack_delay or two segments' worth.
        # The timer is cancelled when an ack rides out, but its deadline
        # is remembered so a re-arm resumes the pending window.
        self._bytes_since_ack = 0
        self._ack_timer = None
        self._ack_deadline = -1.0
        # fast-retransmit state: duplicate ACKs seen at snd_una
        self._dupacks = 0
        # statistics
        self.segments_sent = 0
        self.segments_received = 0
        self.retransmissions = 0
        self.fast_retransmissions = 0
        self.sim.process(self._sender(), name=f"tcp-snd-{self.local_port}")

    # ------------------------------------------------------------- user API
    @property
    def available(self) -> int:
        """Bytes ready for reading."""
        return len(self._rcvbuf)

    def send(self, data: bytes):
        """Generator: write *data* to the stream (blocks on buffer space)."""
        if self.error is not None:
            raise self.error
        if self.state != ESTABLISHED:
            raise ConnectionClosed("send on a non-established connection")
        if not isinstance(data, bytes) and not (
            isinstance(data, memoryview) and data.readonly
        ):
            data = bytes(data)  # freeze mutable buffers once, at the API edge
        total = len(data)
        yield from self.kernel.syscall_write(total)
        p = self.kernel.params
        offset = 0
        view = None
        while offset < total:
            if self.error is not None:
                raise self.error
            used = len(self._unsent) + len(self._unacked)
            if used >= p.sndbuf:
                obs = self.sim.obs
                if obs is not None:
                    obs.emit(
                        self.sim.now,
                        "net",
                        "stall.sndbuf",
                        rank=self.kernel.host.hostid,
                        detail={"port": self.local_port, "used": used, "pending": total - offset},
                    )
                yield self._space.wait1()
                continue
            take = min(p.sndbuf - used, total - offset)
            if offset == 0 and take == total:
                self._unsent.append(data)  # whole buffer, by reference
            else:
                if view is None:
                    view = memoryview(data)
                self._unsent.append(view[offset : offset + take])
            offset += take
            self._send_kick.set()

    def recv_exact(self, n: int):
        """Generator -> bytes: block until *n* bytes are readable, then
        consume them (one read syscall)."""
        if n < 0:
            raise NetworkError(f"negative read size {n}")
        while len(self._rcvbuf) < n:
            if self.error is not None:
                raise self.error
            if self.peer_closed:
                raise ConnectionClosed(
                    f"peer closed with {len(self._rcvbuf)} of {n} bytes buffered"
                )
            yield self._readable.wait1()
        yield from self.kernel.syscall_read(n)
        return self._rcvbuf.take(n)

    def close(self) -> None:
        """Half-close: send FIN (best-effort; see module docstring)."""
        if self.state == ESTABLISHED:
            self.state = CLOSED
            self._transmit(TcpSegment(
                self.local_port, self.remote_port, self.snd_nxt, self.rcv_nxt, fin=True
            ))

    def wait_established(self):
        """Generator: block until the handshake completes."""
        while self.state != ESTABLISHED:
            yield self._established.wait1()

    # ------------------------------------------------------------ internals
    def _transmit(self, seg: TcpSegment) -> None:
        self.segments_sent += 1
        obs = self.sim.obs
        if obs is not None:
            obs.emit(
                self.sim.now,
                "net",
                "seg.send",
                rank=self.kernel.host.hostid,
                detail={
                    "dst": self.remote_host,
                    "seq": seg.seq,
                    "ack": seg.ack,
                    "nbytes": len(seg.data),
                },
            )
        self.kernel.ip.send(self.remote_host, "tcp", seg, seg.nbytes)

    def _sender(self):
        """Kernel sender: segments _unsent into MSS chunks under the window."""
        p = self.kernel.params
        mss = self.kernel.mss
        while True:
            yield self._send_kick.wait1()
            if self.error is not None:
                return
            while self._unsent and self.state == ESTABLISHED:
                inflight = self.snd_nxt - self.snd_una
                room = self.peer_window - inflight
                if room <= 0:
                    obs = self.sim.obs
                    if obs is not None:
                        obs.emit(
                            self.sim.now,
                            "net",
                            "stall.window",
                            rank=self.kernel.host.hostid,
                            detail={
                                "dst": self.remote_host,
                                "inflight": inflight,
                                "window": self.peer_window,
                            },
                        )
                    break  # zero window: the next ACK kicks us again
                if p.nagle and inflight > 0 and len(self._unsent) < mss:
                    # Nagle: a sub-MSS segment waits for outstanding data
                    # to be acknowledged (or for a full segment to form)
                    break
                n = min(mss, len(self._unsent), room)
                chunk = self._unsent.take(n)
                self._unacked.append(chunk)
                yield from self.kernel.charge(p.tcp_out + n * p.checksum_per_byte)
                self._ack_rides_out()  # this segment carries the ack
                self._transmit(TcpSegment(
                    self.local_port, self.remote_port, self.snd_nxt, self.rcv_nxt,
                    data=chunk, window=p.window,
                ))
                self.snd_nxt += n
                self._arm_retx()

    # ------------------------------------------------- retransmission timer
    # Timeout retransmission of the oldest unacked segment, with
    # exponential backoff; after ``max_retries`` unanswered attempts the
    # connection is reset (RST to the peer, RetransmitExhausted locally).
    #
    # The timer is a cancellable callback, not a dedicated process.  The
    # deterministic-replay contract with the old sleeping-process
    # implementation: the jittered RTO must be drawn from the shared host
    # RNG in exactly the event slots where the old process woke up.  So a
    # fresh arm defers its draw to a zero-delay event (where the wakeup
    # notification used to land), a full ACK cancels the timer but keeps
    # its deadline so a re-arm before the deadline "resumes" the old
    # window without drawing, and fire-time re-arms draw inline (inside
    # the event where the old process checked its progress).

    def _arm_retx(self) -> None:
        """Ensure the retransmission timer is running (called on transmit)."""
        if self._retx_timer is not None or self._retx_arming or self.error is not None:
            return
        if self.sim.now < self._retx_deadline:
            # resume the window cancelled by a full ACK: no new draw; the
            # fire handler sees the ACK progress and starts a fresh window
            self._retx_timer = self.sim.call_later(
                self._retx_deadline - self.sim.now, self._on_retx_timer
            )
            return
        self._retx_arming = True
        self.sim.call_later(0.0, self._arm_retx_fresh)

    def _arm_retx_fresh(self, _event=None) -> None:
        """Draw a jittered RTO and start a fresh retransmission window."""
        self._retx_arming = False
        if self._retx_timer is not None or self.error is not None:
            return
        if self.snd_una >= self.snd_nxt:
            self._retx_attempts = 0
            return  # everything acked while arming: nothing to time
        p = self.kernel.params
        rto = min(p.rto * p.rto_backoff**self._retx_attempts, p.rto_max)
        if p.retx_jitter:
            # jitter_stream: batched floats when the host RNG has no
            # raw-bits consumer, the raw stream otherwise (same values)
            rto *= 1.0 + p.retx_jitter * self.kernel.host.jitter_stream().uniform(-1.0, 1.0)
        self._retx_epoch = self._ack_version
        self._retx_deadline = self.sim.now + rto
        self._retx_timer = self.sim.call_later(rto, self._on_retx_timer)

    def _on_retx_timer(self, _event=None) -> None:
        self._retx_timer = None
        if self.error is not None:
            return
        if self.snd_una >= self.snd_nxt:
            self._retx_attempts = 0
            return  # all data acked: go dormant until the next transmit
        if self._ack_version != self._retx_epoch:
            self._retx_attempts = 0
            self._arm_retx_fresh()
            return  # progress was made
        self._retx_attempts += 1
        p = self.kernel.params
        if self._retx_attempts > p.max_retries:
            self._reset(RetransmitExhausted(
                f"tcp {self.local_port}->host{self.remote_host}:{self.remote_port}: "
                f"{p.max_retries} retransmissions of seq {self.snd_una} unanswered"
            ))
            return
        self.sim.process(self._retransmit_oldest(), name=f"tcp-rtx-{self.local_port}")

    def _retransmit_oldest(self):
        """Short-lived process: charge for and resend the oldest segment."""
        p = self.kernel.params
        # cap at what has actually been transmitted: _unacked may hold
        # bytes the sender appended but has not yet put on the wire (it
        # yields for the kernel charge between the two), and resending
        # those would advance the receiver past our snd_nxt
        n = min(self.kernel.mss, self.snd_nxt - self.snd_una, len(self._unacked))
        if n <= 0:
            self._arm_retx_fresh()
            return
        # pin the sequence number now: an ACK arriving during the kernel
        # charge below advances snd_una, and stamping the old bytes with
        # the new snd_una would make the receiver accept them as fresh
        # data past our snd_nxt
        seq = self.snd_una
        chunk = self._unacked.peek(n)
        self.retransmissions += 1
        obs = self.sim.obs
        if obs is not None:
            obs.emit(
                self.sim.now,
                "net",
                "seg.retx",
                rank=self.kernel.host.hostid,
                detail={
                    "dst": self.remote_host,
                    "seq": seq,
                    "nbytes": n,
                    "attempt": self._retx_attempts,
                },
            )
        yield from self.kernel.charge(p.tcp_out + n * p.checksum_per_byte)
        if self.snd_una >= seq + n:
            self._arm_retx_fresh()
            return  # fully acked while charging: nothing left to resend
        self._transmit(TcpSegment(
            self.local_port, self.remote_port, seq, self.rcv_nxt,
            data=chunk, window=p.window,
        ))
        self._arm_retx_fresh()

    def _cancel_retx(self) -> None:
        if self._retx_timer is not None:
            self._retx_timer.cancel()
            self._retx_timer = None

    def _reset(self, exc: NetworkError) -> None:
        """Abort the connection: RST the peer, fail local waiters."""
        self._cancel_retx()
        if self.state != CLOSED:
            self._transmit(TcpSegment(
                self.local_port, self.remote_port, self.snd_nxt, self.rcv_nxt, rst=True
            ))
        self.state = CLOSED
        self.error = exc
        self._readable.set()
        self._space.set()
        self._send_kick.set()
        self._established.set()
        if self.on_data is not None:
            self.on_data()

    def _on_segment(self, seg: TcpSegment):
        """Generator (kernel worker context)."""
        p = self.kernel.params
        self.segments_received += 1
        obs = self.sim.obs
        if obs is not None:
            obs.emit(
                self.sim.now,
                "net",
                "seg.recv",
                rank=self.kernel.host.hostid,
                detail={
                    "src": self.remote_host,
                    "seq": seg.seq,
                    "ack": seg.ack,
                    "nbytes": len(seg.data),
                },
            )
        yield from self.kernel.charge(p.tcp_in + len(seg.data) * p.checksum_per_byte)
        if seg.rst:
            # peer aborted: fail local waiters without answering
            self._cancel_retx()
            self.state = CLOSED
            self.error = ConnectionClosed(
                f"connection reset by host{self.remote_host}:{self.remote_port}"
            )
            self.peer_closed = True
            self._readable.set()
            self._space.set()
            self._send_kick.set()
            self._established.set()
            if self.on_data is not None:
                self.on_data()
            return
        # ACK processing (with fast retransmit on 3 duplicate ACKs)
        if seg.ack > self.snd_una:
            acked = seg.ack - self.snd_una
            self._unacked.drop(acked)
            self.snd_una = seg.ack
            self._ack_version += 1
            self._dupacks = 0
            if self.snd_una >= self.snd_nxt:
                # fully acked: cancel the timer in O(1).  _retx_deadline
                # is kept so a re-arm before it resumes the old window.
                self._cancel_retx()
            self._space.set()
            self._send_kick.set()
        elif seg.ack == self.snd_una and not seg.data and self.snd_una < self.snd_nxt:
            self._dupacks += 1
            if self._dupacks == 3:
                yield from self._fast_retransmit()
        self.peer_window = seg.window
        if seg.fin:
            self.peer_closed = True
            self._readable.set()
            if self.on_data is not None:
                self.on_data()
        if seg.data:
            in_order = seg.seq <= self.rcv_nxt
            self._accept_data(seg)
            if not in_order:
                # out-of-order arrival: immediate duplicate ACK so the
                # sender's fast-retransmit counter advances
                yield from self._send_ack()
                return
            self._bytes_since_ack += len(seg.data)
            if self._bytes_since_ack >= 2 * self.kernel.mss:
                yield from self._send_ack()
            else:
                self._arm_dack()

    def _fast_retransmit(self):
        """Resend the oldest unacked segment without waiting for the RTO."""
        p = self.kernel.params
        # same transmitted-bytes cap and pinned sequence number as
        # _retransmit_oldest
        n = min(self.kernel.mss, self.snd_nxt - self.snd_una, len(self._unacked))
        if n <= 0:
            return
        seq = self.snd_una
        chunk = self._unacked.peek(n)
        self.retransmissions += 1
        self.fast_retransmissions += 1
        obs = self.sim.obs
        if obs is not None:
            obs.emit(
                self.sim.now,
                "net",
                "seg.retx",
                rank=self.kernel.host.hostid,
                detail={"dst": self.remote_host, "seq": seq, "nbytes": n, "fast": True},
            )
        self._ack_version += 1  # restart the RTO clock
        yield from self.kernel.charge(p.tcp_out + n * p.checksum_per_byte)
        if self.snd_una >= seq + n:
            return  # fully acked while charging
        self._transmit(TcpSegment(
            self.local_port, self.remote_port, seq, self.rcv_nxt,
            data=chunk, window=p.window,
        ))

    def _send_ack(self):
        p = self.kernel.params
        self._ack_rides_out()
        obs = self.sim.obs
        if obs is not None:
            obs.emit(
                self.sim.now,
                "net",
                "ack.send",
                rank=self.kernel.host.hostid,
                detail={"dst": self.remote_host, "ack": self.rcv_nxt},
            )
        yield from self.kernel.charge(p.ack_cost)
        self._transmit(TcpSegment(
            self.local_port, self.remote_port, self.snd_nxt, self.rcv_nxt, window=p.window
        ))

    # Delayed-ACK timer.  Same determinism contract as the retransmission
    # timer: the old implementation armed once and let the timer run to
    # its deadline even if the pending ack rode out on data first, so a
    # cancelled timer keeps its deadline and a re-arm before the deadline
    # resumes it (a later data arrival must NOT push the standalone ACK
    # out by a fresh ack_delay).
    def _ack_rides_out(self) -> None:
        """An outgoing segment carries the current ack: a pending
        standalone-ACK timer would fire dead, so cancel it."""
        self._bytes_since_ack = 0
        if self._ack_timer is not None:
            self._ack_timer.cancel()
            self._ack_timer = None

    def _arm_dack(self) -> None:
        if self._ack_timer is not None:
            return
        now = self.sim.now
        if now < self._ack_deadline:
            delay = self._ack_deadline - now  # resume the cancelled window
        else:
            delay = self.kernel.params.ack_delay
            self._ack_deadline = now + delay
        self._ack_timer = self.sim.call_later(delay, self._on_ack_timer)

    def _on_ack_timer(self, _event=None) -> None:
        self._ack_timer = None
        if self._bytes_since_ack > 0:
            self.sim.process(self._send_ack(), name="tcp-dack")

    def _accept_data(self, seg: TcpSegment) -> None:
        seq, data = seg.seq, seg.data
        if seq + len(data) <= self.rcv_nxt:
            return  # pure duplicate
        if seq > self.rcv_nxt:
            self._ooo.setdefault(seq, data)
            return
        if seq < self.rcv_nxt:  # partial overlap from a retransmission
            data = data[self.rcv_nxt - seq:]
            seq = self.rcv_nxt
        self._rcvbuf.append(data)
        self.rcv_nxt += len(data)
        # drain any now-contiguous out-of-order segments
        while self.rcv_nxt in self._ooo:
            nxt = self._ooo.pop(self.rcv_nxt)
            self._rcvbuf.append(nxt)
            self.rcv_nxt += len(nxt)
        self._readable.set()
        if self.on_data is not None:
            self.on_data()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<TcpConnection {self.layer.kernel.host.name}:{self.local_port} -> "
            f"host{self.remote_host}:{self.remote_port} {self.state}>"
        )


class TcpListener:
    """A passive socket: accepts incoming connections on a port."""

    def __init__(self, layer: "TcpLayer", port: int):
        self.layer = layer
        self.port = port
        self._accepted: Store = Store(layer.kernel.sim)

    def accept(self):
        """Generator -> TcpConnection (established)."""
        conn = yield self._accepted.get()
        return conn


class TcpLayer:
    """Per-host TCP instance: demultiplexes segments to connections."""

    def __init__(self, kernel):
        self.kernel = kernel
        self.conns: Dict[Tuple[int, int, int], TcpConnection] = {}
        self.listeners: Dict[int, TcpListener] = {}
        self._next_port = 10000

    def _ephemeral_port(self) -> int:
        self._next_port += 1
        return self._next_port

    def _register(self, conn: TcpConnection) -> None:
        key = (conn.local_port, conn.remote_host, conn.remote_port)
        if key in self.conns:
            raise NetworkError(f"connection {key} already exists")
        self.conns[key] = conn

    # ---------------------------------------------------------------- setup
    def listen(self, port: int) -> TcpListener:
        if port in self.listeners:
            raise NetworkError(f"port {port} already listening")
        lst = TcpListener(self, port)
        self.listeners[port] = lst
        return lst

    def connect(self, remote_host: int, remote_port: int, local_port: Optional[int] = None):
        """Generator -> TcpConnection: active open (3-way handshake,
        SYN retransmitted on timeout)."""
        p = self.kernel.params
        conn = TcpConnection(
            self, local_port or self._ephemeral_port(), remote_host, remote_port
        )
        self._register(conn)
        conn.state = SYN_SENT
        while conn.state != ESTABLISHED:
            yield from self.kernel.charge(p.tcp_out)
            conn._transmit(TcpSegment(conn.local_port, conn.remote_port, 0, 0, syn=True))
            ev = conn._established.wait()
            timeout = self.kernel.sim.timeout(p.rto)
            yield self.kernel.sim.any_of([ev, timeout])
            if not ev.processed:
                conn._established.cancel_wait(ev)
            if not timeout.processed:
                timeout.cancel()  # established won: the RTO must not fire dead
        return conn

    @staticmethod
    def connect_pair(kernel_a, kernel_b, port_a: int, port_b: int):
        """Create a pre-established static connection pair (no handshake
        traffic) — how the paper's MPI sets up its mesh."""
        a = TcpConnection(kernel_a.tcp, port_a, kernel_b.host.hostid, port_b)
        b = TcpConnection(kernel_b.tcp, port_b, kernel_a.host.hostid, port_a)
        a.state = ESTABLISHED
        b.state = ESTABLISHED
        kernel_a.tcp._register(a)
        kernel_b.tcp._register(b)
        return a, b

    # ------------------------------------------------------------- dispatch
    def on_segment(self, src_host: int, seg: TcpSegment):
        """Generator (kernel worker context)."""
        conn = self.conns.get((seg.dport, src_host, seg.sport))
        if conn is not None:
            if seg.syn and conn.state == SYN_SENT:
                # our SYN was answered (SYN+ACK)
                conn.state = ESTABLISHED
                conn._established.set()
                yield from self.kernel.charge(self.kernel.params.ack_cost)
                conn._transmit(TcpSegment(conn.local_port, conn.remote_port, 0, 0))
                return
            if seg.syn:
                return  # duplicate SYN+ACK, already established
            yield from conn._on_segment(seg)
            return
        if seg.syn:
            lst = self.listeners.get(seg.dport)
            if lst is None:
                return  # no listener: a real stack would RST
            conn = TcpConnection(self, seg.dport, src_host, seg.sport)
            self._register(conn)
            conn.state = ESTABLISHED
            lst._accepted.put(conn)
            yield from self.kernel.charge(self.kernel.params.tcp_out)
            conn._transmit(TcpSegment(conn.local_port, conn.remote_port, 0, 0, syn=True))
            return
        # segment for an unknown connection: drop
