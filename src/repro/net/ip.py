"""IP: addressing, fragmentation, reassembly.

Hosts are addressed by their small-integer host id.  Transport segments
are Python objects; IP wraps them in :class:`IpPacket` headers, splits
them into link-MTU-sized fragments, and reassembles at the receiver.
A lost fragment loses the whole datagram (recovered, if at all, by the
transport above — TCP or reliable-UDP).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Tuple

from repro.errors import NetworkError

__all__ = ["IP_HEADER", "IpPacket", "IpLayer"]

#: IPv4 header bytes (no options)
IP_HEADER = 20


@dataclass
class IpPacket:
    """One IP packet (possibly a fragment of a larger datagram)."""

    src: int
    dst: int
    proto: str
    ident: int
    offset: int
    nbytes: int  # payload bytes in this fragment
    total: int  # payload bytes of the whole datagram
    payload: Any = None  # transport object; carried on the first fragment

    @property
    def more_fragments(self) -> bool:
        return self.offset + self.nbytes < self.total


class IpLayer:
    """Per-host IP instance."""

    def __init__(self, kernel, nic):
        self.kernel = kernel
        self.nic = nic
        self.addr = nic.addr
        self._next_ident = 0
        #: (src, ident) -> {"got": bytes-so-far, "payload": obj or None}
        self._partials: Dict[Tuple[int, int], dict] = {}
        #: cap on simultaneously reassembling datagrams (oldest evicted)
        self.max_partials = 256
        self.datagrams_sent = 0
        self.datagrams_delivered = 0
        self.fragments_sent = 0

    # ------------------------------------------------------------------ send
    def send(self, dst: int, proto: str, payload: Any, nbytes: int) -> None:
        """Transmit a datagram (fragmenting to the link MTU).  Transport
        processing costs are charged by the caller; this only drives the
        NIC, which transmits in the background."""
        if nbytes < 0:
            raise NetworkError(f"negative datagram size {nbytes}")
        self._next_ident += 1
        ident = self._next_ident
        self.datagrams_sent += 1
        max_data = self.nic.max_payload - IP_HEADER
        if max_data <= 0:
            raise NetworkError("link MTU smaller than the IP header")
        offset = 0
        first = True
        while True:
            frag_bytes = min(nbytes - offset, max_data)
            pkt = IpPacket(
                src=self.addr,
                dst=dst,
                proto=proto,
                ident=ident,
                offset=offset,
                nbytes=frag_bytes,
                total=nbytes,
                payload=payload if first else None,
            )
            self.nic.send(dst, frag_bytes + IP_HEADER, pkt)
            self.fragments_sent += 1
            offset += frag_bytes
            first = False
            if offset >= nbytes:
                break

    # --------------------------------------------------------------- receive
    def on_packet(self, pkt: IpPacket):
        """Generator (kernel worker context): reassemble and dispatch."""
        if pkt.dst != self.addr:
            return  # not ours; a real host would drop silently
        if pkt.offset == 0 and not pkt.more_fragments:
            yield from self._dispatch(pkt.proto, pkt.src, pkt.payload, pkt.total)
            return
        key = (pkt.src, pkt.ident)
        entry = self._partials.get(key)
        if entry is None:
            if len(self._partials) >= self.max_partials:
                oldest = next(iter(self._partials))
                del self._partials[oldest]
            entry = self._partials[key] = {"got": 0, "payload": None}
        entry["got"] += pkt.nbytes
        if pkt.payload is not None:
            entry["payload"] = pkt.payload
        if entry["got"] >= pkt.total and entry["payload"] is not None:
            del self._partials[key]
            yield from self._dispatch(pkt.proto, pkt.src, entry["payload"], pkt.total)

    def _dispatch(self, proto: str, src: int, payload: Any, nbytes: int):
        self.datagrams_delivered += 1
        if proto == "tcp":
            yield from self.kernel.tcp.on_segment(src, payload)
        elif proto == "udp":
            yield from self.kernel.udp.on_datagram(src, payload)
        else:  # pragma: no cover - defensive
            raise NetworkError(f"unknown transport protocol {proto!r}")
