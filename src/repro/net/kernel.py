"""The kernel cost model and per-host kernel instance.

All protocol processing is charged to the host CPU (SGI Indy, 133 MHz
R4600), so heavy communication steals cycles from computation and vice
versa.  Two calibrated profiles exist:

* :data:`ETH_KERNEL` — the plain BSD-socket path over the Ethernet
  driver;
* :data:`ATM_KERNEL` — the same sockets over Fore's STREAMS-based ATM
  driver stack, with higher per-syscall and per-segment costs (the
  overhead the paper blames for the Fore API's unimpressive latency).

Calibration targets (paper): TCP 1-byte round trip ≈ 925 µs on
Ethernet, ≈ 1065 µs on ATM; a 25-byte-longer message costs ≈ 45 µs more
on Ethernet (wire-dominated) and ≈ 5 µs on ATM; each extra read syscall
is ≈ 65 µs (Ethernet path) / ≈ 85 µs (ATM path).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.sim import Store

__all__ = ["KernelParams", "ETH_KERNEL", "ATM_KERNEL", "Kernel"]


@dataclass(frozen=True)
class KernelParams:
    """Per-host kernel costs (µs / µs-per-byte)."""

    #: fixed cost of a read(2) crossing the kernel boundary
    syscall_read: float = 65.0
    #: fixed cost of a write(2)
    syscall_write: float = 60.0
    #: user<->kernel copy rate
    copy_per_byte: float = 0.025
    #: software TCP checksum rate
    checksum_per_byte: float = 0.012
    #: TCP/IP output processing per segment
    tcp_out: float = 120.0
    #: TCP/IP input processing per segment
    tcp_in: float = 120.0
    #: UDP output / input processing per datagram
    udp_out: float = 90.0
    udp_in: float = 90.0
    #: interrupt + driver cost per received packet
    intr: float = 30.0
    #: generating or absorbing a bare ACK
    ack_cost: float = 25.0
    #: delayed-ACK timer (a standalone ACK waits this long for data to
    #: piggyback on)
    ack_delay: float = 2000.0
    #: Fore API (direct AAL access through STREAMS) per-message costs
    fore_out: float = 0.0
    fore_in: float = 0.0
    #: TCP retransmission timeout (initial; backed off on repeat losses)
    rto: float = 200_000.0
    #: consecutive retransmissions of the same data before the transport
    #: gives up and fails the connection with RetransmitExhausted
    max_retries: int = 12
    #: RTO multiplier per consecutive unanswered retransmission
    rto_backoff: float = 2.0
    #: ceiling on the backed-off RTO
    rto_max: float = 4_000_000.0
    #: fractional retransmission-timer jitter (±), drawn from the host's
    #: seeded RNG to avoid synchronized retry storms deterministically
    retx_jitter: float = 0.1
    #: Nagle's algorithm: hold sub-MSS segments while data is unacked.
    #: Off by default — MPI implementations of the era disabled it
    #: (TCP_NODELAY) because it interacts terribly with delayed ACKs on
    #: request-response traffic; bench_ablation_nagle.py shows why.
    nagle: bool = False
    #: socket buffer sizes
    sndbuf: int = 131072
    rcvbuf: int = 131072
    #: advertised TCP window
    window: int = 65535

    def with_overrides(self, **kw) -> "KernelParams":
        return replace(self, **kw)


#: BSD sockets over the Ethernet driver
ETH_KERNEL = KernelParams()

#: BSD sockets over Fore's STREAMS ATM stack: every kernel crossing and
#: every segment pays the module traversal
ATM_KERNEL = KernelParams(
    syscall_read=85.0,
    syscall_write=75.0,
    tcp_out=151.0,
    tcp_in=151.0,
    udp_out=115.0,
    udp_in=115.0,
    intr=35.0,
    ack_cost=30.0,
    # the Fore API skips TCP/IP but still walks the STREAMS modules
    fore_out=95.0,
    fore_in=120.0,
)


class Kernel:
    """One host's kernel: charges CPU for protocol work, owns the stack."""

    def __init__(self, host, params: KernelParams, nic, mss: int):
        from repro.net.ip import IpLayer
        from repro.net.tcp import TcpLayer
        from repro.net.udp import UdpLayer

        self.host = host
        self.sim = host.sim
        self.params = params
        self.nic = nic
        #: TCP maximum segment size on this interface
        self.mss = mss
        self.ip = IpLayer(self, nic)
        self.tcp = TcpLayer(self)
        self.udp = UdpLayer(self)
        #: receive-side work queue: the interrupt path enqueues, the
        #: kernel worker charges CPU and dispatches up the stack
        self._rxq: Store = Store(host.sim, name=f"{host.name}.krnl-rxq")
        #: extra link-payload handlers by type (the Fore API registers here)
        self._handlers = {}
        self.sim.process(self._rx_worker(), name=f"{host.name}.krnl-rx")

    def register_handler(self, payload_type, handler) -> None:
        """Route received link payloads of *payload_type* to *handler*
        (a callable returning a generator or None)."""
        self._handlers[payload_type] = handler

    # -- CPU charging helpers (generators) -----------------------------------
    def charge(self, cost: float):
        yield from self.host.cpu.execute(cost)

    def syscall_read(self, nbytes: int = 0):
        p = self.params
        yield from self.host.cpu.execute(p.syscall_read + nbytes * p.copy_per_byte)

    def syscall_write(self, nbytes: int = 0):
        p = self.params
        yield from self.host.cpu.execute(p.syscall_write + nbytes * p.copy_per_byte)

    # -- receive path ---------------------------------------------------------
    def enqueue_rx(self, item) -> None:
        """Called from NIC delivery context: queue for kernel processing."""
        self._rxq.put(item)

    def _rx_worker(self):
        from repro.net.ip import IpPacket

        p = self.params
        while True:
            item = yield self._rxq.get()
            yield from self.host.cpu.execute(p.intr)
            if isinstance(item, IpPacket):
                gen = self.ip.on_packet(item)
            else:
                handler = self._handlers.get(type(item))
                gen = handler(item) if handler is not None else None
            if gen is not None:
                yield from gen
