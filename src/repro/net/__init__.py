"""Kernel protocol stacks: IP, TCP, UDP, reliable-UDP, and the Fore API.

The latency anatomy the paper measures (Table 1) lives here: every
syscall crosses the kernel boundary at a fixed cost, every segment pays
protocol processing on the host CPU, and the ATM path pays extra for
its STREAMS modules — which is why Fore's direct AAL API is barely
faster than kernel TCP (Figure 4).
"""

from repro.net.kernel import KernelParams, Kernel, ETH_KERNEL, ATM_KERNEL
from repro.net.ip import IpLayer
from repro.net.tcp import TcpLayer, TcpConnection
from repro.net.udp import UdpLayer, UdpSocket
from repro.net.rudp import RudpConnection
from repro.net.fore import ForeApi

__all__ = [
    "KernelParams",
    "Kernel",
    "ETH_KERNEL",
    "ATM_KERNEL",
    "IpLayer",
    "TcpLayer",
    "TcpConnection",
    "UdpLayer",
    "UdpSocket",
    "RudpConnection",
    "ForeApi",
]
