"""Reliable UDP: a user-level reliability layer presenting a byte stream.

The paper's MPI-over-UDP keeps the same device protocol as TCP but must
make UDP reliable itself: sequence numbers, cumulative ACKs, timeout
retransmission and duplicate suppression, all at user level — every
packet costs real sendto/recvfrom syscalls, which is why the paper
found its UDP implementation "very similar to that of TCP".

Packet format (inside the UDP payload):
``<QQB3x`` header = 8-byte seq, 8-byte ack, 1 flag byte, 3 pad = 20
bytes, followed by stream data.
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, Optional

from repro.errors import ConnectionClosed, NetworkError, RetransmitExhausted
from repro.net.udp import UdpSocket
from repro.sim.notify import Notify

__all__ = ["RUDP_HEADER", "RudpConnection"]

_HDR = struct.Struct("<QQB3x")
#: user-level reliability header bytes per packet
RUDP_HEADER = _HDR.size

_FLAG_FIN = 1


class RudpConnection:
    """One endpoint of a reliable-UDP stream."""

    def __init__(
        self,
        kernel,
        sock: UdpSocket,
        remote_host: int,
        remote_port: int,
        mss: Optional[int] = None,
        window: int = 65535,
        rto: Optional[float] = None,
        proc_cost: float = 35.0,
    ):
        self.kernel = kernel
        self.sim = kernel.sim
        self.sock = sock
        self.remote_host = remote_host
        self.remote_port = remote_port
        p = kernel.params
        #: stream bytes per packet (bounded so one packet fits a few
        #: IP fragments at most)
        self.mss = mss or min(kernel.mss, 8192)
        self.window = window
        self.rto = rto if rto is not None else p.rto
        #: user-level per-packet bookkeeping (header pack/unpack, timer
        #: management) — the cost that makes reliable UDP perform "very
        #: similar to TCP" (paper, Sec. 5.2)
        self.proc_cost = proc_cost
        # send side
        self.snd_una = 0
        self.snd_nxt = 0
        self._unsent = bytearray()
        self._unacked = bytearray()
        self._send_kick = Notify(self.sim, "rudp-send")
        self._retx_kick = Notify(self.sim, "rudp-retx")
        self._space = Notify(self.sim, "rudp-space")
        self._ack_version = 0
        # receive side
        self.rcv_nxt = 0
        self._rcvbuf = bytearray()
        self._ooo: Dict[int, bytes] = {}
        self._readable = Notify(self.sim, "rudp-read")
        self.peer_closed = False
        self.on_data: Optional[Callable] = None
        self.closed = False
        #: terminal failure (RetransmitExhausted); raised by send/recv
        self.error: Optional[NetworkError] = None
        self.max_retries = p.max_retries
        # delayed-ACK state (mirrors the kernel TCP policy: acks ride
        # outgoing data; a standalone ack waits ack_delay or 2*mss)
        self._ack_pending = 0
        self._ack_timer_armed = False
        self.ack_delay = p.ack_delay
        # statistics
        self.packets_sent = 0
        self.packets_received = 0
        self.retransmissions = 0
        self.duplicates = 0
        self.sim.process(self._sender(), name=f"rudp-snd-{sock.port}")
        self.sim.process(self._retx(), name=f"rudp-rtx-{sock.port}")
        self.sim.process(self._receiver(), name=f"rudp-rcv-{sock.port}")

    # -------------------------------------------------------------- user API
    @property
    def available(self) -> int:
        return len(self._rcvbuf)

    def send(self, data: bytes):
        """Generator: append to the stream (blocks on buffer space)."""
        if self.error is not None:
            raise self.error
        if self.closed:
            raise ConnectionClosed("send on a closed RUDP connection")
        data = bytes(data)
        sndbuf = self.kernel.params.sndbuf
        offset = 0
        while offset < len(data):
            if self.error is not None:
                raise self.error
            used = len(self._unsent) + len(self._unacked)
            if used >= sndbuf:
                yield self._space.wait()
                continue
            take = min(sndbuf - used, len(data) - offset)
            self._unsent.extend(data[offset : offset + take])
            offset += take
            self._send_kick.set()
            self._retx_kick.set()

    def recv_exact(self, n: int):
        """Generator -> bytes: block until *n* stream bytes are readable.

        Unlike TCP this is a user-level buffer read: the syscalls were
        already paid per packet by the receive pump.
        """
        if n < 0:
            raise NetworkError(f"negative read size {n}")
        while len(self._rcvbuf) < n:
            if self.error is not None:
                raise self.error
            if self.peer_closed:
                raise ConnectionClosed(
                    f"peer closed with {len(self._rcvbuf)} of {n} bytes buffered"
                )
            yield self._readable.wait()
        out = bytes(self._rcvbuf[:n])
        del self._rcvbuf[:n]
        return out

    def close(self) -> None:
        self.closed = True
        self._send_kick.set()  # the sender emits the FIN when drained

    # ------------------------------------------------------------- internals
    def _packet(self, seq: int, data: bytes, flags: int = 0) -> bytes:
        return _HDR.pack(seq, self.rcv_nxt, flags) + data

    def _sender(self):
        while True:
            yield self._send_kick.wait()
            if self.error is not None:
                return
            while self._unsent:
                inflight = self.snd_nxt - self.snd_una
                room = self.window - inflight
                if room <= 0:
                    break
                n = min(self.mss, len(self._unsent), room)
                chunk = bytes(self._unsent[:n])
                del self._unsent[:n]
                self._unacked.extend(chunk)
                self.packets_sent += 1
                self._ack_pending = 0  # this packet carries the ack
                yield from self.kernel.charge(self.proc_cost)
                yield from self.sock.sendto(
                    self.remote_host, self.remote_port, self._packet(self.snd_nxt, chunk)
                )
                self.snd_nxt += n
                self._retx_kick.set()
            if self.closed and not self._unsent and self.snd_una >= self.snd_nxt:
                yield from self.sock.sendto(
                    self.remote_host, self.remote_port, self._packet(self.snd_nxt, b"", _FLAG_FIN)
                )

    def _retx(self):
        p = self.kernel.params
        rng = self.kernel.host.rng
        attempts = 0
        while True:
            if self.snd_una >= self.snd_nxt:
                attempts = 0
                yield self._retx_kick.wait()
                continue
            version = self._ack_version
            # exponential backoff with deterministic (seeded) jitter
            rto = min(self.rto * p.rto_backoff**attempts, p.rto_max)
            if p.retx_jitter:
                rto *= 1.0 + p.retx_jitter * rng.uniform(-1.0, 1.0)
            yield self.sim.timeout(rto)
            if self._ack_version != version or self.snd_una >= self.snd_nxt:
                attempts = 0
                continue
            attempts += 1
            if attempts > self.max_retries:
                self._fail(RetransmitExhausted(
                    f"rudp to host {self.remote_host}:{self.remote_port}: "
                    f"{self.max_retries} retransmissions of seq {self.snd_una} unanswered"
                ))
                return
            n = min(self.mss, len(self._unacked))
            chunk = bytes(self._unacked[:n])
            self.retransmissions += 1
            yield from self.sock.sendto(
                self.remote_host, self.remote_port, self._packet(self.snd_una, chunk)
            )

    def _fail(self, exc: NetworkError) -> None:
        """Terminal failure: record it and wake every waiter."""
        self.error = exc
        self._readable.set()
        self._space.set()
        self._send_kick.set()
        if self.on_data is not None:
            self.on_data()

    def _receiver(self):
        """User-level receive pump: one recvfrom syscall per packet."""
        while True:
            _src, payload = yield from self.sock.recvfrom()
            yield from self.kernel.charge(self.proc_cost)
            seq, ack, flags = _HDR.unpack_from(payload)
            data = payload[RUDP_HEADER:]
            self.packets_received += 1
            if ack > self.snd_una:
                del self._unacked[: ack - self.snd_una]
                self.snd_una = ack
                self._ack_version += 1
                self._space.set()
                self._send_kick.set()
            if flags & _FLAG_FIN:
                self.peer_closed = True
                self._readable.set()
                if self.on_data is not None:
                    self.on_data()
            if data:
                self._accept(seq, bytes(data))
                self._ack_pending += len(data)
                if self._ack_pending >= 2 * self.mss:
                    yield from self._send_ack()
                elif not self._ack_timer_armed:
                    self._ack_timer_armed = True
                    self.sim.process(self._delayed_ack(), name="rudp-dack")

    def _send_ack(self):
        self._ack_pending = 0
        yield from self.sock.sendto(
            self.remote_host, self.remote_port, self._packet(self.snd_nxt, b"")
        )

    def _delayed_ack(self):
        yield self.sim.timeout(self.ack_delay)
        self._ack_timer_armed = False
        if self._ack_pending > 0:
            yield from self._send_ack()

    def _accept(self, seq: int, data: bytes) -> None:
        if seq + len(data) <= self.rcv_nxt:
            self.duplicates += 1
            return
        if seq > self.rcv_nxt:
            self._ooo.setdefault(seq, data)
            return
        if seq < self.rcv_nxt:
            data = data[self.rcv_nxt - seq:]
        self._rcvbuf.extend(data)
        self.rcv_nxt += len(data)
        while self.rcv_nxt in self._ooo:
            nxt = self._ooo.pop(self.rcv_nxt)
            self._rcvbuf.extend(nxt)
            self.rcv_nxt += len(nxt)
        self._readable.set()
        if self.on_data is not None:
            self.on_data()
