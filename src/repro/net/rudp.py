"""Reliable UDP: a user-level reliability layer presenting a byte stream.

The paper's MPI-over-UDP keeps the same device protocol as TCP but must
make UDP reliable itself: sequence numbers, cumulative ACKs, timeout
retransmission and duplicate suppression, all at user level — every
packet costs real sendto/recvfrom syscalls, which is why the paper
found its UDP implementation "very similar to that of TCP".

Packet format (inside the UDP payload):
``<QQB3x`` header = 8-byte seq, 8-byte ack, 1 flag byte, 3 pad = 20
bytes, followed by stream data.
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, Optional

from repro.errors import ConnectionClosed, NetworkError, RetransmitExhausted
from repro.net.bytebuf import ByteQueue
from repro.net.udp import UdpSocket
from repro.sim.notify import Notify

__all__ = ["RUDP_HEADER", "RudpConnection"]

_HDR = struct.Struct("<QQB3x")
#: user-level reliability header bytes per packet
RUDP_HEADER = _HDR.size

_FLAG_FIN = 1


class RudpConnection:
    """One endpoint of a reliable-UDP stream."""

    def __init__(
        self,
        kernel,
        sock: UdpSocket,
        remote_host: int,
        remote_port: int,
        mss: Optional[int] = None,
        window: int = 65535,
        rto: Optional[float] = None,
        proc_cost: float = 35.0,
    ):
        self.kernel = kernel
        self.sim = kernel.sim
        self.sock = sock
        self.remote_host = remote_host
        self.remote_port = remote_port
        p = kernel.params
        #: stream bytes per packet (bounded so one packet fits a few
        #: IP fragments at most)
        self.mss = mss or min(kernel.mss, 8192)
        self.window = window
        self.rto = rto if rto is not None else p.rto
        #: user-level per-packet bookkeeping (header pack/unpack, timer
        #: management) — the cost that makes reliable UDP perform "very
        #: similar to TCP" (paper, Sec. 5.2)
        self.proc_cost = proc_cost
        # send side
        self.snd_una = 0
        self.snd_nxt = 0
        self._unsent = ByteQueue()
        self._unacked = ByteQueue()
        self._send_kick = Notify(self.sim, "rudp-send")
        self._space = Notify(self.sim, "rudp-space")
        self._ack_version = 0
        # retransmission timer: cancellable callback, no dedicated
        # process — same draw-order contract as the TCP one
        self._retx_timer = None
        self._retx_arming = False
        self._retx_attempts = 0
        self._retx_epoch = 0
        self._retx_deadline = -1.0
        # receive side
        self.rcv_nxt = 0
        self._rcvbuf = ByteQueue()
        self._ooo: Dict[int, bytes] = {}
        self._readable = Notify(self.sim, "rudp-read")
        self.peer_closed = False
        self.on_data: Optional[Callable] = None
        self.closed = False
        #: terminal failure (RetransmitExhausted); raised by send/recv
        self.error: Optional[NetworkError] = None
        self.max_retries = p.max_retries
        # delayed-ACK state (mirrors the kernel TCP policy: acks ride
        # outgoing data; a standalone ack waits ack_delay or 2*mss)
        self._ack_pending = 0
        self._ack_timer = None
        self._ack_deadline = -1.0
        self.ack_delay = p.ack_delay
        # statistics
        self.packets_sent = 0
        self.packets_received = 0
        self.retransmissions = 0
        self.duplicates = 0
        self.sim.process(self._sender(), name=f"rudp-snd-{sock.port}")
        self.sim.process(self._receiver(), name=f"rudp-rcv-{sock.port}")

    # -------------------------------------------------------------- user API
    @property
    def available(self) -> int:
        return len(self._rcvbuf)

    def send(self, data: bytes):
        """Generator: append to the stream (blocks on buffer space)."""
        if self.error is not None:
            raise self.error
        if self.closed:
            raise ConnectionClosed("send on a closed RUDP connection")
        if not isinstance(data, bytes) and not (
            isinstance(data, memoryview) and data.readonly
        ):
            data = bytes(data)  # freeze mutable buffers once, at the API edge
        total = len(data)
        sndbuf = self.kernel.params.sndbuf
        offset = 0
        view = None
        while offset < total:
            if self.error is not None:
                raise self.error
            used = len(self._unsent) + len(self._unacked)
            if used >= sndbuf:
                obs = self.sim.obs
                if obs is not None:
                    obs.emit(
                        self.sim.now,
                        "net",
                        "stall.sndbuf",
                        rank=self.kernel.host.hostid,
                        detail={"port": self.sock.port, "used": used, "pending": total - offset},
                    )
                yield self._space.wait1()
                continue
            take = min(sndbuf - used, total - offset)
            if offset == 0 and take == total:
                self._unsent.append(data)  # whole buffer, by reference
            else:
                if view is None:
                    view = memoryview(data)
                self._unsent.append(view[offset : offset + take])
            offset += take
            self._send_kick.set()

    def recv_exact(self, n: int):
        """Generator -> bytes: block until *n* stream bytes are readable.

        Unlike TCP this is a user-level buffer read: the syscalls were
        already paid per packet by the receive pump.
        """
        if n < 0:
            raise NetworkError(f"negative read size {n}")
        while len(self._rcvbuf) < n:
            if self.error is not None:
                raise self.error
            if self.peer_closed:
                raise ConnectionClosed(
                    f"peer closed with {len(self._rcvbuf)} of {n} bytes buffered"
                )
            yield self._readable.wait1()
        return self._rcvbuf.take(n)

    def close(self) -> None:
        self.closed = True
        self._send_kick.set()  # the sender emits the FIN when drained

    # ------------------------------------------------------------- internals
    def _packet(self, seq: int, data: bytes, flags: int = 0) -> bytes:
        return _HDR.pack(seq, self.rcv_nxt, flags) + data

    def _sender(self):
        while True:
            yield self._send_kick.wait1()
            if self.error is not None:
                return
            while self._unsent:
                inflight = self.snd_nxt - self.snd_una
                room = self.window - inflight
                if room <= 0:
                    obs = self.sim.obs
                    if obs is not None:
                        obs.emit(
                            self.sim.now,
                            "net",
                            "stall.window",
                            rank=self.kernel.host.hostid,
                            detail={
                                "dst": self.remote_host,
                                "inflight": inflight,
                                "window": self.window,
                            },
                        )
                    break
                n = min(self.mss, len(self._unsent), room)
                chunk = self._unsent.take(n)
                self._unacked.append(chunk)
                self.packets_sent += 1
                self._ack_rides_out()  # this packet carries the ack
                obs = self.sim.obs
                if obs is not None:
                    obs.emit(
                        self.sim.now,
                        "net",
                        "pkt.send",
                        rank=self.kernel.host.hostid,
                        detail={"dst": self.remote_host, "seq": self.snd_nxt, "nbytes": n},
                    )
                yield from self.kernel.charge(self.proc_cost)
                yield from self.sock.sendto(
                    self.remote_host, self.remote_port, self._packet(self.snd_nxt, chunk)
                )
                self.snd_nxt += n
                self._arm_retx()
            if self.closed and not self._unsent and self.snd_una >= self.snd_nxt:
                yield from self.sock.sendto(
                    self.remote_host, self.remote_port, self._packet(self.snd_nxt, b"", _FLAG_FIN)
                )

    # ------------------------------------------------- retransmission timer
    # Timeout retransmission with exponential backoff and deterministic
    # (seeded) jitter; after ``max_retries`` unanswered attempts the
    # connection fails locally.  Cancellable-callback scheme with the
    # same RNG-draw-order contract as the TCP timer: fresh arms draw in
    # a zero-delay event, a full ACK cancels but keeps the deadline so a
    # re-arm before it resumes the old window without drawing, and
    # fire-time re-arms draw inline.

    def _arm_retx(self) -> None:
        """Ensure the retransmission timer is running (called on transmit)."""
        if self._retx_timer is not None or self._retx_arming or self.error is not None:
            return
        if self.sim.now < self._retx_deadline:
            self._retx_timer = self.sim.call_later(
                self._retx_deadline - self.sim.now, self._on_retx_timer
            )
            return
        self._retx_arming = True
        self.sim.call_later(0.0, self._arm_retx_fresh)

    def _arm_retx_fresh(self, _event=None) -> None:
        """Draw a jittered RTO and start a fresh retransmission window."""
        self._retx_arming = False
        if self._retx_timer is not None or self.error is not None:
            return
        if self.snd_una >= self.snd_nxt:
            self._retx_attempts = 0
            return
        p = self.kernel.params
        rto = min(self.rto * p.rto_backoff**self._retx_attempts, p.rto_max)
        if p.retx_jitter:
            # jitter_stream: batched floats when the host RNG has no
            # raw-bits consumer, the raw stream otherwise (same values)
            rto *= 1.0 + p.retx_jitter * self.kernel.host.jitter_stream().uniform(-1.0, 1.0)
        self._retx_epoch = self._ack_version
        self._retx_deadline = self.sim.now + rto
        self._retx_timer = self.sim.call_later(rto, self._on_retx_timer)

    def _on_retx_timer(self, _event=None) -> None:
        self._retx_timer = None
        if self.error is not None:
            return
        if self.snd_una >= self.snd_nxt:
            self._retx_attempts = 0
            return  # all data acked: dormant until the next transmit
        if self._ack_version != self._retx_epoch:
            self._retx_attempts = 0
            self._arm_retx_fresh()
            return  # progress was made
        self._retx_attempts += 1
        if self._retx_attempts > self.max_retries:
            self._fail(RetransmitExhausted(
                f"rudp to host {self.remote_host}:{self.remote_port}: "
                f"{self.max_retries} retransmissions of seq {self.snd_una} unanswered"
            ))
            return
        self.sim.process(self._retransmit_oldest(), name=f"rudp-rtx-{self.sock.port}")

    def _retransmit_oldest(self):
        """Short-lived process: resend the oldest unacked packet."""
        # cap at what has actually been sent: _unacked may hold bytes the
        # sender appended but has not yet put on the wire (it yields for
        # the kernel charge between the two), and resending those would
        # advance the receiver past our snd_nxt
        n = min(self.mss, self.snd_nxt - self.snd_una, len(self._unacked))
        if n <= 0:
            self._arm_retx_fresh()
            return
        # pin the sequence number: sendto yields for the kernel charge,
        # and an ACK landing there advances snd_una — stamping the old
        # bytes with the new snd_una would make the receiver accept them
        # as fresh data past our snd_nxt
        seq = self.snd_una
        chunk = self._unacked.peek(n)
        self.retransmissions += 1
        obs = self.sim.obs
        if obs is not None:
            obs.emit(
                self.sim.now,
                "net",
                "pkt.retx",
                rank=self.kernel.host.hostid,
                detail={
                    "dst": self.remote_host,
                    "seq": seq,
                    "nbytes": n,
                    "attempt": self._retx_attempts,
                },
            )
        yield from self.sock.sendto(
            self.remote_host, self.remote_port, self._packet(seq, chunk)
        )
        self._arm_retx_fresh()

    def _cancel_retx(self) -> None:
        if self._retx_timer is not None:
            self._retx_timer.cancel()
            self._retx_timer = None

    def _fail(self, exc: NetworkError) -> None:
        """Terminal failure: record it and wake every waiter."""
        self._cancel_retx()
        self.error = exc
        self._readable.set()
        self._space.set()
        self._send_kick.set()
        if self.on_data is not None:
            self.on_data()

    def _receiver(self):
        """User-level receive pump: one recvfrom syscall per packet."""
        while True:
            _src, payload = yield from self.sock.recvfrom()
            yield from self.kernel.charge(self.proc_cost)
            seq, ack, flags = _HDR.unpack_from(payload)
            # zero-copy view of the stream bytes after the header
            data = memoryview(payload)[RUDP_HEADER:]
            self.packets_received += 1
            obs = self.sim.obs
            if obs is not None:
                obs.emit(
                    self.sim.now,
                    "net",
                    "pkt.recv",
                    rank=self.kernel.host.hostid,
                    detail={"src": _src, "seq": seq, "ack": ack, "nbytes": len(data)},
                )
            if ack > self.snd_una:
                self._unacked.drop(ack - self.snd_una)
                self.snd_una = ack
                self._ack_version += 1
                if self.snd_una >= self.snd_nxt:
                    # fully acked: cancel in O(1); _retx_deadline is kept
                    # so a re-arm before it resumes the old window
                    self._cancel_retx()
                self._space.set()
                self._send_kick.set()
            if flags & _FLAG_FIN:
                self.peer_closed = True
                self._readable.set()
                if self.on_data is not None:
                    self.on_data()
            if data:
                self._accept(seq, data)
                self._ack_pending += len(data)
                if self._ack_pending >= 2 * self.mss:
                    yield from self._send_ack()
                else:
                    self._arm_dack()

    # Delayed-ACK timer (mirrors the TCP one, deadline-resume included).
    def _ack_rides_out(self) -> None:
        """An outgoing packet carries the current ack: a pending
        standalone-ACK timer would fire dead, so cancel it."""
        self._ack_pending = 0
        if self._ack_timer is not None:
            self._ack_timer.cancel()
            self._ack_timer = None

    def _arm_dack(self) -> None:
        if self._ack_timer is not None:
            return
        now = self.sim.now
        if now < self._ack_deadline:
            delay = self._ack_deadline - now  # resume the cancelled window
        else:
            delay = self.ack_delay
            self._ack_deadline = now + delay
        self._ack_timer = self.sim.call_later(delay, self._on_ack_timer)

    def _on_ack_timer(self, _event=None) -> None:
        self._ack_timer = None
        if self._ack_pending > 0:
            self.sim.process(self._send_ack(), name="rudp-dack")

    def _send_ack(self):
        self._ack_rides_out()
        obs = self.sim.obs
        if obs is not None:
            obs.emit(
                self.sim.now,
                "net",
                "ack.send",
                rank=self.kernel.host.hostid,
                detail={"dst": self.remote_host, "ack": self.rcv_nxt},
            )
        yield from self.sock.sendto(
            self.remote_host, self.remote_port, self._packet(self.snd_nxt, b"")
        )

    def _accept(self, seq: int, data) -> None:
        if seq + len(data) <= self.rcv_nxt:
            self.duplicates += 1
            return
        if seq > self.rcv_nxt:
            self._ooo.setdefault(seq, data)
            return
        if seq < self.rcv_nxt:
            data = data[self.rcv_nxt - seq:]
        self._rcvbuf.append(data)
        self.rcv_nxt += len(data)
        while self.rcv_nxt in self._ooo:
            nxt = self._ooo.pop(self.rcv_nxt)
            self._rcvbuf.append(nxt)
            self.rcv_nxt += len(nxt)
        self._readable.set()
        if self.on_data is not None:
            self.on_data()
