"""``repro.obs`` — the unified instrumentation spine.

One structured :class:`EventBus` that every layer (simulator kernel,
TCP/RUDP transports, MPI devices, the MPI call layer, fault injection)
emits typed :class:`Event` records into, plus the views over it:

* :class:`PhaseLedger` — per-message envelope/match/data phase
  accounting, reproducing the paper's Table 1 from a traced run;
* :class:`CounterRegistry` — event census and custom metrics;
* :mod:`repro.obs.export` — Chrome-trace / JSONL exporters;
* :mod:`repro.obs.schema` — CI trace validator.

Attach a bus when building a world::

    from repro.obs import EventBus, PhaseLedger

    bus = EventBus()
    world = World(2, platform="ethernet", obs=bus)
    world.run(main)
    print(PhaseLedger.from_bus(bus).table())

See ``docs/OBSERVABILITY.md`` for the event taxonomy and the phase
model.
"""

from repro.obs.bus import Event, EventBus, msgid
from repro.obs.counters import CounterRegistry
from repro.obs.export import to_chrome, to_jsonl_lines, write_trace
from repro.obs.phases import MessagePhases, PhaseLedger


def __getattr__(name):
    # lazy: `python -m repro.obs.schema` must not find the module already
    # imported by its own package (runpy would warn)
    if name == "validate_chrome_trace":
        from repro.obs.schema import validate_chrome_trace

        return validate_chrome_trace
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "Event",
    "EventBus",
    "msgid",
    "CounterRegistry",
    "MessagePhases",
    "PhaseLedger",
    "to_chrome",
    "to_jsonl_lines",
    "write_trace",
    "validate_chrome_trace",
]
