"""Metrics counter registry.

Every :meth:`EventBus.emit` bumps the counter named ``"{layer}.{kind}"``
automatically, so a traced run always comes with an event census for
free.  Code can also register and bump its own named counters (the
fault injector and the chaos harness do).
"""

from __future__ import annotations

from typing import Dict, Iterator, Tuple

__all__ = ["CounterRegistry"]


class CounterRegistry:
    """Named monotonically-increasing counters."""

    def __init__(self):
        self._counts: Dict[str, int] = {}

    def inc(self, name: str, n: int = 1) -> int:
        value = self._counts.get(name, 0) + n
        self._counts[name] = value
        return value

    def get(self, name: str) -> int:
        return self._counts.get(name, 0)

    def __getitem__(self, name: str) -> int:
        return self._counts.get(name, 0)

    def __contains__(self, name: str) -> bool:
        return name in self._counts

    def __len__(self) -> int:
        return len(self._counts)

    def __iter__(self) -> Iterator[Tuple[str, int]]:
        return iter(sorted(self._counts.items()))

    def snapshot(self) -> Dict[str, int]:
        """A sorted, independent copy — safe to serialise."""
        return dict(sorted(self._counts.items()))

    def clear(self) -> None:
        self._counts.clear()

    def render(self) -> str:
        if not self._counts:
            return "(no counters)"
        width = max(len(k) for k in self._counts)
        return "\n".join(f"{k:<{width}}  {v}" for k, v in sorted(self._counts.items()))
