"""Trace exporters: Chrome-trace (Perfetto-loadable) JSON and JSONL.

``chrome`` format emits the Trace Event Format understood by
``chrome://tracing`` and https://ui.perfetto.dev: MPI call enter/exit
pairs become ``B``/``E`` duration events (one track per rank), every
other event becomes an ``i`` instant.  Simulated time is already in
microseconds, which is exactly the ``ts`` unit the format expects.

``jsonl`` emits one JSON object per line per event — trivially greppable
and streamable into pandas/jq.
"""

from __future__ import annotations

import json
from typing import Dict, Iterator, List

__all__ = ["to_chrome", "to_jsonl_lines", "write_trace"]

#: chrome trace ``cat`` per bus layer
_LAYER_CAT = {
    "sim": "sim",
    "net": "net",
    "dev": "device",
    "mpi": "mpi",
    "prof": "mpi",
    "fault": "fault",
    "trace": "trace",
}


def _pid_registry(bus):
    """Map run labels to stable integer pids (Chrome wants numbers)."""
    pids: Dict[object, int] = {}
    for ev in bus.events:
        if ev.run not in pids:
            pids[ev.run] = len(pids)
    if not pids:
        pids[None] = 0
    return pids


def to_chrome(bus) -> Dict:
    """Convert a bus into a Chrome-trace JSON object."""
    pids = _pid_registry(bus)
    out: List[Dict] = []
    ranks_seen = set()
    for run, pid in pids.items():
        out.append({
            "ph": "M", "pid": pid, "tid": 0, "name": "process_name",
            "args": {"name": str(run) if run is not None else "repro"},
        })
    for ev in bus.events:
        pid = pids[ev.run]
        tid = ev.rank if ev.rank is not None else -1
        if (pid, tid) not in ranks_seen and tid >= 0:
            ranks_seen.add((pid, tid))
            out.append({
                "ph": "M", "pid": pid, "tid": tid, "name": "thread_name",
                "args": {"name": f"rank {tid}"},
            })
        cat = _LAYER_CAT.get(ev.layer, ev.layer)
        detail = ev.detail or {}
        if ev.layer == "mpi" and ev.kind in ("call.enter", "call.exit"):
            ph = "B" if ev.kind == "call.enter" else "E"
            rec = {
                "ph": ph, "ts": ev.t, "pid": pid, "tid": tid,
                "name": detail.get("call", "mpi"), "cat": cat,
            }
            if ph == "B" and detail:
                rec["args"] = {k: v for k, v in detail.items() if v is not None}
        else:
            rec = {
                "ph": "i", "ts": ev.t, "pid": pid, "tid": tid,
                "name": ev.kind, "cat": cat, "s": "t",
            }
            args = {k: v for k, v in detail.items() if v is not None}
            if ev.msg is not None:
                args["msg"] = list(ev.msg)
            if args:
                rec["args"] = args
        out.append(rec)
    return {"traceEvents": out, "displayTimeUnit": "ns"}


def to_jsonl_lines(bus) -> Iterator[str]:
    """One compact JSON object per event."""
    for ev in bus.events:
        rec = {"t": ev.t, "layer": ev.layer, "kind": ev.kind}
        if ev.rank is not None:
            rec["rank"] = ev.rank
        if ev.msg is not None:
            rec["msg"] = list(ev.msg)
        if ev.detail:
            rec["detail"] = ev.detail
        if ev.run is not None:
            rec["run"] = ev.run
        yield json.dumps(rec, default=str)


def write_trace(bus, path: str, fmt: str = "chrome") -> str:
    """Serialise *bus* to *path* in ``chrome`` or ``jsonl`` format."""
    if fmt == "chrome":
        with open(path, "w") as fh:
            json.dump(to_chrome(bus), fh, default=str)
            fh.write("\n")
    elif fmt == "jsonl":
        with open(path, "w") as fh:
            for line in to_jsonl_lines(bus):
                fh.write(line)
                fh.write("\n")
    else:
        raise ValueError(f"unknown trace format {fmt!r} (expected 'chrome' or 'jsonl')")
    return path
