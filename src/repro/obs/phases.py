"""Per-message phase accounting: the paper's Table 1 as a query.

The paper decomposes MPI point-to-point latency into three protocol
phases — *envelope* transfer, receive-side *matching* (including any
time the message sat buffered as unexpected), and *data* transfer.
:class:`PhaseLedger` rebuilds that decomposition for every message in a
traced run by scanning the device-layer events on an
:class:`~repro.obs.bus.EventBus`:

========== ======================= =========================================
phase      from → to               meaning
========== ======================= =========================================
envelope   ``msg.send`` →          send call entered the device until the
           ``env.arrived``         envelope (for eager sends, with payload)
                                   reached the receiver
match      ``env.arrived`` →       receiver-side matching, including the
           ``match.hit``           buffered wait when the receive was not
                                   yet posted (``unexpected``)
data       ``match.hit`` →         payload landed in the user buffer; for
           ``msg.complete``        rendezvous this covers RTS + data
                                   transfer, for eager it is the local copy
========== ======================= =========================================

The three phases telescope — each starts where the previous ended — so
``envelope + match + data`` equals the end-to-end simulated latency of
the message *exactly* (tested in ``tests/obs/test_phases.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["MessagePhases", "PhaseLedger"]


@dataclass
class MessagePhases:
    """One message's life, decomposed into Table-1 phases (all times µs)."""

    msg: Tuple[int, int, int, int]  # (src, dst, context, seq)
    tag: Optional[int] = None
    nbytes: Optional[int] = None
    proto: Optional[str] = None  # "eager" | "rdv"
    t_send: Optional[float] = None
    t_arrived: Optional[float] = None
    t_matched: Optional[float] = None
    t_complete: Optional[float] = None
    unexpected: bool = False

    @property
    def src(self) -> int:
        return self.msg[0]

    @property
    def dst(self) -> int:
        return self.msg[1]

    @property
    def envelope(self) -> Optional[float]:
        if self.t_send is None or self.t_arrived is None:
            return None
        return self.t_arrived - self.t_send

    @property
    def match(self) -> Optional[float]:
        if self.t_arrived is None or self.t_matched is None:
            return None
        return self.t_matched - self.t_arrived

    @property
    def data(self) -> Optional[float]:
        if self.t_matched is None or self.t_complete is None:
            return None
        return self.t_complete - self.t_matched

    @property
    def total(self) -> Optional[float]:
        """End-to-end latency; the telescoping sum of the three phases."""
        if None in (self.envelope, self.match, self.data):
            return None
        return self.envelope + self.match + self.data

    def complete(self) -> bool:
        return self.total is not None


class PhaseLedger:
    """All messages of a traced run with their phase decomposition."""

    def __init__(self, messages: List[MessagePhases]):
        self.messages = messages
        self._by_id: Dict[Tuple, MessagePhases] = {m.msg: m for m in messages}

    @classmethod
    def from_bus(cls, bus) -> "PhaseLedger":
        """Scan a bus's device-layer events into a ledger."""
        table: Dict[Tuple, MessagePhases] = {}

        def rec(ev) -> Optional[MessagePhases]:
            if ev.msg is None:
                return None
            m = table.get(ev.msg)
            if m is None:
                m = table[ev.msg] = MessagePhases(msg=ev.msg)
            return m

        for ev in bus.events:
            if ev.layer != "dev":
                continue
            kind = ev.kind
            if kind == "msg.send":
                m = rec(ev)
                if m is None:
                    continue
                m.t_send = ev.t
                d = ev.detail or {}
                m.tag = d.get("tag")
                m.nbytes = d.get("nbytes")
                m.proto = d.get("proto")
            elif kind == "env.arrived":
                m = rec(ev)
                if m is not None and m.t_arrived is None:
                    m.t_arrived = ev.t
            elif kind == "match.hit":
                m = rec(ev)
                if m is not None and m.t_matched is None:
                    m.t_matched = ev.t
                    m.unexpected = bool((ev.detail or {}).get("unexpected"))
            elif kind == "msg.complete":
                m = rec(ev)
                if m is not None and m.t_complete is None:
                    m.t_complete = ev.t
        return cls(list(table.values()))

    # -- queries -------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.messages)

    def __iter__(self):
        return iter(self.messages)

    def get(self, msg) -> Optional[MessagePhases]:
        return self._by_id.get(msg)

    def lookup(self, src=None, dst=None, tag=None, complete=None) -> List[MessagePhases]:
        out = []
        for m in self.messages:
            if src is not None and m.src != src:
                continue
            if dst is not None and m.dst != dst:
                continue
            if tag is not None and m.tag != tag:
                continue
            if complete is not None and m.complete() != complete:
                continue
            out.append(m)
        return out

    # -- rendering -----------------------------------------------------------
    def table(self, messages: Optional[List[MessagePhases]] = None) -> str:
        """Table-1-style fixed-width breakdown (µs per phase)."""
        rows = messages if messages is not None else self.messages
        header = (
            f"{'src->dst':>9} {'tag':>5} {'bytes':>8} {'proto':>6} "
            f"{'envelope':>10} {'match':>10} {'data':>10} {'total':>10}  flags"
        )
        lines = [header, "-" * len(header)]
        for m in rows:
            def fmt(v):
                return f"{v:10.2f}" if v is not None else f"{'?':>10}"
            flags = "unexpected" if m.unexpected else ""
            lines.append(
                f"{m.src:>4}->{m.dst:<4} {m.tag if m.tag is not None else '?':>5} "
                f"{m.nbytes if m.nbytes is not None else '?':>8} "
                f"{m.proto or '?':>6} "
                f"{fmt(m.envelope)} {fmt(m.match)} {fmt(m.data)} {fmt(m.total)}  {flags}"
            )
        return "\n".join(lines)

    def summary(self) -> Dict[str, float]:
        """Mean phase times over complete messages."""
        done = [m for m in self.messages if m.complete()]
        if not done:
            return {"messages": 0}
        n = len(done)
        return {
            "messages": n,
            "envelope_us": sum(m.envelope for m in done) / n,
            "match_us": sum(m.match for m in done) / n,
            "data_us": sum(m.data for m in done) / n,
            "total_us": sum(m.total for m in done) / n,
            "unexpected": sum(1 for m in done if m.unexpected),
        }
