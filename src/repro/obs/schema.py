"""Chrome-trace schema checker (stdlib only, CI-friendly).

Validates the structural invariants of a trace produced by
:func:`repro.obs.export.to_chrome` without any third-party JSON-schema
dependency:

* top level is an object with a ``traceEvents`` list;
* every event has a string ``ph`` and integer-ish ``pid``/``tid``;
* non-metadata events carry a numeric, non-negative ``ts`` and a
  ``name``;
* ``B``/``E`` duration events balance per ``(pid, tid)`` track and
  never close a span that was not opened.

Run from the command line (used by the CI observability smoke job)::

    python -m repro.obs.schema trace.json
"""

from __future__ import annotations

import json
import sys
from typing import Dict, List, Tuple

__all__ = ["validate_chrome_trace", "main"]

_PHASES = {"B", "E", "i", "I", "M", "X", "C"}


def validate_chrome_trace(obj) -> List[str]:
    """Return a list of problems (empty == valid)."""
    errors: List[str] = []
    if not isinstance(obj, dict):
        return [f"top level must be an object, got {type(obj).__name__}"]
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        return ["missing or non-list 'traceEvents'"]
    open_spans: Dict[Tuple, List[str]] = {}
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        ph = ev.get("ph")
        if not isinstance(ph, str) or ph not in _PHASES:
            errors.append(f"{where}: bad ph {ph!r}")
            continue
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int):
                errors.append(f"{where}: missing integer {key!r}")
        if ph == "M":
            continue
        ts = ev.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            errors.append(f"{where}: bad ts {ts!r}")
        if not isinstance(ev.get("name"), str) or not ev.get("name"):
            errors.append(f"{where}: missing name")
        track = (ev.get("pid"), ev.get("tid"))
        if ph == "B":
            open_spans.setdefault(track, []).append(ev.get("name", ""))
        elif ph == "E":
            stack = open_spans.get(track)
            if not stack:
                errors.append(f"{where}: E with no open B on track {track}")
            else:
                stack.pop()
    for track, stack in open_spans.items():
        if stack:
            errors.append(f"unclosed B events on track {track}: {stack}")
    return errors


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        print("usage: python -m repro.obs.schema TRACE.json", file=sys.stderr)
        return 2
    try:
        with open(argv[0]) as fh:
            obj = json.load(fh)
    except (OSError, ValueError) as e:
        print(f"FAIL: cannot load {argv[0]}: {e}", file=sys.stderr)
        return 1
    errors = validate_chrome_trace(obj)
    if errors:
        for err in errors[:50]:
            print(f"FAIL: {err}", file=sys.stderr)
        print(f"{argv[0]}: {len(errors)} schema error(s)", file=sys.stderr)
        return 1
    n = len(obj["traceEvents"])
    print(f"{argv[0]}: OK ({n} trace events)")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess in CI
    sys.exit(main())
