"""The structured event bus: one spine for every layer's instrumentation.

Every layer of the stack — simulator kernel, network transports, MPI
devices, the MPI call layer, and the fault injector — emits typed
:class:`Event` records into a single :class:`EventBus`.  Higher-level
views (``Tracer``, ``Timeline``, ``MpiStats``, :class:`~repro.obs.phases.PhaseLedger`,
the Chrome-trace exporter) are all queries or subscribers over this one
stream.

Cost model
----------
The bus is *absent* by default: ``Simulator.obs`` is ``None`` and every
emission site is guarded by one attribute load plus a ``None`` check::

    obs = self.sim.obs
    if obs is not None:
        obs.emit(self.sim.now, "dev", "env.arrived", rank=..., msg=...)

so the disabled path costs nothing measurable (the kernel perf floors
in ``BENCH_kernel.json`` are enforced with the bus disabled *and* a <5%
budget is tested explicitly).  When enabled, ``emit`` appends one
record and bumps one counter; emission never interacts with simulated
time, so tracing cannot perturb deterministic outputs.

Event taxonomy (layer / kind) is documented in ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.obs.counters import CounterRegistry

__all__ = ["Event", "EventBus", "msgid"]


def msgid(src_world: int, dst_world: int, context: int, seq: int) -> Tuple[int, int, int, int]:
    """Canonical message-correlation id: ``(src, dst, context, seq)``.

    ``seq`` is the sender's per-(destination, context) sequence number,
    so the id is unique for the lifetime of a world and identical on
    both sides of the wire.
    """
    return (src_world, dst_world, context, seq)


class Event:
    """One typed record: *when*, *which layer*, *what*, *who*, *which message*.

    ``detail`` is an optional dict of event-specific fields; ``msg`` is
    a correlation id from :func:`msgid` linking every event in one
    message's life (send → envelope → match → data → complete);
    ``run`` labels the world/run the event came from when one bus spans
    several simulations (e.g. a chaos sweep).
    """

    __slots__ = ("t", "layer", "kind", "rank", "msg", "detail", "run")

    def __init__(self, t, layer, kind, rank=None, msg=None, detail=None, run=None):
        self.t = t
        self.layer = layer
        self.kind = kind
        self.rank = rank
        self.msg = msg
        self.detail = detail
        self.run = run

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        bits = [f"t={self.t}", self.layer, self.kind]
        if self.rank is not None:
            bits.append(f"rank={self.rank}")
        if self.msg is not None:
            bits.append(f"msg={self.msg}")
        if self.detail:
            bits.append(repr(self.detail))
        if self.run is not None:
            bits.append(f"run={self.run!r}")
        return f"Event({', '.join(bits)})"


class EventBus:
    """Append-only stream of :class:`Event` records plus live counters.

    Attach one to a world (``World(..., obs=bus)``) before it is built;
    every layer then emits into it.  ``layers`` optionally restricts
    recording to a set of layer names (events from other layers are
    dropped at the door, which keeps huge runs tractable).
    """

    def __init__(self, layers=None):
        self.events: List[Event] = []
        self.counters = CounterRegistry()
        self.layers = frozenset(layers) if layers is not None else None
        self.run: Optional[str] = None
        self._subscribers: List[Callable[[Event], None]] = []

    # -- emission (the hot path) --------------------------------------------
    def emit(self, t, layer, kind, rank=None, msg=None, detail=None) -> None:
        if self.layers is not None and layer not in self.layers:
            return
        ev = Event(t, layer, kind, rank, msg, detail, self.run)
        self.events.append(ev)
        self.counters.inc(layer + "." + kind)
        for fn in self._subscribers:
            fn(ev)

    # -- run labelling -------------------------------------------------------
    def set_run(self, label: Optional[str]) -> None:
        """Label subsequent events (multi-world sweeps share one bus)."""
        self.run = label

    # -- merging --------------------------------------------------------------
    def extend(self, events) -> None:
        """Append already-constructed events (their ``run`` labels kept).

        This is how the parallel experiment engine threads per-shard
        event streams back through its merge: each worker records into
        its own bus, the parent ``extend``s the shard streams in
        canonical cell order, and the merged bus is indistinguishable
        from one serial run sharing a single bus — counters are bumped
        and subscribers notified exactly as live emission would.
        """
        for ev in events:
            if self.layers is not None and ev.layer not in self.layers:
                continue
            self.events.append(ev)
            self.counters.inc(ev.layer + "." + ev.kind)
            for fn in self._subscribers:
                fn(ev)

    # -- subscribers ---------------------------------------------------------
    def subscribe(self, fn: Callable[[Event], None]) -> Callable[[Event], None]:
        self._subscribers.append(fn)
        return fn

    def unsubscribe(self, fn: Callable[[Event], None]) -> None:
        if fn in self._subscribers:
            self._subscribers.remove(fn)

    # -- queries -------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def by_layer(self, layer: str) -> Iterator[Event]:
        return (e for e in self.events if e.layer == layer)

    def by_kind(self, kind: str) -> Iterator[Event]:
        return (e for e in self.events if e.kind == kind)

    def for_message(self, msg) -> List[Event]:
        return [e for e in self.events if e.msg == msg]

    def clear(self) -> None:
        self.events.clear()
        self.counters.clear()
