"""Distributed linear equation solver (paper, Section 6.1).

Gaussian elimination with row-cyclic distribution:

1. the initiator generates the system and scatters the rows
   (the "initial phase of computation by the initiator");
2. N phases: the owner of pivot row k **broadcasts** it, every process
   eliminates its rows below k (this is the only communication, so the
   program's scaling is dominated by broadcast quality — hardware
   broadcast vs point-to-point, Figure 7);
3. the initiator gathers the triangularized system and back-substitutes
   (the "final phase of result gathering").

Floating-point work is charged to the simulated CPU at ``flop_time``
µs/flop and *also actually performed* with NumPy, so results are
verifiable.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["generate_system", "linsolve"]

#: default per-flop cost, µs (a 40 MHz SPARC doing ~10 MFLOPS)
DEFAULT_FLOP_TIME = 0.1


def generate_system(n: int, seed: int = 0) -> Tuple[np.ndarray, np.ndarray]:
    """A well-conditioned random n×n system (diagonally dominant)."""
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((n, n))
    a += np.eye(n) * n  # diagonal dominance: no pivoting needed
    b = rng.standard_normal(n)
    return a, b


def linsolve(
    comm,
    n: int = 64,
    seed: int = 0,
    flop_time: float = DEFAULT_FLOP_TIME,
    quantum: float = 50.0,
    a: Optional[np.ndarray] = None,
    b: Optional[np.ndarray] = None,
):
    """Generator: solve an n×n system on *comm*.

    Returns ``(x, elapsed_us)`` at rank 0 and ``(None, elapsed_us)``
    elsewhere.  ``a``/``b`` may be supplied at rank 0 (otherwise a
    seeded random system is generated there).
    """
    size, rank = comm.size, comm.rank
    host = comm.endpoint.host
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n}")

    # --- initial phase: the initiator builds and distributes the system
    if rank == 0:
        if a is None or b is None:
            a, b = generate_system(n, seed)
        else:
            a, b = np.array(a, dtype=float), np.array(b, dtype=float)
        if a.shape != (n, n) or b.shape != (n,):
            raise ConfigurationError(f"system shape mismatch for n={n}")
        chunks = [
            (a[np.arange(r, n, size)].copy(), b[np.arange(r, n, size)].copy())
            for r in range(size)
        ]
    else:
        chunks = None
    my_a, my_b = yield from comm.scatter(chunks, root=0)
    my_rows = np.arange(rank, n, size)

    t0 = comm.wtime()
    # --- N phases of broadcast + elimination
    pivot = np.empty(n + 1, dtype=np.float64)
    for k in range(n):
        owner = k % size
        if rank == owner:
            local_idx = (k - rank) // size
            pivot[:n] = my_a[local_idx]
            pivot[n] = my_b[local_idx]
        yield from comm.bcast(pivot, root=owner)
        below = my_rows > k
        nbelow = int(below.sum())
        if nbelow:
            factors = my_a[below, k] / pivot[k]
            my_a[below, k:] -= np.outer(factors, pivot[k:n])
            my_b[below] -= factors * pivot[n]
            # 2 flops per updated element, plus the factor divisions
            flops = nbelow * (2 * (n - k) + 1)
            yield from host.compute(flops * flop_time, quantum=quantum)

    # --- final phase: gather at the initiator and back-substitute
    gathered = yield from comm.gather((my_rows, my_a, my_b), root=0)
    elapsed = comm.wtime() - t0
    if rank != 0:
        return None, elapsed

    u = np.empty((n, n))
    c = np.empty(n)
    for rows, ra, rb in gathered:
        u[rows] = ra
        c[rows] = rb
    x = np.empty(n)
    for k in range(n - 1, -1, -1):
        x[k] = (c[k] - u[k, k + 1:] @ x[k + 1:]) / u[k, k]
    yield from host.compute(n * n * flop_time, quantum=quantum)
    return x, elapsed
