"""Distributed matrix multiplication (paper, Section 6.1).

Row-block distribution of A; B is broadcast; each process multiplies
its block; the initiator gathers C.  Communication is broadcast +
gather, so (like the solver) the hardware-broadcast implementation
wins on the Meiko — the paper notes "performance results are similar
to that of the linear equation solver".
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["matmul"]

DEFAULT_FLOP_TIME = 0.1


def matmul(
    comm,
    n: int = 64,
    seed: int = 0,
    flop_time: float = DEFAULT_FLOP_TIME,
    quantum: float = 50.0,
    a: Optional[np.ndarray] = None,
    b: Optional[np.ndarray] = None,
):
    """Generator: C = A @ B on *comm*.

    Returns ``(C, elapsed_us)`` at rank 0 and ``(None, elapsed_us)``
    elsewhere.
    """
    size, rank = comm.size, comm.rank
    host = comm.endpoint.host
    if n < 1:
        raise ConfigurationError(f"n must be >= 1, got {n}")

    if rank == 0:
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((n, n)) if a is None else np.array(a, dtype=float)
        b = rng.standard_normal((n, n)) if b is None else np.array(b, dtype=float)
        row_chunks = [a[np.arange(r, n, size)].copy() for r in range(size)]
    else:
        row_chunks = None
        b = np.empty((n, n), dtype=np.float64)

    my_a = yield from comm.scatter(row_chunks, root=0)
    t0 = comm.wtime()
    yield from comm.bcast(b.reshape(-1), root=0)
    my_c = my_a @ b
    yield from host.compute(my_a.shape[0] * n * n * 2 * flop_time, quantum=quantum)
    gathered = yield from comm.gather(my_c, root=0)
    elapsed = comm.wtime() - t0
    if rank != 0:
        return None, elapsed
    c = np.empty((n, n))
    for r, block in enumerate(gathered):
        c[np.arange(r, n, size)] = block
    return c, elapsed
