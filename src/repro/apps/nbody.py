"""Particle pairwise interactions in a ring (paper, Section 6.2).

Each processor permanently owns P/N particles.  The computation runs in
N-1 communication phases passing a *traveling* partition around the
ring; each phase a processor accumulates the forces its own particles
feel from the visiting partition.  Communication per phase follows the
paper exactly:

    "nonblocking sends are posted to send to the next processor in the
    ring, then a blocking receive is performed, followed by a wait
    operation to complete the send"

so each rank overlaps its send with its receive.  All ranks interact at
nearly the same time each phase, which is why low latency matters on
the Meiko (Figure 8) and why the contention-free ATM beats the shared
Ethernet for the larger problem (Figure 9).

Forces are softened gravitational attractions, computed with NumPy and
verifiable against :func:`reference_forces`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["generate_particles", "reference_forces", "pairwise_forces", "nbody_ring"]

DEFAULT_FLOP_TIME = 0.1
#: flops charged per particle pair (distance, softening, scale, accumulate)
FLOPS_PER_PAIR = 20
#: gravitational softening to keep close encounters finite
SOFTENING = 0.05


def generate_particles(n: int, seed: int = 0) -> np.ndarray:
    """n particles as an (n, 4) array of x, y, z, mass."""
    rng = np.random.default_rng(seed)
    p = rng.standard_normal((n, 4))
    p[:, 3] = rng.uniform(0.5, 2.0, size=n)  # positive masses
    return p


def pairwise_forces(targets: np.ndarray, sources: np.ndarray) -> np.ndarray:
    """Forces on *targets* from *sources* (softened gravity, G = 1).

    Self-pairs (zero displacement) contribute nothing.
    """
    d = sources[None, :, :3] - targets[:, None, :3]  # (t, s, 3)
    r2 = (d**2).sum(axis=2) + SOFTENING**2
    inv_r3 = r2**-1.5
    # zero out exact self-pairs (same position): displacement exactly 0
    self_pair = (d == 0).all(axis=2)
    inv_r3 = np.where(self_pair, 0.0, inv_r3)
    w = sources[None, :, 3] * targets[:, None, 3] * inv_r3
    return (w[:, :, None] * d).sum(axis=1)


def reference_forces(particles: np.ndarray) -> np.ndarray:
    """O(n²) single-node reference for verification."""
    return pairwise_forces(particles, particles)


def nbody_ring(
    comm,
    nparticles: int = 24,
    seed: int = 0,
    flop_time: float = DEFAULT_FLOP_TIME,
    quantum: float = 50.0,
    particles: np.ndarray = None,
):
    """Generator: compute all pairwise forces on *comm*'s ring.

    Returns ``(forces, elapsed_us)`` at rank 0 (the full (n, 3) array)
    and ``(None, elapsed_us)`` elsewhere.  ``nparticles`` must divide by
    ``comm.size``.
    """
    size, rank = comm.size, comm.rank
    host = comm.endpoint.host
    if nparticles % size:
        raise ConfigurationError(f"{nparticles} particles do not divide over {size} ranks")
    block = nparticles // size

    if rank == 0:
        if particles is None:
            particles = generate_particles(nparticles, seed)
        chunks = [particles[r * block : (r + 1) * block].copy() for r in range(size)]
    else:
        chunks = None
    mine = yield from comm.scatter(chunks, root=0)

    t0 = comm.wtime()
    forces = pairwise_forces(mine, mine)
    yield from host.compute(block * block * FLOPS_PER_PAIR * flop_time, quantum=quantum)

    visiting = mine.copy()
    right = (rank + 1) % size
    left = (rank - 1) % size
    recv_buf = np.empty_like(mine)
    for _phase in range(size - 1):
        # the paper's pattern: isend, blocking recv, wait
        req = yield from comm.isend(visiting.reshape(-1), dest=right, tag=17)
        yield from comm.recv(source=left, tag=17, buf=recv_buf.reshape(-1))
        yield from comm.wait(req)
        visiting = recv_buf.copy()
        forces += pairwise_forces(mine, visiting)
        yield from host.compute(block * block * FLOPS_PER_PAIR * flop_time, quantum=quantum)

    gathered = yield from comm.gather(forces, root=0)
    elapsed = comm.wtime() - t0
    if rank != 0:
        return None, elapsed
    return np.concatenate(gathered, axis=0), elapsed
