"""2D Jacobi heat diffusion with halo exchange (extension application).

Not in the paper — included as the canonical Cartesian-topology
workload: a 2D grid is row-partitioned over a 1D process grid; each
iteration exchanges one halo row with each neighbour
(``sendrecv`` along ``CartComm.shift``) and relaxes the interior.
Latency-sensitive like the n-body ring (two small messages per rank per
iteration), so the low-latency Meiko device wins here too.

Verified against :func:`reference_jacobi`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError
from repro.mpi.topology import create_cart

__all__ = ["initial_grid", "reference_jacobi", "jacobi_heat"]

DEFAULT_FLOP_TIME = 0.1
#: flops per relaxed cell (4 adds + 1 multiply, rounded up for indexing)
FLOPS_PER_CELL = 6


def initial_grid(nx: int, ny: int, hot: float = 100.0) -> np.ndarray:
    """An (nx, ny) grid, zero inside, *hot* along the top edge."""
    g = np.zeros((nx, ny))
    g[0, :] = hot
    return g


def reference_jacobi(grid: np.ndarray, iters: int) -> np.ndarray:
    """Serial Jacobi relaxation (boundary rows/cols held fixed)."""
    u = grid.copy()
    for _ in range(iters):
        nxt = u.copy()
        nxt[1:-1, 1:-1] = 0.25 * (
            u[:-2, 1:-1] + u[2:, 1:-1] + u[1:-1, :-2] + u[1:-1, 2:]
        )
        u = nxt
    return u


def jacobi_heat(
    comm,
    nx: int = 32,
    ny: int = 32,
    iters: int = 20,
    hot: float = 100.0,
    flop_time: float = DEFAULT_FLOP_TIME,
    quantum: float = 50.0,
    wrap=None,
):
    """Generator: distributed Jacobi on *comm*.

    Returns ``(grid, elapsed_us)`` at rank 0 and ``(None, elapsed_us)``
    elsewhere.  ``nx`` must divide by ``comm.size``.  ``wrap`` (if
    given) is applied to the internally created Cartesian communicator —
    e.g. :func:`repro.mpi.profiling.profile` to collect statistics.
    """
    if nx % comm.size:
        raise ConfigurationError(f"{nx} rows do not divide over {comm.size} ranks")
    cart = yield from create_cart(comm, [comm.size], periods=[False])
    if wrap is not None:
        cart = wrap(cart)
    up, down = cart.shift(0, 1)  # neighbours: smaller-row side, larger-row side
    rows = nx // comm.size
    r0 = cart.rank * rows

    full = initial_grid(nx, ny, hot)
    # local block with one halo row on each side
    local = np.zeros((rows + 2, ny))
    local[1:-1] = full[r0 : r0 + rows]
    if cart.rank > 0:
        local[0] = full[r0 - 1]
    if cart.rank < cart.size - 1:
        local[-1] = full[r0 + rows]

    t0 = comm.wtime()
    halo_up = np.zeros(ny)
    halo_down = np.zeros(ny)
    for _ in range(iters):
        # exchange halo rows (PROC_NULL at the physical boundaries)
        _, st_up = yield from cart.sendrecv(
            local[1].copy(), dest=up, recvbuf=halo_down, source=down,
            sendtag=21, recvtag=21,
        )
        _, st_down = yield from cart.sendrecv(
            local[-2].copy(), dest=down, recvbuf=halo_up, source=up,
            sendtag=22, recvtag=22,
        )
        if st_up.count_bytes:
            local[-1] = halo_down
        if st_down.count_bytes:
            local[0] = halo_up
        nxt = local.copy()
        lo = 1 if cart.rank > 0 else 2  # the global top row is fixed
        hi = rows + 1 if cart.rank < cart.size - 1 else rows
        nxt[lo:hi, 1:-1] = 0.25 * (
            local[lo - 1 : hi - 1, 1:-1]
            + local[lo + 1 : hi + 1, 1:-1]
            + local[lo:hi, :-2]
            + local[lo:hi, 2:]
        )
        local = nxt
        cells = max(0, hi - lo) * max(0, ny - 2)
        host = comm.endpoint.host
        yield from host.compute(cells * FLOPS_PER_CELL * flop_time, quantum=quantum)

    gathered = yield from cart.gather(local[1:-1].copy(), root=0)
    elapsed = comm.wtime() - t0
    if cart.rank != 0:
        return None, elapsed
    return np.concatenate(gathered, axis=0), elapsed
