"""Survivable ring relaxation: checkpoint-restart over ULFM recovery.

Not in the paper — the demonstration workload for :mod:`repro.mpi.ft`.
A global vector is block-partitioned over the ranks; each iteration
exchanges one boundary element with each ring neighbour (``sendrecv``,
the n-body communication shape) and relaxes the interior with a
three-point average.  Every ``checkpoint_every`` iterations each rank
saves its block to the :class:`~repro.mpi.ft.CheckpointStore` and the
wave is committed behind a barrier.

When a rank dies mid-run, the survivors' operations fail with
:class:`~repro.mpi.exceptions.RankFailed` (or
:class:`~repro.mpi.exceptions.CommRevoked`, once the first survivor
revokes); every survivor then runs the ULFM recovery sequence —
``revoke → failure_ack → shrink → agree`` — reassembles the vector from
the newest *committed* checkpoint wave, repartitions it over the
shrunken communicator, and resumes.  The final result is byte-identical
to the failure-free run (verified against :func:`reference_relax`),
because relaxation is deterministic and recovery replays from a
consistent wave.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.mpi.constants import PROC_NULL
from repro.mpi.exceptions import CommRevoked, MPIError, RankFailed

__all__ = ["initial_vector", "reference_relax", "survivable_relax"]

#: simulated µs per relaxed element (2 adds + 1 divide, with indexing)
FLOP_TIME = 0.1
FLOPS_PER_CELL = 4

TAG_LEFT = 31   # boundary element travelling toward rank 0
TAG_RIGHT = 32  # boundary element travelling away from rank 0


def initial_vector(n: int, hot: float = 100.0) -> np.ndarray:
    """A length-*n* vector, zero inside, *hot* at both fixed ends."""
    v = np.zeros(n)
    v[0] = hot
    v[-1] = hot
    return v


def reference_relax(n: int, iters: int, hot: float = 100.0) -> np.ndarray:
    """Serial three-point relaxation (end elements held fixed)."""
    v = initial_vector(n, hot)
    for _ in range(iters):
        nxt = v.copy()
        nxt[1:-1] = (v[:-2] + v[1:-1] + v[2:]) / 3.0
        v = nxt
    return v


def _bounds(n: int, size: int, rank: int) -> Tuple[int, int]:
    """Global [lo, hi) of *rank*'s block under an even partition."""
    split = np.array_split(np.arange(n), size)[rank]
    return int(split[0]), int(split[-1]) + 1


def _assemble(wave: Dict[int, Tuple[int, np.ndarray]], n: int) -> np.ndarray:
    """Rebuild the global vector from a checkpoint wave's blocks."""
    vec = np.empty(n)
    covered = 0
    for lo, block in wave.values():
        vec[lo:lo + len(block)] = block
        covered += len(block)
    if covered != n:
        raise ConfigurationError(
            f"checkpoint wave covers {covered} of {n} elements"
        )
    return vec


def survivable_relax(comm, n: int = 64, iters: int = 12,
                     checkpoint_every: int = 4, hot: float = 100.0):
    """Generator: fault-tolerant distributed relaxation on *comm*.

    Requires ``World(..., ft=True)``.  Returns ``(vec, info)`` at the
    lowest surviving rank and ``(None, info)`` elsewhere, where ``info``
    records the number of recoveries and the final communicator size.
    """
    ft = getattr(comm.world, "ft", None)
    if ft is None:
        raise MPIError("survivable_relax requires World(..., ft=True)")
    if checkpoint_every < 1:
        raise ConfigurationError("checkpoint_every must be >= 1")
    if n < comm.size:
        raise ConfigurationError(f"{n} elements under {comm.size} ranks")
    store = ft.checkpoints
    recoveries = 0

    # a restarted world resumes from the newest committed wave
    step = store.latest_committed()
    if step is None:
        vec, it = initial_vector(n, hot), 0
    else:
        vec, it = _assemble(store.load(step), n), step

    lo, hi = _bounds(n, comm.size, comm.rank)
    block = vec[lo:hi].copy()
    host = comm.endpoint.host

    while it < iters:
        try:
            left = comm.rank - 1 if comm.rank > 0 else PROC_NULL
            right = comm.rank + 1 if comm.rank < comm.size - 1 else PROC_NULL
            halo = np.zeros(1)
            ext = np.empty(len(block) + 2)
            ext[1:-1] = block
            _, st = yield from comm.sendrecv(
                block[:1].copy(), dest=left, recvbuf=halo, source=right,
                sendtag=TAG_LEFT, recvtag=TAG_LEFT,
            )
            ext[-1] = halo[0] if st.count_bytes else 0.0
            _, st = yield from comm.sendrecv(
                block[-1:].copy(), dest=right, recvbuf=halo, source=left,
                sendtag=TAG_RIGHT, recvtag=TAG_RIGHT,
            )
            ext[0] = halo[0] if st.count_bytes else 0.0
            nxt = (ext[:-2] + ext[1:-1] + ext[2:]) / 3.0
            if lo == 0:
                nxt[0] = block[0]       # global ends are held fixed
            if hi == n:
                nxt[-1] = block[-1]
            block = nxt
            yield from host.compute(len(block) * FLOPS_PER_CELL * FLOP_TIME)
            it += 1
            if it % checkpoint_every == 0 and it < iters:
                store.save(it, comm.endpoint.world_rank, (lo, block.copy()))
                yield from comm.barrier()
                store.commit(it)
        except (RankFailed, CommRevoked):
            # ULFM recovery: get every survivor onto the same new
            # communicator, then roll back to the committed wave
            comm.revoke()
            comm.failure_ack()
            comm = yield from comm.shrink()
            yield from comm.agree(True)
            recoveries += 1
            step = store.latest_committed()
            if step is None:
                vec, it = initial_vector(n, hot), 0
            else:
                vec, it = _assemble(store.load(step), n), step
            lo, hi = _bounds(n, comm.size, comm.rank)
            block = vec[lo:hi].copy()

    gathered = yield from comm.gather((lo, block.copy()), root=0)
    info = {"recoveries": recoveries, "size": comm.size, "iters": it}
    if comm.rank != 0:
        return None, info
    return _assemble(dict(enumerate(gathered)), n), info
