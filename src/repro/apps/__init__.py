"""The paper's applications (Section 6).

* :mod:`repro.apps.linsolve` — linear equation solver: an initial
  distribution phase by the initiator, N phases of broadcast +
  elimination by all processes, and a final gathering phase (Figure 7);
* :mod:`repro.apps.matmul` — matrix multiplication (mentioned alongside
  the solver, "performance results are similar");
* :mod:`repro.apps.nbody` — particle pairwise interactions in a ring,
  using nonblocking sends + blocking receives + wait (Figures 8 and 9).

Extensions past the paper:

* :mod:`repro.apps.jacobi` — 2D halo-exchange heat diffusion;
* :mod:`repro.apps.survivable` — fault-tolerant ring relaxation with
  checkpoint-restart over the ULFM recovery path (:mod:`repro.mpi.ft`).

Each application both *computes real numbers* (verified against NumPy
in the tests) and *charges simulated CPU time* for its floating-point
work, so communication/computation overlap behaves like the paper's
runs.
"""

from repro.apps.jacobi import jacobi_heat, initial_grid, reference_jacobi
from repro.apps.linsolve import linsolve, generate_system
from repro.apps.matmul import matmul
from repro.apps.nbody import nbody_ring, reference_forces, generate_particles
from repro.apps.survivable import initial_vector, reference_relax, survivable_relax

__all__ = [
    "jacobi_heat",
    "initial_grid",
    "reference_jacobi",
    "linsolve",
    "generate_system",
    "matmul",
    "nbody_ring",
    "reference_forces",
    "generate_particles",
    "initial_vector",
    "reference_relax",
    "survivable_relax",
]
