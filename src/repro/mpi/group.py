"""Process groups (MPI_Group): ordered sets of world ranks."""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.mpi.constants import UNDEFINED
from repro.mpi.exceptions import CommunicatorError

__all__ = ["Group"]


class Group:
    """An immutable ordered set of distinct world ranks.

    Rank *i* of the group is the process with world rank
    ``group.world_ranks[i]``.
    """

    __slots__ = ("world_ranks", "_index")

    def __init__(self, world_ranks: Sequence[int]):
        ranks = tuple(int(r) for r in world_ranks)
        if len(set(ranks)) != len(ranks):
            raise CommunicatorError(f"duplicate ranks in group: {ranks}")
        if any(r < 0 for r in ranks):
            raise CommunicatorError(f"negative world rank in group: {ranks}")
        self.world_ranks: Tuple[int, ...] = ranks
        self._index = {wr: i for i, wr in enumerate(ranks)}

    @property
    def size(self) -> int:
        return len(self.world_ranks)

    def rank_of(self, world_rank: int) -> int:
        """Group rank of a world rank (UNDEFINED if not a member)."""
        return self._index.get(world_rank, UNDEFINED)

    def world_rank(self, group_rank: int) -> int:
        """World rank of a group rank."""
        if not (0 <= group_rank < self.size):
            raise CommunicatorError(f"group rank {group_rank} out of range [0, {self.size})")
        return self.world_ranks[group_rank]

    def contains(self, world_rank: int) -> bool:
        return world_rank in self._index

    # -- set algebra (MPI_Group_union / intersection / difference) ----------
    def union(self, other: "Group") -> "Group":
        """Members of self, then members of other not in self (MPI order)."""
        extra = [r for r in other.world_ranks if r not in self._index]
        return Group(self.world_ranks + tuple(extra))

    def intersection(self, other: "Group") -> "Group":
        return Group([r for r in self.world_ranks if other.contains(r)])

    def difference(self, other: "Group") -> "Group":
        return Group([r for r in self.world_ranks if not other.contains(r)])

    # -- subsetting (MPI_Group_incl / excl / range_incl) ---------------------
    def include(self, group_ranks: Iterable[int]) -> "Group":
        return Group([self.world_rank(r) for r in group_ranks])

    def exclude(self, group_ranks: Iterable[int]) -> "Group":
        excl = set(group_ranks)
        for r in excl:
            if not (0 <= r < self.size):
                raise CommunicatorError(f"exclude rank {r} out of range")
        return Group([wr for i, wr in enumerate(self.world_ranks) if i not in excl])

    def range_include(self, ranges: Iterable[Tuple[int, int, int]]) -> "Group":
        """MPI_Group_range_incl: each triple is (first, last, stride)."""
        out: List[int] = []
        for first, last, stride in ranges:
            if stride == 0:
                raise CommunicatorError("zero stride in range_include")
            stop = last + (1 if stride > 0 else -1)
            out.extend(self.world_rank(i) for i in range(first, stop, stride))
        return Group(out)

    # -- comparison -----------------------------------------------------------
    def __eq__(self, other) -> bool:
        return isinstance(other, Group) and self.world_ranks == other.world_ranks

    def __hash__(self) -> int:
        return hash(self.world_ranks)

    def similar(self, other: "Group") -> bool:
        """Same members, possibly different order (MPI_SIMILAR)."""
        return set(self.world_ranks) == set(other.world_ranks)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Group {self.world_ranks}>"
