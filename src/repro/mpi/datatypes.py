"""MPI datatypes: basic types and derived (contiguous/vector/indexed).

A datatype describes which elements of a buffer a message covers.  Our
representation reduces every datatype to a *flat element-offset map*
over its underlying basic type:

* ``_elem_offsets`` — the basic-element offsets of one item;
* ``extent_elems`` — the stride (in basic elements) between consecutive
  items of the type.

``pack`` gathers those elements into wire bytes; ``unpack`` scatters
wire bytes back into a buffer.  Buffers are NumPy arrays (for numeric
types) or bytes-like objects (for BYTE/CHAR).  MPI_Type_struct is
covered by NumPy *structured dtypes*: ``from_numpy_dtype`` on a record
dtype yields a BasicType whose itemsize is the whole record, and the
derived constructors compose over it (e.g. a Vector of every other
particle record).

Noncontiguous types cost a real gather/scatter on the wire path — the
devices charge a per-byte copy for them, contiguous ones go straight
from the user buffer (the distinction the paper's low-latency path
exploits).
"""

from __future__ import annotations

from typing import Sequence, Union

import numpy as np

from repro.mpi.exceptions import DatatypeError

__all__ = [
    "Datatype",
    "BasicType",
    "Contiguous",
    "Vector",
    "Indexed",
    "BYTE",
    "CHAR",
    "INT",
    "LONG",
    "FLOAT",
    "DOUBLE",
    "infer_datatype",
    "from_numpy_dtype",
]

BufferLike = Union[np.ndarray, bytes, bytearray, memoryview]


class Datatype:
    """Base class.  Subclasses set ``basic``, ``_elem_offsets``,
    ``extent_elems`` and ``name``."""

    basic: "BasicType"
    _elem_offsets: np.ndarray
    extent_elems: int
    name: str

    # -- derived quantities ------------------------------------------------
    # Datatypes are immutable after construction, so the derived
    # quantities and offset maps are cached per instance (offsets() sits
    # on the per-message pack/unpack path).
    @property
    def size(self) -> int:
        """Bytes of message data per item of this type."""
        d = self.__dict__
        sz = d.get("_size")
        if sz is None:
            sz = d["_size"] = len(self._elem_offsets) * self.basic.itemsize
        return sz

    @property
    def extent(self) -> int:
        """Bytes of buffer spanned by one item (stride between items)."""
        return self.extent_elems * self.basic.itemsize

    @property
    def contiguous(self) -> bool:
        """True if items pack with no gather (straight memory copy)."""
        d = self.__dict__
        c = d.get("_contig")
        if c is None:
            n = len(self._elem_offsets)
            c = d["_contig"] = bool(
                np.array_equal(self._elem_offsets, np.arange(n))
                and self.extent_elems == n
            )
        return c

    def offsets(self, count: int) -> np.ndarray:
        """Flat basic-element offsets covered by *count* items.

        The returned array is cached (and marked read-only): do not
        mutate it.
        """
        cache = self.__dict__.setdefault("_offs_cache", {})
        offs = cache.get(count)
        if offs is not None:
            return offs
        if count < 0:
            raise DatatypeError(f"negative count {count}")
        if count == 0:
            offs = np.empty(0, dtype=np.intp)
        else:
            base = np.arange(count, dtype=np.intp) * self.extent_elems
            offs = (base[:, None] + self._elem_offsets[None, :]).ravel()
        offs.flags.writeable = False
        cache[count] = offs
        return offs

    # -- buffer access -------------------------------------------------------
    def _as_flat_array(self, buf: BufferLike, writable: bool) -> np.ndarray:
        if isinstance(buf, np.ndarray):
            if buf.dtype != self.basic.np_dtype:
                raise DatatypeError(
                    f"buffer dtype {buf.dtype} does not match datatype {self.name} "
                    f"({self.basic.np_dtype})"
                )
            if writable and not buf.flags.writeable:
                raise DatatypeError("receive buffer is not writable")
            return buf.reshape(-1)
        if isinstance(buf, (bytes, bytearray, memoryview)):
            if self.basic.itemsize != 1:
                raise DatatypeError(
                    f"bytes-like buffer requires a 1-byte datatype, not {self.name}"
                )
            if writable:
                if isinstance(buf, bytes):
                    raise DatatypeError("receive buffer is immutable bytes")
                return np.frombuffer(buf, dtype=np.uint8)
            return np.frombuffer(bytes(buf), dtype=np.uint8)
        raise DatatypeError(f"unsupported buffer type {type(buf).__name__}")

    def pack(self, buf: BufferLike, count: int) -> bytes:
        """Gather *count* items from *buf* into wire bytes."""
        if count > 0 and self.contiguous and type(buf) is np.ndarray:
            # contiguous fast path: straight slice, no index gather
            if buf.dtype == self.basic.np_dtype:
                n = count * self.extent_elems
                flat = buf.reshape(-1)
                if n > flat.size:
                    raise DatatypeError(
                        f"pack of {count} x {self.name} needs {n} elements, "
                        f"buffer has {flat.size}"
                    )
                return flat[:n].tobytes()
        offs = self.offsets(count)
        flat = self._as_flat_array(buf, writable=False)
        if len(offs) and (offs.max() >= flat.size):
            raise DatatypeError(
                f"pack of {count} x {self.name} needs {offs.max() + 1} elements, "
                f"buffer has {flat.size}"
            )
        return flat[offs].tobytes()

    def unpack(self, data: bytes, buf: BufferLike, count: int) -> None:
        """Scatter wire bytes into *buf* as *count* items."""
        if count > 0 and self.contiguous and type(buf) is np.ndarray:
            # contiguous fast path: straight slice, no index scatter
            if buf.dtype == self.basic.np_dtype and buf.flags.writeable:
                n = count * self.extent_elems
                expected = n * self.basic.itemsize
                if len(data) != expected:
                    raise DatatypeError(
                        f"unpack of {count} x {self.name} expects {expected} bytes, "
                        f"got {len(data)}"
                    )
                flat = buf.reshape(-1)
                if n > flat.size:
                    raise DatatypeError(
                        f"unpack of {count} x {self.name} needs {n} elements, "
                        f"buffer has {flat.size}"
                    )
                flat[:n] = np.frombuffer(data, dtype=self.basic.np_dtype)
                return
        offs = self.offsets(count)
        expected = len(offs) * self.basic.itemsize
        if len(data) != expected:
            raise DatatypeError(
                f"unpack of {count} x {self.name} expects {expected} bytes, got {len(data)}"
            )
        flat = self._as_flat_array(buf, writable=True)
        if len(offs) and offs.max() >= flat.size:
            raise DatatypeError(
                f"unpack of {count} x {self.name} needs {offs.max() + 1} elements, "
                f"buffer has {flat.size}"
            )
        flat[offs] = np.frombuffer(data, dtype=self.basic.np_dtype)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Datatype {self.name} size={self.size} extent={self.extent}>"


class BasicType(Datatype):
    """A primitive type backed by a NumPy scalar dtype."""

    def __init__(self, name: str, np_dtype):
        self.name = name
        self.np_dtype = np.dtype(np_dtype)
        self.itemsize = self.np_dtype.itemsize
        self.basic = self
        self._elem_offsets = np.arange(1, dtype=np.intp)
        self.extent_elems = 1


class Contiguous(Datatype):
    """*count* consecutive items of *base* (MPI_Type_contiguous)."""

    def __init__(self, count: int, base: Datatype):
        if count < 1:
            raise DatatypeError(f"Contiguous count must be >= 1, got {count}")
        self.name = f"contig({count},{base.name})"
        self.basic = base.basic
        one = base.offsets(count)
        self._elem_offsets = one
        self.extent_elems = count * base.extent_elems


class Vector(Datatype):
    """*count* blocks of *blocklength* items, stride *stride* items apart
    (MPI_Type_vector; stride in units of the base extent)."""

    def __init__(self, count: int, blocklength: int, stride: int, base: Datatype):
        if count < 1 or blocklength < 1:
            raise DatatypeError("Vector count and blocklength must be >= 1")
        if stride < blocklength:
            raise DatatypeError(
                f"Vector stride {stride} smaller than blocklength {blocklength} would overlap"
            )
        self.name = f"vector({count},{blocklength},{stride},{base.name})"
        self.basic = base.basic
        block = base.offsets(blocklength)
        starts = np.arange(count, dtype=np.intp) * stride * base.extent_elems
        self._elem_offsets = (starts[:, None] + block[None, :]).ravel()
        self.extent_elems = ((count - 1) * stride + blocklength) * base.extent_elems


class Indexed(Datatype):
    """Blocks of given lengths at given displacements (MPI_Type_indexed;
    displacements in units of the base extent)."""

    def __init__(self, blocklengths: Sequence[int], displacements: Sequence[int], base: Datatype):
        if len(blocklengths) != len(displacements):
            raise DatatypeError("blocklengths and displacements must have equal length")
        if len(blocklengths) == 0:
            raise DatatypeError("Indexed needs at least one block")
        if any(b < 1 for b in blocklengths):
            raise DatatypeError("blocklengths must be >= 1")
        if any(d < 0 for d in displacements):
            raise DatatypeError("displacements must be >= 0")
        self.name = f"indexed({list(blocklengths)},{list(displacements)},{base.name})"
        self.basic = base.basic
        parts = []
        for blen, disp in zip(blocklengths, displacements):
            parts.append(disp * base.extent_elems + base.offsets(blen))
        offs = np.concatenate(parts)
        if len(np.unique(offs)) != len(offs):
            raise DatatypeError("Indexed blocks overlap")
        self._elem_offsets = offs
        self.extent_elems = int(offs.max()) + base.extent_elems


# --- the predefined basic types ---------------------------------------------
BYTE = BasicType("MPI_BYTE", np.uint8)
CHAR = BasicType("MPI_CHAR", np.int8)
INT = BasicType("MPI_INT", np.int32)
LONG = BasicType("MPI_LONG", np.int64)
FLOAT = BasicType("MPI_FLOAT", np.float32)
DOUBLE = BasicType("MPI_DOUBLE", np.float64)

_BY_DTYPE = {
    np.dtype(np.uint8): BYTE,
    np.dtype(np.int8): CHAR,
    np.dtype(np.int32): INT,
    np.dtype(np.int64): LONG,
    np.dtype(np.float32): FLOAT,
    np.dtype(np.float64): DOUBLE,
}


def from_numpy_dtype(dtype) -> BasicType:
    """The BasicType matching a NumPy dtype (creating one if unknown)."""
    dtype = np.dtype(dtype)
    if dtype not in _BY_DTYPE:
        _BY_DTYPE[dtype] = BasicType(f"MPI_{dtype.name.upper()}", dtype)
    return _BY_DTYPE[dtype]


def infer_datatype(buf: BufferLike) -> Datatype:
    """Infer the datatype of a send/receive buffer.

    bytes-like objects are MPI_BYTE; NumPy arrays map by dtype.
    """
    if isinstance(buf, (bytes, bytearray, memoryview)):
        return BYTE
    if isinstance(buf, np.ndarray):
        return from_numpy_dtype(buf.dtype)
    raise DatatypeError(f"cannot infer a datatype for {type(buf).__name__}")
