"""The MPI library (the paper's primary contribution).

Point-to-point tagged message passing with MPI semantics — four send
modes (standard, buffered, synchronous, ready), blocking and
nonblocking variants, ``MPI_ANY_SOURCE``/``MPI_ANY_TAG`` matching,
probe, derived datatypes, communicators — plus broadcast (hardware
broadcast on the Meiko) and a set of extension collectives, running
over interchangeable *devices*:

============  ==========================================================
device        transport
============  ==========================================================
lowlatency    the paper's implementation: SPARC-side matching, eager
              transfer overlapped with matching below 180 bytes,
              receiver-initiated DMA rendezvous above (Meiko CS/2)
mpich         the comparison implementation: layered over the tport
              widget, matching on the Elan co-processor (Meiko CS/2)
tcp           envelope + piggybacked data over TCP with credit-based
              flow control (ATM or Ethernet cluster)
udp           the same protocol over a reliable-UDP layer
============  ==========================================================

Application code is written as generator coroutines; every blocking MPI
call is used with ``yield from``::

    def main(comm):
        if comm.rank == 0:
            yield from comm.send(b"ping", dest=1, tag=0)
        else:
            data, status = yield from comm.recv(source=ANY_SOURCE, tag=0)

    World(nprocs=2, platform="meiko", device="lowlatency").run(main)
"""

from repro.mpi.constants import (
    ANY_SOURCE,
    ANY_TAG,
    PROC_NULL,
    UNDEFINED,
    MODE_STANDARD,
    MODE_BUFFERED,
    MODE_SYNCHRONOUS,
    MODE_READY,
)
from repro.mpi.exceptions import (
    MPIError,
    TruncationError,
    BufferError_,
    ReadyModeError,
    ResourceExhausted,
)
from repro.mpi.datatypes import (
    Datatype,
    BYTE,
    CHAR,
    INT,
    LONG,
    FLOAT,
    DOUBLE,
    Contiguous,
    Vector,
    Indexed,
    infer_datatype,
)
from repro.mpi.status import Status
from repro.mpi.request import Request
from repro.mpi.persistent import PersistentRequest
from repro.mpi.group import Group
from repro.mpi.communicator import Communicator
from repro.mpi.topology import CartComm, create_cart, dims_create
from repro.mpi.world import World

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "PROC_NULL",
    "UNDEFINED",
    "MODE_STANDARD",
    "MODE_BUFFERED",
    "MODE_SYNCHRONOUS",
    "MODE_READY",
    "MPIError",
    "TruncationError",
    "BufferError_",
    "ReadyModeError",
    "ResourceExhausted",
    "Datatype",
    "BYTE",
    "CHAR",
    "INT",
    "LONG",
    "FLOAT",
    "DOUBLE",
    "Contiguous",
    "Vector",
    "Indexed",
    "infer_datatype",
    "Status",
    "Request",
    "PersistentRequest",
    "Group",
    "Communicator",
    "CartComm",
    "create_cart",
    "dims_create",
    "World",
]
