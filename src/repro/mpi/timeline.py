"""Execution timelines: who was inside MPI when.

A :class:`Timeline` collects (rank, call, start, end) spans from
profiled communicators and renders them as an ASCII Gantt chart —
rank per row, ``#`` where the rank sat inside an MPI call, ``.`` where
it computed.  The classic way to *see* load imbalance and
communication phases::

    tl = Timeline()

    def main(comm):
        pcomm = profile(comm, timeline=tl)
        ...

    print(tl.render())

    rank 0 |####....####....####|
    rank 1 |..####....####....##|

A Timeline is a view over an :class:`~repro.obs.bus.EventBus`:
:meth:`record` emits an ``mpi``-layer ``call.span`` event and
:attr:`spans` derives the Span list back from the bus.  Pass ``bus=``
to share a world's event bus so the spans land in the same exported
trace as everything else.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.obs.bus import EventBus

__all__ = ["Span", "Timeline"]

#: the bus event kind Timeline spans are stored as
SPAN_KIND = "call.span"


@dataclass(frozen=True)
class Span:
    """One MPI call's occupancy on one rank."""

    rank: int
    call: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


class Timeline:
    """Collects spans and renders a per-rank occupancy chart."""

    def __init__(self, bus: Optional[EventBus] = None):
        self.bus = bus if bus is not None else EventBus()

    @property
    def spans(self) -> List[Span]:
        """The ``call.span`` events of the bus, as classic Spans."""
        return [
            Span(e.rank, e.detail["call"], e.detail["start"], e.t)
            for e in self.bus.events
            if e.layer == "mpi" and e.kind == SPAN_KIND
        ]

    def record(self, rank: int, call: str, start: float, end: float) -> None:
        if end < start:
            raise ValueError(f"span ends before it starts: {start}..{end}")
        self.bus.emit(
            end, "mpi", SPAN_KIND, rank=rank, detail={"call": call, "start": start}
        )

    # -- analysis ------------------------------------------------------------
    def ranks(self) -> List[int]:
        return sorted({s.rank for s in self.spans})

    def mpi_time(self, rank: int) -> float:
        """Total µs rank spent inside MPI (span overlap not merged —
        spans from one rank's nested calls do not occur: calls are
        sequential within a rank)."""
        return sum(s.duration for s in self.spans if s.rank == rank)

    def busiest_call(self, rank: int) -> Optional[str]:
        totals: Dict[str, float] = {}
        for s in self.spans:
            if s.rank == rank:
                totals[s.call] = totals.get(s.call, 0.0) + s.duration
        if not totals:
            return None
        return max(totals, key=totals.get)

    # -- rendering -------------------------------------------------------------
    def render(self, width: int = 72, t0: Optional[float] = None,
               t1: Optional[float] = None) -> str:
        """ASCII Gantt: ``#`` inside MPI, ``.`` outside."""
        spans = self.spans
        if not spans:
            return "(no spans recorded)"
        lo = min(s.start for s in spans) if t0 is None else t0
        hi = max(s.end for s in spans) if t1 is None else t1
        span = (hi - lo) or 1.0
        lines = []
        for rank in self.ranks():
            row = ["."] * width
            for s in spans:
                if s.rank != rank:
                    continue
                a = int((max(s.start, lo) - lo) / span * (width - 1))
                b = int((min(s.end, hi) - lo) / span * (width - 1))
                for i in range(max(0, a), min(width, b + 1)):
                    row[i] = "#"
            pct = 100.0 * self.mpi_time(rank) / span
            lines.append(f"rank {rank:>2} |{''.join(row)}| {pct:5.1f}% in MPI")
        lines.append(f"        {lo:.1f} us".ljust(width // 2) + f"{hi:.1f} us".rjust(width // 2))
        return "\n".join(lines)
