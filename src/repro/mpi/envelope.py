"""Message envelopes: the matching key that travels ahead of the data.

The paper's protocol sends a small envelope with (or before) every
message; the receiver matches envelopes against posted receives.  The
wire representation is 25 bytes in the TCP device (1 type byte + 4
credit bytes + 20 envelope/DMA-request bytes, Table 1) and rides the
first words of the remote-transaction slot on the Meiko.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.mpi.constants import MODE_STANDARD

__all__ = ["Envelope", "ENVELOPE_WIRE_BYTES"]

#: envelope bytes on the wire (paper, Table 1: 20 envelope/DMA-request
#: bytes; we account the 1 type byte and 4 credit bytes separately in
#: the TCP device)
ENVELOPE_WIRE_BYTES = 20


@dataclass
class Envelope:
    """Matching key + protocol metadata for one message."""

    #: sender's rank within the communicator
    src: int
    #: user tag
    tag: int
    #: communicator context id
    context: int
    #: payload length in bytes
    nbytes: int
    #: send mode (standard/buffered/synchronous/ready)
    mode: str = MODE_STANDARD
    #: per-(sender, context) sequence number — makes non-overtaking testable
    seq: int = 0
    #: protocol cookie for rendezvous (identifies the sender-side send)
    cookie: Optional[int] = None
    #: device-specific extra (e.g. sender world rank)
    extra: Any = field(default=None, repr=False)

    def matches(self, source: int, tag: int, context: int, any_source: int, any_tag: int) -> bool:
        """Does this envelope satisfy a receive for (source, tag, context)?

        A wildcard tag never matches the library's internal (collective)
        tags — user receives must not steal collective traffic.
        """
        from repro.mpi.constants import INTERNAL_TAG_BASE

        if context != self.context:
            return False
        if source != any_source and source != self.src:
            return False
        if tag != any_tag and tag != self.tag:
            return False
        if tag == any_tag and self.tag >= INTERNAL_TAG_BASE:
            return False
        return True
