"""The receive-side matching engine: posted and unexpected queues.

MPI matching semantics, as exercised by the paper:

* a receive names (source | ANY_SOURCE, tag | ANY_TAG, communicator);
* messages of one (sender, communicator) pair are matched in send order
  (non-overtaking);
* matching scans the queues in FIFO order, which — combined with
  in-order envelope delivery per sender — yields the required
  semantics;
* unexpected-queue capacity is finite; exceeding it raises
  :class:`ResourceExhausted` (the Burns & Daoud overflow report)
  rather than silently dropping envelopes.

The engine is transport-agnostic: it is shared by the low-latency Meiko
device and the TCP/UDP devices (all of which match on the main
processor).  The MPICH device instead delegates matching to the
Elan-side tport widget.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Optional, Tuple

from repro.mpi.constants import ANY_SOURCE, ANY_TAG
from repro.mpi.envelope import Envelope
from repro.mpi.exceptions import ResourceExhausted
from repro.mpi.request import Request

__all__ = ["Arrival", "MatchQueues"]


@dataclass
class Arrival:
    """An envelope (plus any eager payload) awaiting a matching receive."""

    envelope: Envelope
    #: eager payload bytes; None for a rendezvous envelope (data follows
    #: only after the match, via the device's claim hook)
    data: Optional[bytes] = None
    #: device hook used to fetch rendezvous data once matched
    claim: Any = None


class MatchQueues:
    """Posted-receive and unexpected-message queues for one endpoint."""

    def __init__(self, max_unexpected: int = 4096):
        self.posted: Deque[Request] = deque()
        self.unexpected: Deque[Arrival] = deque()
        self.max_unexpected = max_unexpected
        #: totals for diagnostics/tests
        self.total_arrivals = 0
        self.total_posts = 0

    # -- matching rules -----------------------------------------------------
    @staticmethod
    def _request_accepts(req: Request, env: Envelope) -> bool:
        return env.matches(
            source=req.peer,
            tag=req.tag,
            context=req.comm.context_id,
            any_source=ANY_SOURCE,
            any_tag=ANY_TAG,
        )

    # -- operations ---------------------------------------------------------
    def post(self, req: Request) -> Tuple[Optional[Arrival], int]:
        """Post a receive; returns (matched arrival or None, comparisons).

        On a match the arrival is consumed; otherwise the request joins
        the posted queue.
        """
        self.total_posts += 1
        comparisons = 0
        for arrival in self.unexpected:
            comparisons += 1
            if self._request_accepts(req, arrival.envelope):
                self.unexpected.remove(arrival)
                return arrival, comparisons
        self.posted.append(req)
        return None, comparisons

    def arrive(self, arrival: Arrival) -> Tuple[Optional[Request], int]:
        """Deliver an envelope; returns (matched request or None, comparisons).

        On a match the posted request is consumed; otherwise the arrival
        joins the unexpected queue (subject to the resource limit).
        """
        self.total_arrivals += 1
        comparisons = 0
        for req in self.posted:
            comparisons += 1
            if self._request_accepts(req, arrival.envelope):
                self.posted.remove(req)
                return req, comparisons
        if len(self.unexpected) >= self.max_unexpected:
            raise ResourceExhausted(
                f"unexpected-message queue overflow (limit {self.max_unexpected}); "
                f"offending envelope: {arrival.envelope}"
            )
        self.unexpected.append(arrival)
        return None, comparisons

    def probe(self, source: int, tag: int, context: int) -> Optional[Arrival]:
        """First unexpected arrival matching (source, tag, context), not consumed."""
        for arrival in self.unexpected:
            if arrival.envelope.matches(source, tag, context, ANY_SOURCE, ANY_TAG):
                return arrival
        return None

    def cancel_post(self, req: Request) -> bool:
        """Remove a posted receive (True if it was still queued)."""
        try:
            self.posted.remove(req)
            return True
        except ValueError:
            return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<MatchQueues posted={len(self.posted)} unexpected={len(self.unexpected)}>"
