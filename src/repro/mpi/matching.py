"""The receive-side matching engine: posted and unexpected queues.

MPI matching semantics, as exercised by the paper:

* a receive names (source | ANY_SOURCE, tag | ANY_TAG, communicator);
* messages of one (sender, communicator) pair are matched in send order
  (non-overtaking);
* matching behaves as a FIFO scan of the queues, which — combined with
  in-order envelope delivery per sender — yields the required
  semantics;
* unexpected-queue capacity is finite; exceeding it raises
  :class:`ResourceExhausted` (the Burns & Daoud overflow report)
  rather than silently dropping envelopes.

The engine is transport-agnostic: it is shared by the low-latency Meiko
device and the TCP/UDP devices (all of which match on the main
processor).  The MPICH device instead delegates matching to the
Elan-side tport widget.

Implementation: both queues are hash-bucketed by ``(context, source,
tag)`` so the common concrete-key cases match in O(1) instead of
scanning; wildcard receives fall back to a FIFO scan of the global
insertion-order list.  Entries are tombstoned (``alive`` flag) on
consumption and compacted lazily.  The bucketing is a simulator-side
speedup only — the ``comparisons`` count returned to callers is still
the exact number of queue entries the paper's FIFO-scan implementation
would have inspected, because that count feeds the simulated matching
cost (``match_cost + match_per_comparison * ...``) and must not drift.
A miss costs the live queue length (O(1) from a counter); a hit counts
live entries up to the match (a short walk — FIFO matching finds its
match near the head).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, List, Optional, Tuple

from repro.mpi.constants import ANY_SOURCE, ANY_TAG, INTERNAL_TAG_BASE
from repro.mpi.envelope import Envelope
from repro.mpi.exceptions import ResourceExhausted
from repro.mpi.request import Request

__all__ = ["Arrival", "MatchQueues"]


@dataclass
class Arrival:
    """An envelope (plus any eager payload) awaiting a matching receive."""

    envelope: Envelope
    #: eager payload bytes; None for a rendezvous envelope (data follows
    #: only after the match, via the device's claim hook)
    data: Optional[bytes] = None
    #: device hook used to fetch rendezvous data once matched
    claim: Any = None


class _Entry:
    """One queue slot: the item, its FIFO stamp, and a tombstone flag."""

    __slots__ = ("item", "stamp", "alive")

    def __init__(self, item, stamp: int):
        self.item = item
        self.stamp = stamp
        self.alive = True


#: compact a FIFO once it carries this many tombstones (and they
#: outnumber the live entries)
_COMPACT_DEAD = 64


class MatchQueues:
    """Posted-receive and unexpected-message queues for one endpoint."""

    def __init__(self, max_unexpected: int = 4096):
        self.max_unexpected = max_unexpected
        #: totals for diagnostics/tests
        self.total_arrivals = 0
        self.total_posts = 0
        self._stamp = 0
        # posted receives: global FIFO + (context, source, tag) buckets;
        # wildcards are part of the key (an ANY_* receive lands in an
        # ANY bucket, checked alongside the concrete one on arrival)
        self._posted_fifo: Deque[_Entry] = deque()
        self._posted_buckets: Dict[Tuple[int, int, int], Deque[_Entry]] = {}
        self._posted_live = 0
        self._posted_by_req: Dict[int, _Entry] = {}
        # unexpected arrivals: global FIFO + concrete (context, src, tag)
        # buckets (envelope keys are always concrete)
        self._unexp_fifo: Deque[_Entry] = deque()
        self._unexp_buckets: Dict[Tuple[int, int, int], Deque[_Entry]] = {}
        self._unexp_live = 0

    # -- live views (tests and diagnostics iterate these) -------------------
    @property
    def posted(self) -> List[Request]:
        """Live posted receives in FIFO order."""
        return [e.item for e in self._posted_fifo if e.alive]

    @property
    def unexpected(self) -> List[Arrival]:
        """Live unexpected arrivals in FIFO order."""
        return [e.item for e in self._unexp_fifo if e.alive]

    # -- matching rules -----------------------------------------------------
    @staticmethod
    def _request_accepts(req: Request, env: Envelope) -> bool:
        return env.matches(
            source=req.peer,
            tag=req.tag,
            context=req.comm.context_id,
            any_source=ANY_SOURCE,
            any_tag=ANY_TAG,
        )

    # -- internals ----------------------------------------------------------
    @staticmethod
    def _bucket_head(bucket: Optional[Deque[_Entry]]) -> Optional[_Entry]:
        """First live entry of a bucket, pruning dead ones off its head."""
        if bucket is None:
            return None
        while bucket:
            e = bucket[0]
            if e.alive:
                return e
            bucket.popleft()
        return None

    @staticmethod
    def _prune_bucket(
        buckets: Dict[Tuple[int, int, int], Deque[_Entry]],
        key: Tuple[int, int, int],
    ) -> None:
        """Drop dead entries off *key*'s bucket head and delete the
        bucket once empty.

        Collective traffic makes this matter at scale: every collective
        call runs on a fresh tag generation, i.e. a fresh bucket key, so
        without eager deletion a long-running rank accretes one empty
        deque per collective ever performed — O(calls) dict growth for
        O(1) live state.  Called at every match consumption so the
        bucket dicts stay proportional to *live* entries.
        """
        bucket = buckets.get(key)
        if bucket is None:
            return
        while bucket and not bucket[0].alive:
            bucket.popleft()
        if not bucket:
            del buckets[key]

    @staticmethod
    def _scan_count(fifo: Deque[_Entry], entry: _Entry) -> int:
        """Entries a FIFO scan would inspect to find *entry* (inclusive).

        Prunes dead entries off the FIFO head as a side effect.
        """
        while fifo and not fifo[0].alive:
            fifo.popleft()
        n = 0
        for e in fifo:
            if e is entry:
                return n + 1
            if e.alive:
                n += 1
        raise AssertionError("matched entry not in its FIFO")  # pragma: no cover

    @staticmethod
    def _compact(
        fifo: Deque[_Entry],
        buckets: Dict[Tuple[int, int, int], Deque[_Entry]],
        live: int,
    ) -> Deque[_Entry]:
        dead = len(fifo) - live
        if dead <= _COMPACT_DEAD or dead <= live:
            return fifo
        for key in list(buckets):
            kept = deque(e for e in buckets[key] if e.alive)
            if kept:
                buckets[key] = kept
            else:
                del buckets[key]
        return deque(e for e in fifo if e.alive)

    # -- operations ---------------------------------------------------------
    def post(self, req: Request) -> Tuple[Optional[Arrival], int]:
        """Post a receive; returns (matched arrival or None, comparisons).

        On a match the arrival is consumed; otherwise the request joins
        the posted queue.
        """
        self.total_posts += 1
        match: Optional[_Entry] = None
        if self._unexp_live:
            src, tag, ctx = req.peer, req.tag, req.comm.context_id
            if src != ANY_SOURCE and tag != ANY_TAG:
                match = self._bucket_head(self._unexp_buckets.get((ctx, src, tag)))
            else:
                # wildcard receive: FIFO-order scan of the global list
                for e in self._unexp_fifo:
                    if not e.alive:
                        continue
                    env = e.item.envelope
                    if env.context != ctx:
                        continue
                    if src != ANY_SOURCE and env.src != src:
                        continue
                    if tag != ANY_TAG:
                        if env.tag != tag:
                            continue
                    elif env.tag >= INTERNAL_TAG_BASE:
                        continue  # ANY_TAG never steals internal traffic
                    match = e
                    break
        if match is not None:
            comparisons = self._scan_count(self._unexp_fifo, match)
            match.alive = False
            self._unexp_live -= 1
            menv = match.item.envelope
            self._prune_bucket(
                self._unexp_buckets, (menv.context, menv.src, menv.tag)
            )
            self._unexp_fifo = self._compact(
                self._unexp_fifo, self._unexp_buckets, self._unexp_live
            )
            return match.item, comparisons
        comparisons = self._unexp_live  # a scan would have inspected them all
        entry = _Entry(req, self._stamp)
        self._stamp += 1
        self._posted_fifo.append(entry)
        key = (req.comm.context_id, req.peer, req.tag)
        bucket = self._posted_buckets.get(key)
        if bucket is None:
            bucket = self._posted_buckets[key] = deque()
        bucket.append(entry)
        self._posted_by_req[id(req)] = entry
        self._posted_live += 1
        return None, comparisons

    def arrive(self, arrival: Arrival) -> Tuple[Optional[Request], int]:
        """Deliver an envelope; returns (matched request or None, comparisons).

        On a match the posted request is consumed; otherwise the arrival
        joins the unexpected queue (subject to the resource limit).
        """
        self.total_arrivals += 1
        env = arrival.envelope
        ctx, src, tag = env.context, env.src, env.tag
        match: Optional[_Entry] = None
        if self._posted_live:
            # FIFO order over the union of the candidate buckets: the
            # earliest-posted receive that accepts this envelope wins
            buckets = self._posted_buckets
            keys = [(ctx, src, tag), (ctx, ANY_SOURCE, tag)]
            if tag < INTERNAL_TAG_BASE:  # ANY_TAG never matches internal tags
                keys += [(ctx, src, ANY_TAG), (ctx, ANY_SOURCE, ANY_TAG)]
            for key in keys:
                e = self._bucket_head(buckets.get(key))
                if e is not None and (match is None or e.stamp < match.stamp):
                    match = e
        if match is not None:
            comparisons = self._scan_count(self._posted_fifo, match)
            req = match.item
            match.alive = False
            self._posted_live -= 1
            del self._posted_by_req[id(req)]
            self._prune_bucket(
                self._posted_buckets,
                (req.comm.context_id, req.peer, req.tag),
            )
            self._posted_fifo = self._compact(
                self._posted_fifo, self._posted_buckets, self._posted_live
            )
            return req, comparisons
        comparisons = self._posted_live  # a scan would have inspected them all
        if self._unexp_live >= self.max_unexpected:
            raise ResourceExhausted(
                f"unexpected-message queue overflow (limit {self.max_unexpected}); "
                f"offending envelope: {arrival.envelope}"
            )
        entry = _Entry(arrival, self._stamp)
        self._stamp += 1
        self._unexp_fifo.append(entry)
        key = (ctx, src, tag)
        bucket = self._unexp_buckets.get(key)
        if bucket is None:
            bucket = self._unexp_buckets[key] = deque()
        bucket.append(entry)
        self._unexp_live += 1
        return None, comparisons

    def probe(self, source: int, tag: int, context: int) -> Optional[Arrival]:
        """First unexpected arrival matching (source, tag, context), not consumed."""
        if not self._unexp_live:
            return None
        if source != ANY_SOURCE and tag != ANY_TAG:
            e = self._bucket_head(self._unexp_buckets.get((context, source, tag)))
            return e.item if e is not None else None
        for e in self._unexp_fifo:
            if e.alive and e.item.envelope.matches(
                source, tag, context, ANY_SOURCE, ANY_TAG
            ):
                return e.item
        return None

    def cancel_post(self, req: Request) -> bool:
        """Remove a posted receive (True if it was still queued)."""
        entry = self._posted_by_req.pop(id(req), None)
        if entry is None:
            return False
        entry.alive = False
        self._posted_live -= 1
        self._prune_bucket(
            self._posted_buckets, (req.comm.context_id, req.peer, req.tag)
        )
        self._posted_fifo = self._compact(
            self._posted_fifo, self._posted_buckets, self._posted_live
        )
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<MatchQueues posted={self._posted_live} "
            f"unexpected={self._unexp_live}>"
        )
