"""The World: builds a platform and runs one MPI rank per node.

>>> from repro.mpi import World
>>> def main(comm):
...     if comm.rank == 0:
...         yield from comm.send(b"hi", dest=1, tag=0)
...     else:
...         data, st = yield from comm.recv(source=0, tag=0)
...         return bytes(data)
>>> World(nprocs=2, platform="meiko").run(main)[1]
b'hi'
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.errors import ConfigurationError
from repro.mpi.communicator import Communicator
from repro.mpi.group import Group
from repro.platforms import build_platform
from repro.sim import Simulator

__all__ = ["World"]

#: context id of MPI_COMM_WORLD
WORLD_CONTEXT = 0


class World:
    """A complete MPI job on a simulated machine.

    Parameters
    ----------
    nprocs:
        Number of ranks (one per node/workstation).
    platform:
        ``"meiko"``, ``"atm"`` or ``"ethernet"``.
    device:
        MPI device; defaults to the platform's paper configuration
        (``lowlatency`` on the Meiko, ``tcp`` on the clusters).
    seed:
        Seed for all stochastic hardware behaviour (Ethernet backoff).
    machine_params / device_config:
        Optional parameter-dataclass overrides for sweeps.
    host_speeds:
        Cluster platforms only: per-host CPU speed multipliers — the
        paper's testbed mixes 133 MHz Indys with a faster Challenge.
    kernel_params / drop_fn:
        Cluster platforms only: kernel cost-model override and
        frame/PDU loss injection (for fault testing).
    """

    def __init__(
        self,
        nprocs: int,
        platform: str = "meiko",
        device: Optional[str] = None,
        seed: int = 0,
        machine_params: Any = None,
        device_config: Any = None,
        host_speeds: Any = None,
        kernel_params: Any = None,
        drop_fn: Any = None,
    ):
        self.sim = Simulator()
        self.nprocs = nprocs
        self.platform = build_platform(
            platform, device, nprocs, self.sim, seed, machine_params, device_config,
            host_speeds, kernel_params, drop_fn,
        )
        self.endpoints = self.platform.endpoints
        self.machine = self.platform.machine
        self._contexts: Dict[Any, int] = {}
        self._next_context = WORLD_CONTEXT + 1
        world_group = Group(range(nprocs))
        self.comms: List[Communicator] = [
            Communicator(self, world_group, WORLD_CONTEXT, ep) for ep in self.endpoints
        ]

    # ----------------------------------------------------------------- setup
    def allocate_context(self, key: Any) -> int:
        """Deterministic collective context-id allocation.

        Every member of a communicator-creating call derives the same
        *key*, so all of them receive the same fresh id.
        """
        if key not in self._contexts:
            self._contexts[key] = self._next_context
            self._next_context += 1
        return self._contexts[key]

    def comm(self, rank: int) -> Communicator:
        """Rank *rank*'s MPI_COMM_WORLD."""
        return self.comms[rank]

    # ------------------------------------------------------------------- run
    def run(
        self,
        main: Callable,
        *args,
        ranks: Optional[List[int]] = None,
        limit: float = float("inf"),
    ) -> List[Any]:
        """Run ``main(comm, *args)`` on every rank; return their results.

        ``main`` must be a generator function.  Raises the first rank
        failure; raises :class:`ConfigurationError` on deadlock (all
        ranks blocked with no pending events).
        """
        ranks = list(range(self.nprocs)) if ranks is None else ranks
        procs = [
            self.sim.process(main(self.comms[r], *args), name=f"rank{r}") for r in ranks
        ]
        sim = self.sim
        while not all(p.triggered for p in procs):
            if not sim._heap:
                stuck = [p.name for p in procs if not p.triggered]
                raise ConfigurationError(
                    f"deadlock: ranks {stuck} are blocked and no events are pending"
                )
            if sim.peek() > limit:
                raise ConfigurationError(f"time limit {limit} µs exceeded")
            sim.step()
        failures = [p for p in procs if not p.ok]
        for p in failures[1:]:
            p.defuse()
        if failures:
            raise failures[0].value
        return [p.value for p in procs]
