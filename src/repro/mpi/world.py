"""The World: builds a platform and runs one MPI rank per node.

>>> from repro.mpi import World
>>> def main(comm):
...     if comm.rank == 0:
...         yield from comm.send(b"hi", dest=1, tag=0)
...     else:
...         data, st = yield from comm.recv(source=0, tag=0)
...         return bytes(data)
>>> World(nprocs=2, platform="meiko").run(main)[1]
b'hi'
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional

from repro.errors import ConfigurationError, DeadlockError
from repro.mpi.communicator import Communicator
from repro.mpi.group import Group
from repro.platforms import build_platform
from repro.sim import Simulator, StopRun

__all__ = ["World"]

#: context id of MPI_COMM_WORLD
WORLD_CONTEXT = 0

#: deadlock diagnostics snapshot at most this many stuck ranks — a
#: 10k-rank deadlock must not build 10k state dicts (satellite of the
#: O(10k)-rank scaling work); the message reports how many were elided
WATCHDOG_SNAPSHOT_CAP = 16


class _LazyComms:
    """``world.comms`` as a lazily-materialized sequence.

    ``Communicator.__init__`` is pure (no endpoint side effects), but at
    O(10k) ranks eagerly building one per rank dominates World
    construction for jobs that then run on a handful of ranks
    (``ranks=`` subsets, figure sweeps).  Each rank's world communicator
    is built on first access and cached, so idle ranks stay O(1).
    """

    def __init__(self, world, group):
        self._world = world
        self._group = group
        self._cache: Dict[int, Communicator] = {}

    def __len__(self) -> int:
        return self._world.nprocs

    def __getitem__(self, rank: int) -> Communicator:
        comm = self._cache.get(rank)
        if comm is None:
            if not -len(self) <= rank < len(self):
                raise IndexError(rank)
            rank %= len(self)
            comm = self._cache[rank] = Communicator(
                self._world, self._group, WORLD_CONTEXT,
                self._world.endpoints[rank],
            )
        return comm

    def __iter__(self):
        return (self[r] for r in range(len(self)))


class World:
    """A complete MPI job on a simulated machine.

    Parameters
    ----------
    nprocs:
        Number of ranks (one per node/workstation).
    platform:
        ``"meiko"``, ``"atm"`` or ``"ethernet"``.
    device:
        MPI device; defaults to the platform's paper configuration
        (``lowlatency`` on the Meiko, ``tcp`` on the clusters).
    seed:
        Seed for all stochastic hardware behaviour (Ethernet backoff,
        fault injection, retransmission jitter).
    machine_params / device_config:
        Optional parameter-dataclass overrides for sweeps.
    host_speeds:
        Cluster platforms only: per-host CPU speed multipliers — the
        paper's testbed mixes 133 MHz Indys with a faster Challenge.
    kernel_params:
        Cluster platforms only: kernel cost-model override.
    drop_fn:
        Cluster platforms only, **deprecated**: ad-hoc frame/PDU loss
        hook.  Use ``faults`` instead — a :class:`repro.faults.FaultPlan`
        is deterministic, composable, works on every fabric (including
        the Meiko), and keeps its own accounting.
    faults:
        A :class:`repro.faults.FaultPlan`: packet loss / duplication /
        corruption, link-down windows, node crash / pause / slow-down.
        Valid on all platforms.  See ``docs/FAULTS.md``.
    obs:
        A :class:`repro.obs.EventBus` collecting structured events from
        every layer (kernel, transports, devices, MPI calls, faults).
        ``None`` (the default) disables emission entirely.  See
        ``docs/OBSERVABILITY.md``.
    ft:
        Opt-in ULFM-style fault tolerance: ``True`` or an
        :class:`repro.mpi.ft.FTConfig`.  With it, a ``NodeCrash`` is
        detected and announced to the survivors, operations touching
        the dead rank raise :class:`RankFailed`, and the communicator
        gains ``failure_ack``/``revoke``/``shrink``/``agree`` plus a
        checkpoint store at ``world.ft.checkpoints``.  Without it
        (default), a crash deadlocks peers exactly as before.  See
        ``docs/FAULTS.md``.
    """

    def __init__(
        self,
        nprocs: int,
        platform: str = "meiko",
        device: Optional[str] = None,
        seed: int = 0,
        machine_params: Any = None,
        device_config: Any = None,
        host_speeds: Any = None,
        kernel_params: Any = None,
        drop_fn: Any = None,
        faults: Any = None,
        obs: Any = None,
        ft: Any = None,
    ):
        self.sim = Simulator()
        # attach before build_platform so construction-time emissions land
        self.sim.obs = obs
        self.obs = obs
        self.nprocs = nprocs
        self.faults = faults
        self.platform_name = platform
        self.platform = build_platform(
            platform, device, nprocs, self.sim, seed, machine_params, device_config,
            host_speeds, kernel_params, drop_fn, faults,
        )
        self.endpoints = self.platform.endpoints
        self.machine = self.platform.machine
        if ft:
            from repro.mpi.ft import FTConfig, FTState

            cfg = ft if isinstance(ft, FTConfig) else FTConfig()
            self.ft = FTState(self, cfg)
            self.sim.ft = self.ft
        else:
            self.ft = None
        if faults is not None:
            from repro.faults import apply_host_faults

            apply_host_faults(self.sim, faults, self.platform.hosts)
        self._contexts: Dict[Any, int] = {}
        self._next_context = WORLD_CONTEXT + 1
        world_group = Group(range(nprocs))
        self.comms = _LazyComms(self, world_group)

    # ----------------------------------------------------------------- setup
    def allocate_context(self, key: Any) -> int:
        """Deterministic collective context-id allocation.

        Every member of a communicator-creating call derives the same
        *key*, so all of them receive the same fresh id.
        """
        if key not in self._contexts:
            self._contexts[key] = self._next_context
            self._next_context += 1
        return self._contexts[key]

    def comm(self, rank: int) -> Communicator:
        """Rank *rank*'s MPI_COMM_WORLD."""
        return self.comms[rank]

    # ------------------------------------------------------------------- run
    def run(
        self,
        main: Callable,
        *args,
        ranks: Optional[List[int]] = None,
        limit: float = float("inf"),
    ) -> List[Any]:
        """Run ``main(comm, *args)`` on every rank; return their results.

        ``main`` must be a generator function.

        Failure semantics:

        * a rank raising an exception aborts the remaining ranks and
          re-raises that exception with ``mpi_rank`` and ``sim_time_us``
          attributes attached;
        * all ranks blocked with no event pending raises
          :class:`DeadlockError` — the watchdog diagnostic lists each
          stuck rank's outstanding sends/receives and flow-control
          state;
        * exceeding *limit* raises :class:`ConfigurationError`.
        """
        ranks = list(range(self.nprocs)) if ranks is None else ranks

        def rank_body(comm):
            # run the user program, then drain transfers the rank still
            # owes the network (buffered sends parked on flow control)
            result = yield from main(comm, *args)
            yield from comm.endpoint.finalize()
            return result

        procs = [
            self.sim.process(rank_body(self.comms[r]), name=f"rank{r}") for r in ranks
        ]
        sim = self.sim
        obs = sim.obs
        if obs is not None:
            obs.emit(sim.now, "mpi", "world.start",
                     detail={"nprocs": len(procs), "ranks": list(ranks)})
        # Completion/failure tracking is callback-based: the per-event
        # check is two counter reads instead of two O(nprocs) scans.
        state = {"done": 0, "died": False}

        nprocs = len(procs)
        peek = sim.peek
        step = sim.step
        inf = float("inf")
        # Under FT a crashed rank never finishes; once every survivor has
        # returned the job is done — don't run out the background timers
        # (kernel retransmissions to the dead host span simulated minutes)
        crashed = self._crashed_ranks()
        surv_target = (
            sum(1 for r in ranks if r not in crashed) if crashed else nprocs + 1
        )
        if limit == inf and not crashed:
            # Fast path: no per-event supervision needed.  The completion
            # callback stops sim.run() from inside the loop (StopRun);
            # the heap draining without all ranks done is a deadlock.
            def _on_done(event, state=state):
                state["done"] += 1
                if not event._ok:
                    state["died"] = True
                    raise StopRun
                if state["done"] >= nprocs:
                    raise StopRun

            for p in procs:
                p.add_callback(_on_done)
            sim.run()
            if state["done"] < nprocs and not state["died"]:
                if peek() == inf and not self._ft_complete(procs, ranks):
                    raise self._watchdog(procs, ranks)
        elif limit == inf:

            def _on_done(event, state=state):
                state["done"] += 1
                if not event._ok:
                    state["died"] = True

            for p in procs:
                p.add_callback(_on_done)
            while state["done"] < nprocs and not state["died"]:
                if state["done"] >= surv_target and self._ft_complete(procs, ranks):
                    break
                if peek() == inf:  # prunes tombstones: _heap empty <=> drained
                    if self._ft_complete(procs, ranks):
                        break
                    raise self._watchdog(procs, ranks)
                step()
        else:

            def _on_done(event, state=state):
                state["done"] += 1
                if not event._ok:
                    state["died"] = True

            for p in procs:
                p.add_callback(_on_done)
            while state["done"] < nprocs and not state["died"]:
                if state["done"] >= surv_target and self._ft_complete(procs, ranks):
                    break
                next_t = peek()
                if next_t == inf:
                    if self._ft_complete(procs, ranks):
                        break
                    raise self._watchdog(procs, ranks)
                if next_t > limit:
                    raise ConfigurationError(f"time limit {limit} µs exceeded")
                step()
        # Close the generators of crashed ranks now, while the event bus
        # still attributes emissions to this run: their ``finally``
        # blocks (the call.enter/exit tracer in particular) must not
        # fire later from the garbage collector with a stale clock into
        # some other world's trace.
        for p, r in zip(procs, ranks):
            if not p.triggered and r in crashed:
                try:
                    p._generator.close()
                except Exception:  # pragma: no cover - cleanup must not mask
                    pass
        failures = [p for p in procs if p.triggered and not p.ok]
        if failures:
            self._abort(procs, ranks, failures)
        if obs is not None:
            obs.emit(sim.now, "mpi", "world.stop", detail={"nprocs": len(procs)})
        # crashed ranks never finish: their result slot is None under FT
        return [p.value if p.triggered else None for p in procs]

    # -------------------------------------------------------- failure paths
    def _crashed_ranks(self) -> frozenset:
        """Ranks whose node is scheduled to crash (FT mode only)."""
        if self.ft is None or self.faults is None:
            return frozenset()
        return frozenset(self.faults.crashed_nodes())

    def _ft_complete(self, procs, ranks) -> bool:
        """Under fault tolerance, the job is complete when every rank
        still running is one whose node has *actually* crashed —
        survivors all finished; the dead never will.  (A rank whose
        crash is merely scheduled but has not fired yet is still live.)"""
        crashed = self._crashed_ranks()
        if not crashed or self.ft is None:
            return False
        return all(
            p.triggered or (r in crashed and self.ft.is_crashing(r))
            for p, r in zip(procs, ranks)
        )

    def _abort(self, procs, ranks, failures) -> None:
        """Abort surviving ranks and re-raise the first failure with
        rank/timestamp context attached."""
        sim = self.sim
        first = failures[0]
        failed_rank = ranks[procs.index(first)]
        failed_at = sim.now
        obs = sim.obs
        if obs is not None:
            obs.emit(failed_at, "mpi", "world.abort", rank=failed_rank,
                     detail={"error": type(first.value).__name__})
        # we are handling every rank's outcome; nothing may crash the sim
        for p in procs:
            p.defuse()
        for p in procs:
            if not p.triggered:
                p.interrupt(
                    ConfigurationError(
                        f"aborted: rank {failed_rank} failed at t={failed_at:.3f} µs"
                    )
                )
        # deliver the interrupts (URGENT events at the current time) so
        # resource claims are released by the ranks' finally blocks
        while not all(p.triggered for p in procs) and sim.peek() != float("inf"):
            sim.step()
        exc = first.value
        try:
            exc.mpi_rank = failed_rank
            exc.sim_time_us = failed_at
        except (AttributeError, TypeError):  # __slots__ or immutable exception
            pass
        if hasattr(exc, "add_note"):  # pragma: no branch - 3.11+
            exc.add_note(
                f"[repro] raised on rank {failed_rank} at t={failed_at:.3f} µs; "
                f"remaining ranks aborted"
            )
        raise exc

    def _watchdog(self, procs, ranks) -> DeadlockError:
        """Build the deadlock diagnostic: one line per stuck rank with its
        outstanding operations and flow-control state.

        The machine-readable per-rank snapshots ride along on the
        exception as ``rank_states`` (rank -> dict); the rendered lines
        in the message come from the same snapshots.  Snapshots stop at
        ``WATCHDOG_SNAPSHOT_CAP`` stuck ranks (the full stuck-rank list
        still rides on ``stuck_ranks``) so a 10k-rank deadlock costs 16
        state dicts, not 10k.
        """
        lines = []
        rank_states = {}
        crashed = self._crashed_ranks()
        stuck = [r for p, r in zip(procs, ranks)
                 if not p.triggered and r not in crashed]
        for r in stuck[:WATCHDOG_SNAPSHOT_CAP]:
            endpoint = self.endpoints[r]
            try:
                rank_states[r] = endpoint.state_snapshot()
                state = endpoint.describe_state()
            except Exception as exc:  # pragma: no cover - diagnostics must not mask
                state = f"<state_snapshot failed: {exc!r}>"
            lines.append(f"  rank {r}: {state}")
        if len(stuck) > WATCHDOG_SNAPSHOT_CAP:
            lines.append(f"  ... {len(stuck) - WATCHDOG_SNAPSHOT_CAP} more ranks elided")
        detail = "\n".join(lines)
        obs = self.sim.obs
        if obs is not None:
            obs.emit(self.sim.now, "mpi", "world.deadlock",
                     detail={"stuck_ranks": stuck, "rank_states": rank_states})
        return DeadlockError(
            f"deadlock at t={self.sim.now:.3f} µs: ranks {stuck} are blocked "
            f"and no events are pending\n{detail}",
            stuck_ranks=stuck,
            rank_states=rank_states,
        )
