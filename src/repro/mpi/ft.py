"""ULFM-style fault tolerance: detection, revocation, checkpoints.

The paper's protocol engineering assumes a fault-free fabric; PR 1 added
deterministic fault *injection* and failure *reporting*, but a
``NodeCrash`` was terminal — survivors could only abort.  This module
gives survivors a path to completion, following the User-Level Failure
Mitigation design (Bland et al.): failures are *detected* and announced,
operations touching a dead rank fail with :class:`RankFailed`, a
communicator can be *revoked* (poisoning all in-flight and future
operations with :class:`CommRevoked` so every member reaches the
recovery path), *shrunk* to a survivors-only communicator, and survivors
can run a crash-tolerant *agreement*.  A small :class:`CheckpointStore`
lets applications snapshot state at barriers and resume on the shrunken
world.

Everything is opt-in: ``World(..., ft=True)`` (or an :class:`FTConfig`).
Without it, a crash still deadlocks peers exactly as before — the PR 1
semantics are pinned by tests.

Detection model
---------------
Each fabric has a deterministic detection mechanism with a
platform-specific latency, mirroring how the real transports learn of
peer death:

* ``meiko``   — the Elan co-processor's queue probe notices the dead
  node's DMA engine stopped acknowledging (fast, microseconds);
* ``atm``/``ethernet`` — retransmission exhaustion / credit timeout in
  the kernel path (slower, order of the RTO).

When the detector fires (``crash time + detect_delay``), the failure is
announced to *every* surviving endpoint at one simulated instant, which
makes the post-detection failure view globally consistent — the property
that keeps ``shrink``/``agree`` deterministic and the recovery event
trace byte-identical across repeated seeded runs.  A transport that
discovers the death *earlier* (e.g. TCP retransmit exhaustion on a
connection to the crashed host) short-circuits the announcement through
:meth:`FTState.mark_failed`; the announcement is idempotent.

Observability: every transition emits a typed event on the ``"ft"``
layer (``failure.crash``, ``failure.detect``, ``comm.revoke``,
``comm.shrink``, ``agree``, ``checkpoint.save``/``commit``/``restore``)
so recovery latency is measurable per phase, Table-1 style.
"""

from __future__ import annotations

import copy
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError

__all__ = ["FTConfig", "FTState", "CheckpointStore", "DETECT_DELAY"]

#: default failure-detection latency (simulated microseconds) per
#: platform — Elan queue probe vs. kernel retransmit/credit timeout
#: vs. RDMA/CXL transport-level retry exhaustion surfacing in the CQ
DETECT_DELAY = {"meiko": 60.0, "atm": 400.0, "ethernet": 400.0, "modern": 25.0}


class FTConfig:
    """Configuration for the fault-tolerance layer.

    ``detect_delay``
        Simulated microseconds between a crash and its announcement to
        the survivors.  ``None`` selects the platform default from
        :data:`DETECT_DELAY`.
    ``store``
        A :class:`CheckpointStore` to reuse (e.g. to carry committed
        checkpoints across worlds in a test); a fresh store is created
        when ``None``.
    """

    def __init__(self, detect_delay: Optional[float] = None,
                 store: Optional["CheckpointStore"] = None):
        if detect_delay is not None and detect_delay < 0:
            raise ConfigurationError("detect_delay must be >= 0")
        self.detect_delay = detect_delay
        self.store = store


class CheckpointStore:
    """In-memory coordinated checkpointing with two-phase commit.

    Ranks :meth:`save` their payload for a step, synchronize (a barrier
    on the surviving communicator), then every rank calls
    :meth:`commit` — idempotent, so concurrent calls from all ranks are
    fine.  A crash between save and commit leaves the step uncommitted
    and recovery resumes from :meth:`latest_committed`.  Payloads are
    deep-copied on save and on load so a restarted rank cannot alias a
    dead rank's live buffers.
    """

    def __init__(self):
        self._waves: Dict[int, Dict[int, Any]] = {}
        self._committed: List[int] = []
        self._emit = None  # wired by FTState

    def save(self, step: int, rank: int, payload: Any) -> None:
        """Record ``rank``'s snapshot for checkpoint wave ``step``."""
        step, rank = int(step), int(rank)
        self._waves.setdefault(step, {})[rank] = copy.deepcopy(payload)
        if self._emit is not None:
            self._emit("checkpoint.save", rank=rank, detail={"step": step})

    def commit(self, step: int) -> None:
        """Mark wave ``step`` durable (idempotent; call after a barrier)."""
        step = int(step)
        if step not in self._waves:
            raise ConfigurationError(f"no checkpoint saved for step {step}")
        if step not in self._committed:
            self._committed.append(step)
            self._committed.sort()
            if self._emit is not None:
                self._emit("checkpoint.commit", detail={
                    "step": step, "ranks": sorted(self._waves[step])})

    def latest_committed(self) -> Optional[int]:
        """The newest committed step, or ``None`` if nothing committed."""
        return self._committed[-1] if self._committed else None

    def load(self, step: int) -> Dict[int, Any]:
        """Deep-copied ``{rank: payload}`` snapshots of a committed wave."""
        step = int(step)
        if step not in self._committed:
            raise ConfigurationError(f"checkpoint step {step} is not committed")
        if self._emit is not None:
            self._emit("checkpoint.restore", detail={"step": step})
        return {r: copy.deepcopy(p) for r, p in self._waves[step].items()}


class FTState:
    """Per-world fault-tolerance state: the detector and failure view.

    Lives at ``world.ft`` (and ``sim.ft``, where :mod:`repro.faults`
    finds it when a crash fires).  The ``failed`` set holds world ranks
    announced dead; ``revoked`` holds revoked communicator context ids.
    Both only ever grow, and every mutation fans out to the surviving
    device endpoints (``ft_peer_failed`` / ``ft_context_revoked``) so
    blocked ranks wake with :class:`RankFailed`/:class:`CommRevoked`
    instead of hanging.
    """

    def __init__(self, world, config: Optional[FTConfig] = None):
        self.world = world
        self.config = config or FTConfig()
        self.failed: set = set()
        self.revoked: set = set()
        self.checkpoints = self.config.store or CheckpointStore()
        self.checkpoints._emit = self._emit
        #: recovery-phase timeline (first occurrence of each phase),
        #: simulated microseconds — the soak harness reads this
        self.timeline: Dict[str, float] = {}
        self._detecting: set = set()

    # -- plumbing -----------------------------------------------------------
    def _emit(self, kind: str, rank=None, detail=None) -> None:
        obs = self.world.sim.obs
        if obs is not None:
            obs.emit(self.world.sim.now, "ft", kind, rank=rank, detail=detail)

    def _note(self, phase: str) -> None:
        self.timeline.setdefault(phase, self.world.sim.now)

    @property
    def detect_delay(self) -> float:
        if self.config.detect_delay is not None:
            return self.config.detect_delay
        return DETECT_DELAY.get(self.world.platform_name, 400.0)

    def _live_endpoints(self):
        for ep in self.world.endpoints:
            if ep.world_rank not in self.failed:
                yield ep

    # -- detection ----------------------------------------------------------
    def on_crash(self, node: int, now: float) -> None:
        """Called by :mod:`repro.faults` the instant a crash executes."""
        if node in self._detecting or node in self.failed:
            return
        self._detecting.add(node)
        self._note("crash")
        self._emit("failure.crash", rank=node, detail={"at": now})
        self.world.sim.process(self._detector(node), name=f"ft-detect-{node}")

    def _detector(self, node: int):
        yield self.world.sim.timeout(self.detect_delay)
        self.mark_failed(node, cause="detector")

    def mark_failed(self, node: int, cause: str = "detector") -> None:
        """Announce ``node`` dead to every surviving endpoint (idempotent).

        Transports that learn of the death before the detector fires
        (retransmit exhaustion on a connection to the crashed host)
        short-circuit through here; the scheduled detector then finds
        the rank already failed and does nothing.
        """
        if node in self.failed:
            return
        self.failed.add(node)
        self._note("detect")
        self._emit("failure.detect", rank=node, detail={
            "cause": cause, "failed": sorted(self.failed)})
        for ep in self._live_endpoints():
            if ep.world_rank != node:
                ep.ft_peer_failed(node)

    def is_crashing(self, node: int) -> bool:
        """Has ``node``'s host actually crashed (even if not announced)?"""
        if node in self.failed:
            return True
        hosts = getattr(self.world.platform, "hosts", None)
        if hosts is None or not 0 <= node < len(hosts):
            return False
        return getattr(hosts[node], "crashed_at", None) is not None

    # -- revocation ---------------------------------------------------------
    def revoke(self, context_id: int, by_rank: Optional[int] = None) -> bool:
        """Revoke a communicator context: poison in-flight and future ops.

        Returns ``True`` if this call performed the revocation (it is
        idempotent — concurrent revokes from several survivors are the
        normal case).
        """
        if context_id in self.revoked:
            return False
        self.revoked.add(context_id)
        self._note("revoke")
        self._emit("comm.revoke", rank=by_rank, detail={"context": context_id})
        for ep in self._live_endpoints():
            ep.ft_context_revoked(context_id)
        return True

    def is_revoked(self, context_id: int) -> bool:
        return context_id in self.revoked
