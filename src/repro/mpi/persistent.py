"""Persistent communication requests (MPI_Send_init / MPI_Recv_init).

A persistent request captures the arguments of a send or receive once;
``start`` launches one instance of the operation, completion returns
the handle to the *inactive* state, and it can be started again — the
classic way to amortize request setup in iterative codes (exactly the
ring exchange of the paper's n-body application).
"""

from __future__ import annotations

from typing import Optional

from repro.mpi.constants import MODE_STANDARD
from repro.mpi.exceptions import MPIError
from repro.mpi.request import Request
from repro.mpi.status import Status

__all__ = ["PersistentRequest"]


class PersistentRequest:
    """An inactive/startable operation template."""

    __slots__ = ("comm", "kind", "buf", "count", "datatype", "peer", "tag", "mode", "inner")

    def __init__(self, comm, kind, buf, count, datatype, peer, tag, mode=MODE_STANDARD):
        self.comm = comm
        self.kind = kind  # "send" | "recv"
        self.buf = buf
        self.count = count
        self.datatype = datatype
        self.peer = peer
        self.tag = tag
        self.mode = mode
        #: the in-flight Request while active, else None
        self.inner: Optional[Request] = None

    @property
    def active(self) -> bool:
        return self.inner is not None and not self.inner.complete

    @property
    def complete(self) -> bool:
        """Inactive handles count as complete (MPI: wait returns at once)."""
        return self.inner is None or self.inner.complete

    @property
    def status(self) -> Optional[Status]:
        return self.inner.status if self.inner is not None else Status()

    @property
    def data(self):
        return self.inner.data if self.inner is not None else None

    def raise_if_failed(self) -> None:
        if self.inner is not None:
            self.inner.raise_if_failed()

    def start(self):
        """Generator: launch one instance of the operation (MPI_Start)."""
        if self.active:
            raise MPIError("MPI_Start on an already-active persistent request")
        if self.kind == "send":
            self.inner = yield from self.comm.isend(
                self.buf, self.peer, self.tag, self.count, self.datatype, self.mode
            )
        else:
            self.inner = yield from self.comm.irecv(
                self.peer, self.tag, self.buf, self.count, self.datatype
            )
        return self

    def _reset(self) -> None:
        """Return to the inactive state after completion (called by wait)."""
        self.inner = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "active" if self.active else "inactive"
        return f"<PersistentRequest {self.kind} peer={self.peer} tag={self.tag} {state}>"
