"""Virtual topologies: Cartesian communicators (MPI_Cart_*).

The MPI standard section the paper summarizes includes "process group
management and virtual topology management"; this module provides the
Cartesian part: grid creation (`create_cart`), coordinate/rank
translation, neighbour shifts for halo exchanges, and sub-grid
partitioning — all built on the portable communicator layer, so they
work on every device.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.mpi.communicator import Communicator
from repro.mpi.constants import PROC_NULL
from repro.mpi.exceptions import CommunicatorError
from repro.mpi.group import Group

__all__ = ["dims_create", "CartComm", "create_cart"]


def dims_create(nnodes: int, ndims: int, dims: Optional[Sequence[int]] = None) -> List[int]:
    """MPI_Dims_create: factor *nnodes* into *ndims* balanced dimensions.

    Entries of *dims* that are nonzero are fixed; zeros are filled in,
    most-balanced-first (larger factors in earlier free slots).
    """
    out = [0] * ndims if dims is None else list(dims)
    if len(out) != ndims:
        raise CommunicatorError(f"dims has {len(out)} entries for ndims={ndims}")
    fixed = 1
    for d in out:
        if d < 0:
            raise CommunicatorError(f"negative dimension {d}")
        fixed *= max(1, d)
    free = [i for i, d in enumerate(out) if d == 0]
    if not free:
        if fixed != nnodes:
            raise CommunicatorError(f"dims product {fixed} != nnodes {nnodes}")
        return out
    if nnodes % fixed:
        raise CommunicatorError(f"nnodes {nnodes} not divisible by fixed dims {fixed}")
    remaining = nnodes // fixed
    # greedy balanced factorization
    sizes = [1] * len(free)
    n = remaining
    factors = []
    f = 2
    while f * f <= n:
        while n % f == 0:
            factors.append(f)
            n //= f
        f += 1
    if n > 1:
        factors.append(n)
    for factor in sorted(factors, reverse=True):
        smallest = min(range(len(sizes)), key=lambda i: sizes[i])
        sizes[smallest] *= factor
    for slot, size in zip(free, sorted(sizes, reverse=True)):
        out[slot] = size
    return out


class CartComm(Communicator):
    """A communicator with Cartesian structure."""

    def __init__(self, world, group: Group, context_id: int, endpoint,
                 dims: Sequence[int], periods: Sequence[bool]):
        super().__init__(world, group, context_id, endpoint)
        self.dims: Tuple[int, ...] = tuple(int(d) for d in dims)
        self.periods: Tuple[bool, ...] = tuple(bool(p) for p in periods)
        if len(self.dims) != len(self.periods):
            raise CommunicatorError("dims and periods must have equal length")
        total = 1
        for d in self.dims:
            total *= d
        if total != self.size:
            raise CommunicatorError(
                f"grid {self.dims} has {total} cells for {self.size} ranks"
            )

    @property
    def ndims(self) -> int:
        return len(self.dims)

    # -- coordinate translation (row-major, like MPI) ------------------------
    def coords(self, rank: Optional[int] = None) -> Tuple[int, ...]:
        """MPI_Cart_coords: grid coordinates of *rank* (default: self)."""
        r = self.rank if rank is None else rank
        self._check_rank(r, "rank")
        out = []
        for d in reversed(self.dims):
            out.append(r % d)
            r //= d
        return tuple(reversed(out))

    def cart_rank(self, coords: Sequence[int]) -> int:
        """MPI_Cart_rank: rank at *coords* (periodic dims wrap)."""
        if len(coords) != self.ndims:
            raise CommunicatorError(f"{len(coords)} coords for {self.ndims} dims")
        rank = 0
        for c, d, periodic in zip(coords, self.dims, self.periods):
            if periodic:
                c %= d
            elif not (0 <= c < d):
                raise CommunicatorError(f"coordinate {c} outside non-periodic dim of size {d}")
            rank = rank * d + c
        return rank

    def shift(self, direction: int, disp: int = 1) -> Tuple[int, int]:
        """MPI_Cart_shift -> (source, dest) ranks for a *disp* step along
        *direction* (PROC_NULL at non-periodic edges)."""
        if not (0 <= direction < self.ndims):
            raise CommunicatorError(f"direction {direction} outside {self.ndims} dims")
        me = list(self.coords())

        def neighbour(step: int) -> int:
            c = list(me)
            c[direction] += step
            d = self.dims[direction]
            if self.periods[direction]:
                c[direction] %= d
            elif not (0 <= c[direction] < d):
                return PROC_NULL
            return self.cart_rank(c)

        return neighbour(-disp), neighbour(disp)

    def neighbors(self) -> List[int]:
        """The ±1 neighbours along each dimension (PROC_NULL at edges)."""
        out = []
        for d in range(self.ndims):
            src, dst = self.shift(d, 1)
            out.extend([src, dst])
        return out

    def sub(self, remain_dims: Sequence[bool]):
        """Generator -> CartComm: MPI_Cart_sub — keep the dimensions
        flagged in *remain_dims*, splitting into one grid per slice."""
        if len(remain_dims) != self.ndims:
            raise CommunicatorError("remain_dims length mismatch")
        me = self.coords()
        # color = the dropped coordinates; key = rank within the kept grid
        color = 0
        for c, d, keep in zip(me, self.dims, remain_dims):
            if not keep:
                color = color * d + c
        sub_comm = yield from self.split(color, key=self.rank)
        new_dims = [d for d, keep in zip(self.dims, remain_dims) if keep]
        new_periods = [p for p, keep in zip(self.periods, remain_dims) if keep]
        if not new_dims:
            new_dims, new_periods = [1], [False]
        return CartComm(
            sub_comm.world, sub_comm.group, sub_comm.context_id, sub_comm.endpoint,
            new_dims, new_periods,
        )


def create_cart(
    comm: Communicator,
    dims: Sequence[int],
    periods: Optional[Sequence[bool]] = None,
):
    """Generator -> Optional[CartComm]: MPI_Cart_create (collective).

    Ranks beyond the grid size get None (like MPI_COMM_NULL).  The grid
    uses ranks 0..prod(dims)-1 of *comm* in order (no reordering — the
    simulated fabrics are distance-uniform enough that reordering buys
    nothing, which we document rather than pretend).
    """
    dims = list(dims)
    total = 1
    for d in dims:
        if d < 1:
            raise CommunicatorError(f"dimension {d} must be >= 1")
        total *= d
    if total > comm.size:
        raise CommunicatorError(f"grid {dims} needs {total} ranks; have {comm.size}")
    periods = [False] * len(dims) if periods is None else list(periods)
    color = 0 if comm.rank < total else None
    sub = yield from comm.split(color, key=comm.rank)
    if sub is None:
        return None
    return CartComm(sub.world, sub.group, sub.context_id, sub.endpoint, dims, periods)
