"""MPI constants (mirroring the MPI-1.1 names the paper targets)."""

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "PROC_NULL",
    "UNDEFINED",
    "TAG_UB",
    "MODE_STANDARD",
    "MODE_BUFFERED",
    "MODE_SYNCHRONOUS",
    "MODE_READY",
    "INTERNAL_TAG_BASE",
]

#: wildcard source for receive/probe (MPI_ANY_SOURCE)
ANY_SOURCE = -1
#: wildcard tag for receive/probe (MPI_ANY_TAG)
ANY_TAG = -1
#: null process: sends/receives to it complete immediately (MPI_PROC_NULL)
PROC_NULL = -2
#: returned by Status.get_count when the byte count is not a whole
#: number of datatype elements (MPI_UNDEFINED)
UNDEFINED = -3

#: largest user tag value (MPI guarantees at least 32767; we allow 2**30-1)
TAG_UB = 2**30 - 1

#: send modes
MODE_STANDARD = "standard"
MODE_BUFFERED = "buffered"
MODE_SYNCHRONOUS = "synchronous"
MODE_READY = "ready"

#: tags at or above this value are reserved for the library's internal
#: collective algorithms (never matched by user wildcards, because user
#: tags must be <= TAG_UB)
INTERNAL_TAG_BASE = 2**30
