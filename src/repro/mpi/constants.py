"""MPI constants (mirroring the MPI-1.1 names the paper targets)."""

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "PROC_NULL",
    "UNDEFINED",
    "TAG_UB",
    "MODE_STANDARD",
    "MODE_BUFFERED",
    "MODE_SYNCHRONOUS",
    "MODE_READY",
    "INTERNAL_TAG_BASE",
    "SUCCESS",
    "ERR_TRUNCATE",
    "ERR_OTHER",
    "ERR_NETWORK",
    "ERR_PROC_FAILED",
    "ERR_REVOKED",
    "ERRORS_ARE_FATAL",
    "ERRORS_RETURN",
]

#: wildcard source for receive/probe (MPI_ANY_SOURCE)
ANY_SOURCE = -1
#: wildcard tag for receive/probe (MPI_ANY_TAG)
ANY_TAG = -1
#: null process: sends/receives to it complete immediately (MPI_PROC_NULL)
PROC_NULL = -2
#: returned by Status.get_count when the byte count is not a whole
#: number of datatype elements (MPI_UNDEFINED)
UNDEFINED = -3

#: largest user tag value (MPI guarantees at least 32767; we allow 2**30-1)
TAG_UB = 2**30 - 1

#: send modes
MODE_STANDARD = "standard"
MODE_BUFFERED = "buffered"
MODE_SYNCHRONOUS = "synchronous"
MODE_READY = "ready"

#: tags at or above this value are reserved for the library's internal
#: collective algorithms (never matched by user wildcards, because user
#: tags must be <= TAG_UB)
INTERNAL_TAG_BASE = 2**30

#: error codes (MPI_SUCCESS / MPI_ERR_*; values follow MPI-1.1 where a
#: standard code exists)
SUCCESS = 0
ERR_TRUNCATE = 15
ERR_OTHER = 16
#: implementation-specific: a device/transport failure (retransmissions
#: exhausted, connection reset, unreachable peer)
ERR_NETWORK = 18
#: a peer process has failed (ULFM MPI_ERR_PROC_FAILED; value follows
#: the MPI-4 FT chapter)
ERR_PROC_FAILED = 75
#: the communicator has been revoked (ULFM MPI_ERR_REVOKED)
ERR_REVOKED = 76

#: error handlers (MPI_Errhandler analogues, settable per communicator)
#: the default: a device failure raises CommError out of the rank
ERRORS_ARE_FATAL = "errors_are_fatal"
#: opt-in: device failures come back as error codes / Status.error
ERRORS_RETURN = "errors_return"
