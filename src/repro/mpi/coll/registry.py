"""Collective algorithm registry and the size×ranks auto-selector.

Every collective implementation registers under a ``(collective,
style)`` key; the dispatchers in :mod:`repro.mpi.coll` look the style
up here.  Which style runs for a given call resolves in strict
precedence order:

1. an explicit ``style=`` argument at the call site,
2. the ``REPRO_COLL_<OP>`` environment variable (e.g.
   ``REPRO_COLL_BCAST=scatter_allgather``),
3. the auto-selector :func:`select` driven by the endpoint's
   per-platform tuning table (``platforms.COLL_TUNING``),
4. the device's legacy default when no table is stamped.

Selection is a *pure function* of ``(collective, message bytes, comm
size, tuning table)`` — every rank of a communicator computes the same
inputs, so every rank picks the same algorithm without any negotiation
traffic.  That purity is what keeps mixed-algorithm deadlocks
impossible and is pinned by ``tests/mpi/test_coll_selector.py``.

Tuning-table schema (one dict per collective per platform/device cell)::

    {"small": name,              # default style
     "large": name,              # bandwidth style for big payloads ...
     "large_bytes": int,         #   ... at or above this many bytes
     "large_max_ranks": int,     #   ... but only up to this many ranks
     "wide": name,               # latency style for very wide comms
     "wide_ranks": int}          #   ... at or above this many ranks

Precedence inside :func:`select`: ``large`` (size crossover) beats
``wide`` (rank crossover) beats ``small``.  Any key may be omitted.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional

__all__ = ["register", "algorithms", "get", "select", "resolve"]

# {collective: {style: fn}}
_REGISTRY: Dict[str, Dict[str, Callable]] = {}


def register(coll: str, name: str):
    """Class a function as the *name* implementation of *coll*."""

    def deco(fn: Callable) -> Callable:
        _REGISTRY.setdefault(coll, {})[name] = fn
        return fn

    return deco


def algorithms(coll: str) -> List[str]:
    """Registered style names for *coll*, registration order."""
    return list(_REGISTRY.get(coll, {}))


def get(coll: str, name: str) -> Callable:
    """Look up an implementation; raises ValueError naming the options."""
    try:
        return _REGISTRY[coll][name]
    except KeyError:
        known = ", ".join(algorithms(coll)) or "<none>"
        raise ValueError(
            f"unknown {coll} style {name!r} (registered: {known})"
        ) from None


def select(coll: str, nbytes: int, nranks: int,
           table: Optional[Dict[str, Dict]]) -> Optional[str]:
    """Pure auto-selection: the style *table* picks for this call shape.

    Returns None when the table has no entry for *coll* (caller falls
    back to the device's legacy default).  Must stay side-effect-free
    and deterministic in its arguments — every rank evaluates it
    independently with identical inputs.
    """
    if not table:
        return None
    entry = table.get(coll)
    if not entry:
        return None
    large = entry.get("large")
    if (large is not None
            and nbytes >= entry.get("large_bytes", 1 << 62)
            and nranks <= entry.get("large_max_ranks", 1 << 62)):
        return large
    wide = entry.get("wide")
    if wide is not None and nranks >= entry.get("wide_ranks", 1 << 62):
        return wide
    return entry.get("small")


def resolve(comm, coll: str, style: Optional[str], nbytes: int) -> Optional[str]:
    """Resolve the style for one collective call (precedence above).

    Returns the style name to run, or None meaning "use the device's
    legacy default path".  The env override is read per call so tests
    can flip it with monkeypatch; it is run-uniform by construction
    (every rank of a world shares the process environment in-sim).
    """
    if style is not None:
        return style
    env = os.environ.get(f"REPRO_COLL_{coll.upper()}")
    if env:
        return env
    return select(coll, nbytes, comm.size, comm.endpoint.coll_tuning)
