"""Shared collective machinery: reduction operators, tag generations,
and the pickled-object send/recv helpers every algorithm builds on.

All collective traffic uses tags at or above
:data:`~repro.mpi.constants.INTERNAL_TAG_BASE`, which user wildcard
receives never match.
"""

from __future__ import annotations

import pickle
from typing import Any, Callable

import numpy as np

from repro.mpi.constants import INTERNAL_TAG_BASE

__all__ = [
    "Op", "SUM", "PROD", "MAX", "MIN", "LAND", "LOR", "BAND", "BOR",
    "TAG_BCAST", "TAG_BARRIER", "TAG_REDUCE", "TAG_GATHER", "TAG_SCATTER",
    "TAG_ALLGATHER", "TAG_ALLTOALL", "TAG_OBJ", "TAG_SCAN", "TAG_RSCAT",
    "TAG_AGREE", "is_agree_tag",
]

TAG_BCAST = INTERNAL_TAG_BASE + 1
TAG_BARRIER = INTERNAL_TAG_BASE + 2
TAG_REDUCE = INTERNAL_TAG_BASE + 3
TAG_GATHER = INTERNAL_TAG_BASE + 4
TAG_SCATTER = INTERNAL_TAG_BASE + 5
TAG_ALLGATHER = INTERNAL_TAG_BASE + 6
TAG_ALLTOALL = INTERNAL_TAG_BASE + 7
TAG_OBJ = INTERNAL_TAG_BASE + 8
TAG_SCAN = INTERNAL_TAG_BASE + 9
TAG_RSCAT = INTERNAL_TAG_BASE + 10
TAG_AGREE = INTERNAL_TAG_BASE + 11  # crash-tolerant agreement (repro.mpi.ft)

# Every collective invocation gets its own tag *generation*: the
# per-communicator sequence number (Communicator._coll_seq) selects a
# block of _SEQ_SLOTS tags above _SEQ_BASE, so two collectives on the
# same communicator — even back-to-back ones whose traffic overlaps in
# flight — can never cross-match each other's messages.  The window
# wraps after _SEQ_WINDOW generations; two collectives that many calls
# apart can never be concurrently in flight.  The resulting tags stay
# inside [INTERNAL_TAG_BASE, 2**31) so they fit the devices' signed
# 32-bit wire fields, stay invisible to user ANY_TAG receives, and
# clear the device-internal tags (e.g. the Meiko hardware-broadcast tag
# at INTERNAL_TAG_BASE + 101) parked below _SEQ_BASE.
_SEQ_BASE = 1024
_SEQ_SLOTS = 16
_SEQ_WINDOW = 2 ** 20


def _coll_tag(comm, base: int) -> int:
    """Draw this communicator's next collective sequence number and
    scope *base* (one of the TAG_* constants) to that generation."""
    seq = comm._coll_seq
    comm._coll_seq = seq + 1
    slot = base - INTERNAL_TAG_BASE
    return INTERNAL_TAG_BASE + _SEQ_BASE + slot + _SEQ_SLOTS * (seq % _SEQ_WINDOW)


def is_agree_tag(tag: int) -> bool:
    """Is *tag* any generation of the agreement slot?  Agreement traffic
    must keep flowing on a revoked communicator (ULFM), so the FT layer
    exempts it when poisoning pending operations."""
    off = tag - INTERNAL_TAG_BASE - _SEQ_BASE
    return off >= 0 and off % _SEQ_SLOTS == TAG_AGREE - INTERNAL_TAG_BASE


class Op:
    """A reduction operator over NumPy arrays (elementwise, associative)."""

    def __init__(self, name: str, fn: Callable):
        self.name = name
        self.fn = fn

    def __call__(self, a, b):
        return self.fn(a, b)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Op {self.name}>"


SUM = Op("MPI_SUM", np.add)
PROD = Op("MPI_PROD", np.multiply)
MAX = Op("MPI_MAX", np.maximum)
MIN = Op("MPI_MIN", np.minimum)
LAND = Op("MPI_LAND", np.logical_and)
LOR = Op("MPI_LOR", np.logical_or)
BAND = Op("MPI_BAND", np.bitwise_and)
BOR = Op("MPI_BOR", np.bitwise_or)


def _just(value):
    """Generator returning *value* without yielding (0-event no-op)."""
    return value
    yield  # pragma: no cover - makes this a generator function


# ---------------------------------------------------- pickled-object helpers
def _send_obj(comm, obj: Any, dest: int, tag: int):
    wire = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    yield from comm.send(wire, dest, tag)


def _isend_obj(comm, obj: Any, dest: int, tag: int):
    wire = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    return (yield from comm.isend(wire, dest, tag))


def _recv_obj(comm, source: int, tag: int):
    data, status = yield from comm.recv(source=source, tag=tag)
    return pickle.loads(data), status
