"""Collective operations — algorithm library and auto-selector.

The paper implements **broadcast** (hardware broadcast on the Meiko,
a succession of point-to-point messages on the cluster; the MPICH
baseline uses point-to-point on both).  This package grows that into a
proper collective layer: each collective has several registered
algorithms (:mod:`repro.mpi.coll.registry`), a per-platform tuning
table picks one by message size × communicator width
(``platforms.COLL_TUNING``), and every algorithm stays individually
reachable via ``style=`` arguments or ``REPRO_COLL_<OP>`` environment
overrides.  See ``docs/COLLECTIVES.md`` for the catalog and measured
crossovers.

Buffer-based: ``bcast``, ``reduce``, ``allreduce`` (NumPy arrays or
bytes).  Object-based (pickled, mpi4py-lowercase style): ``gather``,
``scatter``, ``allgather``, ``alltoall``.

All collective traffic uses tags at or above
:data:`~repro.mpi.constants.INTERNAL_TAG_BASE`, which user wildcard
receives never match.

Layout:

* ``ops`` — reduction operators, tag generations, object helpers;
* ``registry`` — algorithm registration + the pure auto-selector;
* ``bcast`` / ``reduce`` / ``barrier`` / ``objects`` — the algorithms.

``repro.mpi.collectives`` remains as a compatibility shim re-exporting
this package's surface.
"""

from repro.mpi.coll import ops  # noqa: F401  (import order matters)
from repro.mpi.coll import registry  # noqa: F401
from repro.mpi.coll.ops import (  # noqa: F401
    BAND, BOR, LAND, LOR, MAX, MIN, PROD, SUM, Op,
    TAG_AGREE, TAG_ALLGATHER, TAG_ALLTOALL, TAG_BARRIER, TAG_BCAST,
    TAG_GATHER, TAG_OBJ, TAG_REDUCE, TAG_RSCAT, TAG_SCAN, TAG_SCATTER,
    _SEQ_BASE, _SEQ_SLOTS, _SEQ_WINDOW,
    _coll_tag, _isend_obj, _just, _recv_obj, _send_obj, is_agree_tag,
)
from repro.mpi.coll.registry import algorithms, resolve, select  # noqa: F401
from repro.mpi.coll.bcast import bcast, _bcast_ptp  # noqa: F401
from repro.mpi.coll.reduce import (  # noqa: F401
    allreduce, exscan, reduce, reduce_scatter, scan,
)
from repro.mpi.coll.barrier import barrier  # noqa: F401
from repro.mpi.coll.objects import (  # noqa: F401
    allgather, allgather_obj, alltoall, gather, scatter,
)

__all__ = [
    "Op",
    "SUM",
    "PROD",
    "MAX",
    "MIN",
    "LAND",
    "LOR",
    "BAND",
    "BOR",
    "bcast",
    "barrier",
    "reduce",
    "allreduce",
    "gather",
    "scatter",
    "allgather",
    "allgather_obj",
    "alltoall",
    "scan",
    "exscan",
    "reduce_scatter",
    "algorithms",
    "select",
    "resolve",
]
