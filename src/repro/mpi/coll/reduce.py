"""Reductions: reduce, allreduce (three algorithms), prefix scans,
and reduce_scatter.

Allreduce styles:

* ``reduce_bcast`` (the paper-era default): binomial reduce to rank 0,
  then broadcast — latency-optimal for small payloads, and on the Meiko
  the broadcast half rides the hardware;
* ``ring``: reduce-scatter + allgather over a ring, 2·(P-1) messages
  per rank each carrying ~n/P bytes — the bandwidth algorithm modern
  training stacks use;
* ``recursive_doubling``: log₂P exchange rounds of the full buffer —
  latency-optimal at scale for small payloads, but P·log₂P messages in
  total, so it is forced-style only (never auto-selected wide).
"""

from __future__ import annotations

import numpy as np

from repro.mpi.coll import registry as _registry
from repro.mpi.coll.ops import TAG_REDUCE, TAG_SCAN, Op, _coll_tag
from repro.mpi.exceptions import MPIError

__all__ = ["reduce", "allreduce", "scan", "exscan", "reduce_scatter"]


def reduce(comm, sendbuf, root: int, op: Op, style=None):
    """Binomial-tree reduction to *root*; returns the result there."""
    if not isinstance(sendbuf, np.ndarray):
        raise MPIError("reduce requires a NumPy array buffer")
    tag = _coll_tag(comm, TAG_REDUCE)
    style = _registry.resolve(comm, "reduce", style, sendbuf.nbytes)
    if style is None:
        style = "binomial"
    return _registry.get("reduce", style)(comm, sendbuf, root, op, tag)


@_registry.register("reduce", "binomial")
def _reduce_binomial(comm, sendbuf, root, op, tag):
    size, rank = comm.size, comm.rank
    result = np.array(sendbuf, copy=True)
    if size == 1:
        return result
    vrank = (rank - root) % size
    mask = 1
    while mask < size:
        if vrank & mask:
            parent = (vrank - mask + root) % size
            yield from comm.send(result, parent, tag)
            return None
        peer = vrank + mask
        if peer < size:
            partial = np.empty_like(result)
            src = (peer + root) % size
            yield from comm.recv(source=src, tag=tag, buf=partial)
            result = op(result, partial)
        mask <<= 1
    return result if rank == root else None


def allreduce(comm, sendbuf, op: Op, style=None):
    """Reduction visible on every rank; style per the tuning table."""
    nbytes = sendbuf.nbytes if isinstance(sendbuf, np.ndarray) else 0
    style = _registry.resolve(comm, "allreduce", style, nbytes)
    if style is None:
        style = "reduce_bcast"
    return _registry.get("allreduce", style)(comm, sendbuf, op)


@_registry.register("allreduce", "reduce_bcast")
def _allreduce_reduce_bcast(comm, sendbuf, op):
    """Reduce to rank 0 then broadcast; returns the result everywhere."""
    result = yield from reduce(comm, sendbuf, 0, op)
    if comm.rank != 0:
        result = np.empty_like(np.asarray(sendbuf))
    from repro.mpi.coll.bcast import bcast
    from repro.mpi.datatypes import from_numpy_dtype

    dtype = from_numpy_dtype(result.dtype)
    yield from bcast(comm, result, 0, result.size, dtype)
    return result


@_registry.register("allreduce", "ring")
def _allreduce_ring(comm, sendbuf, op):
    """Ring allreduce: P-1 reduce-scatter steps + P-1 allgather steps,
    each message ~n/P elements.  Buffers shorter than the ring fall
    back to reduce_bcast (segments would be empty)."""
    tag = _coll_tag(comm, TAG_REDUCE)
    size, rank = comm.size, comm.rank
    result = np.array(sendbuf, copy=True)
    if size == 1:
        return result
    flat = result.reshape(-1)
    n = flat.size
    if n < size:
        return (yield from _allreduce_reduce_bcast(comm, sendbuf, op))

    def seg(i: int):
        i %= size
        return flat[(i * n) // size:((i + 1) * n) // size]

    right = (rank + 1) % size
    left = (rank - 1) % size
    # reduce-scatter: after step s every rank holds the partial sum of
    # s+1 contributions in segment (rank - s); after P-1 steps, rank
    # owns the fully reduced segment (rank + 1) % size
    for step in range(size - 1):
        req = yield from comm.isend(seg(rank - step), right, tag)
        acc = seg(rank - step - 1)
        tmp = np.empty_like(acc)
        yield from comm.recv(source=left, tag=tag, buf=tmp)
        # lower-rank contributions accumulate first (canonical order)
        acc[...] = op(tmp, acc)
        yield from comm.wait(req)
    # allgather: circulate the reduced segments
    for step in range(size - 1):
        req = yield from comm.isend(seg(rank + 1 - step), right, tag)
        yield from comm.recv(source=left, tag=tag, buf=seg(rank - step))
        yield from comm.wait(req)
    return result


@_registry.register("allreduce", "recursive_doubling")
def _allreduce_recursive_doubling(comm, sendbuf, op):
    """Recursive doubling: non-power-of-two ranks fold into the lower
    2^⌊log₂P⌋ block first, exchange in log₂ rounds, then unfold."""
    tag = _coll_tag(comm, TAG_REDUCE)
    size, rank = comm.size, comm.rank
    result = np.array(sendbuf, copy=True)
    if size == 1:
        return result
    pof2 = 1
    while pof2 * 2 <= size:
        pof2 *= 2
    rem = size - pof2
    tmp = np.empty_like(result)
    if rank < 2 * rem:
        if rank % 2:
            # odd extras hand their contribution to the even partner
            # and sit out the exchange rounds
            yield from comm.send(result, rank - 1, tag)
            newrank = -1
        else:
            yield from comm.recv(source=rank + 1, tag=tag, buf=tmp)
            result = op(result, tmp)
            newrank = rank // 2
    else:
        newrank = rank - rem
    if newrank >= 0:
        mask = 1
        while mask < pof2:
            npeer = newrank ^ mask
            peer = npeer * 2 if npeer < rem else npeer + rem
            req = yield from comm.isend(result, peer, tag)
            yield from comm.recv(source=peer, tag=tag, buf=tmp)
            # keep the op order canonical (lower rank's data first) so
            # non-commutative custom ops still agree across ranks
            result = op(tmp, result) if peer < rank else op(result, tmp)
            yield from comm.wait(req)
            mask <<= 1
    if rank < 2 * rem:
        if rank % 2:
            yield from comm.recv(source=rank - 1, tag=tag, buf=result)
        else:
            yield from comm.send(result, rank + 1, tag)
    return result


def scan(comm, sendbuf, op: Op):
    """Inclusive prefix reduction (MPI_Scan): rank r gets
    op(sendbuf_0, ..., sendbuf_r).  Linear chain algorithm."""
    if not isinstance(sendbuf, np.ndarray):
        raise MPIError("scan requires a NumPy array buffer")
    tag = _coll_tag(comm, TAG_SCAN)
    result = np.array(sendbuf, copy=True)
    if comm.rank > 0:
        partial = np.empty_like(result)
        yield from comm.recv(source=comm.rank - 1, tag=tag, buf=partial)
        result = op(partial, result)
    if comm.rank < comm.size - 1:
        yield from comm.send(result, comm.rank + 1, tag)
    return result


def exscan(comm, sendbuf, op: Op):
    """Exclusive prefix reduction (MPI_Exscan): rank r gets
    op(sendbuf_0, ..., sendbuf_{r-1}); rank 0 gets None."""
    if not isinstance(sendbuf, np.ndarray):
        raise MPIError("exscan requires a NumPy array buffer")
    tag = _coll_tag(comm, TAG_SCAN)
    prefix = None
    if comm.rank > 0:
        prefix = np.empty_like(np.asarray(sendbuf))
        yield from comm.recv(source=comm.rank - 1, tag=tag, buf=prefix)
    if comm.rank < comm.size - 1:
        outgoing = (
            np.array(sendbuf, copy=True) if prefix is None else op(prefix, sendbuf)
        )
        yield from comm.send(outgoing, comm.rank + 1, tag)
    return prefix


def reduce_scatter(comm, sendbuf, op: Op):
    """MPI_Reduce_scatter_block: reduce elementwise across ranks, then
    scatter equal blocks — rank r gets block r of the reduction.

    ``sendbuf`` must have ``size * blocklen`` elements on every rank.
    """
    from repro.mpi.coll.objects import scatter

    if not isinstance(sendbuf, np.ndarray):
        raise MPIError("reduce_scatter requires a NumPy array buffer")
    if sendbuf.size % comm.size:
        raise MPIError(
            f"reduce_scatter buffer of {sendbuf.size} elements does not split "
            f"over {comm.size} ranks"
        )
    total = yield from reduce(comm, sendbuf, 0, op)
    blocklen = sendbuf.size // comm.size
    if comm.rank == 0:
        flat = total.reshape(-1)
        chunks = [flat[r * blocklen : (r + 1) * blocklen].copy() for r in range(comm.size)]
    else:
        chunks = None
    mine = yield from scatter(comm, chunks, 0)
    return mine
