"""Broadcast algorithms.

The paper's three broadcasts — Meiko hardware broadcast, MPICH binomial
tree, and the cluster's "succession of point-to-point messages" — plus
the bandwidth-saving scatter-allgather tree for large payloads
(van de Geijn style: binomial-scatter the buffer in P chunks, then ring
allgather them back, moving ~2·n bytes per rank instead of n·log₂P).
"""

from __future__ import annotations

import numpy as np

from repro.mpi.coll import registry as _registry
from repro.mpi.coll.ops import TAG_BCAST, _coll_tag, _just

__all__ = ["bcast"]


def _payload_nbytes(buf, count=None, datatype=None) -> int:
    """Message size in bytes for auto-selection; 0 when unknowable."""
    if count is not None and datatype is not None:
        return count * datatype.size
    if isinstance(buf, np.ndarray):
        return buf.nbytes
    try:
        return len(buf)
    except TypeError:
        return 0


def bcast(comm, buf, root: int, count: int, datatype, style=None):
    """Broadcast *buf* from *root*; returns the (filled) buffer.

    Algorithm selection follows the paper's defaults, then the
    per-platform tuning table, overridable via *style* /
    ``REPRO_COLL_BCAST`` (see :mod:`repro.mpi.coll.registry`):

    * ``hardware`` (low-latency Meiko device): single hardware-broadcast
      injection;
    * ``binomial`` (MPICH): log₂P point-to-point rounds;
    * ``linear`` (TCP/UDP cluster): root sends to each rank in turn
      ("a succession of point-to-point messages");
    * ``scatter_allgather``: bandwidth algorithm for large buffers.

    Plain dispatcher (not a generator function): it hands back the
    innermost generator so the hot hardware path runs without a
    delegating frame per resume.
    """
    # drawn unconditionally (even for the hardware path and size 1) so
    # every member's _coll_seq advances identically per collective call
    tag = _coll_tag(comm, TAG_BCAST)
    if comm.size == 1:
        return _just(buf)
    style = _registry.resolve(
        comm, "bcast", style, _payload_nbytes(buf, count, datatype)
    )
    if style is None:
        style = comm.endpoint.bcast_style
    return _registry.get("bcast", style)(comm, buf, root, count, datatype, tag)


def _bcast_ptp(comm, buf, root: int, count: int, datatype, tag: int, style):
    if style == "linear":
        if comm.rank == root:
            for r in range(comm.size):
                if r != root:
                    yield from comm.send(buf, r, tag, count, datatype)
        else:
            yield from comm.recv(source=root, tag=tag, buf=buf, count=count,
                                 datatype=datatype)
        return buf
    # binomial tree (the classic MPICH algorithm)
    size, rank = comm.size, comm.rank
    vrank = (rank - root) % size
    mask = 1
    while mask < size:
        if vrank & mask:
            src = (vrank - mask + root) % size
            yield from comm.recv(source=src, tag=tag, buf=buf, count=count,
                                 datatype=datatype)
            break
        mask <<= 1
    mask >>= 1
    while mask > 0:
        if vrank + mask < size:
            dst = (vrank + mask + root) % size
            yield from comm.send(buf, dst, tag, count, datatype)
        mask >>= 1
    return buf


@_registry.register("bcast", "linear")
def _bcast_linear(comm, buf, root, count, datatype, tag):
    return _bcast_ptp(comm, buf, root, count, datatype, tag, "linear")


@_registry.register("bcast", "binomial")
def _bcast_binomial(comm, buf, root, count, datatype, tag):
    return _bcast_ptp(comm, buf, root, count, datatype, tag, "binomial")


@_registry.register("bcast", "hardware")
def _bcast_hardware(comm, buf, root, count, datatype, tag):
    # devices without a hardware broadcast return None -> binomial
    gen = comm.endpoint.bcast_hw(comm, buf, count, datatype, root)
    if gen is not None:
        return gen
    return _bcast_ptp(comm, buf, root, count, datatype, tag, "binomial")


@_registry.register("bcast", "scatter_allgather")
def _bcast_scatter_allgather(comm, buf, root, count, datatype, tag):
    """Scatter-allgather broadcast: binomial-scatter P chunks from the
    root, then ring-allgather them, ~2·(P-1)/P·n bytes per rank.

    Only pays off for contiguous NumPy buffers with at least one
    element per rank; anything else falls back to the binomial tree
    (still a correct broadcast, same tag generation).
    """
    from repro.mpi.datatypes import infer_datatype

    size, rank = comm.size, comm.rank
    # the dispatcher always receives a resolved (count, datatype) pair;
    # slicing the buffer is only sound when they describe the whole
    # array in its own basic type (no derived datatypes, no partial
    # counts) — anything else takes the binomial fallback
    flat = None
    if (isinstance(buf, np.ndarray)
            and (count is None or count == buf.size)
            and (datatype is None or datatype is infer_datatype(buf))):
        flat = buf.view()
        try:
            flat.shape = (buf.size,)
        except AttributeError:  # non-contiguous: reshape would copy
            flat = None
    if flat is None or flat.size < size:
        return (yield from _bcast_ptp(comm, buf, root, count, datatype, tag,
                                      "binomial"))
    n = flat.size

    def lo(i: int) -> int:
        return (i * n) // size

    vrank = (rank - root) % size
    # --- binomial scatter: vrank's subtree spans chunks [vrank, vrank+mask)
    mask = 1
    if vrank == 0:
        while mask < size:
            mask <<= 1
    else:
        while not (vrank & mask):
            mask <<= 1
        src = (vrank - mask + root) % size
        seg = flat[lo(vrank):lo(min(vrank + mask, size))]
        yield from comm.recv(source=src, tag=tag, buf=seg)
    mask >>= 1
    while mask > 0:
        child = vrank + mask
        if child < size:
            dst = (child + root) % size
            seg = flat[lo(child):lo(min(child + mask, size))]
            yield from comm.send(seg, dst, tag)
        mask >>= 1
    # --- ring allgather of the chunks (chunk indices in vrank space)
    right = (rank + 1) % size
    left = (rank - 1) % size
    for step in range(size - 1):
        sidx = (vrank - step) % size
        ridx = (vrank - step - 1) % size
        req = yield from comm.isend(flat[lo(sidx):lo(sidx + 1)], right, tag)
        yield from comm.recv(source=left, tag=tag,
                             buf=flat[lo(ridx):lo(ridx + 1)])
        yield from comm.wait(req)
    return buf
