"""Object-based collectives (pickled, mpi4py-lowercase style):
gather, scatter, allgather, alltoall.

Each of gather/scatter/allgather has a latency skeleton for wide
communicators next to the paper-era linear/ring default:

* gather: ``linear`` (root receives P-1 messages) or ``binomial``
  (subtree dicts merge up the tree, root degree log₂P);
* scatter: ``linear`` or ``binomial`` (subtree slices split down);
* allgather: ``ring`` (P-1 forwarding steps) or ``gather_bcast``
  (binomial gather to rank 0 + binomial broadcast of the list —
  2·log₂P rounds instead of P-1).
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.mpi.coll import registry as _registry
from repro.mpi.coll.ops import (
    TAG_ALLGATHER, TAG_ALLTOALL, TAG_GATHER, TAG_OBJ, TAG_SCATTER,
    _coll_tag, _isend_obj, _recv_obj, _send_obj,
)
from repro.mpi.exceptions import MPIError

__all__ = ["gather", "scatter", "allgather", "allgather_obj", "alltoall"]


def gather(comm, obj: Any, root: int, style=None):
    """Gather one object per rank to *root* (rank order)."""
    tag = _coll_tag(comm, TAG_GATHER)
    style = _registry.resolve(comm, "gather", style, 0)
    if style is None:
        style = "linear"
    return _registry.get("gather", style)(comm, obj, root, tag)


@_registry.register("gather", "linear")
def _gather_linear(comm, obj, root, tag) -> Optional[List[Any]]:
    if comm.rank == root:
        out: List[Any] = [None] * comm.size
        out[root] = obj
        for r in range(comm.size):
            if r != root:
                out[r], _ = yield from _recv_obj(comm, r, tag)
        return out
    yield from _send_obj(comm, obj, root, tag)
    return None


@_registry.register("gather", "binomial")
def _gather_binomial(comm, obj, root, tag) -> Optional[List[Any]]:
    """Subtree dicts (vrank -> object) merge up a binomial tree."""
    size, rank = comm.size, comm.rank
    vrank = (rank - root) % size
    sub = {vrank: obj}
    mask = 1
    while mask < size:
        if vrank & mask:
            parent = (vrank - mask + root) % size
            yield from _send_obj(comm, sub, parent, tag)
            return None
        peer = vrank + mask
        if peer < size:
            src = (peer + root) % size
            got, _ = yield from _recv_obj(comm, src, tag)
            sub.update(got)
        mask <<= 1
    out: List[Any] = [None] * size
    for v, o in sub.items():
        out[(v + root) % size] = o
    return out


def scatter(comm, objs: Optional[List[Any]], root: int, style=None):
    """Scatter a list of per-rank objects from *root*."""
    tag = _coll_tag(comm, TAG_SCATTER)
    style = _registry.resolve(comm, "scatter", style, 0)
    if style is None:
        style = "linear"
    return _registry.get("scatter", style)(comm, objs, root, tag)


@_registry.register("scatter", "linear")
def _scatter_linear(comm, objs, root, tag) -> Any:
    if comm.rank == root:
        if objs is None or len(objs) != comm.size:
            raise MPIError(f"scatter needs one object per rank ({comm.size})")
        for r in range(comm.size):
            if r != root:
                yield from _send_obj(comm, objs[r], r, tag)
        return objs[root]
    obj, _ = yield from _recv_obj(comm, root, tag)
    return obj


@_registry.register("scatter", "binomial")
def _scatter_binomial(comm, objs, root, tag) -> Any:
    """Subtree slices (vrank -> object dicts) split down a binomial tree."""
    size, rank = comm.size, comm.rank
    vrank = (rank - root) % size
    mask = 1
    if vrank == 0:
        if objs is None or len(objs) != size:
            raise MPIError(f"scatter needs one object per rank ({size})")
        while mask < size:
            mask <<= 1
        sub = {v: objs[(v + root) % size] for v in range(size)}
    else:
        while not (vrank & mask):
            mask <<= 1
        parent = (vrank - mask + root) % size
        sub, _ = yield from _recv_obj(comm, parent, tag)
    mask >>= 1
    while mask > 0:
        child = vrank + mask
        if child < size:
            dst = (child + root) % size
            hi = min(child + mask, size)
            payload = {v: sub.pop(v) for v in range(child, hi) if v in sub}
            yield from _send_obj(comm, payload, dst, tag)
        mask >>= 1
    return sub[vrank]


def allgather(comm, obj: Any, style=None):
    """All ranks end with [obj_0, ..., obj_{P-1}]."""
    style = _registry.resolve(comm, "allgather", style, 0)
    if style is None or style == "ring":
        return allgather_obj(comm, obj, tag=TAG_ALLGATHER)
    tag = _coll_tag(comm, TAG_ALLGATHER)
    return _registry.get("allgather", style)(comm, obj, tag)


def allgather_obj(comm, obj: Any, tag: int = TAG_OBJ) -> List[Any]:
    tag = _coll_tag(comm, tag)
    return (yield from _allgather_ring(comm, obj, tag))


@_registry.register("allgather", "ring")
def _allgather_ring(comm, obj, tag) -> List[Any]:
    """Ring allgather: P-1 steps, each forwarding the newest block."""
    size, rank = comm.size, comm.rank
    out: List[Any] = [None] * size
    out[rank] = obj
    if size == 1:
        return out
    right = (rank + 1) % size
    left = (rank - 1) % size
    for step in range(size - 1):
        outgoing = out[(rank - step) % size]
        req = yield from _isend_obj(comm, outgoing, right, tag)
        incoming, _ = yield from _recv_obj(comm, left, tag)
        out[(rank - step - 1) % size] = incoming
        yield from comm.wait(req)
    return out


@_registry.register("allgather", "gather_bcast")
def _allgather_gather_bcast(comm, obj, tag) -> List[Any]:
    """Binomial gather of subtree dicts to rank 0, then a binomial
    object broadcast of the assembled list — 2·log₂P rounds."""
    size, rank = comm.size, comm.rank
    out: Optional[List[Any]] = None
    sub = {rank: obj}
    mask = 1
    while mask < size:
        if rank & mask:
            yield from _send_obj(comm, sub, rank - mask, tag)
            break
        peer = rank + mask
        if peer < size:
            got, _ = yield from _recv_obj(comm, peer, tag)
            sub.update(got)
        mask <<= 1
    if rank == 0:
        out = [sub[v] for v in range(size)]
    mask = 1
    while mask < size:
        if rank & mask:
            out, _ = yield from _recv_obj(comm, rank - mask, tag)
            break
        mask <<= 1
    mask >>= 1
    while mask > 0:
        if rank + mask < size:
            yield from _send_obj(comm, out, rank + mask, tag)
        mask >>= 1
    return out


def alltoall(comm, objs: List[Any]) -> List[Any]:
    """Pairwise-exchange alltoall: objs[r] goes to rank r."""
    tag = _coll_tag(comm, TAG_ALLTOALL)
    size, rank = comm.size, comm.rank
    if len(objs) != size:
        raise MPIError(f"alltoall needs one object per rank ({size})")
    out: List[Any] = [None] * size
    out[rank] = objs[rank]
    for offset in range(1, size):
        dst = (rank + offset) % size
        src = (rank - offset) % size
        req = yield from _isend_obj(comm, objs[dst], dst, tag)
        out[src], _ = yield from _recv_obj(comm, src, tag)
        yield from comm.wait(req)
    return out
