"""Barrier algorithms.

* ``dissemination`` (the default): ⌈log₂P⌉ rounds, every rank both
  sends and receives each round — P·⌈log₂P⌉ messages total, minimal
  rounds, the classic cluster barrier;
* ``tree``: binomial gather-up then release-down — 2·(P-1) messages
  total, the NIC-offload-style shape that stays affordable at O(10k)
  ranks where dissemination's P·log₂P message count dominates the
  simulator's wall clock.
"""

from __future__ import annotations

from repro.mpi.coll import registry as _registry
from repro.mpi.coll.ops import TAG_BARRIER, _coll_tag, _just

__all__ = ["barrier"]


def barrier(comm, style=None):
    """Block until every rank of *comm* has entered."""
    tag = _coll_tag(comm, TAG_BARRIER)
    if comm.size == 1:
        return _just(None)
    style = _registry.resolve(comm, "barrier", style, 0)
    if style is None:
        style = "dissemination"
    return _registry.get("barrier", style)(comm, tag)


@_registry.register("barrier", "dissemination")
def _barrier_dissemination(comm, tag):
    """Dissemination barrier: ⌈log₂P⌉ rounds of pairwise messages."""
    size, rank = comm.size, comm.rank
    offset = 1
    while offset < size:
        dst = (rank + offset) % size
        src = (rank - offset) % size
        req = yield from comm.isend(b"", dst, tag)
        yield from comm.recv(source=src, tag=tag)
        yield from comm.wait(req)
        offset <<= 1


@_registry.register("barrier", "tree")
def _barrier_tree(comm, tag):
    """Binomial-tree barrier: arrivals gather up to rank 0, then the
    release fans back down the same tree — 2·(P-1) messages total."""
    size, rank = comm.size, comm.rank
    mask = 1
    while mask < size:
        if rank & mask:
            parent = rank - mask
            yield from comm.send(b"", parent, tag)           # my subtree arrived
            yield from comm.recv(source=parent, tag=tag)     # release
            break
        child = rank + mask
        if child < size:
            yield from comm.recv(source=child, tag=tag)      # child subtree arrived
        mask <<= 1
    mask >>= 1
    while mask > 0:
        child = rank + mask
        if child < size:
            yield from comm.send(b"", child, tag)            # release subtree
        mask >>= 1
