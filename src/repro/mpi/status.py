"""MPI_Status: the result record of a receive or probe."""

from __future__ import annotations

from repro.mpi.constants import UNDEFINED
from repro.mpi.datatypes import Datatype

__all__ = ["Status"]


class Status:
    """Source, tag and byte count of a matched message.

    ``source`` and ``tag`` are the *actual* values (resolving any
    wildcards the receive used); ``count_bytes`` is the received message
    length in bytes.
    """

    __slots__ = ("source", "tag", "count_bytes", "error", "cancelled")

    def __init__(self, source: int = UNDEFINED, tag: int = UNDEFINED, count_bytes: int = 0):
        self.source = source
        self.tag = tag
        self.count_bytes = count_bytes
        self.error = 0
        self.cancelled = False

    def get_count(self, datatype: Datatype) -> int:
        """Number of whole *datatype* items received (MPI_Get_count).

        Returns :data:`UNDEFINED` if the byte count is not a whole
        number of items.
        """
        if datatype.size == 0:
            return 0 if self.count_bytes == 0 else UNDEFINED
        if self.count_bytes % datatype.size:
            return UNDEFINED
        return self.count_bytes // datatype.size

    def get_elements(self, datatype: Datatype) -> int:
        """Number of basic elements received (MPI_Get_elements)."""
        itemsize = datatype.basic.itemsize
        if self.count_bytes % itemsize:
            return UNDEFINED
        return self.count_bytes // itemsize

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Status source={self.source} tag={self.tag} bytes={self.count_bytes}>"
