"""The cluster MPI device: the paper's protocol over a byte stream.

Implements Section 5 of the paper on top of any reliable in-order
stream (kernel TCP or user-level reliable-UDP):

* **Wire format** — every protocol message starts with a 25-byte
  header: 1 type byte, 4 bytes of piggybacked freed-credit count, and a
  20-byte envelope / DMA-request record (exactly Table 1's accounting).
* **Credit flow control** — the receiver reserves memory per sender;
  envelopes and eager payloads are sent *optimistically* against that
  reservation and the receiver piggybacks freed byte counts on its own
  traffic (or sends an explicit credit message when idle).  Classic
  sliding windows don't work here because tags/communicators mean
  messages are not consumed in FIFO order — this is the paper's
  explicit design point.
* **Eager vs rendezvous** — small messages piggyback their data on the
  envelope (latency); large ones send the envelope first and the data
  only after the receiver's request, straight into the user buffer
  (no intermediate copy).
* **Receive path** — the progress loop reads 1 byte of message type,
  then the 24 remaining header bytes, then any payload: three separate
  read syscalls whose costs are the rows of Table 1.
* **Broadcast** — a succession of point-to-point messages
  (``bcast_style = "linear"``), as the paper implements on the cluster.
"""

from __future__ import annotations

import struct
from collections import defaultdict, deque
from dataclasses import dataclass, replace
from typing import Deque, Dict, Optional, Tuple

from repro.mpi.constants import MODE_BUFFERED, MODE_READY, MODE_STANDARD, MODE_SYNCHRONOUS
from repro.mpi.device.base import Endpoint
from repro.mpi.envelope import Envelope
from repro.mpi.exceptions import ReadyModeError, TruncationError
from repro.mpi.matching import Arrival
from repro.mpi.request import Request
from repro.mpi.status import Status
from repro.sim.notify import Notify

__all__ = ["ClusterConfig", "StreamEndpoint"]

# message types (the 1-byte discriminator of Table 1)
MSG_EAGER = 1
MSG_RDV_ENV = 2
MSG_RDV_REQ = 3
MSG_RDV_DATA = 4
MSG_CREDIT = 5
MSG_SYNC_ACK = 6

#: 20-byte envelope record: src rank, context, tag, nbytes, cookie, mode
_ENV = struct.Struct("<hHiiiB3x")
assert _ENV.size == 20
#: whole header in one pack: type byte + credit word + envelope — one
#: struct call instead of three allocations and two concatenations
_HDR_FULL = struct.Struct("<BIhHiiiB3x")
assert _HDR_FULL.size == 1 + 4 + _ENV.size
#: full header: type byte + 4 credit bytes + envelope
HEADER_BYTES = 1 + 4 + _ENV.size

_MODES = {MODE_STANDARD: 0, MODE_BUFFERED: 1, MODE_SYNCHRONOUS: 2, MODE_READY: 3}
_MODES_REV = {v: k for k, v in _MODES.items()}


@dataclass(frozen=True)
class ClusterConfig:
    """Tunables of the cluster device (bytes / µs)."""

    #: eager data travels with the envelope up to this size
    eager_threshold: int = 16384
    #: reserved receive memory per sender (the credit pool)
    reserve_bytes: int = 65536
    #: send an explicit credit message once this much is owed and idle
    credit_refresh: int = 32768
    #: CPU cost of the MPI send call surface
    send_overhead: float = 10.0
    #: CPU cost of posting a receive
    recv_overhead: float = 10.0
    #: CPU cost of matching a message (paper, Table 1: 35 µs)
    match_cost: float = 35.0
    #: additional cost per extra queue comparison beyond the first
    match_per_comparison: float = 2.0
    #: unexpected-queue capacity
    max_unexpected: int = 4096
    #: raise on ready-mode violations (see LowLatencyConfig)
    strict_ready: bool = True
    #: establish the mesh with real 3-way handshakes at startup instead
    #: of pre-established static pairs.  The paper uses static
    #: connections ("connection setup time is not of major importance");
    #: enabling this measures exactly what they excluded.  TCP only.
    handshake: bool = False

    def with_overrides(self, **kw) -> "ClusterConfig":
        return replace(self, **kw)


class _RxState:
    """Per-peer incremental parse state (keeps progress non-blocking)."""

    __slots__ = ("header", "need")

    def __init__(self):
        self.header: Optional[Tuple[int, int, Envelope]] = None
        self.need = 0


class _QueuedSend:
    __slots__ = ("req", "env", "wire", "msg_type")

    def __init__(self, req, env, wire, msg_type):
        self.req = req
        self.env = env
        self.wire = wire
        self.msg_type = msg_type


class StreamEndpoint(Endpoint):
    """One rank's endpoint over per-peer reliable streams.

    Subclasses provide :meth:`wire` (mesh construction) and the
    ``conns`` mapping (peer world rank -> stream connection exposing
    ``send``/``recv_exact``/``available``/``on_data``).
    """

    bcast_style = "linear"

    #: above this many ranks, ``wire`` defers pair construction to first
    #: use instead of pre-building the O(P²) full mesh.  Lazy creation
    #: spawns each connection's sender process mid-run, which shifts
    #: event ordering relative to the eager mesh — so small worlds (all
    #: the pinned determinism goldens) keep the eager, byte-identical
    #: wiring, and only large worlds (where O(P²) construction takes
    #: minutes and idle pairs waste O(P²) kernel state) go lazy.
    LAZY_MESH_THRESHOLD = 32

    def __init__(self, world_rank: int, host, config: Optional[ClusterConfig] = None):
        super().__init__(world_rank, host)
        self.host = host
        self.kernel = host.stack
        self.config = config or ClusterConfig()
        self.queues.max_unexpected = self.config.max_unexpected
        self.peers = []
        #: peer world rank -> stream connection
        self.conns: Dict[int, object] = {}
        #: lazy-mesh state, set by ``wire`` above LAZY_MESH_THRESHOLD
        self._lazy_mesh = False
        self._mesh_endpoints = None
        self.kick = Notify(self.sim, f"mpi{world_rank}-kick")
        self._rx: Dict[int, _RxState] = defaultdict(_RxState)
        #: send credit remaining at each peer
        self.credits: Dict[int, int] = defaultdict(lambda: self.config.reserve_bytes)
        #: freed bytes owed to each peer (piggybacked on the next send)
        self.owed: Dict[int, int] = defaultdict(int)
        self.sendq: Dict[int, Deque[_QueuedSend]] = defaultdict(deque)
        self.pending_rdv: Dict[int, Tuple[bytes, Request]] = {}
        self.awaiting_ack: Dict[int, Request] = {}
        self.rdv_recv: Dict[Tuple[int, int], Tuple[Request, Envelope, bool]] = {}
        self._cookie = 0
        self._seq: Dict[Tuple[int, int], int] = defaultdict(int)
        self.ready_violations = 0
        # Observability only (the wire header carries no sequence
        # number — adding one would change Table 1's byte accounting):
        # streams are FIFO and each send emits exactly one envelope, so
        # counting envelope arrivals per (peer, context) reconstructs
        # the sender's sequence numbers exactly.
        self._obs_arrive_seq: Dict[Tuple[int, int], int] = defaultdict(int)
        #: observability only: sender cookie -> message id
        self._obs_cookie: Dict[int, Tuple[int, int, int, int]] = {}

    # ------------------------------------------------------------- plumbing
    def attach_conn(self, peer_world: int, conn) -> None:
        self.conns[peer_world] = conn
        conn.on_data = self.kick.set

    @staticmethod
    def _connect_pair_now(ep_i, ep_j) -> None:  # pragma: no cover - abstract
        """Build and attach the connection pair between two endpoints."""
        raise NotImplementedError

    def _ensure_conn(self, dest: int) -> None:
        """Lazy mesh: build the pair to *dest* on first outbound use.

        Both directions attach (the peer gets its ``on_data`` kick), so
        a rank that only ever receives from us never needs its own
        ensure call.
        """
        if dest not in self.conns:
            self._connect_pair_now(self, self._mesh_endpoints[dest])

    def _next_cookie(self) -> int:
        self._cookie += 1
        return self._cookie

    def _pack_header(self, msg_type: int, peer: int, env: Envelope) -> bytes:
        credits = self.owed[peer]
        self.owed[peer] = 0
        return _HDR_FULL.pack(
            msg_type,
            credits,
            env.src,
            env.context,
            env.tag,
            env.nbytes,
            env.cookie or 0,
            _MODES[env.mode],
        )

    @staticmethod
    def _unpack_env(raw: bytes, src_world: int) -> Envelope:
        src, context, tag, nbytes, cookie, mode = _ENV.unpack(raw)
        return Envelope(
            src=src,
            tag=tag,
            context=context,
            nbytes=nbytes,
            mode=_MODES_REV[mode],
            cookie=cookie,
            extra=src_world,
        )

    # ------------------------------------------------------------------ send
    def start_send(self, req: Request):
        cfg = self.config
        obs = self.sim.obs
        t0 = self.sim.now
        yield from self.host.cpu.execute(cfg.send_overhead)
        wire = req.datatype.pack(req.buf, req.count)
        dest_world = req.comm.world_rank(req.peer)
        key = (dest_world, req.comm.context_id)
        env = Envelope(
            src=req.comm.rank,
            tag=req.tag,
            context=req.comm.context_id,
            nbytes=len(wire),
            mode=req.mode,
            seq=self._seq[key],
            extra=self.world_rank,
        )
        self._seq[key] += 1
        msg_type = MSG_EAGER if len(wire) <= cfg.eager_threshold else MSG_RDV_ENV
        if obs is not None:
            obs.emit(t0, "dev", "msg.send", rank=self.world_rank,
                     msg=(self.world_rank, dest_world, env.context, env.seq),
                     detail={"tag": env.tag, "nbytes": env.nbytes,
                             "proto": "eager" if msg_type == MSG_EAGER else "rdv",
                             "mode": env.mode})
        self.sendq[dest_world].append(_QueuedSend(req, env, wire, msg_type))
        yield from self._issue_sends()

    def _issue_sends(self):
        issued = False
        obs = self.sim.obs
        for dest in list(self.sendq):
            if dest not in self.conns:
                if self._lazy_mesh:
                    self._ensure_conn(dest)
                else:
                    continue  # connection still being established; stay queued
            q = self.sendq[dest]
            while q:
                op = q[0]
                need = HEADER_BYTES + (len(op.wire) if op.msg_type == MSG_EAGER else 0)
                if self.credits[dest] < need:
                    if obs is not None:
                        obs.emit(self.sim.now, "dev", "stall.credit",
                                 rank=self.world_rank,
                                 detail={"dest": dest, "need": need,
                                         "credits": self.credits[dest],
                                         "queued": len(q)})
                    break  # optimistic sending stops when the reservation is full
                q.popleft()
                self.credits[dest] -= need
                yield from self._issue_one(dest, op)
                issued = True
            if not q:
                del self.sendq[dest]
        return issued

    def _issue_one(self, dest: int, op: _QueuedSend):
        env, req = op.env, op.req
        conn = self.conns[dest]
        obs = self.sim.obs
        mid = (self.world_rank, dest, env.context, env.seq) if obs is not None else None
        if op.msg_type == MSG_EAGER:
            if env.mode == MODE_SYNCHRONOUS:
                env.cookie = self._next_cookie()
                self.awaiting_ack[env.cookie] = req
                if obs is not None:
                    self._obs_cookie[env.cookie] = mid
            if obs is not None:
                obs.emit(self.sim.now, "dev", "env.sent", rank=self.world_rank,
                         msg=mid, detail={"nbytes": env.nbytes, "proto": "eager"})
            header = self._pack_header(MSG_EAGER, dest, env)
            yield from conn.send(header + op.wire)
            if env.mode != MODE_SYNCHRONOUS:
                req._complete(Status(tag=env.tag, count_bytes=env.nbytes))
                if obs is not None:
                    obs.emit(self.sim.now, "dev", "send.complete",
                             rank=self.world_rank, msg=mid)
        else:
            env.cookie = self._next_cookie()
            self.pending_rdv[env.cookie] = (op.wire, req)
            if obs is not None:
                self._obs_cookie[env.cookie] = mid
                obs.emit(self.sim.now, "dev", "env.sent", rank=self.world_rank,
                         msg=mid, detail={"nbytes": env.nbytes, "proto": "rdv"})
            header = self._pack_header(MSG_RDV_ENV, dest, env)
            yield from conn.send(header)

    # ---------------------------------------------------------------- receive
    def start_recv(self, req: Request):
        cfg = self.config
        yield from self.host.cpu.execute(cfg.recv_overhead)
        arrival, comparisons = self.queues.post(req)
        if comparisons:
            yield from self.host.cpu.execute(
                cfg.match_cost + cfg.match_per_comparison * max(0, comparisons - 1)
            )
        if arrival is not None:
            obs = self.sim.obs
            if obs is not None:
                obs.emit(self.sim.now, "dev", "match.hit", rank=self.world_rank,
                         msg=self._obs_msgid(arrival.envelope),
                         detail={"unexpected": True, "comparisons": comparisons})
            yield from self._fulfill(req, arrival)

    # ------------------------------------------------------------ fault tolerance
    def _ft_requests(self):
        yield from super()._ft_requests()
        for dest in list(self.sendq):
            q = self.sendq[dest]
            for op in list(q):
                def cancel(q=q, op=op):
                    try:
                        q.remove(op)
                    except ValueError:
                        pass

                yield op.req, cancel
        for cookie in list(self.pending_rdv):
            _wire, req = self.pending_rdv[cookie]
            yield req, (lambda c=cookie: self.pending_rdv.pop(c, None))
        for cookie in list(self.awaiting_ack):
            yield self.awaiting_ack[cookie], (
                lambda c=cookie: self.awaiting_ack.pop(c, None))
        for key in list(self.rdv_recv):
            req, _env, _trunc = self.rdv_recv[key]
            yield req, (lambda k=key: self.rdv_recv.pop(k, None))

    def _ft_wake(self) -> None:
        self.kick.set()

    # --------------------------------------------------------------- progress
    def _progress(self, block: bool):
        did = False
        for peer in list(self.conns):
            if peer in self._ft_dead:
                continue  # the FT layer announced this peer dead
            got = yield from self._drain_conn(peer)
            did = did or got
        issued = yield from self._issue_sends()
        did = did or issued
        yield from self._refresh_credits()
        if block and not did:
            yield self.kick.wait1()
            return True
        return did

    def _drain_conn(self, peer: int):
        """Parse as many complete messages as are buffered (never blocks).

        A dead connection (retransmissions exhausted, peer reset) raises
        its terminal error here, surfacing device failure inside whatever
        MPI call is driving progress.
        """
        conn = self.conns[peer]
        err = getattr(conn, "error", None)
        if err is not None:
            ft = getattr(self.sim, "ft", None)
            if ft is not None and ft.is_crashing(peer):
                # transport-level failure detection: retransmissions to
                # the crashed host exhausted before the detector fired
                ft.mark_failed(peer, cause="retransmit")
                return False
            raise err
        st = self._rx[peer]
        did = False
        while True:
            if st.header is None:
                if conn.available < HEADER_BYTES:
                    break
                type_raw = yield from conn.recv_exact(1)  # read for msg type
                rest = yield from conn.recv_exact(HEADER_BYTES - 1)  # read for envelope
                msg_type = type_raw[0]
                credits = int.from_bytes(rest[:4], "little")
                if credits:
                    self.credits[peer] += credits
                env = self._unpack_env(rest[4:], peer)
                payload = 0
                if msg_type in (MSG_EAGER, MSG_RDV_DATA):
                    payload = env.nbytes
                st.header = (msg_type, payload, env)
                st.need = payload
            msg_type, payload, env = st.header
            if conn.available < st.need:
                break
            data = b""
            if st.need:
                data = yield from conn.recv_exact(st.need)
            st.header = None
            st.need = 0
            yield from self._dispatch(peer, msg_type, env, data)
            did = True
        return did

    def _dispatch(self, peer: int, msg_type: int, env: Envelope, data: bytes):
        cfg = self.config
        obs = self.sim.obs
        if msg_type == MSG_CREDIT:
            return
        if msg_type == MSG_SYNC_ACK:
            req = self.awaiting_ack.pop(env.cookie, None)
            mid = self._obs_cookie.pop(env.cookie, None)
            if req is None or req.complete:
                return  # op already failed (peer death / revoke); stale ack
            req._complete(Status(tag=req.tag, count_bytes=req.datatype.size * req.count))
            if obs is not None:
                obs.emit(self.sim.now, "dev", "send.complete", rank=self.world_rank,
                         msg=mid, detail={"sync": True})
            return
        if msg_type == MSG_RDV_REQ:
            # the receiver asks for our rendezvous payload
            entry = self.pending_rdv.pop(env.cookie, None)
            if entry is None:
                self._obs_cookie.pop(env.cookie, None)
                return  # send already failed (peer death / revoke)
            wire, sreq = entry
            conn = self.conns[peer]
            mid = self._obs_cookie.pop(env.cookie, None) if obs is not None else None
            if obs is not None:
                obs.emit(self.sim.now, "dev", "rdv.data", rank=self.world_rank,
                         msg=mid, detail={"nbytes": len(wire)})
            header = self._pack_header(MSG_RDV_DATA, peer, env)
            yield from conn.send(header + wire)
            if not sreq.complete:
                sreq._complete(Status(tag=sreq.tag, count_bytes=len(wire)))
            if obs is not None:
                obs.emit(self.sim.now, "dev", "send.complete",
                         rank=self.world_rank, msg=mid)
            return
        if msg_type == MSG_RDV_DATA:
            rdv_entry = self.rdv_recv.pop((peer, env.cookie), None)
            if rdv_entry is None:
                return  # receive already failed; drop the payload
            req, orig_env, truncated = rdv_entry
            status = Status(source=orig_env.src, tag=orig_env.tag, count_bytes=orig_env.nbytes)
            if truncated:
                req._fail(
                    TruncationError(
                        f"{orig_env.nbytes} bytes into a "
                        f"{self._capacity_bytes(req)}-byte receive"
                    )
                )
            else:
                self._store(req, data, status)
                if obs is not None:
                    obs.emit(self.sim.now, "dev", "msg.complete", rank=self.world_rank,
                             msg=self._obs_msgid(orig_env),
                             detail={"nbytes": orig_env.nbytes})
            return
        # EAGER or RDV_ENV: run the matching engine
        if obs is not None:
            # reconstruct the sender's sequence number (FIFO stream, one
            # envelope per send => arrival order == sequence order)
            akey = (peer, env.context)
            env.seq = self._obs_arrive_seq[akey]
            self._obs_arrive_seq[akey] = env.seq + 1
            obs.emit(self.sim.now, "dev", "env.arrived", rank=self.world_rank,
                     msg=self._obs_msgid(env), detail={"nbytes": env.nbytes})
        arrival = Arrival(env, data=data if msg_type == MSG_EAGER else None)
        req, comparisons = self.queues.arrive(arrival)
        yield from self.host.cpu.execute(
            cfg.match_cost + cfg.match_per_comparison * max(0, comparisons - 1)
        )
        if obs is not None:
            obs.emit(self.sim.now, "dev",
                     "match.hit" if req is not None else "match.miss",
                     rank=self.world_rank, msg=self._obs_msgid(env),
                     detail={"unexpected": False, "comparisons": comparisons})
        # the reserved space is drained as soon as we've read the message
        self.owed[peer] += HEADER_BYTES + (len(data) if msg_type == MSG_EAGER else 0)
        if req is not None:
            yield from self._fulfill(req, arrival)
        elif env.mode == MODE_READY:
            self.ready_violations += 1
            if cfg.strict_ready:
                raise ReadyModeError(
                    f"ready-mode send from rank {env.src} (tag {env.tag}) "
                    "arrived before the matching receive was posted"
                )

    def _fulfill(self, req: Request, arrival: Arrival):
        env = arrival.envelope
        capacity = self._capacity_bytes(req)
        truncated = env.nbytes > capacity
        status = Status(source=env.src, tag=env.tag, count_bytes=env.nbytes)
        peer = env.extra
        obs = self.sim.obs
        if arrival.data is not None:
            if truncated:
                req._fail(TruncationError(f"{env.nbytes} bytes into a {capacity}-byte receive"))
            else:
                self._store(req, arrival.data, status)
                if obs is not None:
                    obs.emit(self.sim.now, "dev", "msg.complete", rank=self.world_rank,
                             msg=self._obs_msgid(env), detail={"nbytes": env.nbytes})
            if env.mode == MODE_SYNCHRONOUS:
                conn = self.conns[peer]
                header = self._pack_header(MSG_SYNC_ACK, peer, env)
                yield from conn.send(header)
        else:
            # rendezvous: ask the sender for the data
            self.rdv_recv[(peer, env.cookie)] = (req, env, truncated)
            conn = self.conns[peer]
            if obs is not None:
                obs.emit(self.sim.now, "dev", "rdv.rts", rank=self.world_rank,
                         msg=self._obs_msgid(env), detail={"nbytes": env.nbytes})
            header = self._pack_header(MSG_RDV_REQ, peer, env)
            yield from conn.send(header)

    def _refresh_credits(self):
        """Explicit credit messages when a lot is owed and we are idle."""
        for peer, owed in list(self.owed.items()):
            if owed >= self.config.credit_refresh and peer not in self._ft_dead:
                obs = self.sim.obs
                if obs is not None:
                    obs.emit(self.sim.now, "dev", "credit.grant", rank=self.world_rank,
                             detail={"peer": peer, "bytes": owed})
                env = Envelope(src=0, tag=0, context=0, nbytes=0, extra=self.world_rank)
                header = self._pack_header(MSG_CREDIT, peer, env)
                yield from self.conns[peer].send(header)

    # ----------------------------------------------------------------- helpers
    def _obs_msgid(self, env: Envelope):
        """Correlation id for a received envelope (seq reconstructed at
        arrival — see ``_obs_arrive_seq``)."""
        if env.extra is None:
            return None
        return (env.extra, self.world_rank, env.context, env.seq)

    def _flow_snapshot(self) -> dict:
        return {
            "sends_waiting_for_credit": {
                dest: {"tags": [op.env.tag for op in q], "credits": self.credits[dest]}
                for dest, q in self.sendq.items() if q
            },
            "credits_owed": {p: o for p, o in self.owed.items() if o},
            "rendezvous_awaiting_request": len(self.pending_rdv),
            "rendezvous_awaiting_data": len(self.rdv_recv),
            "ssends_awaiting_ack": len(self.awaiting_ack),
        }

    def _describe_flow(self, flow: dict) -> str:
        waiting = ", ".join(
            f"dest={dest}:[{', '.join(f'tag={t}' for t in d['tags'])}] "
            f"credits={d['credits']}"
            for dest, d in flow["sends_waiting_for_credit"].items()
        ) or "none"
        owed = flow["credits_owed"] or "none"
        return (
            f"sends-waiting-for-credit=[{waiting}]; credits-owed={owed}; "
            f"rendezvous-awaiting-request={flow['rendezvous_awaiting_request']}; "
            f"rendezvous-awaiting-data={flow['rendezvous_awaiting_data']}; "
            f"ssends-awaiting-ack={flow['ssends_awaiting_ack']}"
        )

    @staticmethod
    def _capacity_bytes(req: Request) -> float:
        if req.buf is None:
            return float("inf")
        return req.datatype.size * req.count

    def _store(self, req: Request, data: bytes, status: Status) -> None:
        if req.buf is None:
            req.data = data
        else:
            count = len(data) // req.datatype.size if req.datatype.size else 0
            req.datatype.unpack(data, req.buf, count)
        req._complete(status)

    # ------------------------------------------------------------------ probe
    def iprobe(self, source: int, tag: int, comm):
        yield from self._progress(block=False)
        arrival = self.queues.probe(source, tag, comm.context_id)
        if arrival is None:
            return None
        env = arrival.envelope
        return Status(source=env.src, tag=env.tag, count_bytes=env.nbytes)

    # --------------------------------------------------------------- wiring
    @classmethod
    def wire(cls, machine, endpoints) -> None:  # pragma: no cover - abstract
        raise NotImplementedError
