"""The endpoint contract shared by all MPI devices.

An *endpoint* is one rank's attachment to the transport.  The
communicator layer calls:

* ``start_send(req)`` / ``start_recv(req)`` — generators that charge
  CPU time and launch the protocol, returning without blocking;
* ``wait(reqs, mode)`` — generator blocking until all/any requests
  complete, driving protocol progress while it waits;
* ``test(req)`` — one nonblocking progress pass;
* ``iprobe`` / ``probe`` — envelope peeking;
* ``bcast_hw`` — optional hardware broadcast fast path.

The base class provides the progress-loop wait used by every device
that matches on the main processor (low-latency Meiko, TCP, UDP): those
devices implement ``_progress(block)``.  The MPICH device overrides
``wait`` wholesale since its matching runs on the Elan.

Buffered sends (MPI_Bsend) are implemented here once: the payload is
copied into the attached buffer, the user request completes locally,
and the actual transfer proceeds in the background; buffer space is
reclaimed when the underlying transfer finishes.
"""

from __future__ import annotations

from typing import Sequence

from repro.mpi.constants import MODE_STANDARD
from repro.mpi.exceptions import BufferError_, MPIError
from repro.mpi.matching import MatchQueues
from repro.mpi.request import Request
from repro.mpi.status import Status

__all__ = ["Endpoint", "BSEND_OVERHEAD"]

#: per-message bookkeeping bytes reserved in the attached buffer
#: (MPI_BSEND_OVERHEAD)
BSEND_OVERHEAD = 32


class Endpoint:
    """Per-rank device endpoint (abstract)."""

    def __init__(self, world_rank: int, host):
        self.world_rank = world_rank
        self.host = host
        self.sim = host.sim
        self.queues = MatchQueues()
        #: world ranks announced dead by the FT layer (see repro.mpi.ft)
        self._ft_dead: set = set()
        #: communicator contexts revoked by the FT layer
        self._ft_revoked: set = set()
        # bsend buffer accounting
        self._bsend_capacity = 0
        self._bsend_used = 0

    # -- to be provided by subclasses ----------------------------------------
    def start_send(self, req: Request):  # pragma: no cover - abstract
        """Generator: launch the send protocol for *req* (non-blocking)."""
        raise NotImplementedError
        yield  # noqa: unreachable - marks this as a generator to readers

    def start_recv(self, req: Request):  # pragma: no cover - abstract
        """Generator: post the receive *req* (non-blocking)."""
        raise NotImplementedError
        yield

    def _progress(self, block: bool):  # pragma: no cover - abstract
        """Generator: one progress pass.  If *block*, sleep until there
        might be new work.  Returns True if anything was processed."""
        raise NotImplementedError
        yield

    def iprobe(self, source: int, tag: int, comm):  # pragma: no cover - abstract
        """Generator -> Optional[Status]: nonblocking envelope peek.

        *source* is a communicator rank (or ANY_SOURCE); the returned
        Status carries communicator-scoped ranks.
        """
        raise NotImplementedError
        yield

    # -- optional device fast paths ------------------------------------------
    #: broadcast style the device prefers: "hardware", "binomial", "linear"
    bcast_style = "binomial"

    #: per-platform collective tuning table (platforms.COLL_TUNING entry),
    #: stamped by the platform builders; None = legacy per-device defaults
    coll_tuning = None

    def bcast_hw(self, comm, buf, count, datatype, root: int):
        """Hardware broadcast fast path; None if unsupported."""
        return None

    # -- provided machinery -----------------------------------------------------
    def wtime(self) -> float:
        return self.sim.now

    def state_snapshot(self) -> dict:
        """Machine-readable dump of this endpoint's outstanding operations.

        This is the *primary* state dump — the deadlock watchdog attaches
        it to :class:`~repro.errors.DeadlockError` as ``rank_states`` —
        and :meth:`describe_state` is merely its string rendering.  The
        common keys are ``rank``, ``posted`` and ``unexpected``; devices
        merge their flow-control state via :meth:`_flow_snapshot`.
        """
        q = self.queues
        snap = {
            "rank": self.world_rank,
            "posted": [{"source": r.peer, "tag": r.tag} for r in q.posted],
            "unexpected": [
                {"source": a.envelope.src, "tag": a.envelope.tag} for a in q.unexpected
            ],
        }
        flow = self._flow_snapshot()
        if flow:
            snap["flow"] = flow
        return snap

    def _flow_snapshot(self) -> dict:
        """Device-specific flow-control state for :meth:`state_snapshot`."""
        return {}

    def describe_state(self) -> str:
        """One-line diagnostic of this endpoint's outstanding operations,
        rendered from :meth:`state_snapshot` (the structured form the
        World's deadlock watchdog reports)."""
        snap = self.state_snapshot()
        posted = ", ".join(
            f"(src={d['source']}, tag={d['tag']})" for d in snap["posted"]
        ) or "none"
        unexpected = ", ".join(
            f"(src={d['source']}, tag={d['tag']})" for d in snap["unexpected"]
        ) or "none"
        parts = [f"posted-recvs=[{posted}]", f"unexpected=[{unexpected}]"]
        flow = self._describe_flow(snap.get("flow", {}))
        if flow:
            parts.append(flow)
        return "; ".join(parts)

    def _describe_flow(self, flow: dict) -> str:
        """Render the device's :meth:`_flow_snapshot` for :meth:`describe_state`."""
        return ""

    def wait(self, reqs: Sequence[Request], mode: str = "all"):
        """Generator: block until all (or any) of *reqs* complete.

        Progress is driven from inside the call — with main-processor
        matching, this is where the paper's implementation matches
        envelopes and issues queued transfers.
        """
        if mode not in ("all", "any"):
            raise MPIError(f"wait mode must be 'all' or 'any', got {mode!r}")
        if len(reqs) == 1:
            # Single-request fast path (the vast majority of waits):
            # "all" and "any" coincide, so skip the per-pass list scans.
            r0 = reqs[0]
            while not r0.complete:
                did = yield from self._progress(block=False)
                if r0.complete:
                    break
                if not did:
                    yield from self._progress(block=True)
            r0.raise_if_failed()
            return
        while not self._satisfied(reqs, mode):
            did = yield from self._progress(block=False)
            if self._satisfied(reqs, mode):
                break
            if not did:
                yield from self._progress(block=True)
        for r in reqs:
            if r.complete:
                r.raise_if_failed()

    def finalize(self):
        """Generator: drain transfers this rank still owes the network.

        MPI_Finalize semantics — a buffered send completes locally while
        its wire transfer may still be parked on flow control (envelope
        slots, connection credits).  A rank that makes no further MPI
        calls would strand those queued transfers, deadlocking the
        receiver; drive progress until the local send queue is empty.
        """
        while any(q for q in getattr(self, "sendq", {}).values()):
            yield from self._progress(block=True)

    @staticmethod
    def _satisfied(reqs: Sequence[Request], mode: str) -> bool:
        if mode == "all":
            return all(r.complete for r in reqs)
        return any(r.complete for r in reqs)

    def test(self, req: Request):
        """Generator -> bool: one progress pass, then check completion."""
        yield from self._progress(block=False)
        if req.complete:
            req.raise_if_failed()
        return req.complete

    def cancel_recv(self, req: Request):
        """Generator -> bool: withdraw a posted, unmatched receive.

        Works for every device that matches on the main processor (the
        posted queue lives in ``self.queues``); the MPICH device
        overrides this to ask the Elan.
        """
        yield from self._progress(block=False)
        if req.complete:
            return False
        if self.queues.cancel_post(req):
            status = Status()
            status.cancelled = True
            req._complete(status)
            return True
        return False

    def probe(self, source: int, tag: int, comm):
        """Generator -> Status: block until a matching envelope is present."""
        while True:
            status = yield from self.iprobe(source, tag, comm)
            if status is not None:
                return status
            yield from self._progress(block=True)

    # -- fault tolerance (opt-in; driven by repro.mpi.ft.FTState) ---------------
    def _ft_requests(self):
        """Yield ``(request, cancel_fn)`` for every incomplete operation
        this endpoint owns.  ``cancel_fn`` (or None) removes the request
        from the device's protocol structures so a failed request can
        never be matched or completed by late wire traffic.  Devices
        with additional protocol state extend this.
        """
        for req in list(self.queues.posted):
            yield req, (lambda r=req: self.queues.cancel_post(r))

    def _ft_wake(self) -> None:
        """Wake any rank blocked inside this endpoint's progress loop so
        it observes newly failed requests.  Device-specific."""

    def _ft_involves(self, req: Request, dead_world: int) -> bool:
        """Does *req* depend on the dead rank for completion?"""
        from repro.mpi.collectives import is_agree_tag
        from repro.mpi.constants import ANY_SOURCE, INTERNAL_TAG_BASE

        comm = req.comm
        if comm is None or not comm.group.contains(dead_world):
            return False
        if (req.tag is not None and req.tag >= INTERNAL_TAG_BASE
                and not is_agree_tag(req.tag)):
            # Internal collective traffic: a collective cannot complete
            # once any participant died.  Fail it even when this leg
            # binds two survivors — otherwise ranks downstream in the
            # tree wait forever on a rank that already errored out, and
            # the watchdog (not RankFailed) is what the user sees.
            # Agreement traffic is exempt: ULFM requires agree to
            # complete despite failures.
            return True
        if req.kind == "send":
            return comm.world_rank(req.peer) == dead_world
        if req.peer == ANY_SOURCE:
            # ULFM: a pending wildcard receive raises when any failure
            # in its communicator is detected (the sender might be dead)
            return True
        return comm.world_rank(req.peer) == dead_world

    def ft_fail_requests(self, predicate, exc_factory) -> int:
        """Fail every incomplete request matching *predicate* and wake
        the rank; returns the number of requests failed."""
        n = 0
        for req, cancel in list(self._ft_requests()):
            if req.complete or not predicate(req):
                continue
            if cancel is not None:
                cancel()
            req._fail(exc_factory(req))
            n += 1
        self._ft_wake()
        return n

    def _ft_factory(self, dead_world: int):
        from repro.mpi.exceptions import RankFailed

        def factory(req, dead=dead_world):
            return RankFailed(
                f"rank {req.comm.rank}: peer process failed "
                f"(world rank {dead}, op peer={req.peer}, tag={req.tag})",
                rank=req.comm.rank, peer=req.peer, tag=req.tag, failed=(dead,),
            )

        return factory

    def ft_peer_failed(self, dead_world: int) -> None:
        """The FT layer announces that *dead_world* has died: poison every
        operation that depends on it with :class:`RankFailed`."""
        self._ft_dead.add(dead_world)
        self.ft_fail_requests(
            lambda r: self._ft_involves(r, dead_world),
            self._ft_factory(dead_world),
        )

    def ft_check_new(self, req: Request) -> None:
        """Poison a *freshly posted* request that is already doomed.

        The communicator pre-checks before posting, but detection or
        revocation can fire during the device's posting overhead — the
        announcement/revocation sweep ran before this request existed —
        so the communicator re-checks here once the request is on the
        wire.  Without the revocation half, a rank whose posting was
        delayed by CPU contention slips an operation past the revoke
        sweep and blocks forever on peers that already left for the
        recovery path.
        """
        if req.complete:
            return
        if self._ft_revoked and req.comm is not None:
            from repro.mpi.collectives import is_agree_tag
            from repro.mpi.exceptions import CommRevoked

            if (req.comm.context_id in self._ft_revoked
                    and not is_agree_tag(req.tag)):
                def factory(r):
                    return CommRevoked(
                        f"rank {r.comm.rank}: communicator revoked "
                        f"(op peer={r.peer}, tag={r.tag})",
                        rank=r.comm.rank, peer=r.peer, tag=r.tag,
                    )

                self.ft_fail_requests(lambda r, q=req: r is q, factory)
                return
        if not self._ft_dead:
            return
        for dead in sorted(self._ft_dead):
            if self._ft_involves(req, dead):
                self.ft_fail_requests(
                    lambda r, q=req: r is q, self._ft_factory(dead)
                )
                return

    def ft_context_revoked(self, context_id: int) -> None:
        """The FT layer revoked a communicator: poison every pending
        operation on that context with :class:`CommRevoked` — except
        agreement traffic, which ULFM requires to work on a revoked
        communicator."""
        from repro.mpi.collectives import is_agree_tag
        from repro.mpi.exceptions import CommRevoked

        self._ft_revoked.add(context_id)

        def doomed(req):
            comm = req.comm
            return (comm is not None and comm.context_id == context_id
                    and not is_agree_tag(req.tag))

        def factory(req):
            return CommRevoked(
                f"rank {req.comm.rank}: communicator revoked "
                f"(op peer={req.peer}, tag={req.tag})",
                rank=req.comm.rank, peer=req.peer, tag=req.tag,
            )

        self.ft_fail_requests(doomed, factory)

    # -- buffered sends ----------------------------------------------------------
    def attach_buffer(self, nbytes: int) -> None:
        """MPI_Buffer_attach: provide *nbytes* of bsend buffering."""
        if self._bsend_capacity and self._bsend_used:
            raise BufferError_("cannot attach while the previous buffer is in use")
        if nbytes < 0:
            raise BufferError_(f"negative buffer size {nbytes}")
        self._bsend_capacity = nbytes
        self._bsend_used = 0

    def detach_buffer(self) -> int:
        """MPI_Buffer_detach: returns the detached capacity.

        Real MPI blocks until pending buffered sends drain; ours requires
        they already have (raises otherwise), which is stricter but
        deterministic.
        """
        if self._bsend_used:
            raise BufferError_(
                f"{self._bsend_used} bytes of buffered sends still pending at detach"
            )
        cap = self._bsend_capacity
        self._bsend_capacity = 0
        return cap

    def start_bsend(self, req: Request):
        """Generator: buffered-mode send — complete locally, transfer behind."""
        need = req.datatype.size * req.count + BSEND_OVERHEAD
        if self._bsend_used + need > self._bsend_capacity:
            raise BufferError_(
                f"bsend of {need} bytes exceeds attached buffer "
                f"({self._bsend_used}/{self._bsend_capacity} in use)"
            )
        self._bsend_used += need
        # Copy out of the user buffer (that is the semantic point of bsend).
        wire = req.datatype.pack(req.buf, req.count)
        shadow = Request(
            "send", req.comm, wire, len(wire), _BYTE_REF(), req.peer, req.tag, MODE_STANDARD
        )

        def release(_req=shadow, need=need):
            self._bsend_used -= need

        shadow._device_state = None
        shadow.on_complete = release
        yield from self.start_send(shadow)
        req._device_state = shadow
        req._complete(Status(source=self.world_rank, tag=req.tag, count_bytes=len(wire)))


def _BYTE_REF():
    # late import to avoid a cycle datatypes -> ... -> base
    from repro.mpi.datatypes import BYTE

    return BYTE
