"""The endpoint contract shared by all MPI devices.

An *endpoint* is one rank's attachment to the transport.  The
communicator layer calls:

* ``start_send(req)`` / ``start_recv(req)`` — generators that charge
  CPU time and launch the protocol, returning without blocking;
* ``wait(reqs, mode)`` — generator blocking until all/any requests
  complete, driving protocol progress while it waits;
* ``test(req)`` — one nonblocking progress pass;
* ``iprobe`` / ``probe`` — envelope peeking;
* ``bcast_hw`` — optional hardware broadcast fast path.

The base class provides the progress-loop wait used by every device
that matches on the main processor (low-latency Meiko, TCP, UDP): those
devices implement ``_progress(block)``.  The MPICH device overrides
``wait`` wholesale since its matching runs on the Elan.

Buffered sends (MPI_Bsend) are implemented here once: the payload is
copied into the attached buffer, the user request completes locally,
and the actual transfer proceeds in the background; buffer space is
reclaimed when the underlying transfer finishes.
"""

from __future__ import annotations

from typing import Sequence

from repro.mpi.constants import MODE_STANDARD
from repro.mpi.exceptions import BufferError_, MPIError
from repro.mpi.matching import MatchQueues
from repro.mpi.request import Request
from repro.mpi.status import Status

__all__ = ["Endpoint", "BSEND_OVERHEAD"]

#: per-message bookkeeping bytes reserved in the attached buffer
#: (MPI_BSEND_OVERHEAD)
BSEND_OVERHEAD = 32


class Endpoint:
    """Per-rank device endpoint (abstract)."""

    def __init__(self, world_rank: int, host):
        self.world_rank = world_rank
        self.host = host
        self.sim = host.sim
        self.queues = MatchQueues()
        # bsend buffer accounting
        self._bsend_capacity = 0
        self._bsend_used = 0

    # -- to be provided by subclasses ----------------------------------------
    def start_send(self, req: Request):  # pragma: no cover - abstract
        """Generator: launch the send protocol for *req* (non-blocking)."""
        raise NotImplementedError
        yield  # noqa: unreachable - marks this as a generator to readers

    def start_recv(self, req: Request):  # pragma: no cover - abstract
        """Generator: post the receive *req* (non-blocking)."""
        raise NotImplementedError
        yield

    def _progress(self, block: bool):  # pragma: no cover - abstract
        """Generator: one progress pass.  If *block*, sleep until there
        might be new work.  Returns True if anything was processed."""
        raise NotImplementedError
        yield

    def iprobe(self, source: int, tag: int, comm):  # pragma: no cover - abstract
        """Generator -> Optional[Status]: nonblocking envelope peek.

        *source* is a communicator rank (or ANY_SOURCE); the returned
        Status carries communicator-scoped ranks.
        """
        raise NotImplementedError
        yield

    # -- optional device fast paths ------------------------------------------
    #: broadcast style the device prefers: "hardware", "binomial", "linear"
    bcast_style = "binomial"

    def bcast_hw(self, comm, buf, count, datatype, root: int):
        """Hardware broadcast fast path; None if unsupported."""
        return None

    # -- provided machinery -----------------------------------------------------
    def wtime(self) -> float:
        return self.sim.now

    def state_snapshot(self) -> dict:
        """Machine-readable dump of this endpoint's outstanding operations.

        This is the *primary* state dump — the deadlock watchdog attaches
        it to :class:`~repro.errors.DeadlockError` as ``rank_states`` —
        and :meth:`describe_state` is merely its string rendering.  The
        common keys are ``rank``, ``posted`` and ``unexpected``; devices
        merge their flow-control state via :meth:`_flow_snapshot`.
        """
        q = self.queues
        snap = {
            "rank": self.world_rank,
            "posted": [{"source": r.peer, "tag": r.tag} for r in q.posted],
            "unexpected": [
                {"source": a.envelope.src, "tag": a.envelope.tag} for a in q.unexpected
            ],
        }
        flow = self._flow_snapshot()
        if flow:
            snap["flow"] = flow
        return snap

    def _flow_snapshot(self) -> dict:
        """Device-specific flow-control state for :meth:`state_snapshot`."""
        return {}

    def describe_state(self) -> str:
        """One-line diagnostic of this endpoint's outstanding operations,
        rendered from :meth:`state_snapshot` (the structured form the
        World's deadlock watchdog reports)."""
        snap = self.state_snapshot()
        posted = ", ".join(
            f"(src={d['source']}, tag={d['tag']})" for d in snap["posted"]
        ) or "none"
        unexpected = ", ".join(
            f"(src={d['source']}, tag={d['tag']})" for d in snap["unexpected"]
        ) or "none"
        parts = [f"posted-recvs=[{posted}]", f"unexpected=[{unexpected}]"]
        flow = self._describe_flow(snap.get("flow", {}))
        if flow:
            parts.append(flow)
        return "; ".join(parts)

    def _describe_flow(self, flow: dict) -> str:
        """Render the device's :meth:`_flow_snapshot` for :meth:`describe_state`."""
        return ""

    def wait(self, reqs: Sequence[Request], mode: str = "all"):
        """Generator: block until all (or any) of *reqs* complete.

        Progress is driven from inside the call — with main-processor
        matching, this is where the paper's implementation matches
        envelopes and issues queued transfers.
        """
        if mode not in ("all", "any"):
            raise MPIError(f"wait mode must be 'all' or 'any', got {mode!r}")
        while not self._satisfied(reqs, mode):
            did = yield from self._progress(block=False)
            if self._satisfied(reqs, mode):
                break
            if not did:
                yield from self._progress(block=True)
        for r in reqs:
            if r.complete:
                r.raise_if_failed()

    def finalize(self):
        """Generator: drain transfers this rank still owes the network.

        MPI_Finalize semantics — a buffered send completes locally while
        its wire transfer may still be parked on flow control (envelope
        slots, connection credits).  A rank that makes no further MPI
        calls would strand those queued transfers, deadlocking the
        receiver; drive progress until the local send queue is empty.
        """
        while any(q for q in getattr(self, "sendq", {}).values()):
            yield from self._progress(block=True)

    @staticmethod
    def _satisfied(reqs: Sequence[Request], mode: str) -> bool:
        if mode == "all":
            return all(r.complete for r in reqs)
        return any(r.complete for r in reqs)

    def test(self, req: Request):
        """Generator -> bool: one progress pass, then check completion."""
        yield from self._progress(block=False)
        if req.complete:
            req.raise_if_failed()
        return req.complete

    def cancel_recv(self, req: Request):
        """Generator -> bool: withdraw a posted, unmatched receive.

        Works for every device that matches on the main processor (the
        posted queue lives in ``self.queues``); the MPICH device
        overrides this to ask the Elan.
        """
        yield from self._progress(block=False)
        if req.complete:
            return False
        if self.queues.cancel_post(req):
            status = Status()
            status.cancelled = True
            req._complete(status)
            return True
        return False

    def probe(self, source: int, tag: int, comm):
        """Generator -> Status: block until a matching envelope is present."""
        while True:
            status = yield from self.iprobe(source, tag, comm)
            if status is not None:
                return status
            yield from self._progress(block=True)

    # -- buffered sends ----------------------------------------------------------
    def attach_buffer(self, nbytes: int) -> None:
        """MPI_Buffer_attach: provide *nbytes* of bsend buffering."""
        if self._bsend_capacity and self._bsend_used:
            raise BufferError_("cannot attach while the previous buffer is in use")
        if nbytes < 0:
            raise BufferError_(f"negative buffer size {nbytes}")
        self._bsend_capacity = nbytes
        self._bsend_used = 0

    def detach_buffer(self) -> int:
        """MPI_Buffer_detach: returns the detached capacity.

        Real MPI blocks until pending buffered sends drain; ours requires
        they already have (raises otherwise), which is stricter but
        deterministic.
        """
        if self._bsend_used:
            raise BufferError_(
                f"{self._bsend_used} bytes of buffered sends still pending at detach"
            )
        cap = self._bsend_capacity
        self._bsend_capacity = 0
        return cap

    def start_bsend(self, req: Request):
        """Generator: buffered-mode send — complete locally, transfer behind."""
        need = req.datatype.size * req.count + BSEND_OVERHEAD
        if self._bsend_used + need > self._bsend_capacity:
            raise BufferError_(
                f"bsend of {need} bytes exceeds attached buffer "
                f"({self._bsend_used}/{self._bsend_capacity} in use)"
            )
        self._bsend_used += need
        # Copy out of the user buffer (that is the semantic point of bsend).
        wire = req.datatype.pack(req.buf, req.count)
        shadow = Request(
            "send", req.comm, wire, len(wire), _BYTE_REF(), req.peer, req.tag, MODE_STANDARD
        )

        def release(_req=shadow, need=need):
            self._bsend_used -= need

        shadow._device_state = None
        shadow.on_complete = release
        yield from self.start_send(shadow)
        req._device_state = shadow
        req._complete(Status(source=self.world_rank, tag=req.tag, count_bytes=len(wire)))


def _BYTE_REF():
    # late import to avoid a cycle datatypes -> ... -> base
    from repro.mpi.datatypes import BYTE

    return BYTE
