"""The paper's low-latency Meiko MPI device.

Protocol summary (paper, Section 4):

* **Matching on the SPARC.**  Envelopes arriving from the network are
  queued by the Elan; the SPARC matches them against posted receives
  whenever the application is inside an MPI call.  This gives fast
  (40 MHz) matching at the cost of no background receive progress —
  exactly the trade-off the paper studies against MPICH's Elan-side
  matching.
* **Hybrid transfer.**  Messages of at most
  :attr:`LowLatencyConfig.eager_threshold` = 180 bytes travel *with*
  the envelope (overlapping data transfer with matching), buffered at
  the receiver if no receive is posted.  Larger messages send the
  envelope only; after the match the receiver sends a request and the
  sender's Elan DMAs the data straight into the receive buffer — no
  intermediate copy.
* **One envelope slot per sender.**  Each receiver pre-allocates a
  single envelope slot per sending processor; a sender with an
  outstanding unacknowledged envelope queues further sends until the
  receiver's SPARC drains the slot and acknowledges it.
* **Background sending on the Elan.**  Send calls only enqueue a
  command; the Elan transmits in the background, so nonblocking sends
  return in constant time.
* **Hardware broadcast.**  ``MPI_Bcast`` maps to the CS/2's hardware
  broadcast: one injection, one fabric traversal, every node receives
  (the MPICH device, by contrast, broadcasts over point-to-point).
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, replace
from typing import Deque, Dict, List, Optional, Tuple

from repro.mpi.constants import INTERNAL_TAG_BASE, MODE_READY, MODE_SYNCHRONOUS
from repro.mpi.device.base import Endpoint
from repro.mpi.envelope import Envelope
from repro.mpi.exceptions import ReadyModeError, TruncationError
from repro.mpi.matching import Arrival
from repro.mpi.request import Request
from repro.mpi.status import Status

__all__ = ["LowLatencyConfig", "LowLatencyEndpoint"]

#: bytes of the envelope record written into the remote slot
SLOT_ENV_BYTES = 32
#: bytes of a rendezvous request-to-send transaction
RTS_BYTES = 16

#: internal tag used by the hardware-broadcast fast path
_BCAST_TAG = INTERNAL_TAG_BASE + 101


@dataclass(frozen=True)
class LowLatencyConfig:
    """Tunables of the low-latency device (µs / bytes).

    ``send_overhead``/``recv_overhead`` are the SPARC cost of the MPI
    call surface (communicator and datatype handling, request setup) —
    calibrated so the 1-byte ping-pong round trip lands at the paper's
    104 µs.
    """

    #: eager/rendezvous crossover (paper, Figure 1: 180 bytes)
    eager_threshold: int = 180
    #: SPARC cost of a send call beyond the raw primitives
    send_overhead: float = 33.5
    #: SPARC cost of a receive post beyond the raw primitives
    recv_overhead: float = 30.5
    #: envelope slots per (sender, receiver) pair.  The paper allocates
    #: exactly one ("space for a single send envelope for each sending
    #: processor at each receiver"); raising it is the ablation knob of
    #: benchmarks/bench_ablation_slots.py
    slots_per_sender: int = 1
    #: unexpected-queue capacity (envelope resources, Burns & Daoud)
    max_unexpected: int = 4096
    #: raise at the receiver when a ready-mode send finds no posted
    #: receive (MPI declares the program erroneous); if False, count it
    #: in ``ready_violations`` and deliver anyway
    strict_ready: bool = True

    def with_overrides(self, **kw) -> "LowLatencyConfig":
        return replace(self, **kw)


class _Hook:
    """Duck-typed completion target (has ``set()``) running a callback."""

    __slots__ = ("fn",)

    def __init__(self, fn):
        self.fn = fn

    def set(self) -> None:
        self.fn()


class _QueuedSend:
    __slots__ = ("req", "env", "wire")

    def __init__(self, req: Request, env: Envelope, wire: bytes):
        self.req = req
        self.env = env
        self.wire = wire


class LowLatencyEndpoint(Endpoint):
    """One rank's endpoint of the low-latency Meiko device."""

    bcast_style = "hardware"

    def __init__(self, world_rank: int, node, config: Optional[LowLatencyConfig] = None):
        super().__init__(world_rank, node)
        self.node = node
        self.config = config or LowLatencyConfig()
        self.queues.max_unexpected = self.config.max_unexpected
        #: set by the platform builder: world rank -> LowLatencyEndpoint
        self.peers: List["LowLatencyEndpoint"] = []
        #: anything-happened event: arrivals, acks, completions
        self.kick = node.event("mpi-kick")
        #: envelope arrivals deposited by the Elan, drained by the SPARC
        self.arrivals: Deque[Arrival] = deque()
        #: per-destination envelope-slot tokens (free slots remaining)
        slots = self.config.slots_per_sender
        self.tokens: Dict[int, int] = defaultdict(lambda: slots)
        #: sends waiting for a free slot, per destination world rank
        self.sendq: Dict[int, Deque[_QueuedSend]] = defaultdict(deque)
        #: rendezvous sends awaiting the receiver's request, by cookie
        self.pending_rdv: Dict[int, Tuple[bytes, Request]] = {}
        #: synchronous sends awaiting the matched acknowledgement
        self.awaiting_ack: Dict[int, Request] = {}
        self._cookie = 0
        #: rendezvous receives whose DMA is in flight, by (sender, cookie)
        self.rdv_wait: Dict[Tuple[int, int], Request] = {}
        #: per-(dest, context) envelope sequence numbers (testability)
        self._seq: Dict[Tuple[int, int], int] = defaultdict(int)
        #: count of ready-mode sends that found no posted receive
        self.ready_violations = 0
        #: observability only: rendezvous cookie -> message id
        self._obs_rdv: Dict[int, Tuple[int, int, int, int]] = {}

    # ------------------------------------------------------------------ sends
    def start_send(self, req: Request):
        p = self.node.params
        cfg = self.config
        obs = self.sim.obs
        t0 = self.sim.now
        yield from self.node.cpu.execute(cfg.send_overhead)
        wire = req.datatype.pack(req.buf, req.count)
        if not req.datatype.contiguous:
            # gathering a derived datatype costs a real copy
            yield from self.node.cpu.execute(len(wire) * p.sparc_copy_per_byte)
        dest_world = req.comm.world_rank(req.peer)
        key = (dest_world, req.comm.context_id)
        env = Envelope(
            src=req.comm.rank,
            tag=req.tag,
            context=req.comm.context_id,
            nbytes=len(wire),
            mode=req.mode,
            seq=self._seq[key],
            extra=self.world_rank,
        )
        self._seq[key] += 1
        if obs is not None:
            proto = "eager" if env.nbytes <= cfg.eager_threshold else "rdv"
            obs.emit(t0, "dev", "msg.send", rank=self.world_rank,
                     msg=(self.world_rank, dest_world, env.context, env.seq),
                     detail={"tag": env.tag, "nbytes": env.nbytes,
                             "proto": proto, "mode": env.mode})
        self.sendq[dest_world].append(_QueuedSend(req, env, wire))
        yield from self._issue_sends()

    def _issue_sends(self):
        """Issue queued sends whose destination slot is free."""
        issued = False
        obs = self.sim.obs
        for dest in list(self.sendq):
            q = self.sendq[dest]
            while q and self.tokens[dest] > 0:
                self.tokens[dest] -= 1
                op = q.popleft()
                yield from self._issue_one(dest, op)
                issued = True
            if not q:
                del self.sendq[dest]
            elif obs is not None:
                obs.emit(self.sim.now, "dev", "stall.slot", rank=self.world_rank,
                         detail={"dest": dest, "queued": len(q)})
        return issued

    def _issue_one(self, dest_world: int, op: _QueuedSend):
        receiver = self.peers[dest_world]
        env, wire, req = op.env, op.wire, op.req
        obs = self.sim.obs
        mid = (self.world_rank, dest_world, env.context, env.seq) if obs is not None else None
        if env.nbytes <= self.config.eager_threshold:
            # Eager: data rides with the envelope into the remote slot.
            if obs is not None:
                obs.emit(self.sim.now, "dev", "env.sent", rank=self.world_rank,
                         msg=mid, detail={"nbytes": env.nbytes, "proto": "eager"})
            arrival = Arrival(env, data=wire)
            yield from self.node.issue_txn(
                dest_world,
                SLOT_ENV_BYTES + len(wire),
                lambda: receiver._deliver(arrival),
                debug=f"ll-eager tag={env.tag}",
            )
            if env.mode == MODE_SYNCHRONOUS:
                cookie = self._next_cookie()
                env.cookie = cookie
                self.awaiting_ack[cookie] = req
            else:
                # complete once the payload has left the user buffer
                req._complete(Status(tag=env.tag, count_bytes=env.nbytes))
                if obs is not None:
                    obs.emit(self.sim.now, "dev", "send.complete",
                             rank=self.world_rank, msg=mid)
        else:
            # Rendezvous: envelope only; data will be DMAed on request.
            cookie = self._next_cookie()
            env.cookie = cookie
            self.pending_rdv[cookie] = (wire, req)
            if obs is not None:
                self._obs_rdv[cookie] = mid
                obs.emit(self.sim.now, "dev", "env.sent", rank=self.world_rank,
                         msg=mid, detail={"nbytes": env.nbytes, "proto": "rdv"})
            arrival = Arrival(env, data=None, claim=(self.world_rank, cookie))
            yield from self.node.issue_txn(
                dest_world,
                SLOT_ENV_BYTES,
                lambda: receiver._deliver(arrival),
                debug=f"ll-rdv-env tag={env.tag}",
            )

    def _next_cookie(self) -> int:
        self._cookie += 1
        return self._cookie

    # ---------------------------------------------------------------- receives
    def start_recv(self, req: Request):
        cfg = self.config
        p = self.node.params
        yield from self.node.cpu.execute(cfg.recv_overhead)
        arrival, comparisons = self.queues.post(req)
        if comparisons:
            yield from self.node.cpu.execute(comparisons * p.sparc_match)
        obs = self.sim.obs
        if obs is not None and arrival is not None:
            obs.emit(self.sim.now, "dev", "match.hit", rank=self.world_rank,
                     msg=self._obs_msgid(arrival.envelope),
                     detail={"unexpected": True, "comparisons": comparisons})
        if arrival is not None:
            yield from self._fulfill(req, arrival)

    # ------------------------------------------------------- fault tolerance
    def _ft_requests(self):
        yield from super()._ft_requests()
        for dest in list(self.sendq):
            q = self.sendq[dest]
            for op in list(q):
                def cancel(q=q, op=op):
                    try:
                        q.remove(op)
                    except ValueError:
                        pass

                yield op.req, cancel
        for cookie in list(self.pending_rdv):
            _wire, req = self.pending_rdv[cookie]
            yield req, (lambda c=cookie: self.pending_rdv.pop(c, None))
        for cookie in list(self.awaiting_ack):
            yield self.awaiting_ack[cookie], (
                lambda c=cookie: self.awaiting_ack.pop(c, None))
        for key in list(self.rdv_wait):
            yield self.rdv_wait[key], (lambda k=key: self.rdv_wait.pop(k, None))

    def _ft_wake(self) -> None:
        self.kick.set()

    # ------------------------------------------------------------- progress
    def _deliver(self, arrival: Arrival) -> None:
        """Runs in this node's Elan receive context: queue for the SPARC."""
        obs = self.sim.obs
        if obs is not None:
            env = arrival.envelope
            obs.emit(self.sim.now, "dev", "env.arrived", rank=self.world_rank,
                     msg=self._obs_msgid(env), detail={"nbytes": env.nbytes})
        self.arrivals.append(arrival)
        self.kick.set()

    def _progress(self, block: bool):
        did = False
        arrivals = self.arrivals
        while arrivals:
            yield from self._handle_arrival(arrivals.popleft())
            did = True
        if self.sendq:  # _issue_sends drops empty per-dest deques
            issued = yield from self._issue_sends()
            did = did or issued
        if block and not did:
            yield self.kick.wait1()
            yield from self.node.cpu.execute(self.node.params.event_poll)
            return True
        return did

    def _handle_arrival(self, arrival: Arrival):
        p = self.node.params
        env = arrival.envelope
        req, comparisons = self.queues.arrive(arrival)
        yield from self.node.cpu.execute(max(1, comparisons) * p.sparc_match)
        obs = self.sim.obs
        if obs is not None:
            kind = "match.hit" if req is not None else "match.miss"
            obs.emit(self.sim.now, "dev", kind, rank=self.world_rank,
                     msg=self._obs_msgid(env),
                     detail={"unexpected": False, "comparisons": comparisons})
        if env.extra is not None:
            # Free the sender's envelope slot: the SPARC has drained it.
            sender = self.peers[env.extra]
            me = self.world_rank
            yield from self.node.issue_txn(
                env.extra, 0, lambda: sender._on_slot_ack(me), debug="ll-slot-ack"
            )
        if req is not None:
            yield from self._fulfill(req, arrival)
        else:
            if env.mode == MODE_READY:
                self.ready_violations += 1
                if self.config.strict_ready:
                    raise ReadyModeError(
                        f"ready-mode send from rank {env.src} (tag {env.tag}) "
                        "arrived before the matching receive was posted"
                    )
            if arrival.data is not None:
                # copy out of the slot into the unexpected heap
                yield from self.node.cpu.execute(len(arrival.data) * p.sparc_copy_per_byte)
                if obs is not None:
                    obs.emit(self.sim.now, "dev", "copy.unexpected", rank=self.world_rank,
                             msg=self._obs_msgid(env), detail={"nbytes": len(arrival.data)})

    def _on_slot_ack(self, dest_world: int) -> None:
        """Runs in Elan context at the *sender*: slot is free again."""
        self.tokens[dest_world] += 1
        self.kick.set()

    def _fulfill(self, req: Request, arrival: Arrival):
        """Complete a matched receive (eager) or launch the DMA (rendezvous)."""
        p = self.node.params
        env = arrival.envelope
        capacity = self._capacity_bytes(req)
        status = Status(source=env.src, tag=env.tag, count_bytes=env.nbytes)
        truncated = env.nbytes > capacity
        obs = self.sim.obs
        mid = self._obs_msgid(env) if obs is not None else None
        if arrival.data is not None:
            yield from self.node.cpu.execute(env.nbytes * p.sparc_copy_per_byte)
            if truncated:
                req._fail(TruncationError(f"{env.nbytes} bytes into a {capacity}-byte receive"))
            else:
                self._store(req, arrival.data, status)
                if obs is not None:
                    obs.emit(self.sim.now, "dev", "msg.complete", rank=self.world_rank,
                             msg=mid, detail={"nbytes": env.nbytes})
            if env.mode == MODE_SYNCHRONOUS:
                sender = self.peers[env.extra]
                cookie = env.cookie
                yield from self.node.issue_txn(
                    env.extra, 0, lambda: sender._on_sync_ack(cookie), debug="ll-sync-ack"
                )
        else:
            sender_world, cookie = arrival.claim
            sender = self.peers[sender_world]
            endpoint = self
            self.rdv_wait[(sender_world, cookie)] = req

            def on_dma(data: bytes) -> None:
                # runs at the receiver when the DMA lands in user memory
                endpoint.rdv_wait.pop((sender_world, cookie), None)
                if req.complete:
                    return  # receive already failed (peer death / revoke)
                if truncated:
                    req._fail(
                        TruncationError(f"{env.nbytes} bytes into a {capacity}-byte receive")
                    )
                else:
                    endpoint._store(req, data, status)
                    dobs = endpoint.sim.obs
                    if dobs is not None:
                        dobs.emit(endpoint.sim.now, "dev", "msg.complete",
                                  rank=endpoint.world_rank, msg=mid,
                                  detail={"nbytes": len(data)})
                endpoint.kick.set()

            if obs is not None:
                obs.emit(self.sim.now, "dev", "rdv.rts", rank=self.world_rank,
                         msg=mid, detail={"nbytes": env.nbytes})
            yield from self.node.issue_txn(
                sender_world,
                RTS_BYTES,
                lambda: sender._elan_rts(cookie, self.world_rank, on_dma),
                debug="ll-rts",
            )

    def _elan_rts(self, cookie: int, dest_world: int, on_dma) -> None:
        """Runs at the *sender's* Elan when the data request arrives:
        start the DMA with no SPARC involvement."""
        entry = self.pending_rdv.pop(cookie, None)
        if entry is None:
            self._obs_rdv.pop(cookie, None)
            return  # send already failed (peer death / revoke): no DMA
        wire, sreq = entry
        endpoint = self
        obs = self.sim.obs
        mid = self._obs_rdv.pop(cookie, None) if obs is not None else None
        if obs is not None:
            obs.emit(self.sim.now, "dev", "rdv.data", rank=self.world_rank,
                     msg=mid, detail={"nbytes": len(wire)})

        def local_done() -> None:
            if sreq.complete:
                endpoint.kick.set()
                return  # send already failed before the DMA finished
            sreq._complete(Status(tag=sreq.tag, count_bytes=len(wire)))
            dobs = endpoint.sim.obs
            if dobs is not None:
                dobs.emit(endpoint.sim.now, "dev", "send.complete",
                          rank=endpoint.world_rank, msg=mid)
            endpoint.kick.set()

        from repro.hw.meiko.node import DmaCommand

        self.node.issue(
            DmaCommand(dest_world, len(wire), lambda: on_dma(wire), _Hook(local_done), "ll-dma")
        )

    def _on_sync_ack(self, cookie: int) -> None:
        """Runs in Elan context at the sender: synchronous send matched."""
        req = self.awaiting_ack.pop(cookie, None)
        if req is None or req.complete:
            self.kick.set()
            return  # send already failed (peer death / revoke); stale ack
        req._complete(Status(tag=req.tag, count_bytes=req.datatype.size * req.count))
        obs = self.sim.obs
        if obs is not None:
            obs.emit(self.sim.now, "dev", "ack.sync", rank=self.world_rank,
                     detail={"cookie": cookie})
        self.kick.set()

    # ----------------------------------------------------------------- helpers
    def _obs_msgid(self, env: Envelope):
        """Correlation id for an envelope (None for slot-less broadcast)."""
        if env.extra is None:
            return None
        return (env.extra, self.world_rank, env.context, env.seq)

    def _flow_snapshot(self) -> dict:
        return {
            "sends_waiting_for_slot": {
                dest: [op.env.tag for op in q] for dest, q in self.sendq.items() if q
            },
            "rendezvous_awaiting_request": len(self.pending_rdv),
            "ssends_awaiting_ack": len(self.awaiting_ack),
        }

    def _describe_flow(self, flow: dict) -> str:
        waiting_slot = ", ".join(
            f"dest={dest}:[{', '.join(f'tag={t}' for t in tags)}]"
            for dest, tags in flow["sends_waiting_for_slot"].items()
        ) or "none"
        return (
            f"sends-waiting-for-slot=[{waiting_slot}]; "
            f"rendezvous-awaiting-request={flow['rendezvous_awaiting_request']}; "
            f"ssends-awaiting-ack={flow['ssends_awaiting_ack']}"
        )

    @staticmethod
    def _capacity_bytes(req: Request) -> float:
        if req.buf is None:
            return float("inf")
        return req.datatype.size * req.count

    def _store(self, req: Request, data: bytes, status: Status) -> None:
        if req.buf is None:
            req.data = data
        else:
            count = len(data) // req.datatype.size if req.datatype.size else 0
            req.datatype.unpack(data, req.buf, count)
        req._complete(status)

    # ------------------------------------------------------------------ probe
    def iprobe(self, source: int, tag: int, comm):
        yield from self._progress(block=False)
        arrival = self.queues.probe(source, tag, comm.context_id)
        if arrival is None:
            return None
        env = arrival.envelope
        return Status(source=env.src, tag=env.tag, count_bytes=env.nbytes)

    # ---------------------------------------------------------- hw broadcast
    def bcast_hw(self, comm, buf, count, datatype, root: int):
        """The CS/2 hardware broadcast: root injects once, all receive.

        Returns a generator implementing both the root and leaf sides.
        """
        return self._bcast_hw(comm, buf, count, datatype, root)

    def _bcast_hw(self, comm, buf, count, datatype, root: int):
        cfg = self.config
        if comm.rank == root:
            yield from self.node.cpu.execute(cfg.send_overhead)
            wire = datatype.pack(buf, count)
            group_worlds = set(comm.group.world_ranks)
            env_src = comm.rank
            ctx = comm.context_id

            def make_deliver(dst_world: int):
                if dst_world == self.world_rank or dst_world not in group_worlds:
                    return None
                peer = self.peers[dst_world]
                env = Envelope(
                    src=env_src,
                    tag=_BCAST_TAG,
                    context=ctx,
                    nbytes=len(wire),
                    # extra=None: broadcast bypasses the envelope slots, no ack
                    extra=None,
                )
                arrival = Arrival(env, data=wire)
                return lambda: peer._deliver(arrival)

            yield from self.node.issue_bcast(len(wire), make_deliver)
        else:
            req = Request("recv", comm, buf, count, datatype, root, _BCAST_TAG)
            yield from self.start_recv(req)
            yield from self.wait([req])
        return buf
