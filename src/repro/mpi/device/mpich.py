"""The MPICH comparison device: MPI layered over the tport widget.

This models the stock ANL/MSU MPICH port for the CS/2 that the paper
measures against (Figure 2): all matching is delegated to the **Elan**
via the tport widget — sends and receives progress in the background
without the SPARC, but each operation pays

* the MPICH call-surface overhead on the SPARC (communicator and
  datatype translation, request bookkeeping), and
* slow 10 MHz Elan matching plus SPARC↔Elan completion synchronization,

which together account for the paper's measured 158 µs of added
round-trip latency over the bare widget.

MPI (source, tag, context) matching is encoded into wide tport tags:

    bits 45..      communicator context id
    bits 44..45    channel (0 = user message, 1 = internal ack,
                   2 = library-internal collective traffic — kept off
                   the user channel so ANY_TAG cannot match it)
    bits 12..43    user tag, or ack cookie
    bits 0..11     flags (not matched): FLAG_SYNC

Synchronous sends carry an 8-byte cookie prefix in the payload; the
receiver strips it and returns an ack on the internal channel.

Broadcast: MPICH has no hardware-broadcast path — ``MPI_Bcast`` runs
over point-to-point messages (binomial tree), which is exactly the
contrast Figure 7 measures.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence

from repro.mpi.constants import ANY_SOURCE, ANY_TAG, INTERNAL_TAG_BASE, MODE_SYNCHRONOUS
from repro.mpi.device.base import Endpoint
from repro.mpi.exceptions import MPIError, TruncationError
from repro.mpi.request import Request
from repro.mpi.status import Status
from repro.hw.meiko.tport import ANY_SENDER, TPort, TPortHandle

__all__ = ["MpichConfig", "MpichEndpoint"]

# --- tag-word layout ---------------------------------------------------------
_FLAG_BITS = 12
_FIELD_BITS = 32
_CHAN_SHIFT = _FLAG_BITS + _FIELD_BITS  # 44
_CHAN_BITS = 2  # 0 = user, 1 = internal ack, 2 = collective
_CTX_SHIFT = _CHAN_SHIFT + _CHAN_BITS  # 46

FLAG_SYNC = 0x001

#: match context+channel+field, ignore flags
MASK_EXACT = ~((1 << _FLAG_BITS) - 1)
#: match context+channel only (ANY_TAG)
MASK_CHAN = ~((1 << _CHAN_SHIFT) - 1)

_COOKIE_BYTES = 8


def encode_tag(context: int, field: int, chan: int = 0, flags: int = 0) -> int:
    """Pack (context, channel, field, flags) into a tport tag word."""
    return (context << _CTX_SHIFT) | (chan << _CHAN_SHIFT) | (field << _FLAG_BITS) | flags


def decode_tag(word: int):
    """Unpack a tport tag word -> (context, chan, field, flags)."""
    return (
        word >> _CTX_SHIFT,
        (word >> _CHAN_SHIFT) & ((1 << _CHAN_BITS) - 1),
        (word >> _FLAG_BITS) & ((1 << _FIELD_BITS) - 1),
        word & ((1 << _FLAG_BITS) - 1),
    )


@dataclass(frozen=True)
class MpichConfig:
    """Tunables (µs).  The overheads are calibrated so the 1-byte
    ping-pong round trip lands at the paper's ~210 µs (52 + 158)."""

    #: SPARC cost of an MPICH send call above the tport widget
    send_overhead: float = 79.8
    #: SPARC cost of an MPICH receive call above the tport widget
    recv_overhead: float = 75.5
    #: polling interval of the blocking-probe loop
    probe_interval: float = 10.0

    def with_overrides(self, **kw) -> "MpichConfig":
        return replace(self, **kw)


class MpichEndpoint(Endpoint):
    """One rank's endpoint of the MPICH/tport device."""

    bcast_style = "binomial"

    def __init__(self, world_rank: int, node, tport: TPort, config: Optional[MpichConfig] = None):
        super().__init__(world_rank, node)
        self.node = node
        self.tport = tport
        self.config = config or MpichConfig()
        #: set by the platform builder: world rank -> MpichEndpoint
        self.peers = []
        self._cookie = 0
        #: incomplete requests with live tport handles (fault tolerance)
        self._outstanding = []
        #: observability only: per-(dest, context) send sequence numbers
        self._obs_seq = {}

    # ------------------------------------------------------- fault tolerance
    def _ft_requests(self):
        self._outstanding = [r for r in self._outstanding if not r.complete]
        for req in list(self._outstanding):
            yield req, (lambda r=req: self._ft_cancel(r))

    def _ft_cancel(self, req: Request) -> None:
        """Tear down a request's Elan state: withdraw its descriptors from
        the tport's posted queue (so late traffic can never match them)
        and fire their completion events to wake any blocked twait."""
        state = req._device_state
        if not isinstance(state, tuple):
            return
        for h in state:
            if h is None:
                continue
            try:
                self.tport.posted.remove(h)
            except ValueError:
                pass
            h.done.set()

    # ------------------------------------------------------------------ sends
    def start_send(self, req: Request):
        p = self.node.params
        cfg = self.config
        obs = self.sim.obs
        t0 = self.sim.now
        yield from self.node.cpu.execute(cfg.send_overhead)
        wire = req.datatype.pack(req.buf, req.count)
        if not req.datatype.contiguous:
            yield from self.node.cpu.execute(len(wire) * p.sparc_copy_per_byte)
        dest_world = req.comm.world_rank(req.peer)
        mid = None
        if obs is not None:
            key = (dest_world, req.comm.context_id)
            seq = self._obs_seq.get(key, 0)
            self._obs_seq[key] = seq + 1
            mid = (self.world_rank, dest_world, req.comm.context_id, seq)
            obs.emit(
                t0,
                "dev",
                "msg.send",
                rank=self.world_rank,
                msg=mid,
                detail={"tag": req.tag, "nbytes": len(wire), "proto": "tport", "mode": req.mode},
            )
        flags = 0
        ack_handle = None
        if req.mode == MODE_SYNCHRONOUS:
            self._cookie += 1
            cookie = self._cookie & 0xFFFFFFFF
            flags |= FLAG_SYNC
            wire = cookie.to_bytes(_COOKIE_BYTES, "little") + wire
            # post the ack receive before the send can possibly be acked
            ack_tag = encode_tag(req.comm.context_id, cookie, chan=1)
            ack_handle = self.tport.irecv(ack_tag, sender=dest_world, mask=-1)
        chan = 2 if req.tag >= INTERNAL_TAG_BASE else 0
        word = encode_tag(req.comm.context_id, req.tag, chan=chan, flags=flags)
        yield from self.node.cpu.execute(p.txn_issue)
        handle = self.tport.isend(dest_world, word, wire)
        if obs is not None:
            obs.emit(
                self.sim.now,
                "dev",
                "env.sent",
                rank=self.world_rank,
                msg=mid,
                detail={"tag": req.tag, "nbytes": len(wire), "proto": "tport"},
            )
        req._device_state = (handle, ack_handle)
        self._outstanding.append(req)
        if req.on_complete is not None:
            # a bsend shadow: nobody will wait on it, so watch the handle
            self.sim.process(self._shadow_watcher(req, handle), name="mpich-bsend-watch")

    def _shadow_watcher(self, req: Request, handle: TPortHandle):
        yield handle.done.wait1()
        if not req.complete:  # the FT layer may have failed it already
            req._complete(Status(tag=req.tag, count_bytes=req.count))

    # ---------------------------------------------------------------- receives
    def start_recv(self, req: Request):
        cfg = self.config
        yield from self.node.cpu.execute(cfg.recv_overhead)
        sender = (
            ANY_SENDER if req.peer == ANY_SOURCE else req.comm.world_rank(req.peer)
        )
        if req.tag == ANY_TAG:
            word = encode_tag(req.comm.context_id, 0, chan=0)
            mask = MASK_CHAN
        else:
            chan = 2 if req.tag >= INTERNAL_TAG_BASE else 0
            word = encode_tag(req.comm.context_id, req.tag, chan=chan)
            mask = MASK_EXACT
        yield from self.node.cpu.execute(self.node.params.txn_issue)
        handle = self.tport.irecv(word, sender=sender, mask=mask)
        obs = self.sim.obs
        if obs is not None:
            obs.emit(
                self.sim.now,
                "dev",
                "match.post",
                rank=self.world_rank,
                detail={"source": req.peer, "tag": req.tag, "matching": "elan"},
            )
        req._device_state = (handle, None)
        self._outstanding.append(req)

    # ------------------------------------------------------------------- wait
    def wait(self, reqs: Sequence[Request], mode: str = "all"):
        if mode == "all":
            for req in reqs:
                yield from self._finalize(req)
                req.raise_if_failed()
            return
        if mode != "any":
            raise MPIError(f"wait mode must be 'all' or 'any', got {mode!r}")
        # waitany: race the primary events, then finalize the winner
        if any(r.complete for r in reqs):
            return
        # a handle may have completed between posting and this call (its
        # done event fired with no waiter) — only block when none is ready
        waits = {}
        if not any(req._device_state[0].complete for req in reqs):
            for req in reqs:
                handle, _ack = req._device_state
                waits[req] = handle.done.wait()
        if waits:
            yield self.sim.any_of(list(waits.values()))
            for req, ev in waits.items():
                if not ev.processed:
                    handle, _ack = req._device_state
                    handle.done.cancel_wait(ev)
                else:
                    # put the consumed set back for _finalize to consume
                    handle, _ack = req._device_state
                    handle.done.set()
        for req in reqs:
            handle, _ack = req._device_state
            if handle.complete:
                yield from self._finalize(req)
                req.raise_if_failed()
                return

    def test(self, req: Request):
        handle, ack = req._device_state if req._device_state else (None, None)
        if req.complete:
            req.raise_if_failed()
            return True
        if handle is not None and handle.complete and (ack is None or ack.complete):
            yield from self._finalize(req)
            req.raise_if_failed()
            return True
        yield self.sim.timeout(0)
        return False

    def _finalize(self, req: Request):
        """Drive a request to completion via its tport handle(s)."""
        if req.complete:
            return
        handle, ack_handle = req._device_state
        yield from self.tport.twait(handle)
        if req.complete:
            return  # the FT layer failed it while we were blocked
        if req.kind == "send":
            if ack_handle is not None:
                yield from self.tport.twait(ack_handle)
                if req.complete:
                    return
            req._complete(Status(tag=req.tag, count_bytes=handle.nbytes))
            return
        # receive: decode, strip any sync cookie, ack, unpack
        yield from self._finish_recv(req, handle)

    def _finish_recv(self, req: Request, handle: TPortHandle):
        p = self.node.params
        context, _chan, field, flags = decode_tag(handle.tag)
        data = handle.data
        if flags & FLAG_SYNC:
            cookie = int.from_bytes(data[:_COOKIE_BYTES], "little")
            data = data[_COOKIE_BYTES:]
            ack_tag = encode_tag(context, cookie, chan=1)
            yield from self.node.cpu.execute(p.txn_issue)
            self.tport.isend(handle.src, ack_tag, b"")
        src_comm_rank = req.comm.group.rank_of(handle.src)
        status = Status(source=src_comm_rank, tag=field, count_bytes=len(data))
        capacity = float("inf") if req.buf is None else req.datatype.size * req.count
        if len(data) > capacity:
            req._fail(TruncationError(f"{len(data)} bytes into a {capacity}-byte receive"))
            return
        if req.buf is None:
            req.data = data
        else:
            count = len(data) // req.datatype.size if req.datatype.size else 0
            req.datatype.unpack(data, req.buf, count)
        req._complete(status)
        obs = self.sim.obs
        if obs is not None:
            # Matching happened on the Elan, invisible to the SPARC, so
            # mpich carries no sender message id: Table-1 phase accounting
            # targets the envelope devices, not this comparison port.
            obs.emit(
                self.sim.now,
                "dev",
                "msg.complete",
                rank=self.world_rank,
                detail={"source": src_comm_rank, "tag": field, "nbytes": len(data)},
            )

    def state_snapshot(self) -> dict:
        """Structured dump decoded from the Elan's queues.

        The endpoint's own MatchQueues are unused here — matching runs
        on the tport — so the base snapshot would always report empty
        queues.  Decode the posted descriptors and unexpected arrivals
        the Elan actually holds instead.
        """
        posted = []
        for h in self.tport.posted:
            _ctx, _chan, field, _flags = decode_tag(h.tag)
            posted.append({
                "source": ANY_SOURCE if h.sender_filter == ANY_SENDER else h.sender_filter,
                "tag": ANY_TAG if h.mask == MASK_CHAN else field,
            })
        unexpected = []
        for a in self.tport.unexpected:
            _ctx, _chan, field, _flags = decode_tag(a.tag)
            unexpected.append({"source": a.src, "tag": field})
        snap = {"rank": self.world_rank, "posted": posted, "unexpected": unexpected}
        flow = self._flow_snapshot()
        if flow:
            snap["flow"] = flow
        return snap

    def _flow_snapshot(self) -> dict:
        return {
            "matching": "elan",
            "unexpected_elan": len(self.tport.unexpected),
        }

    def _describe_flow(self, flow: dict) -> str:
        return f"elan-unexpected={flow['unexpected_elan']}"

    # ------------------------------------------------------------------ probe
    def iprobe(self, source: int, tag: int, comm):
        """Nonblocking probe: ask the Elan to scan the unexpected queue."""
        p = self.node.params
        yield from self.node.cpu.execute(p.sparc_call + p.txn_issue)
        sender = ANY_SENDER if source == ANY_SOURCE else comm.world_rank(source)
        found = yield from self._tport_probe(sender, tag, comm.context_id)
        if found is None:
            return None
        src_world, word, nbytes = found
        _ctx, _chan, field, flags = decode_tag(word)
        if flags & FLAG_SYNC:
            nbytes -= _COOKIE_BYTES
        return Status(source=comm.group.rank_of(src_world), tag=field, count_bytes=nbytes)

    def _tport_probe(self, sender: int, tag: int, context: int):
        """Generator -> Optional[(src_world, tag_word, nbytes)]."""
        if tag == ANY_TAG:
            word = encode_tag(context, 0, chan=0)
            mask = MASK_CHAN
        else:
            word = encode_tag(context, tag, chan=2 if tag >= INTERNAL_TAG_BASE else 0)
            mask = MASK_EXACT
        node = self.node
        port = self.tport
        holder = {}
        done = node.event("tprobe")

        def scan():
            p = node.params

            def gen():
                for arrival in port.unexpected:
                    yield from node.elan.execute(p.elan_match)
                    src_ok = sender == ANY_SENDER or sender == arrival.src
                    if src_ok and (arrival.tag & mask) == (word & mask):
                        holder["hit"] = (arrival.src, arrival.tag, arrival.nbytes)
                        break
                done.set()

            return gen()

        from repro.hw.meiko.node import ElanCallCommand

        node.issue(ElanCallCommand(scan, debug="tport-probe"))
        yield done.wait1()
        yield from node.cpu.execute(node.params.sparc_elan_sync)
        return holder.get("hit")

    def cancel_recv(self, req: Request):
        """Generator -> bool: withdraw the tport receive descriptor."""
        if req.complete:
            return False
        handle, _ack = req._device_state
        if handle.complete:
            return False
        ok = yield from self.tport.tcancel(handle)
        if ok:
            status = Status()
            status.cancelled = True
            req._complete(status)
        return ok

    def probe(self, source: int, tag: int, comm):
        """Blocking probe: poll the Elan until a match appears."""
        while True:
            status = yield from self.iprobe(source, tag, comm)
            if status is not None:
                return status
            yield self.sim.timeout(self.config.probe_interval)

    def _progress(self, block: bool):
        """MPICH progresses on the Elan; the SPARC has nothing to pump."""
        yield self.sim.timeout(self.config.probe_interval if block else 0)
        return False
