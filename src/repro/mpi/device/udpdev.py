"""MPI over reliable UDP.

The identical device protocol as :class:`TcpEndpoint`, but each rank
pair communicates over a user-level reliable-UDP stream
(:class:`~repro.net.rudp.RudpConnection`).  The paper found this
"very similar to that of TCP" — the reliability work just moves from
the kernel to user space, paying the same syscalls per packet.
"""

from __future__ import annotations

from repro.mpi.device.cluster import StreamEndpoint
from repro.net.rudp import RudpConnection

__all__ = ["UdpEndpoint"]

#: UDP ports: the socket at rank i talking to rank j is BASE + j
_PORT_BASE = 40000


class UdpEndpoint(StreamEndpoint):
    """One rank's endpoint over per-peer reliable-UDP streams."""

    @classmethod
    def wire(cls, machine, endpoints) -> None:
        if len(endpoints) > cls.LAZY_MESH_THRESHOLD:
            # large worlds: defer each pair until a first send needs it
            # (see StreamEndpoint.LAZY_MESH_THRESHOLD)
            for ep in endpoints:
                ep._lazy_mesh = True
                ep._mesh_endpoints = endpoints
            return
        for i, ep_i in enumerate(endpoints):
            for j in range(i + 1, len(endpoints)):
                cls._connect_pair_now(ep_i, endpoints[j])

    @staticmethod
    def _connect_pair_now(ep_i, ep_j) -> None:
        i, j = ep_i.world_rank, ep_j.world_rank
        sock_i = ep_i.kernel.udp.bind(_PORT_BASE + j)
        sock_j = ep_j.kernel.udp.bind(_PORT_BASE + i)
        conn_i = RudpConnection(ep_i.kernel, sock_i, j, _PORT_BASE + i)
        conn_j = RudpConnection(ep_j.kernel, sock_j, i, _PORT_BASE + j)
        ep_i.attach_conn(j, conn_i)
        ep_j.attach_conn(i, conn_j)
