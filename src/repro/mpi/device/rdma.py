"""The ``rdma`` device: MVAPICH-style MPI over an RDMA-write fabric.

Protocol split (after "Design and Implementation of MPICH2 over
InfiniBand with RDMA Support"):

* **eager** — the sender memcpys the payload into a pre-registered
  bounce buffer and RDMA-writes it into one of the receiver's
  pre-posted slots.  The write completes locally (standard-mode sends
  finish at the doorbell); the receiver discovers it by polling the
  completion queue and memcpys the payload out to the user buffer.
  Flow control counts *slots*: each eager (or RTS) consumes one
  pre-posted slot at the receiver, returned piggybacked once the CQE
  is processed.
* **rendezvous** — the sender registers (pins) the user buffer and
  sends a 32-byte RTS; the receiver registers its own buffer and
  issues an RDMA READ that the sender's NIC services with **zero
  sender CPU**.  A FIN from the receiver retires the send.

Registration is the protocol's signature cost: ``reg_base`` per
``ibv_reg_mr`` call plus ``reg_per_page`` per pinned 4 KiB page.  The
:class:`RegistrationCache` (LRU over buffer identity, holding strong
references so a cached id can never be reused by a different live
buffer) collapses repeat registrations to ``reg_cache_hit_cost`` —
a *pure latency* optimization: simulated results must be byte-identical
with the cache disabled (``REPRO_RDMA_REG_CACHE=0``), only faster.
Unbuffered receives (``buf=None``) land in the pre-registered pool and
always hit.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Optional

from repro.mpi.device.modern import ModernEndpoint

__all__ = ["RdmaConfig", "RegistrationCache", "RdmaEndpoint"]


@dataclass(frozen=True)
class RdmaConfig:
    """Cost model of the RDMA endpoint (µs / bytes)."""

    #: payloads at most this long go eager (measured crossover in
    #: docs/FABRICS.md sits near this switch point)
    eager_threshold: int = 8192
    #: pre-posted receive slots per peer (the eager flow-control credit)
    eager_slots: int = 128
    #: freed slots owed before an explicit credit update is sent
    credit_refresh: int = 64
    #: software send overhead (WQE build path entry)
    send_overhead: float = 0.3
    #: software receive-post overhead
    recv_overhead: float = 0.3
    #: doorbell + descriptor post
    post_overhead: float = 0.15
    #: per-CQE poll/dispatch cost
    cq_poll_cost: float = 0.1
    #: matching engine: first comparison / each additional
    match_cost: float = 0.25
    match_per_comparison: float = 0.05
    #: bounce-buffer memcpy (µs per byte, ~10 GB/s)
    copy_per_byte: float = 1.0 / 10000.0
    #: memory registration: syscall + per-page pinning
    reg_base: float = 0.8
    reg_per_page: float = 0.35
    page_bytes: int = 4096
    #: registration cache: capacity, hit cost, and master switch
    #: (the REPRO_RDMA_REG_CACHE=0 env override also disables it)
    reg_cache_entries: int = 64
    reg_cache_hit_cost: float = 0.05
    reg_cache: bool = True
    #: receiver-side retirement of a completed READ
    completion_overhead: float = 0.15
    max_unexpected: int = 4096
    strict_ready: bool = True

    def with_overrides(self, **kw) -> "RdmaConfig":
        return replace(self, **kw)


class RegistrationCache:
    """LRU cache of pinned regions, keyed by buffer identity.

    Entries hold a strong reference to the buffer object, so a cached
    key (``id(buf)``) always denotes the *same live object* — identity
    reuse after garbage collection can never produce a false hit, which
    keeps hit/miss sequences deterministic across runs.
    """

    def __init__(self, entries: int, enabled: bool):
        self.entries = entries
        self.enabled = enabled
        self.hits = 0
        self.misses = 0
        self._lru: "OrderedDict[int, object]" = OrderedDict()

    def lookup(self, buf) -> bool:
        """Register *buf*; True when it was already pinned (cache hit)."""
        if not self.enabled:
            self.misses += 1
            return False
        if buf is None:
            # unbuffered receives land in the pre-registered pool
            self.hits += 1
            return True
        key = id(buf)
        if key in self._lru:
            self._lru.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        self._lru[key] = buf
        if len(self._lru) > self.entries:
            self._lru.popitem(last=False)
        return False

    def snapshot(self) -> dict:
        return {
            "enabled": self.enabled,
            "hits": self.hits,
            "misses": self.misses,
            "pinned": len(self._lru),
        }


class RdmaEndpoint(ModernEndpoint):
    """One rank's endpoint on the ``rdma`` fabric."""

    def __init__(self, world_rank: int, host, config: Optional[RdmaConfig] = None):
        super().__init__(world_rank, host, config or RdmaConfig())
        enabled = (
            self.config.reg_cache
            and os.environ.get("REPRO_RDMA_REG_CACHE", "1") != "0"
        )
        self.reg_cache = RegistrationCache(self.config.reg_cache_entries, enabled)

    # ------------------------------------------------------------ flow units
    def _flow_initial(self) -> int:
        return self.config.eager_slots

    def _flow_need(self, nbytes: int, eager: bool) -> int:
        return 1  # every eager payload or RTS lands in one pre-posted slot

    # ------------------------------------------------------------ cost hooks
    def _register(self, buf, nbytes: int):
        cfg = self.config
        if self.reg_cache.lookup(buf):
            yield from self.host.cpu.execute(cfg.reg_cache_hit_cost)
            return
        pages = max(1, -(-nbytes // cfg.page_bytes))
        yield from self.host.cpu.execute(cfg.reg_base + pages * cfg.reg_per_page)

    def _eager_inject(self, nbytes: int):
        # memcpy into the pre-registered bounce buffer, then doorbell
        cfg = self.config
        yield from self.host.cpu.execute(
            nbytes * cfg.copy_per_byte + cfg.post_overhead)

    def _eager_deliver(self, nbytes: int):
        # memcpy out of the landing slot into the user buffer
        yield from self.host.cpu.execute(nbytes * self.config.copy_per_byte)

    def _rdv_expose(self, req, nbytes: int):
        yield from self._register(req.buf, nbytes)
        yield from self.host.cpu.execute(self.config.post_overhead)

    def _rdv_prepare_pull(self, req, nbytes: int):
        yield from self._register(req.buf, nbytes)
        yield from self.host.cpu.execute(self.config.post_overhead)

    def _rdv_complete(self, nbytes: int):
        yield from self.host.cpu.execute(self.config.completion_overhead)

    # ---------------------------------------------------------- observability
    def _flow_snapshot(self) -> dict:
        snap = super()._flow_snapshot()
        snap["registration_cache"] = self.reg_cache.snapshot()
        return snap
