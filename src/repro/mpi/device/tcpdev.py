"""MPI over kernel TCP: the paper's cluster implementation.

A full mesh of TCP connections (one per rank pair).  By default the
mesh is static and pre-established, exactly the setup the paper
measures — "connections are static, so connection setup time is not of
major importance".  With ``ClusterConfig(handshake=True)`` the mesh is
built with real 3-way handshakes at startup instead (the lower rank of
each pair actively connects to the higher rank's listener); MPI
operations issued before a pair's connection completes simply queue.
"""

from __future__ import annotations

from repro.mpi.device.cluster import StreamEndpoint
from repro.net.tcp import TcpLayer

__all__ = ["TcpEndpoint"]

#: TCP ports: the connection between ranks i and j uses BASE+j at i
_PORT_BASE = 30000
#: listener ports for handshake mode: rank r listens on BASE2 + r
_LISTEN_BASE = 31000


class TcpEndpoint(StreamEndpoint):
    """One rank's endpoint over per-peer TCP connections."""

    @classmethod
    def wire(cls, machine, endpoints) -> None:
        if endpoints and endpoints[0].config.handshake:
            cls._wire_handshake(machine, endpoints)
            return
        if len(endpoints) > cls.LAZY_MESH_THRESHOLD:
            # large worlds: defer each pair until a first send needs it —
            # pre-building O(P²) connections dominates construction time
            # and memory, and most pairs of a wide collective never talk
            for ep in endpoints:
                ep._lazy_mesh = True
                ep._mesh_endpoints = endpoints
            return
        for i, ep_i in enumerate(endpoints):
            for j in range(i + 1, len(endpoints)):
                cls._connect_pair_now(ep_i, endpoints[j])

    @staticmethod
    def _connect_pair_now(ep_i, ep_j) -> None:
        i, j = ep_i.world_rank, ep_j.world_rank
        conn_i, conn_j = TcpLayer.connect_pair(
            ep_i.kernel, ep_j.kernel, _PORT_BASE + j, _PORT_BASE + i
        )
        ep_i.attach_conn(j, conn_i)
        ep_j.attach_conn(i, conn_j)

    @classmethod
    def _wire_handshake(cls, machine, endpoints) -> None:
        """Dynamic mesh: the lower rank of each pair actively connects."""
        n = len(endpoints)
        listeners = {}
        # every rank except 0 listens (it accepts from all lower ranks)
        for ep in endpoints:
            if ep.world_rank > 0:
                listeners[ep.world_rank] = ep.kernel.tcp.listen(
                    _LISTEN_BASE + ep.world_rank
                )

        def connector(ep_i, j):
            conn = yield from ep_i.kernel.tcp.connect(
                endpoints[j].kernel.host.hostid, _LISTEN_BASE + j
            )
            ep_i.attach_conn(j, conn)
            ep_i.kick.set()

        def acceptor(ep_j, expected):
            lst = listeners[ep_j.world_rank]
            for _ in range(expected):
                conn = yield from lst.accept()
                ep_j.attach_conn(conn.remote_host, conn)
                ep_j.kick.set()

        sim = machine.sim
        for i, ep_i in enumerate(endpoints):
            for j in range(i + 1, n):
                sim.process(connector(ep_i, j), name=f"tcp-connect-{i}-{j}")
        for j, ep_j in enumerate(endpoints):
            if j > 0:
                sim.process(acceptor(ep_j, j), name=f"tcp-accept-{j}")
