"""Shared protocol engine of the modern-fabric MPI devices.

The ``rdma`` and ``cxl`` endpoints answer the paper's protocol
questions with the same structure as the Section-5 cluster device —
match on the main processor, eager below a threshold, receiver-driven
rendezvous above it, credit flow control without sliding windows — but
over a :class:`repro.hw.modern.ModernFabric` instead of a kernel byte
stream:

* the wire unit is a structured packet (envelope + payload), not a
  parsed byte stream: delivery appends a completion-queue entry at the
  destination with **no receiver CPU**, and the receiving rank polls
  the CQ from its progress loop (the CQ wakeup rides the event
  kernel's pooled slot-dispatch records via ``Notify.wait1``);
* rendezvous is a *pull*: the receiver answers an RTS by issuing an
  RDMA READ (:meth:`ModernFabric.read`) that the sender's NIC services
  out of the exposed region without sender CPU; a FIN from the
  receiver completes the sender's request;
* flow control is counted in device units (pre-posted receive slots on
  ``rdma``, shared-segment bytes on ``cxl``) with the cluster device's
  optimistic-send + piggybacked-return credit scheme.

Subclasses provide only the cost model: what injecting/delivering an
eager payload costs, what exposing/mapping a rendezvous region costs,
and how many flow units a message consumes.
"""

from __future__ import annotations

from collections import defaultdict, deque
from typing import Deque, Dict, Optional, Tuple

from repro.mpi.constants import MODE_READY, MODE_SYNCHRONOUS
from repro.mpi.device.base import Endpoint
from repro.mpi.envelope import Envelope
from repro.mpi.exceptions import ReadyModeError, TruncationError
from repro.mpi.matching import Arrival
from repro.mpi.request import Request
from repro.mpi.status import Status
from repro.sim.notify import Notify

__all__ = ["ModernEndpoint", "CONTROL_BYTES"]

#: wire bytes of a control packet (envelope/RTS/FIN/ACK/credit)
CONTROL_BYTES = 32

# packet kinds
PKT_EAGER = 1
PKT_RTS = 2
PKT_RDV_DATA = 3
PKT_FIN = 4
PKT_SYNC_ACK = 5
PKT_CREDIT = 6


class _Pkt:
    """One fabric unit: kind + piggybacked credit return + payload."""

    __slots__ = ("kind", "src", "credits", "env", "data", "cookie")

    def __init__(self, kind, src, credits=0, env=None, data=None, cookie=None):
        self.kind = kind
        self.src = src
        self.credits = credits
        self.env = env
        self.data = data
        self.cookie = cookie


class _QueuedSend:
    __slots__ = ("req", "env", "wire", "eager")

    def __init__(self, req, env, wire, eager):
        self.req = req
        self.env = env
        self.wire = wire
        self.eager = eager


class ModernEndpoint(Endpoint):
    """One rank's endpoint on a modern fabric (abstract cost model)."""

    bcast_style = "binomial"

    def __init__(self, world_rank: int, host, config):
        super().__init__(world_rank, host)
        self.config = config
        self.queues.max_unexpected = config.max_unexpected
        self.peers = []
        self.fabric = None
        self.kick = Notify(self.sim, f"mpi{world_rank}-cq")
        #: the completion queue: fabric deliveries land here CPU-free
        self.cq: Deque[_Pkt] = deque()
        #: send credit remaining at each peer (slots or bytes)
        self.credits: Dict[int, int] = defaultdict(self._flow_initial)
        #: freed units owed to each peer (piggybacked on the next packet)
        self.owed: Dict[int, int] = defaultdict(int)
        self.sendq: Dict[int, Deque[_QueuedSend]] = defaultdict(deque)
        #: cookie -> (wire, request): rendezvous sends exposed for READ
        self.pending_rdv: Dict[int, Tuple[bytes, Request]] = {}
        #: cookie -> request: synchronous eager sends awaiting the ack
        self.awaiting_ack: Dict[int, Request] = {}
        #: (peer, cookie) -> (request, envelope, truncated): issued pulls
        self.rdv_pull: Dict[Tuple[int, int], Tuple[Request, Envelope, bool]] = {}
        self._cookie = 0
        self._seq: Dict[Tuple[int, int], int] = defaultdict(int)
        #: peer -> NetworkError from a dead link, surfaced in progress
        self._dead_links: Dict[int, Exception] = {}
        self.ready_violations = 0
        #: observability only: sender cookie -> message id
        self._obs_cookie: Dict[int, Tuple[int, int, int, int]] = {}

    # -- cost model (subclass responsibility) --------------------------------
    def _flow_initial(self) -> int:  # pragma: no cover - abstract
        """Initial per-peer send credit (slots or bytes)."""
        raise NotImplementedError

    def _flow_need(self, nbytes: int, eager: bool) -> int:  # pragma: no cover
        """Flow units one message consumes at the receiver."""
        raise NotImplementedError

    def _eager_inject(self, nbytes: int):  # pragma: no cover - abstract
        """Generator: sender CPU cost of launching an eager payload."""
        raise NotImplementedError
        yield

    def _eager_deliver(self, nbytes: int):  # pragma: no cover - abstract
        """Generator: receiver CPU cost of landing an eager payload."""
        raise NotImplementedError
        yield

    def _rdv_expose(self, req, nbytes: int):  # pragma: no cover - abstract
        """Generator: sender CPU cost of exposing the rendezvous region."""
        raise NotImplementedError
        yield

    def _rdv_prepare_pull(self, req, nbytes: int):  # pragma: no cover
        """Generator: receiver CPU cost before issuing the pull."""
        raise NotImplementedError
        yield

    def _rdv_complete(self, nbytes: int):  # pragma: no cover - abstract
        """Generator: receiver CPU cost of retiring a completed pull."""
        raise NotImplementedError
        yield

    # -------------------------------------------------------------- plumbing
    def _next_cookie(self) -> int:
        self._cookie += 1
        return self._cookie

    def _take_owed(self, peer: int) -> int:
        owed = self.owed[peer]
        self.owed[peer] = 0
        return owed

    def _on_unit(self, pkt: _Pkt) -> None:
        """Fabric delivery: append a CQE and kick the polling rank."""
        self.cq.append(pkt)
        self.kick.set()

    def _on_link_dead(self, peer: int, err: Exception) -> None:
        self._dead_links.setdefault(peer, err)
        self.kick.set()

    # ------------------------------------------------------------------ send
    def start_send(self, req: Request):
        cfg = self.config
        obs = self.sim.obs
        t0 = self.sim.now
        yield from self.host.cpu.execute(cfg.send_overhead)
        wire = req.datatype.pack(req.buf, req.count)
        dest_world = req.comm.world_rank(req.peer)
        key = (dest_world, req.comm.context_id)
        env = Envelope(
            src=req.comm.rank,
            tag=req.tag,
            context=req.comm.context_id,
            nbytes=len(wire),
            mode=req.mode,
            seq=self._seq[key],
            extra=self.world_rank,
        )
        self._seq[key] += 1
        eager = len(wire) <= cfg.eager_threshold
        if obs is not None:
            obs.emit(t0, "dev", "msg.send", rank=self.world_rank,
                     msg=(self.world_rank, dest_world, env.context, env.seq),
                     detail={"tag": env.tag, "nbytes": env.nbytes,
                             "proto": "eager" if eager else "rdv",
                             "mode": env.mode})
        self.sendq[dest_world].append(_QueuedSend(req, env, wire, eager))
        yield from self._issue_sends()

    def _issue_sends(self):
        issued = False
        obs = self.sim.obs
        for dest in list(self.sendq):
            q = self.sendq[dest]
            while q:
                op = q[0]
                need = self._flow_need(len(op.wire), op.eager)
                if self.credits[dest] < need:
                    if obs is not None:
                        obs.emit(self.sim.now, "dev", "stall.credit",
                                 rank=self.world_rank,
                                 detail={"dest": dest, "need": need,
                                         "credits": self.credits[dest],
                                         "queued": len(q)})
                    break  # optimistic sending stops when the slots are gone
                q.popleft()
                self.credits[dest] -= need
                yield from self._issue_one(dest, op)
                issued = True
            if not q:
                del self.sendq[dest]
        return issued

    def _issue_one(self, dest: int, op: _QueuedSend):
        env, req = op.env, op.req
        obs = self.sim.obs
        mid = (self.world_rank, dest, env.context, env.seq) if obs is not None else None
        if op.eager:
            yield from self._eager_inject(env.nbytes)
            if env.mode == MODE_SYNCHRONOUS:
                env.cookie = self._next_cookie()
                self.awaiting_ack[env.cookie] = req
                if obs is not None:
                    self._obs_cookie[env.cookie] = mid
            if obs is not None:
                obs.emit(self.sim.now, "dev", "env.sent", rank=self.world_rank,
                         msg=mid, detail={"nbytes": env.nbytes, "proto": "eager"})
            self.fabric.send(
                self.world_rank, dest, CONTROL_BYTES + env.nbytes,
                _Pkt(PKT_EAGER, self.world_rank, self._take_owed(dest),
                     env=env, data=op.wire),
            )
            if env.mode != MODE_SYNCHRONOUS:
                # the RDMA write / segment store completes locally once
                # posted (standard mode needs no remote completion)
                req._complete(Status(tag=env.tag, count_bytes=env.nbytes))
                if obs is not None:
                    obs.emit(self.sim.now, "dev", "send.complete",
                             rank=self.world_rank, msg=mid)
        else:
            yield from self._rdv_expose(req, env.nbytes)
            env.cookie = self._next_cookie()
            self.pending_rdv[env.cookie] = (op.wire, req)
            if obs is not None:
                self._obs_cookie[env.cookie] = mid
                obs.emit(self.sim.now, "dev", "env.sent", rank=self.world_rank,
                         msg=mid, detail={"nbytes": env.nbytes, "proto": "rdv"})
            self.fabric.send(
                self.world_rank, dest, CONTROL_BYTES,
                _Pkt(PKT_RTS, self.world_rank, self._take_owed(dest), env=env),
            )

    def _serve_read(self, cookie: int) -> Optional[_Pkt]:
        """NIC-side READ service: hand back the exposed bytes, CPU-free.

        Called by the fabric when the receiver's READ request arrives.
        Returns None when the exposed region was withdrawn (the send was
        poisoned by the FT layer) — the pull is abandoned and the
        receiver's request dies through the same FT sweep.
        """
        entry = self.pending_rdv.get(cookie)
        if entry is None:
            return None
        wire, _req = entry
        return _Pkt(PKT_RDV_DATA, self.world_rank, 0, data=wire, cookie=cookie)

    # ---------------------------------------------------------------- receive
    def start_recv(self, req: Request):
        cfg = self.config
        yield from self.host.cpu.execute(cfg.recv_overhead)
        arrival, comparisons = self.queues.post(req)
        if comparisons:
            yield from self.host.cpu.execute(
                cfg.match_cost + cfg.match_per_comparison * max(0, comparisons - 1)
            )
        if arrival is not None:
            obs = self.sim.obs
            if obs is not None:
                obs.emit(self.sim.now, "dev", "match.hit", rank=self.world_rank,
                         msg=self._obs_msgid(arrival.envelope),
                         detail={"unexpected": True, "comparisons": comparisons})
            yield from self._fulfill(req, arrival)

    # ------------------------------------------------------------ fault tolerance
    def _ft_requests(self):
        yield from super()._ft_requests()
        for dest in list(self.sendq):
            q = self.sendq[dest]
            for op in list(q):
                def cancel(q=q, op=op):
                    try:
                        q.remove(op)
                    except ValueError:
                        pass

                yield op.req, cancel
        for cookie in list(self.pending_rdv):
            _wire, req = self.pending_rdv[cookie]
            yield req, (lambda c=cookie: self.pending_rdv.pop(c, None))
        for cookie in list(self.awaiting_ack):
            yield self.awaiting_ack[cookie], (
                lambda c=cookie: self.awaiting_ack.pop(c, None))
        for key in list(self.rdv_pull):
            req, _env, _trunc = self.rdv_pull[key]
            yield req, (lambda k=key: self.rdv_pull.pop(k, None))

    def _ft_wake(self) -> None:
        self.kick.set()

    # --------------------------------------------------------------- progress
    def _progress(self, block: bool):
        if self._dead_links:
            self._surface_dead_links()
        did = False
        cq = self.cq
        while cq:
            pkt = cq.popleft()
            yield from self.host.cpu.execute(self.config.cq_poll_cost)
            yield from self._dispatch(pkt)
            did = True
        issued = yield from self._issue_sends()
        did = did or issued
        self._refresh_credits()
        if block and not did:
            yield self.kick.wait1()
            return True
        return did

    def _surface_dead_links(self) -> None:
        """A dead link (retry budget exhausted) surfaces device failure
        inside whatever MPI call is driving progress — unless the peer
        actually crashed, in which case this is transport-level failure
        detection racing the FT layer's detector."""
        ft = getattr(self.sim, "ft", None)
        if ft is not None and ft.is_crashing(self.world_rank):
            # we are the crashed host: the software that would react to
            # the NIC's link-down event no longer runs
            self._dead_links.clear()
            return
        while self._dead_links:
            peer = next(iter(self._dead_links))
            err = self._dead_links.pop(peer)
            if ft is not None and ft.is_crashing(peer):
                ft.mark_failed(peer, cause="retransmit")
                continue
            raise err

    def _dispatch(self, pkt: _Pkt):
        cfg = self.config
        obs = self.sim.obs
        peer = pkt.src
        if pkt.credits:
            self.credits[peer] += pkt.credits
        kind = pkt.kind
        if kind == PKT_CREDIT:
            return
        if kind == PKT_SYNC_ACK:
            req = self.awaiting_ack.pop(pkt.cookie, None)
            mid = self._obs_cookie.pop(pkt.cookie, None)
            if req is None or req.complete:
                return  # op already failed (peer death / revoke); stale ack
            req._complete(Status(tag=req.tag, count_bytes=req.datatype.size * req.count))
            if obs is not None:
                obs.emit(self.sim.now, "dev", "send.complete", rank=self.world_rank,
                         msg=mid, detail={"sync": True})
            return
        if kind == PKT_FIN:
            # the receiver's pull finished; retire the rendezvous send
            entry = self.pending_rdv.pop(pkt.cookie, None)
            mid = self._obs_cookie.pop(pkt.cookie, None)
            if entry is None:
                return  # send already failed (peer death / revoke)
            wire, sreq = entry
            if not sreq.complete:
                sreq._complete(Status(tag=sreq.tag, count_bytes=len(wire)))
            if obs is not None:
                obs.emit(self.sim.now, "dev", "send.complete",
                         rank=self.world_rank, msg=mid)
            return
        if kind == PKT_RDV_DATA:
            entry = self.rdv_pull.pop((peer, pkt.cookie), None)
            if entry is None:
                return  # receive already failed; drop the payload
            req, env, truncated = entry
            yield from self._rdv_complete(env.nbytes)
            if obs is not None:
                obs.emit(self.sim.now, "dev", "rdv.data", rank=self.world_rank,
                         msg=self._obs_msgid(env), detail={"nbytes": env.nbytes})
            if truncated:
                req._fail(
                    TruncationError(
                        f"{env.nbytes} bytes into a "
                        f"{self._capacity_bytes(req)}-byte receive"
                    )
                )
            else:
                self._store(req, pkt.data, Status(
                    source=env.src, tag=env.tag, count_bytes=env.nbytes))
                if obs is not None:
                    obs.emit(self.sim.now, "dev", "msg.complete",
                             rank=self.world_rank, msg=self._obs_msgid(env),
                             detail={"nbytes": env.nbytes})
            # FIN fires from the completion handler's doorbell: no CPU
            self.fabric.send(
                self.world_rank, peer, CONTROL_BYTES,
                _Pkt(PKT_FIN, self.world_rank, self._take_owed(peer),
                     cookie=pkt.cookie),
            )
            return
        # EAGER or RTS: run the matching engine
        env = pkt.env
        if obs is not None:
            obs.emit(self.sim.now, "dev", "env.arrived", rank=self.world_rank,
                     msg=self._obs_msgid(env), detail={"nbytes": env.nbytes})
        arrival = Arrival(env, data=pkt.data if kind == PKT_EAGER else None)
        req, comparisons = self.queues.arrive(arrival)
        yield from self.host.cpu.execute(
            cfg.match_cost + cfg.match_per_comparison * max(0, comparisons - 1)
        )
        if obs is not None:
            obs.emit(self.sim.now, "dev",
                     "match.hit" if req is not None else "match.miss",
                     rank=self.world_rank, msg=self._obs_msgid(env),
                     detail={"unexpected": False, "comparisons": comparisons})
        # the slot/segment space drains once the CQE is processed
        self.owed[peer] += self._flow_need(env.nbytes, kind == PKT_EAGER)
        if req is not None:
            yield from self._fulfill(req, arrival)
        elif env.mode == MODE_READY:
            self.ready_violations += 1
            if cfg.strict_ready:
                raise ReadyModeError(
                    f"ready-mode send from rank {env.src} (tag {env.tag}) "
                    "arrived before the matching receive was posted"
                )

    def _fulfill(self, req: Request, arrival: Arrival):
        env = arrival.envelope
        capacity = self._capacity_bytes(req)
        truncated = env.nbytes > capacity
        status = Status(source=env.src, tag=env.tag, count_bytes=env.nbytes)
        peer = env.extra
        obs = self.sim.obs
        if arrival.data is not None:
            if truncated:
                req._fail(TruncationError(
                    f"{env.nbytes} bytes into a {capacity}-byte receive"))
            else:
                yield from self._eager_deliver(env.nbytes)
                self._store(req, arrival.data, status)
                if obs is not None:
                    obs.emit(self.sim.now, "dev", "msg.complete",
                             rank=self.world_rank, msg=self._obs_msgid(env),
                             detail={"nbytes": env.nbytes})
            if env.mode == MODE_SYNCHRONOUS:
                self.fabric.send(
                    self.world_rank, peer, CONTROL_BYTES,
                    _Pkt(PKT_SYNC_ACK, self.world_rank, self._take_owed(peer),
                         cookie=env.cookie),
                )
        else:
            # rendezvous: pull the payload with an RDMA READ
            self.rdv_pull[(peer, env.cookie)] = (req, env, truncated)
            yield from self._rdv_prepare_pull(req, env.nbytes)
            if obs is not None:
                obs.emit(self.sim.now, "dev", "rdv.rts", rank=self.world_rank,
                         msg=self._obs_msgid(env), detail={"nbytes": env.nbytes})
            peer_ep = self.peers[peer]
            cookie = env.cookie
            self.fabric.read(
                self.world_rank, peer, CONTROL_BYTES + env.nbytes,
                lambda: peer_ep._serve_read(cookie),
            )

    def _refresh_credits(self) -> None:
        """Explicit credit return when a lot is owed and we are idle."""
        cfg = self.config
        for peer, owed in list(self.owed.items()):
            if owed >= cfg.credit_refresh and peer not in self._ft_dead:
                obs = self.sim.obs
                if obs is not None:
                    obs.emit(self.sim.now, "dev", "credit.grant",
                             rank=self.world_rank,
                             detail={"peer": peer, "bytes": owed})
                self.owed[peer] = 0
                self.fabric.send(self.world_rank, peer, CONTROL_BYTES,
                                 _Pkt(PKT_CREDIT, self.world_rank, owed))

    # ----------------------------------------------------------------- helpers
    def _obs_msgid(self, env: Envelope):
        if env.extra is None:
            return None
        if env.extra == self.world_rank:
            return None  # no self-sends on this device layer
        return (env.extra, self.world_rank, env.context, env.seq)

    def _flow_snapshot(self) -> dict:
        return {
            "sends_waiting_for_credit": {
                dest: {"tags": [op.env.tag for op in q], "credits": self.credits[dest]}
                for dest, q in self.sendq.items() if q
            },
            "credits_owed": {p: o for p, o in self.owed.items() if o},
            "rendezvous_exposed": len(self.pending_rdv),
            "pulls_in_flight": len(self.rdv_pull),
            "ssends_awaiting_ack": len(self.awaiting_ack),
            "cq_depth": len(self.cq),
        }

    def _describe_flow(self, flow: dict) -> str:
        waiting = ", ".join(
            f"dest={dest}:[{', '.join(f'tag={t}' for t in d['tags'])}] "
            f"credits={d['credits']}"
            for dest, d in flow["sends_waiting_for_credit"].items()
        ) or "none"
        owed = flow["credits_owed"] or "none"
        return (
            f"sends-waiting-for-credit=[{waiting}]; credits-owed={owed}; "
            f"rendezvous-exposed={flow['rendezvous_exposed']}; "
            f"pulls-in-flight={flow['pulls_in_flight']}; "
            f"ssends-awaiting-ack={flow['ssends_awaiting_ack']}; "
            f"cq-depth={flow['cq_depth']}"
        )

    @staticmethod
    def _capacity_bytes(req: Request) -> float:
        if req.buf is None:
            return float("inf")
        return req.datatype.size * req.count

    def _store(self, req: Request, data: bytes, status: Status) -> None:
        if req.buf is None:
            req.data = data
        else:
            count = len(data) // req.datatype.size if req.datatype.size else 0
            req.datatype.unpack(data, req.buf, count)
        req._complete(status)

    # ------------------------------------------------------------------ probe
    def iprobe(self, source: int, tag: int, comm):
        yield from self._progress(block=False)
        arrival = self.queues.probe(source, tag, comm.context_id)
        if arrival is None:
            return None
        env = arrival.envelope
        return Status(source=env.src, tag=env.tag, count_bytes=env.nbytes)

    # --------------------------------------------------------------- wiring
    @classmethod
    def wire(cls, machine, endpoints) -> None:
        for ep in endpoints:
            ep.fabric = machine.fabric
            machine.fabric.attach(ep.world_rank, ep._on_unit, ep._on_link_dead)
