"""The ``cxl`` device: cMPI-style MPI over shared CXL memory.

Two-sided messaging over load/store-addressable far memory (after
"cMPI: Using CXL Memory Sharing for MPI One-Sided and Two-Sided
Inter-Node Communications"):

* **eager** — the sender stores the payload into its outgoing shared
  segment (copy-in: ``coherence_base`` to take ownership of the mailbox
  line plus ``copy_per_byte`` of streaming stores) and raises the
  mailbox flag; the receiver polls the flag, loads the payload out into
  the user buffer (copy-out), and the segment space is recycled.  Flow
  control counts *segment bytes*.
* **rendezvous** — zero-copy handoff: the sender publishes the region's
  descriptor (one flag-line ownership transfer), the receiver maps it
  (``map_overhead``) and pulls the payload straight into the user
  buffer with the CXL port's DMA engine — no staging copy on either
  side — then posts a FIN.

There is no memory registration on this path: CXL segments are mapped
once at startup, which is exactly the cross-era contrast with the
``rdma`` cell's pinning costs (docs/FABRICS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.mpi.device.modern import CONTROL_BYTES, ModernEndpoint

__all__ = ["CxlConfig", "CxlEndpoint"]


@dataclass(frozen=True)
class CxlConfig:
    """Cost model of the CXL endpoint (µs / bytes)."""

    #: payloads at most this long go eager through the shared segment
    eager_threshold: int = 4096
    #: outgoing shared-segment bytes per peer (the flow-control credit)
    segment_bytes: int = 1 << 20
    #: freed bytes owed before an explicit credit update is sent
    credit_refresh: int = 1 << 19
    #: software send/receive-post overheads
    send_overhead: float = 0.2
    recv_overhead: float = 0.2
    #: mailbox-flag poll cost per delivery
    cq_poll_cost: float = 0.08
    #: matching engine: first comparison / each additional
    match_cost: float = 0.25
    match_per_comparison: float = 0.05
    #: streaming load/store to far memory (µs per byte, ~20 GB/s)
    copy_per_byte: float = 1.0 / 20000.0
    #: ownership transfer of the mailbox cache line
    coherence_base: float = 0.25
    #: rendezvous: map the peer's exposed descriptor
    map_overhead: float = 0.3
    #: retire a completed zero-copy pull
    completion_overhead: float = 0.1
    max_unexpected: int = 4096
    strict_ready: bool = True

    def with_overrides(self, **kw) -> "CxlConfig":
        return replace(self, **kw)


class CxlEndpoint(ModernEndpoint):
    """One rank's endpoint on the ``cxl`` fabric."""

    def __init__(self, world_rank: int, host, config: Optional[CxlConfig] = None):
        super().__init__(world_rank, host, config or CxlConfig())

    # ------------------------------------------------------------ flow units
    def _flow_initial(self) -> int:
        return self.config.segment_bytes

    def _flow_need(self, nbytes: int, eager: bool) -> int:
        # an eager message occupies header + payload in the segment;
        # an RTS only its descriptor
        return CONTROL_BYTES + (nbytes if eager else 0)

    # ------------------------------------------------------------ cost hooks
    def _eager_inject(self, nbytes: int):
        # copy-in: own the mailbox line, stream the payload into the segment
        cfg = self.config
        yield from self.host.cpu.execute(
            cfg.coherence_base + nbytes * cfg.copy_per_byte)

    def _eager_deliver(self, nbytes: int):
        # copy-out: stream the payload from far memory to the user buffer
        cfg = self.config
        yield from self.host.cpu.execute(
            cfg.coherence_base + nbytes * cfg.copy_per_byte)

    def _rdv_expose(self, req, nbytes: int):
        # publish the region descriptor: one flag-line ownership transfer
        yield from self.host.cpu.execute(self.config.coherence_base)

    def _rdv_prepare_pull(self, req, nbytes: int):
        yield from self.host.cpu.execute(self.config.map_overhead)

    def _rdv_complete(self, nbytes: int):
        yield from self.host.cpu.execute(self.config.completion_overhead)
