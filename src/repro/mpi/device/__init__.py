"""MPI devices: the transport-specific protocol engines.

========================  ==================================================
:class:`LowLatencyEndpoint`  the paper's Meiko implementation (SPARC
                             matching, 180-byte eager/rendezvous hybrid)
:class:`MpichEndpoint`       MPICH layered over the tport widget (Elan
                             matching) — the paper's comparison baseline
:class:`TcpEndpoint`         envelopes + piggybacked data over TCP with
                             credit flow control (ATM/Ethernet cluster)
:class:`UdpEndpoint`         the same protocol over reliable UDP
:class:`RdmaEndpoint`        RDMA-write eager / RDMA-READ rendezvous with
                             a registration cache (modern fabric)
:class:`CxlEndpoint`         load/store shared-memory eager / zero-copy
                             handoff rendezvous (modern fabric)
========================  ==================================================
"""

from repro.mpi.device.base import Endpoint
from repro.mpi.device.cxl import CxlConfig, CxlEndpoint
from repro.mpi.device.lowlatency import LowLatencyEndpoint, LowLatencyConfig
from repro.mpi.device.mpich import MpichEndpoint, MpichConfig
from repro.mpi.device.rdma import RdmaConfig, RdmaEndpoint, RegistrationCache

__all__ = [
    "Endpoint",
    "LowLatencyEndpoint",
    "LowLatencyConfig",
    "MpichEndpoint",
    "MpichConfig",
    "RdmaEndpoint",
    "RdmaConfig",
    "RegistrationCache",
    "CxlEndpoint",
    "CxlConfig",
]
