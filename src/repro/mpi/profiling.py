"""Profiling layer: per-communicator MPI statistics.

Wraps a communicator à la the MPI profiling interface (PMPI): every
call is counted, bytes are tallied, and simulated time spent inside MPI
is accumulated — without touching the wrapped communicator or devices.

>>> pcomm = profile(comm)
>>> yield from pcomm.send(buf, dest=1)
>>> pcomm.stats.calls["send"], pcomm.stats.bytes_sent
(1, 1024)

The wrapper is a producer/consumer pair on an
:class:`~repro.obs.bus.EventBus`: each completed call emits one
``prof``-layer ``call`` event, and the communicator's
:class:`MpiStats` (plus any attached Timeline) is maintained by a bus
subscriber keyed to that wrapper.  By default the events go to the
world's bus if tracing is on (so profiled calls appear in exported
traces), or to a private bus otherwise.
"""

from __future__ import annotations

import functools
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.obs.bus import EventBus

__all__ = ["MpiStats", "ProfiledCommunicator", "profile"]

#: generator methods whose time/calls are recorded
_TRACKED = (
    "send", "bsend", "ssend", "rsend", "recv",
    "isend", "irecv", "issend", "ibsend", "irsend",
    "wait", "test", "waitall", "waitany", "waitsome", "testall", "testany",
    "probe", "iprobe", "sendrecv", "sendrecv_replace",
    "bcast", "barrier", "reduce", "allreduce", "scan", "exscan",
    "reduce_scatter", "gather", "scatter", "allgather", "alltoall",
    "start", "startall", "cancel",
)

_SEND_CALLS = {
    "send", "bsend", "ssend", "rsend", "isend", "issend", "ibsend", "irsend",
    "sendrecv", "sendrecv_replace",
}
_RECV_CALLS = {"recv", "irecv", "sendrecv"}


def _nbytes(buf) -> int:
    if buf is None:
        return 0
    if isinstance(buf, np.ndarray):
        return buf.nbytes
    try:
        return len(buf)
    except TypeError:
        return 0


@dataclass
class MpiStats:
    """Accumulated statistics of one profiled communicator."""

    calls: Counter = field(default_factory=Counter)
    bytes_sent: int = 0
    bytes_received: int = 0
    #: simulated µs spent inside MPI calls (blocking time included)
    time_in_mpi: float = 0.0
    #: per-call-name simulated µs
    time_by_call: Dict[str, float] = field(default_factory=dict)

    def summary(self) -> str:
        lines = [
            f"MPI calls: {sum(self.calls.values())}, "
            f"sent {self.bytes_sent} B, received {self.bytes_received} B, "
            f"{self.time_in_mpi:.1f} us in MPI"
        ]
        for name, n in self.calls.most_common():
            t = self.time_by_call.get(name, 0.0)
            lines.append(f"  {name:<18} x{n:<6} {t:10.1f} us")
        return "\n".join(lines)


class ProfiledCommunicator:
    """A transparent, stats-collecting communicator wrapper.

    With a :class:`~repro.mpi.timeline.Timeline` attached, every call's
    (start, end) span is recorded for Gantt rendering.
    """

    def __init__(self, comm, timeline=None, bus: Optional[EventBus] = None):
        self._comm = comm
        if bus is None:
            bus = getattr(comm.endpoint.sim, "obs", None)
        if bus is None:
            bus = EventBus()
        self.bus = bus
        self.stats = MpiStats()
        self.timeline = timeline
        # events carry the producing wrapper's key so several profiled
        # communicators can share one bus without mixing their stats
        self._key = id(self)
        bus.subscribe(self._consume)

    def _consume(self, ev) -> None:
        """Bus subscriber: fold this wrapper's ``prof`` events into stats."""
        if ev.layer != "prof" or ev.detail.get("pc") != self._key:
            return
        d = ev.detail
        name = d["call"]
        stats = self.stats
        stats.calls[name] += 1
        stats.bytes_sent += d.get("bytes_sent", 0)
        stats.bytes_received += d.get("bytes_received", 0)
        dt = ev.t - d["start"]
        stats.time_in_mpi += dt
        stats.time_by_call[name] = stats.time_by_call.get(name, 0.0) + dt
        if self.timeline is not None:
            self.timeline.record(ev.rank, name, d["start"], ev.t)

    def __getattr__(self, name):
        attr = getattr(self._comm, name)
        if name not in _TRACKED or not callable(attr):
            return attr
        comm = self._comm
        bus = self.bus
        key = self._key

        @functools.wraps(attr)
        def wrapper(*args, **kwargs):
            detail = {"call": name, "pc": key}
            if name in _SEND_CALLS:
                buf = args[0] if args else kwargs.get("buf")
                detail["bytes_sent"] = _nbytes(buf)
            t0 = comm.wtime()
            detail["start"] = t0
            result = yield from attr(*args, **kwargs)
            if name in _RECV_CALLS and isinstance(result, tuple) and len(result) == 2:
                status = result[1]
                if status is not None and getattr(status, "count_bytes", 0) > 0:
                    detail["bytes_received"] = status.count_bytes
            bus.emit(comm.wtime(), "prof", "call", rank=comm.rank, detail=detail)
            return result

        return wrapper

    # a few non-generator pass-throughs that __getattr__ would wrap wrongly
    @property
    def rank(self):
        return self._comm.rank

    @property
    def size(self):
        return self._comm.size

    @property
    def endpoint(self):
        return self._comm.endpoint

    @property
    def group(self):
        return self._comm.group

    @property
    def context_id(self):
        return self._comm.context_id

    def wtime(self):
        return self._comm.wtime()


def profile(comm, timeline=None, bus: Optional[EventBus] = None) -> ProfiledCommunicator:
    """Wrap *comm* for statistics collection (and optionally a Timeline)."""
    return ProfiledCommunicator(comm, timeline=timeline, bus=bus)
