"""Profiling layer: per-communicator MPI statistics.

Wraps a communicator à la the MPI profiling interface (PMPI): every
call is counted, bytes are tallied, and simulated time spent inside MPI
is accumulated — without touching the wrapped communicator or devices.

>>> pcomm = profile(comm)
>>> yield from pcomm.send(buf, dest=1)
>>> pcomm.stats.calls["send"], pcomm.stats.bytes_sent
(1, 1024)
"""

from __future__ import annotations

import functools
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict

import numpy as np

__all__ = ["MpiStats", "ProfiledCommunicator", "profile"]

#: generator methods whose time/calls are recorded
_TRACKED = (
    "send", "bsend", "ssend", "rsend", "recv",
    "isend", "irecv", "issend", "ibsend", "irsend",
    "wait", "test", "waitall", "waitany", "waitsome", "testall", "testany",
    "probe", "iprobe", "sendrecv", "sendrecv_replace",
    "bcast", "barrier", "reduce", "allreduce", "scan", "exscan",
    "reduce_scatter", "gather", "scatter", "allgather", "alltoall",
    "start", "startall", "cancel",
)

_SEND_CALLS = {
    "send", "bsend", "ssend", "rsend", "isend", "issend", "ibsend", "irsend",
    "sendrecv", "sendrecv_replace",
}
_RECV_CALLS = {"recv", "irecv", "sendrecv"}


def _nbytes(buf) -> int:
    if buf is None:
        return 0
    if isinstance(buf, np.ndarray):
        return buf.nbytes
    try:
        return len(buf)
    except TypeError:
        return 0


@dataclass
class MpiStats:
    """Accumulated statistics of one profiled communicator."""

    calls: Counter = field(default_factory=Counter)
    bytes_sent: int = 0
    bytes_received: int = 0
    #: simulated µs spent inside MPI calls (blocking time included)
    time_in_mpi: float = 0.0
    #: per-call-name simulated µs
    time_by_call: Dict[str, float] = field(default_factory=dict)

    def summary(self) -> str:
        lines = [
            f"MPI calls: {sum(self.calls.values())}, "
            f"sent {self.bytes_sent} B, received {self.bytes_received} B, "
            f"{self.time_in_mpi:.1f} us in MPI"
        ]
        for name, n in self.calls.most_common():
            t = self.time_by_call.get(name, 0.0)
            lines.append(f"  {name:<18} x{n:<6} {t:10.1f} us")
        return "\n".join(lines)


class ProfiledCommunicator:
    """A transparent, stats-collecting communicator wrapper.

    With a :class:`~repro.mpi.timeline.Timeline` attached, every call's
    (start, end) span is recorded for Gantt rendering.
    """

    def __init__(self, comm, timeline=None):
        self._comm = comm
        self.stats = MpiStats()
        self.timeline = timeline

    def __getattr__(self, name):
        attr = getattr(self._comm, name)
        if name not in _TRACKED or not callable(attr):
            return attr
        stats = self.stats
        comm = self._comm
        timeline = self.timeline

        @functools.wraps(attr)
        def wrapper(*args, **kwargs):
            stats.calls[name] += 1
            if name in _SEND_CALLS:
                buf = args[0] if args else kwargs.get("buf")
                stats.bytes_sent += _nbytes(buf)
            t0 = comm.wtime()
            result = yield from attr(*args, **kwargs)
            t1 = comm.wtime()
            dt = t1 - t0
            stats.time_in_mpi += dt
            stats.time_by_call[name] = stats.time_by_call.get(name, 0.0) + dt
            if timeline is not None:
                timeline.record(comm.rank, name, t0, t1)
            if name in _RECV_CALLS and isinstance(result, tuple) and len(result) == 2:
                status = result[1]
                if status is not None and getattr(status, "count_bytes", 0) > 0:
                    stats.bytes_received += status.count_bytes
            return result

        return wrapper

    # a few non-generator pass-throughs that __getattr__ would wrap wrongly
    @property
    def rank(self):
        return self._comm.rank

    @property
    def size(self):
        return self._comm.size

    @property
    def endpoint(self):
        return self._comm.endpoint

    @property
    def group(self):
        return self._comm.group

    @property
    def context_id(self):
        return self._comm.context_id

    def wtime(self):
        return self._comm.wtime()


def profile(comm, timeline=None) -> ProfiledCommunicator:
    """Wrap *comm* for statistics collection (and optionally a Timeline)."""
    return ProfiledCommunicator(comm, timeline=timeline)
