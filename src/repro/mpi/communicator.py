"""Communicators: the user-facing MPI API.

All blocking calls are generators used with ``yield from`` inside a
simulated rank::

    def main(comm):
        req = yield from comm.isend(data, dest=1, tag=5)
        other, status = yield from comm.recv(source=1, tag=5)
        yield from comm.wait(req)

Buffers are NumPy arrays or bytes-like objects; ``count``/``datatype``
are inferred for basic types.  ``recv(buf=None)`` is a convenience that
allocates from the envelope (returns ``bytes``) — handy, though stricter
than MPI proper.

Communicator creation (``dup``/``split``) is collective and allocates
context ids deterministically: every member derives the same allocation
key from (parent context, per-parent creation counter), and a barrier
preserves the synchronizing semantics.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.errors import NetworkError
from repro.mpi import collectives as _coll
from repro.mpi.constants import (
    ANY_SOURCE,
    ANY_TAG,
    ERRORS_ARE_FATAL,
    ERRORS_RETURN,
    MODE_BUFFERED,
    MODE_READY,
    MODE_STANDARD,
    MODE_SYNCHRONOUS,
    PROC_NULL,
    SUCCESS,
    TAG_UB,
)
from repro.mpi.datatypes import Datatype, infer_datatype
from repro.mpi.exceptions import (
    CommError,
    CommRevoked,
    CommunicatorError,
    MPIError,
    RankFailed,
    errcode_of,
)
from repro.mpi.group import Group
from repro.mpi.persistent import PersistentRequest
from repro.mpi.request import Request
from repro.mpi.status import Status

__all__ = ["Communicator"]


def _byte_type():
    from repro.mpi.datatypes import BYTE

    return BYTE


class Communicator:
    """An MPI communicator bound to one rank's endpoint."""

    def __init__(self, world, group: Group, context_id: int, endpoint):
        self.world = world
        self.group = group
        self.context_id = context_id
        self.endpoint = endpoint
        self.rank = group.rank_of(endpoint.world_rank)
        if self.rank < 0:
            raise CommunicatorError(
                f"world rank {endpoint.world_rank} is not a member of {group}"
            )
        self.size = group.size
        self._creation_counter = 0
        #: per-communicator collective sequence number — every collective
        #: call draws one, giving each invocation its own internal tag
        #: generation so back-to-back collectives can never cross-match
        #: (see collectives._coll_tag).  All members of a communicator
        #: execute the same collectives in the same order, so the
        #: per-rank counters stay in lock-step without any traffic.
        self._coll_seq = 0
        #: ERRORS_ARE_FATAL (default) or ERRORS_RETURN
        self.errhandler = ERRORS_ARE_FATAL
        #: failures this rank has acknowledged (world ranks; ULFM)
        self._acked = frozenset()
        #: internal: recovery collectives (agree/shrink) bypass the
        #: revoked-communicator check on their own traffic
        self._ft_bypass = False

    # -------------------------------------------------------- error handling
    def set_errhandler(self, handler: str) -> None:
        """MPI_Errhandler_set: ERRORS_ARE_FATAL (default) or ERRORS_RETURN.

        With ``ERRORS_ARE_FATAL``, a device/transport failure raises
        :class:`CommError` (rank/peer/tag context, original error
        chained) out of the MPI call.  With ``ERRORS_RETURN``, blocking
        sends return an error code instead of ``SUCCESS`` and receives
        return ``(None, status)`` with ``status.error`` set, letting the
        rank continue.  MPI semantic errors (truncation, invalid rank)
        raise regardless — this handler governs *device* failures only.
        """
        if handler not in (ERRORS_ARE_FATAL, ERRORS_RETURN):
            raise MPIError(
                f"unknown error handler {handler!r}; use ERRORS_ARE_FATAL or ERRORS_RETURN"
            )
        self.errhandler = handler

    def get_errhandler(self) -> str:
        """MPI_Errhandler_get."""
        return self.errhandler

    def _device_error(self, exc: BaseException, peer=None, tag=None) -> int:
        """Apply this communicator's error handler to a device failure.

        ERRORS_ARE_FATAL: raise a context-carrying :class:`CommError`.
        ERRORS_RETURN: return the numeric error code.
        """
        if self.errhandler == ERRORS_RETURN:
            return errcode_of(exc)
        if isinstance(exc, CommError):
            # already a context-carrying MPI error (RankFailed /
            # CommRevoked from the FT layer): preserve its type
            if exc.rank is None:
                exc.rank = self.rank
            raise exc
        ft = getattr(self.world, "ft", None)
        if ft is not None and peer is not None and 0 <= peer < self.size:
            dead = self.group.world_rank(peer)
            if dead in ft.failed or ft.is_crashing(dead):
                # a transport error on a connection to a crashed host is
                # a process failure, not a network failure
                raise RankFailed(
                    f"rank {self.rank}: peer process failed "
                    f"(peer={peer}, tag={tag}): {exc}",
                    rank=self.rank, peer=peer, tag=tag, failed=(dead,),
                ) from exc
        raise CommError(
            f"rank {self.rank}: device failure in operation "
            f"(peer={peer}, tag={tag}): {exc}",
            rank=self.rank,
            peer=peer,
            tag=tag,
            errcode=errcode_of(exc),
        ) from exc

    # ------------------------------------------------------------- plumbing
    def world_rank(self, rank: int) -> int:
        """World rank of a communicator rank."""
        return self.group.world_rank(rank)

    def wtime(self) -> float:
        """Wall-clock time (simulated microseconds)."""
        return self.endpoint.wtime()

    def _check_rank(self, rank: int, what: str) -> None:
        if not (0 <= rank < self.size):
            raise CommunicatorError(f"{what} {rank} out of range [0, {self.size})")

    def _check_send_tag(self, tag: int) -> None:
        # Tags above TAG_UB are the library's internal collective tags;
        # they are reserved but legal at this layer.
        if tag < 0:
            raise MPIError(f"send tag {tag} outside [0, {TAG_UB}]")

    @staticmethod
    def _resolve(buf, count: Optional[int], datatype: Optional[Datatype]):
        if datatype is None:
            if buf is None:
                raise MPIError("datatype required when no buffer is given")
            datatype = infer_datatype(buf)
        if count is None:
            if buf is None:
                raise MPIError("count required when no buffer is given")
            if isinstance(buf, np.ndarray):
                if datatype.extent_elems == 0:
                    raise MPIError("cannot infer count for zero-extent datatype")
                count = buf.size // max(1, datatype.extent_elems)
                if datatype.basic is datatype:
                    count = buf.size
            else:
                count = len(buf) // max(1, datatype.extent)
        return count, datatype

    def _traced(self, name: str, gen, peer=None, tag=None):
        """Run *gen*, bracketing it with ``mpi``-layer
        ``call.enter``/``call.exit`` events when tracing is on.

        Not a generator itself: with tracing off it returns *gen*
        untouched, so ``yield from self._traced(...)`` delegates straight
        to the implementation generator with no wrapper frame on the
        critical path.  The exit event fires even when the call raises,
        so Chrome-trace B/E pairs stay balanced across device failures.
        """
        obs = self.endpoint.sim.obs
        if obs is None:
            return gen
        return self._traced_gen(name, gen, peer, tag, obs)

    def _traced_gen(self, name, gen, peer, tag, obs):
        sim = self.endpoint.sim
        detail = {"call": name}
        if peer is not None:
            detail["peer"] = peer
        if tag is not None:
            detail["tag"] = tag
        obs.emit(sim.now, "mpi", "call.enter", rank=self.rank, detail=detail)
        try:
            result = yield from gen
        finally:
            obs.emit(sim.now, "mpi", "call.exit", rank=self.rank, detail=detail)
        return result

    # ------------------------------------------------------ point to point
    def isend(
        self,
        buf,
        dest: int,
        tag: int = 0,
        count: Optional[int] = None,
        datatype: Optional[Datatype] = None,
        mode: str = MODE_STANDARD,
    ):
        """Generator -> Request: nonblocking send (MPI_Isend family)."""
        return (
            yield from self._traced(
                "isend",
                self._isend_impl(buf, dest, tag, count, datatype, mode),
                peer=dest,
                tag=tag,
            )
        )

    def _isend_impl(self, buf, dest, tag, count, datatype, mode):
        self._check_send_tag(tag)
        if dest == PROC_NULL:
            if datatype is None:
                datatype = infer_datatype(buf) if buf is not None else _byte_type()
            req = Request("send", self, buf, 0, datatype, dest, tag)
            req._complete(Status(source=PROC_NULL, tag=tag, count_bytes=0))
            return req
        self._check_rank(dest, "destination")
        self._ft_check_send(dest, tag)
        count, datatype = self._resolve(buf, count, datatype)
        req = Request("send", self, buf, count, datatype, dest, tag, mode)
        if mode == MODE_BUFFERED:
            yield from self.endpoint.start_bsend(req)
        else:
            yield from self.endpoint.start_send(req)
        self.endpoint.ft_check_new(req)
        return req

    def irecv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        buf=None,
        count: Optional[int] = None,
        datatype: Optional[Datatype] = None,
    ):
        """Generator -> Request: nonblocking receive (MPI_Irecv)."""
        return (
            yield from self._traced(
                "irecv",
                self._irecv_impl(source, tag, buf, count, datatype),
                peer=source,
                tag=tag,
            )
        )

    def _irecv_impl(self, source, tag, buf, count, datatype):
        if source == PROC_NULL:
            if datatype is None:
                datatype = infer_datatype(buf) if buf is not None else _byte_type()
            req = Request("recv", self, buf, 0, datatype, source, tag)
            req._complete(Status(source=PROC_NULL, tag=ANY_TAG, count_bytes=0))
            return req
        if source != ANY_SOURCE:
            self._check_rank(source, "source")
        self._ft_check_recv(source, tag)
        if buf is not None:
            count, datatype = self._resolve(buf, count, datatype)
        else:
            from repro.mpi.datatypes import BYTE

            count, datatype = 0, BYTE
        req = Request("recv", self, buf, count, datatype, source, tag)
        yield from self.endpoint.start_recv(req)
        self.endpoint.ft_check_new(req)
        return req

    def _blocking_send(self, buf, dest, tag, count, datatype, mode):
        """Shared body of the blocking sends: SUCCESS or an error code.

        Calls the isend/wait *implementations* through :meth:`_traced`
        directly: traced runs still see the nested isend/wait call
        events, untraced runs skip the public-wrapper frames.
        """
        try:
            req = yield from self._traced(
                "isend", self._isend_impl(buf, dest, tag, count, datatype, mode),
                peer=dest, tag=tag)
        except (NetworkError, CommError) as exc:
            return self._device_error(exc, peer=dest, tag=tag)
        status = yield from self._traced("wait", self._wait_impl(req))
        return SUCCESS if status is None else status.error

    def send(self, buf, dest, tag: int = 0, count=None, datatype=None):
        """Generator -> int: blocking standard-mode send (MPI_Send).

        Returns SUCCESS; under ERRORS_RETURN a device failure returns an
        error code instead of raising.
        """
        return (yield from self._traced(
            "send",
            self._blocking_send(buf, dest, tag, count, datatype, MODE_STANDARD),
            peer=dest, tag=tag))

    def bsend(self, buf, dest, tag: int = 0, count=None, datatype=None):
        """Generator -> int: blocking buffered-mode send (MPI_Bsend)."""
        return (yield from self._traced(
            "bsend",
            self._blocking_send(buf, dest, tag, count, datatype, MODE_BUFFERED),
            peer=dest, tag=tag))

    def ssend(self, buf, dest, tag: int = 0, count=None, datatype=None):
        """Generator -> int: blocking synchronous-mode send (MPI_Ssend)."""
        return (yield from self._traced(
            "ssend",
            self._blocking_send(buf, dest, tag, count, datatype, MODE_SYNCHRONOUS),
            peer=dest, tag=tag))

    def rsend(self, buf, dest, tag: int = 0, count=None, datatype=None):
        """Generator -> int: blocking ready-mode send (MPI_Rsend)."""
        return (yield from self._traced(
            "rsend",
            self._blocking_send(buf, dest, tag, count, datatype, MODE_READY),
            peer=dest, tag=tag))

    def issend(self, buf, dest, tag: int = 0, count=None, datatype=None):
        """Generator -> Request: nonblocking synchronous send (MPI_Issend)."""
        return (yield from self.isend(buf, dest, tag, count, datatype, MODE_SYNCHRONOUS))

    def ibsend(self, buf, dest, tag: int = 0, count=None, datatype=None):
        """Generator -> Request: nonblocking buffered send (MPI_Ibsend)."""
        return (yield from self.isend(buf, dest, tag, count, datatype, MODE_BUFFERED))

    def irsend(self, buf, dest, tag: int = 0, count=None, datatype=None):
        """Generator -> Request: nonblocking ready send (MPI_Irsend)."""
        return (yield from self.isend(buf, dest, tag, count, datatype, MODE_READY))

    def recv(
        self,
        source: int = ANY_SOURCE,
        tag: int = ANY_TAG,
        buf=None,
        count: Optional[int] = None,
        datatype: Optional[Datatype] = None,
    ):
        """Generator -> (data, Status): blocking receive (MPI_Recv).

        With a buffer: fills it and returns ``(buf, status)``.  Without:
        returns the received payload as ``bytes``.  Under ERRORS_RETURN
        a device failure returns ``(None, status)`` with ``status.error``
        set instead of raising.
        """
        return (
            yield from self._traced(
                "recv",
                self._recv_impl(source, tag, buf, count, datatype),
                peer=source,
                tag=tag,
            )
        )

    def _recv_impl(self, source, tag, buf, count, datatype):
        try:
            req = yield from self._traced(
                "irecv", self._irecv_impl(source, tag, buf, count, datatype),
                peer=source, tag=tag)
        except (NetworkError, CommError) as exc:
            code = self._device_error(exc, peer=source, tag=tag)
            status = Status(source=source, tag=tag)
            status.error = code
            return None, status
        status = yield from self._traced("wait", self._wait_impl(req))
        if status is not None and status.error != SUCCESS:
            return None, status
        return (req.data if buf is None else buf), status

    def sendrecv(
        self,
        sendbuf,
        dest: int,
        recvbuf=None,
        source: int = ANY_SOURCE,
        sendtag: int = 0,
        recvtag: int = ANY_TAG,
        count=None,
        datatype=None,
    ):
        """Generator -> (data, Status): MPI_Sendrecv (deadlock-free)."""
        return (
            yield from self._traced(
                "sendrecv",
                self._sendrecv_impl(
                    sendbuf, dest, recvbuf, source, sendtag, recvtag, count, datatype
                ),
                peer=dest,
                tag=sendtag,
            )
        )

    def _sendrecv_impl(
        self, sendbuf, dest, recvbuf, source, sendtag, recvtag, count, datatype
    ):
        rreq = yield from self._traced(
            "irecv", self._irecv_impl(source, recvtag, recvbuf, None, None),
            peer=source, tag=recvtag)
        sreq = yield from self._traced(
            "isend", self._isend_impl(sendbuf, dest, sendtag, count, datatype, MODE_STANDARD),
            peer=dest, tag=sendtag)
        yield from self._traced("waitall", self._waitall_impl([sreq, rreq]))
        return (rreq.data if recvbuf is None else recvbuf), rreq.status

    def sendrecv_replace(
        self,
        buf,
        dest: int,
        source: int = ANY_SOURCE,
        sendtag: int = 0,
        recvtag: int = ANY_TAG,
    ):
        """Generator -> Status: MPI_Sendrecv_replace — the received
        message overwrites the send buffer."""
        count, datatype = self._resolve(buf, None, None)
        # stage the outgoing data so the receive can land in *buf*
        staged = datatype.pack(buf, count)
        rreq = yield from self.irecv(source, recvtag, buf, count, datatype)
        sreq = yield from self.isend(staged, dest, sendtag)
        yield from self.waitall([sreq, rreq])
        return rreq.status

    # ---------------------------------------------------------- completion
    @staticmethod
    def _inner(request):
        """Unwrap a persistent request to its in-flight inner Request.

        An inactive persistent handle yields a fresh completed Request
        (MPI: waiting on an inactive handle returns immediately with an
        empty status).
        """
        if isinstance(request, PersistentRequest):
            if request.inner is None:
                dummy = Request("send", None, None, 0, None, PROC_NULL, 0)
                dummy._complete(Status())
                return dummy
            return request.inner
        return request

    @staticmethod
    def _settle(request) -> None:
        """Post-completion bookkeeping: persistent handles go inactive."""
        if isinstance(request, PersistentRequest):
            request._reset()

    def _failed_status(self, inner, exc) -> Status:
        """Status for a device-failed request (ERRORS_RETURN); raises
        CommError instead under ERRORS_ARE_FATAL."""
        code = self._device_error(exc, peer=inner.peer, tag=inner.tag)
        status = Status(source=inner.peer, tag=inner.tag)
        status.error = code
        return status

    def wait(self, request):
        """Generator -> Status: block until *request* completes (MPI_Wait).

        A device failure raises :class:`CommError` under
        ERRORS_ARE_FATAL; under ERRORS_RETURN the wait completes with a
        Status whose ``error`` field holds the code.  MPI semantic
        errors (truncation etc.) raise regardless of the handler.
        """
        return (yield from self._traced("wait", self._wait_impl(request)))

    def _wait_impl(self, request):
        inner = self._inner(request)
        try:
            yield from self.endpoint.wait([inner], mode="all")
            inner.raise_if_failed()
        except (NetworkError, CommError) as exc:
            status = self._failed_status(inner, exc)
            self._settle(request)
            return status
        status = inner.status
        self._settle(request)
        return status

    def test(self, request):
        """Generator -> (bool, Optional[Status]): MPI_Test."""
        inner = self._inner(request)
        done = yield from self.endpoint.test(inner)
        if not done:
            return False, None
        status = inner.status
        self._settle(request)
        return True, status

    def waitall(self, requests: Sequence):
        """Generator -> [Status]: MPI_Waitall.

        On device failure under ERRORS_RETURN, each failed (or
        consequently incomplete) request's Status carries the error
        code; the others report their normal completion.
        """
        return (yield from self._traced("waitall", self._waitall_impl(requests)))

    def _waitall_impl(self, requests: Sequence):
        inners = [self._inner(r) for r in requests]
        try:
            yield from self.endpoint.wait(inners, mode="all")
            for r in inners:
                r.raise_if_failed()
        except (NetworkError, CommError) as exc:
            statuses = []
            for r in inners:
                if r.complete and r.error is None:
                    statuses.append(r.status)
                else:
                    err = (r.error
                           if isinstance(r.error, (NetworkError, CommError))
                           else exc)
                    statuses.append(self._failed_status(r, err))
            for r in requests:
                self._settle(r)
            return statuses
        statuses = [r.status for r in inners]
        for r in requests:
            self._settle(r)
        return statuses

    def waitany(self, requests: Sequence):
        """Generator -> (index, Status): MPI_Waitany."""
        return (yield from self._traced("waitany", self._waitany_impl(requests)))

    def _waitany_impl(self, requests: Sequence):
        requests = list(requests)
        if not requests:
            raise MPIError("waitany of no requests")
        inners = [self._inner(r) for r in requests]
        while True:
            for i, r in enumerate(inners):
                if r.complete:
                    r.raise_if_failed()
                    status = r.status
                    self._settle(requests[i])
                    return i, status
            yield from self.endpoint.wait(inners, mode="any")

    def waitsome(self, requests: Sequence):
        """Generator -> (indices, statuses): MPI_Waitsome — at least one
        completion, returning every request done at that moment."""
        return (yield from self._traced("waitsome", self._waitsome_impl(requests)))

    def _waitsome_impl(self, requests: Sequence):
        requests = list(requests)
        if not requests:
            raise MPIError("waitsome of no requests")
        inners = [self._inner(r) for r in requests]
        while not any(r.complete for r in inners):
            yield from self.endpoint.wait(inners, mode="any")
        indices, statuses = [], []
        for i, r in enumerate(inners):
            if r.complete:
                r.raise_if_failed()
                indices.append(i)
                statuses.append(r.status)
                self._settle(requests[i])
        return indices, statuses

    def testall(self, requests: Sequence):
        """Generator -> (bool, Optional[[Status]]): MPI_Testall."""
        inners = [self._inner(r) for r in requests]
        all_done = True
        for r in inners:
            done = yield from self.endpoint.test(r)
            all_done = all_done and done
        if not all_done:
            return False, None
        for r in inners:
            r.raise_if_failed()
        statuses = [r.status for r in inners]
        for r in requests:
            self._settle(r)
        return True, statuses

    def testany(self, requests: Sequence):
        """Generator -> (bool, index, Optional[Status]): MPI_Testany."""
        requests = list(requests)
        inners = [self._inner(r) for r in requests]
        for i, r in enumerate(inners):
            done = yield from self.endpoint.test(r)
            if done:
                r.raise_if_failed()
                status = r.status
                self._settle(requests[i])
                return True, i, status
        return False, None, None

    def cancel(self, request: Request):
        """Generator -> bool: MPI_Cancel for a not-yet-matched receive.

        Returns True if the receive was withdrawn (its status reports
        ``cancelled``); False if it had already matched.  Cancelling
        sends is not supported (like most real MPIs of the era).
        """
        inner = self._inner(request)
        if inner.kind != "recv":
            raise MPIError("cancelling send requests is not supported")
        if inner.complete:
            return False
        ok = yield from self.endpoint.cancel_recv(inner)
        return ok

    # ---------------------------------------------------- persistent requests
    def send_init(self, buf, dest, tag: int = 0, count=None, datatype=None,
                  mode: str = MODE_STANDARD) -> PersistentRequest:
        """MPI_Send_init: a startable persistent send template."""
        self._check_send_tag(tag)
        if dest != PROC_NULL:
            self._check_rank(dest, "destination")
        count, datatype = self._resolve(buf, count, datatype)
        return PersistentRequest(self, "send", buf, count, datatype, dest, tag, mode)

    def ssend_init(self, buf, dest, tag: int = 0, count=None, datatype=None):
        """MPI_Ssend_init."""
        return self.send_init(buf, dest, tag, count, datatype, MODE_SYNCHRONOUS)

    def bsend_init(self, buf, dest, tag: int = 0, count=None, datatype=None):
        """MPI_Bsend_init."""
        return self.send_init(buf, dest, tag, count, datatype, MODE_BUFFERED)

    def rsend_init(self, buf, dest, tag: int = 0, count=None, datatype=None):
        """MPI_Rsend_init."""
        return self.send_init(buf, dest, tag, count, datatype, MODE_READY)

    def recv_init(self, buf, source: int = ANY_SOURCE, tag: int = ANY_TAG,
                  count=None, datatype=None) -> PersistentRequest:
        """MPI_Recv_init: a startable persistent receive template."""
        if source != ANY_SOURCE and source != PROC_NULL:
            self._check_rank(source, "source")
        count, datatype = self._resolve(buf, count, datatype)
        return PersistentRequest(self, "recv", buf, count, datatype, source, tag)

    def start(self, request: PersistentRequest):
        """Generator: MPI_Start."""
        yield from request.start()
        return request

    def startall(self, requests: Sequence[PersistentRequest]):
        """Generator: MPI_Startall."""
        for r in requests:
            yield from r.start()
        return list(requests)

    # --------------------------------------------------------------- probe
    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Generator -> Status: blocking MPI_Probe."""
        if source != ANY_SOURCE and source != PROC_NULL:
            self._check_rank(source, "source")
        return (
            yield from self._traced(
                "probe", self.endpoint.probe(source, tag, self), peer=source, tag=tag
            )
        )

    def iprobe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """Generator -> (bool, Optional[Status]): MPI_Iprobe."""
        if source != ANY_SOURCE and source != PROC_NULL:
            self._check_rank(source, "source")
        status = yield from self.endpoint.iprobe(source, tag, self)
        return (status is not None), status

    # ----------------------------------------------------------- buffering
    def buffer_attach(self, nbytes: int) -> None:
        """MPI_Buffer_attach (per process, like MPI)."""
        self.endpoint.attach_buffer(nbytes)

    def buffer_detach(self) -> int:
        """MPI_Buffer_detach."""
        return self.endpoint.detach_buffer()

    # ---------------------------------------------------------- collectives
    def _coll_fatal(self, gen):
        """Run a collective body with device failures *raised*.

        Collectives return data, not codes — there is no channel for
        ERRORS_RETURN's error-code contract, and a collective built on
        blocking point-to-point calls that silently return codes would
        half-complete and hand back garbage (or deadlock the peers still
        inside it).  So device failures inside a collective always
        surface as :class:`CommError` / :class:`RankFailed` /
        :class:`CommRevoked`, whatever the installed handler; the
        handler is restored for the point-to-point calls that follow.

        Not a generator itself: on the common path (handler already
        fatal, no FT state, no tracing) the handler swap and the FT
        entry check are both no-ops, so the body generator is returned
        bare — no wrapper frame.  Any other configuration takes the
        original wrapper, which defers the FT entry check to first
        resume (traced failures must fire inside the call bracket).
        """
        if (
            self.errhandler == ERRORS_ARE_FATAL
            and self._ft() is None
            and self.endpoint.sim.obs is None
        ):
            return gen
        return self._coll_fatal_gen(gen)

    def _coll_fatal_gen(self, gen):
        self._ft_check_collective()
        prev = self.errhandler
        self.errhandler = ERRORS_ARE_FATAL
        try:
            result = yield from gen
        finally:
            self.errhandler = prev
        return result

    def _ft_check_collective(self) -> None:
        """Fail fast before entering a collective that cannot complete.

        ULFM semantics: a collective over a communicator with a known
        failed member raises :class:`RankFailed` at every participant
        (the caller shrinks and retries on the survivor communicator).
        Checking at entry keeps the failure deterministic — no rank
        starts a tree exchange its peers will never finish.
        """
        ft = self._ft()
        if ft is None:
            return
        dead = sorted(wr for wr in ft.failed if self.group.contains(wr))
        if dead:
            raise RankFailed(
                f"rank {self.rank}: collective on communicator with failed "
                f"process(es) (world ranks {dead})",
                rank=self.rank, failed=tuple(dead),
            )

    def bcast(self, buf, root: int = 0, count=None, datatype=None, style=None):
        """Generator -> buf: broadcast from *root* (MPI_Bcast).

        Uses the CS/2 hardware broadcast on the low-latency device; a
        binomial tree on MPICH; sequential point-to-point sends on the
        cluster devices (matching the paper's implementations).  Pass
        ``style`` ("hardware", "binomial", "linear") to override the
        device default — all ranks must pass the same value.
        """
        self._check_rank(root, "root")
        count, datatype = self._resolve(buf, count, datatype)
        return self._traced(
            "bcast",
            self._coll_fatal(_coll.bcast(self, buf, root, count, datatype, style=style)),
            peer=root,
        )

    def barrier(self, style=None):
        """Generator: MPI_Barrier ("dissemination" default; "tree" for
        wide communicators per the tuning table)."""
        yield from self._traced("barrier", self._coll_fatal(_coll.barrier(self, style=style)))

    def reduce(self, sendbuf, root: int = 0, op=None, style=None):
        """Generator -> result at root (None elsewhere): MPI_Reduce."""
        self._check_rank(root, "root")
        return (
            yield from self._traced(
                "reduce",
                self._coll_fatal(_coll.reduce(self, sendbuf, root, op or _coll.SUM, style=style)),
                peer=root,
            )
        )

    def allreduce(self, sendbuf, op=None, style=None):
        """Generator -> result everywhere: MPI_Allreduce
        ("reduce_bcast", "ring", or "recursive_doubling")."""
        return (
            yield from self._traced(
                "allreduce",
                self._coll_fatal(_coll.allreduce(self, sendbuf, op or _coll.SUM, style=style)),
            )
        )

    def gather(self, sendbuf, root: int = 0, style=None):
        """Generator -> list of per-rank buffers at root: MPI_Gather."""
        self._check_rank(root, "root")
        return (yield from self._coll_fatal(_coll.gather(self, sendbuf, root, style=style)))

    def scatter(self, chunks, root: int = 0, style=None):
        """Generator -> this rank's chunk: MPI_Scatter."""
        self._check_rank(root, "root")
        return (yield from self._coll_fatal(_coll.scatter(self, chunks, root, style=style)))

    def scan(self, sendbuf, op=None):
        """Generator -> inclusive prefix reduction at this rank: MPI_Scan."""
        return (yield from self._coll_fatal(_coll.scan(self, sendbuf, op or _coll.SUM)))

    def exscan(self, sendbuf, op=None):
        """Generator -> exclusive prefix reduction (None at rank 0): MPI_Exscan."""
        return (yield from self._coll_fatal(_coll.exscan(self, sendbuf, op or _coll.SUM)))

    def reduce_scatter(self, sendbuf, op=None):
        """Generator -> this rank's block of the reduction: MPI_Reduce_scatter_block."""
        return (yield from self._coll_fatal(_coll.reduce_scatter(self, sendbuf, op or _coll.SUM)))

    def allgather(self, sendbuf, style=None):
        """Generator -> list of per-rank buffers: MPI_Allgather
        ("ring" default, "gather_bcast" for wide communicators)."""
        return (yield from self._coll_fatal(_coll.allgather(self, sendbuf, style=style)))

    def alltoall(self, chunks):
        """Generator -> list of received chunks: MPI_Alltoall."""
        return (yield from self._coll_fatal(_coll.alltoall(self, chunks)))

    # ------------------------------------------------- communicator algebra
    def dup(self):
        """Generator -> Communicator: MPI_Comm_dup (collective)."""
        self._creation_counter += 1
        ctx = self.world.allocate_context((self.context_id, self._creation_counter, "dup"))
        yield from self.barrier()
        new = Communicator(self.world, self.group, ctx, self.endpoint)
        new.errhandler = self.errhandler
        return new

    def split(self, color: Optional[int], key: int = 0):
        """Generator -> Optional[Communicator]: MPI_Comm_split (collective).

        ``color=None`` plays MPI_UNDEFINED: the caller gets no new
        communicator.
        """
        self._creation_counter += 1
        counter = self._creation_counter
        pairs = yield from self._coll_fatal(_coll.allgather_obj(self, (color, key)))
        if color is None:
            return None
        members = [
            (k, r) for r, (c, k) in enumerate(pairs) if c == color
        ]
        members.sort()
        ranks = [r for _k, r in members]
        group = Group([self.group.world_rank(r) for r in ranks])
        ctx = self.world.allocate_context((self.context_id, counter, "split", color))
        new = Communicator(self.world, group, ctx, self.endpoint)
        new.errhandler = self.errhandler
        return new

    # ------------------------------------------------- fault tolerance (ULFM)
    def _ft(self):
        return getattr(self.world, "ft", None)

    def _ft_require(self):
        ft = self._ft()
        if ft is None:
            raise MPIError(
                "fault tolerance is not enabled; construct World(..., ft=True)"
            )
        return ft

    def _ft_check_send(self, dest: int, tag: int) -> None:
        """Raise before posting a send the FT layer already knows is doomed."""
        ft = self._ft()
        if ft is None:
            return
        if not self._ft_bypass and ft.is_revoked(self.context_id):
            raise CommRevoked(
                f"rank {self.rank}: communicator revoked (send dest={dest}, tag={tag})",
                rank=self.rank, peer=dest, tag=tag,
            )
        dead = self.group.world_rank(dest)
        if dead in ft.failed:
            raise RankFailed(
                f"rank {self.rank}: send to failed process "
                f"(dest={dest}, world rank {dead}, tag={tag})",
                rank=self.rank, peer=dest, tag=tag, failed=(dead,),
            )

    def _ft_check_recv(self, source: int, tag: int) -> None:
        """Raise before posting a receive the FT layer already knows is doomed.

        ULFM: a named receive from a failed process raises; a wildcard
        receive raises while this rank has *unacknowledged* failures in
        the communicator (after :meth:`failure_ack`, wildcard receives
        are allowed again and simply never match the dead senders).
        """
        ft = self._ft()
        if ft is None:
            return
        if not self._ft_bypass and ft.is_revoked(self.context_id):
            raise CommRevoked(
                f"rank {self.rank}: communicator revoked "
                f"(recv source={source}, tag={tag})",
                rank=self.rank, peer=source, tag=tag,
            )
        if source == ANY_SOURCE:
            unacked = sorted(
                wr for wr in ft.failed
                if self.group.contains(wr) and wr not in self._acked
            )
            if unacked:
                raise RankFailed(
                    f"rank {self.rank}: wildcard receive with unacknowledged "
                    f"process failures (world ranks {unacked}); call "
                    f"failure_ack() to continue",
                    rank=self.rank, peer=source, tag=tag, failed=unacked,
                )
            return
        dead = self.group.world_rank(source)
        if dead in ft.failed:
            raise RankFailed(
                f"rank {self.rank}: receive from failed process "
                f"(source={source}, world rank {dead}, tag={tag})",
                rank=self.rank, peer=source, tag=tag, failed=(dead,),
            )

    def failure_ack(self) -> None:
        """MPIX_Comm_failure_ack: acknowledge all locally-known failures.

        After acknowledgement, wildcard receives are permitted again and
        :meth:`get_acked` reports the acknowledged group.
        """
        ft = self._ft_require()
        self._acked = frozenset(
            wr for wr in ft.failed if self.group.contains(wr)
        )

    def get_acked(self) -> Group:
        """MPIX_Comm_failure_get_acked: group of acknowledged failed ranks
        (ordered as in this communicator's group)."""
        self._ft_require()
        return Group([wr for wr in self.group.world_ranks if wr in self._acked])

    def revoke(self) -> None:
        """MPIX_Comm_revoke: poison this communicator everywhere.

        Local call (not collective).  Every pending and future operation
        on this communicator raises :class:`CommRevoked` at every member
        — except agreement traffic, which must survive revocation.
        """
        ft = self._ft_require()
        ft.revoke(self.context_id, by_rank=self.rank)

    def is_revoked(self) -> bool:
        """Has :meth:`revoke` been called on this communicator (by anyone)?"""
        ft = self._ft()
        return ft is not None and ft.is_revoked(self.context_id)

    def shrink(self):
        """Generator -> Communicator: MPIX_Comm_shrink.

        Collective over the *survivors*: builds a new, un-revoked
        communicator containing every member of this one that has not
        failed, preserving rank order.  Works on a revoked communicator.
        """
        return (yield from self._shrink_impl())

    def _shrink_impl(self):
        ft = self._ft_require()
        self.failure_ack()
        failed = tuple(sorted(
            wr for wr in self.group.world_ranks if wr in ft.failed
        ))
        survivors = [wr for wr in self.group.world_ranks if wr not in failed]
        group = Group(survivors)
        # Every survivor derives the same allocation key from the parent
        # context and the failed set — no counter, so ranks that observed
        # different numbers of earlier shrink attempts still converge.
        ctx = self.world.allocate_context((self.context_id, "shrink", failed))
        new = Communicator(self.world, group, ctx, self.endpoint)
        new.errhandler = self.errhandler
        ft._note("shrink")
        ft._emit("comm.shrink", rank=self.endpoint.world_rank, detail={
            "context": self.context_id,
            "new_context": ctx,
            "survivors": survivors,
            "failed": list(failed),
        })
        yield from new.barrier()
        return new

    def agree(self, flag: bool = True):
        """Generator -> bool: MPIX_Comm_agree (crash-tolerant agreement).

        Returns the logical AND of every live member's *flag*.  Works on
        a revoked communicator and completes despite process failures
        (the coordinator role falls through to the lowest live rank).
        """
        return (yield from self._agree_impl(bool(flag)))

    def _agree_impl(self, flag: bool):
        ft = self._ft_require()
        self.failure_ack()
        # One tag generation per *call* — retries after a coordinator
        # death reuse the same tag, so survivors' _coll_seq counters
        # stay in lock-step no matter how many retries each needed.
        tag = _coll._coll_tag(self, _coll.TAG_AGREE)
        self._ft_bypass = True
        try:
            while True:
                root = self._agree_root(ft)
                try:
                    if self.rank == root:
                        result = flag
                        peers = [r for r in range(self.size) if r != root]
                        for r in peers:
                            if self.group.world_rank(r) in ft.failed:
                                continue
                            try:
                                contrib, _st = yield from self._agree_recv(r, tag)
                                result = result and bool(contrib)
                            except RankFailed:
                                continue  # contributor died: excluded
                        for r in peers:
                            if self.group.world_rank(r) in ft.failed:
                                continue
                            try:
                                yield from self._agree_send(result, r, tag)
                            except RankFailed:
                                continue
                        decided = result
                    else:
                        yield from self._agree_send(flag, root, tag)
                        decided, _st = yield from self._agree_recv(root, tag)
                        decided = bool(decided)
                except RankFailed:
                    # the coordinator (or a peer mid-protocol) died;
                    # recompute the coordinator and retry on the same tag
                    self.failure_ack()
                    continue
                ft._note("agree")
                ft._emit("agree", rank=self.endpoint.world_rank, detail={
                    "context": self.context_id, "result": bool(decided),
                })
                return bool(decided)
        finally:
            self._ft_bypass = False

    def _agree_root(self, ft) -> int:
        for r in range(self.size):
            if self.group.world_rank(r) not in ft.failed:
                return r
        raise MPIError("agree: no live ranks remain in communicator")

    def _agree_send(self, value: bool, dest: int, tag: int):
        """Internal agree send: always raises on device failure
        (errhandler-independent), so the retry loop can catch it."""
        buf = np.array([1 if value else 0], dtype=np.int32)
        req = yield from self.isend(buf, dest, tag)
        yield from self.endpoint.wait([req], mode="all")
        req.raise_if_failed()

    def _agree_recv(self, source: int, tag: int):
        buf = np.zeros(1, dtype=np.int32)
        req = yield from self.irecv(source, tag, buf)
        yield from self.endpoint.wait([req], mode="all")
        req.raise_if_failed()
        return int(buf[0]), req.status

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Communicator ctx={self.context_id} rank={self.rank}/{self.size}>"
