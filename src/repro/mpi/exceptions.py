"""MPI error classes.

The paper (following Burns & Daoud, "Robust MPI Message Delivery with
Guaranteed Resources") points out that MPI's delivery guarantees can be
unrealizable with finite envelope resources; :class:`ResourceExhausted`
is how our implementation reports that overflow instead of deadlocking.
"""

from repro.errors import ReproError

__all__ = [
    "MPIError",
    "TruncationError",
    "BufferError_",
    "ReadyModeError",
    "ResourceExhausted",
    "CommunicatorError",
    "DatatypeError",
    "CommError",
    "RankFailed",
    "CommRevoked",
    "errcode_of",
]


class MPIError(ReproError):
    """Base class of all MPI-level errors (MPI_ERR_*)."""


class TruncationError(MPIError):
    """Message longer than the posted receive buffer (MPI_ERR_TRUNCATE)."""


class BufferError_(MPIError):
    """Buffered send without sufficient attached buffer (MPI_ERR_BUFFER)."""


class ReadyModeError(MPIError):
    """Ready-mode send arrived before the matching receive was posted."""


class ResourceExhausted(MPIError):
    """Envelope/unexpected-message resources exhausted (overflow report)."""


class CommunicatorError(MPIError):
    """Invalid rank, communicator, or group operation (MPI_ERR_COMM/RANK)."""


class DatatypeError(MPIError):
    """Invalid datatype construction or buffer mismatch (MPI_ERR_TYPE)."""


class CommError(MPIError):
    """A device/transport failure surfaced through MPI.

    Raised by the ``ERRORS_ARE_FATAL`` handler (the default), carrying
    the context a user needs to act on it: the local ``rank``, the
    ``peer`` rank and ``tag`` of the failing operation (when known), and
    the numeric ``errcode`` (``ERR_NETWORK`` etc.).  The underlying
    transport error is chained as ``__cause__``.
    """

    def __init__(self, message: str, rank=None, peer=None, tag=None, errcode=None):
        super().__init__(message)
        self.rank = rank
        self.peer = peer
        self.tag = tag
        from repro.mpi.constants import ERR_NETWORK

        self.errcode = ERR_NETWORK if errcode is None else errcode


class RankFailed(CommError):
    """A peer process has crashed (ULFM MPI_ERR_PROC_FAILED).

    Raised by operations that cannot complete because a rank in the
    communicator has failed: named sends/receives to the dead rank fail
    outright, and wildcard (ANY_SOURCE) receives fail while the
    communicator has unacknowledged failures (see
    :meth:`Communicator.failure_ack`).  ``failed`` carries the world
    ranks of the processes known dead when the error was raised.
    """

    def __init__(self, message: str, rank=None, peer=None, tag=None, failed=()):
        from repro.mpi.constants import ERR_PROC_FAILED

        super().__init__(message, rank=rank, peer=peer, tag=tag,
                         errcode=ERR_PROC_FAILED)
        self.failed = tuple(sorted(failed))


class CommRevoked(CommError):
    """The communicator has been revoked (ULFM MPI_ERR_REVOKED).

    After :meth:`Communicator.revoke`, every in-flight and future
    operation on the communicator fails with this error on every member
    — the mechanism survivors use to interrupt ranks blocked on a dead
    process so they can join the recovery (shrink/agree) path.
    """

    def __init__(self, message: str, rank=None, peer=None, tag=None):
        from repro.mpi.constants import ERR_REVOKED

        super().__init__(message, rank=rank, peer=peer, tag=tag,
                         errcode=ERR_REVOKED)


def errcode_of(exc: BaseException) -> int:
    """The MPI error code for an exception (used by ERRORS_RETURN)."""
    from repro.errors import NetworkError
    from repro.mpi.constants import ERR_NETWORK, ERR_OTHER, ERR_TRUNCATE

    if isinstance(exc, CommError):
        return exc.errcode
    if isinstance(exc, TruncationError):
        return ERR_TRUNCATE
    if isinstance(exc, NetworkError):
        return ERR_NETWORK
    return ERR_OTHER
