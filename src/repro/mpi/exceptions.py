"""MPI error classes.

The paper (following Burns & Daoud, "Robust MPI Message Delivery with
Guaranteed Resources") points out that MPI's delivery guarantees can be
unrealizable with finite envelope resources; :class:`ResourceExhausted`
is how our implementation reports that overflow instead of deadlocking.
"""

from repro.errors import ReproError

__all__ = [
    "MPIError",
    "TruncationError",
    "BufferError_",
    "ReadyModeError",
    "ResourceExhausted",
    "CommunicatorError",
    "DatatypeError",
    "CommError",
    "errcode_of",
]


class MPIError(ReproError):
    """Base class of all MPI-level errors (MPI_ERR_*)."""


class TruncationError(MPIError):
    """Message longer than the posted receive buffer (MPI_ERR_TRUNCATE)."""


class BufferError_(MPIError):
    """Buffered send without sufficient attached buffer (MPI_ERR_BUFFER)."""


class ReadyModeError(MPIError):
    """Ready-mode send arrived before the matching receive was posted."""


class ResourceExhausted(MPIError):
    """Envelope/unexpected-message resources exhausted (overflow report)."""


class CommunicatorError(MPIError):
    """Invalid rank, communicator, or group operation (MPI_ERR_COMM/RANK)."""


class DatatypeError(MPIError):
    """Invalid datatype construction or buffer mismatch (MPI_ERR_TYPE)."""


class CommError(MPIError):
    """A device/transport failure surfaced through MPI.

    Raised by the ``ERRORS_ARE_FATAL`` handler (the default), carrying
    the context a user needs to act on it: the local ``rank``, the
    ``peer`` rank and ``tag`` of the failing operation (when known), and
    the numeric ``errcode`` (``ERR_NETWORK`` etc.).  The underlying
    transport error is chained as ``__cause__``.
    """

    def __init__(self, message: str, rank=None, peer=None, tag=None, errcode=None):
        super().__init__(message)
        self.rank = rank
        self.peer = peer
        self.tag = tag
        from repro.mpi.constants import ERR_NETWORK

        self.errcode = ERR_NETWORK if errcode is None else errcode


def errcode_of(exc: BaseException) -> int:
    """The MPI error code for an exception (used by ERRORS_RETURN)."""
    from repro.errors import NetworkError
    from repro.mpi.constants import ERR_NETWORK, ERR_OTHER, ERR_TRUNCATE

    if isinstance(exc, CommError):
        return exc.errcode
    if isinstance(exc, TruncationError):
        return ERR_TRUNCATE
    if isinstance(exc, NetworkError):
        return ERR_NETWORK
    return ERR_OTHER
