"""MPI error classes.

The paper (following Burns & Daoud, "Robust MPI Message Delivery with
Guaranteed Resources") points out that MPI's delivery guarantees can be
unrealizable with finite envelope resources; :class:`ResourceExhausted`
is how our implementation reports that overflow instead of deadlocking.
"""

from repro.errors import ReproError

__all__ = [
    "MPIError",
    "TruncationError",
    "BufferError_",
    "ReadyModeError",
    "ResourceExhausted",
    "CommunicatorError",
    "DatatypeError",
]


class MPIError(ReproError):
    """Base class of all MPI-level errors (MPI_ERR_*)."""


class TruncationError(MPIError):
    """Message longer than the posted receive buffer (MPI_ERR_TRUNCATE)."""


class BufferError_(MPIError):
    """Buffered send without sufficient attached buffer (MPI_ERR_BUFFER)."""


class ReadyModeError(MPIError):
    """Ready-mode send arrived before the matching receive was posted."""


class ResourceExhausted(MPIError):
    """Envelope/unexpected-message resources exhausted (overflow report)."""


class CommunicatorError(MPIError):
    """Invalid rank, communicator, or group operation (MPI_ERR_COMM/RANK)."""


class DatatypeError(MPIError):
    """Invalid datatype construction or buffer mismatch (MPI_ERR_TYPE)."""
