"""Collective operations.

The paper implements **broadcast** (hardware broadcast on the Meiko,
a succession of point-to-point messages on the cluster; the MPICH
baseline uses point-to-point on both).  The remaining collectives —
barrier, reduce, allreduce, gather, scatter, allgather, alltoall — are
extensions built over point-to-point exactly the way MPICH builds them,
so they run on every device.

Buffer-based: ``bcast``, ``reduce``, ``allreduce`` (NumPy arrays or
bytes).  Object-based (pickled, mpi4py-lowercase style): ``gather``,
``scatter``, ``allgather``, ``alltoall``.

All collective traffic uses tags at or above
:data:`~repro.mpi.constants.INTERNAL_TAG_BASE`, which user wildcard
receives never match.
"""

from __future__ import annotations

import pickle
from typing import Any, Callable, List, Optional

import numpy as np

from repro.mpi.constants import INTERNAL_TAG_BASE
from repro.mpi.exceptions import MPIError

__all__ = [
    "Op",
    "SUM",
    "PROD",
    "MAX",
    "MIN",
    "LAND",
    "LOR",
    "BAND",
    "BOR",
    "bcast",
    "barrier",
    "reduce",
    "allreduce",
    "gather",
    "scatter",
    "allgather",
    "allgather_obj",
    "alltoall",
    "scan",
    "exscan",
    "reduce_scatter",
]

TAG_BCAST = INTERNAL_TAG_BASE + 1
TAG_BARRIER = INTERNAL_TAG_BASE + 2
TAG_REDUCE = INTERNAL_TAG_BASE + 3
TAG_GATHER = INTERNAL_TAG_BASE + 4
TAG_SCATTER = INTERNAL_TAG_BASE + 5
TAG_ALLGATHER = INTERNAL_TAG_BASE + 6
TAG_ALLTOALL = INTERNAL_TAG_BASE + 7
TAG_OBJ = INTERNAL_TAG_BASE + 8
TAG_SCAN = INTERNAL_TAG_BASE + 9
TAG_RSCAT = INTERNAL_TAG_BASE + 10
TAG_AGREE = INTERNAL_TAG_BASE + 11  # crash-tolerant agreement (repro.mpi.ft)

# Every collective invocation gets its own tag *generation*: the
# per-communicator sequence number (Communicator._coll_seq) selects a
# block of _SEQ_SLOTS tags above _SEQ_BASE, so two collectives on the
# same communicator — even back-to-back ones whose traffic overlaps in
# flight — can never cross-match each other's messages.  The window
# wraps after _SEQ_WINDOW generations; two collectives that many calls
# apart can never be concurrently in flight.  The resulting tags stay
# inside [INTERNAL_TAG_BASE, 2**31) so they fit the devices' signed
# 32-bit wire fields, stay invisible to user ANY_TAG receives, and
# clear the device-internal tags (e.g. the Meiko hardware-broadcast tag
# at INTERNAL_TAG_BASE + 101) parked below _SEQ_BASE.
_SEQ_BASE = 1024
_SEQ_SLOTS = 16
_SEQ_WINDOW = 2 ** 20


def _coll_tag(comm, base: int) -> int:
    """Draw this communicator's next collective sequence number and
    scope *base* (one of the TAG_* constants) to that generation."""
    seq = comm._coll_seq
    comm._coll_seq = seq + 1
    slot = base - INTERNAL_TAG_BASE
    return INTERNAL_TAG_BASE + _SEQ_BASE + slot + _SEQ_SLOTS * (seq % _SEQ_WINDOW)


def is_agree_tag(tag: int) -> bool:
    """Is *tag* any generation of the agreement slot?  Agreement traffic
    must keep flowing on a revoked communicator (ULFM), so the FT layer
    exempts it when poisoning pending operations."""
    off = tag - INTERNAL_TAG_BASE - _SEQ_BASE
    return off >= 0 and off % _SEQ_SLOTS == TAG_AGREE - INTERNAL_TAG_BASE


class Op:
    """A reduction operator over NumPy arrays (elementwise, associative)."""

    def __init__(self, name: str, fn: Callable):
        self.name = name
        self.fn = fn

    def __call__(self, a, b):
        return self.fn(a, b)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Op {self.name}>"


SUM = Op("MPI_SUM", np.add)
PROD = Op("MPI_PROD", np.multiply)
MAX = Op("MPI_MAX", np.maximum)
MIN = Op("MPI_MIN", np.minimum)
LAND = Op("MPI_LAND", np.logical_and)
LOR = Op("MPI_LOR", np.logical_or)
BAND = Op("MPI_BAND", np.bitwise_and)
BOR = Op("MPI_BOR", np.bitwise_or)


# --------------------------------------------------------------------- bcast
def _just(value):
    """Generator returning *value* without yielding (0-event no-op)."""
    return value
    yield  # pragma: no cover - makes this a generator function


def bcast(comm, buf, root: int, count: int, datatype, style=None):
    """Broadcast *buf* from *root*; returns the (filled) buffer.

    Algorithm selection follows the paper (overridable via *style*):

    * ``hardware`` (low-latency Meiko device): single hardware-broadcast
      injection;
    * ``binomial`` (MPICH): log₂P point-to-point rounds;
    * ``linear`` (TCP/UDP cluster): root sends to each rank in turn
      ("a succession of point-to-point messages").

    Plain dispatcher (not a generator function): it hands back the
    innermost generator so the hot hardware path runs without a
    delegating frame per resume.
    """
    # drawn unconditionally (even for the hardware path and size 1) so
    # every member's _coll_seq advances identically per collective call
    tag = _coll_tag(comm, TAG_BCAST)
    if comm.size == 1:
        return _just(buf)
    if style is None:
        style = comm.endpoint.bcast_style
    if style == "hardware":
        gen = comm.endpoint.bcast_hw(comm, buf, count, datatype, root)
        if gen is not None:
            return gen
        style = "binomial"
    return _bcast_ptp(comm, buf, root, count, datatype, tag, style)


def _bcast_ptp(comm, buf, root: int, count: int, datatype, tag: int, style):
    if style == "linear":
        if comm.rank == root:
            for r in range(comm.size):
                if r != root:
                    yield from comm.send(buf, r, tag, count, datatype)
        else:
            yield from comm.recv(source=root, tag=tag, buf=buf, count=count,
                                 datatype=datatype)
        return buf
    # binomial tree (the classic MPICH algorithm)
    size, rank = comm.size, comm.rank
    vrank = (rank - root) % size
    mask = 1
    while mask < size:
        if vrank & mask:
            src = (vrank - mask + root) % size
            yield from comm.recv(source=src, tag=tag, buf=buf, count=count,
                                 datatype=datatype)
            break
        mask <<= 1
    mask >>= 1
    while mask > 0:
        if vrank + mask < size:
            dst = (vrank + mask + root) % size
            yield from comm.send(buf, dst, tag, count, datatype)
        mask >>= 1
    return buf


# -------------------------------------------------------------------- barrier
def barrier(comm):
    """Dissemination barrier: ⌈log₂P⌉ rounds of pairwise messages."""
    tag = _coll_tag(comm, TAG_BARRIER)
    size, rank = comm.size, comm.rank
    if size == 1:
        return
    offset = 1
    while offset < size:
        dst = (rank + offset) % size
        src = (rank - offset) % size
        req = yield from comm.isend(b"", dst, tag)
        yield from comm.recv(source=src, tag=tag)
        yield from comm.wait(req)
        offset <<= 1


# --------------------------------------------------------------------- reduce
def reduce(comm, sendbuf, root: int, op: Op):
    """Binomial-tree reduction to *root*; returns the result there."""
    if not isinstance(sendbuf, np.ndarray):
        raise MPIError("reduce requires a NumPy array buffer")
    tag = _coll_tag(comm, TAG_REDUCE)
    size, rank = comm.size, comm.rank
    result = np.array(sendbuf, copy=True)
    if size == 1:
        return result
    vrank = (rank - root) % size
    mask = 1
    while mask < size:
        if vrank & mask:
            parent = (vrank - mask + root) % size
            yield from comm.send(result, parent, tag)
            return None
        peer = vrank + mask
        if peer < size:
            partial = np.empty_like(result)
            src = (peer + root) % size
            yield from comm.recv(source=src, tag=tag, buf=partial)
            result = op(result, partial)
        mask <<= 1
    return result if rank == root else None


def allreduce(comm, sendbuf, op: Op):
    """Reduce to rank 0 then broadcast; returns the result everywhere."""
    result = yield from reduce(comm, sendbuf, 0, op)
    if comm.rank != 0:
        result = np.empty_like(np.asarray(sendbuf))
    from repro.mpi.datatypes import from_numpy_dtype

    dtype = from_numpy_dtype(result.dtype)
    yield from bcast(comm, result, 0, result.size, dtype)
    return result


def scan(comm, sendbuf, op: Op):
    """Inclusive prefix reduction (MPI_Scan): rank r gets
    op(sendbuf_0, ..., sendbuf_r).  Linear chain algorithm."""
    if not isinstance(sendbuf, np.ndarray):
        raise MPIError("scan requires a NumPy array buffer")
    tag = _coll_tag(comm, TAG_SCAN)
    result = np.array(sendbuf, copy=True)
    if comm.rank > 0:
        partial = np.empty_like(result)
        yield from comm.recv(source=comm.rank - 1, tag=tag, buf=partial)
        result = op(partial, result)
    if comm.rank < comm.size - 1:
        yield from comm.send(result, comm.rank + 1, tag)
    return result


def exscan(comm, sendbuf, op: Op):
    """Exclusive prefix reduction (MPI_Exscan): rank r gets
    op(sendbuf_0, ..., sendbuf_{r-1}); rank 0 gets None."""
    if not isinstance(sendbuf, np.ndarray):
        raise MPIError("exscan requires a NumPy array buffer")
    tag = _coll_tag(comm, TAG_SCAN)
    prefix = None
    if comm.rank > 0:
        prefix = np.empty_like(np.asarray(sendbuf))
        yield from comm.recv(source=comm.rank - 1, tag=tag, buf=prefix)
    if comm.rank < comm.size - 1:
        outgoing = (
            np.array(sendbuf, copy=True) if prefix is None else op(prefix, sendbuf)
        )
        yield from comm.send(outgoing, comm.rank + 1, tag)
    return prefix


def reduce_scatter(comm, sendbuf, op: Op):
    """MPI_Reduce_scatter_block: reduce elementwise across ranks, then
    scatter equal blocks — rank r gets block r of the reduction.

    ``sendbuf`` must have ``size * blocklen`` elements on every rank.
    """
    if not isinstance(sendbuf, np.ndarray):
        raise MPIError("reduce_scatter requires a NumPy array buffer")
    if sendbuf.size % comm.size:
        raise MPIError(
            f"reduce_scatter buffer of {sendbuf.size} elements does not split "
            f"over {comm.size} ranks"
        )
    total = yield from reduce(comm, sendbuf, 0, op)
    blocklen = sendbuf.size // comm.size
    if comm.rank == 0:
        flat = total.reshape(-1)
        chunks = [flat[r * blocklen : (r + 1) * blocklen].copy() for r in range(comm.size)]
    else:
        chunks = None
    mine = yield from scatter(comm, chunks, 0)
    return mine


# -------------------------------------------------- object-based collectives
def _send_obj(comm, obj: Any, dest: int, tag: int):
    wire = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    yield from comm.send(wire, dest, tag)


def _isend_obj(comm, obj: Any, dest: int, tag: int):
    wire = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    return (yield from comm.isend(wire, dest, tag))


def _recv_obj(comm, source: int, tag: int):
    data, status = yield from comm.recv(source=source, tag=tag)
    return pickle.loads(data), status


def gather(comm, obj: Any, root: int) -> Optional[List[Any]]:
    """Gather one object per rank to *root* (rank order)."""
    tag = _coll_tag(comm, TAG_GATHER)
    if comm.rank == root:
        out: List[Any] = [None] * comm.size
        out[root] = obj
        for r in range(comm.size):
            if r != root:
                out[r], _ = yield from _recv_obj(comm, r, tag)
        return out
    yield from _send_obj(comm, obj, root, tag)
    return None


def scatter(comm, objs: Optional[List[Any]], root: int) -> Any:
    """Scatter a list of per-rank objects from *root*."""
    tag = _coll_tag(comm, TAG_SCATTER)
    if comm.rank == root:
        if objs is None or len(objs) != comm.size:
            raise MPIError(f"scatter needs one object per rank ({comm.size})")
        for r in range(comm.size):
            if r != root:
                yield from _send_obj(comm, objs[r], r, tag)
        return objs[root]
    obj, _ = yield from _recv_obj(comm, root, tag)
    return obj


def allgather(comm, obj: Any) -> List[Any]:
    """Ring allgather: P-1 steps, each forwarding the newest block."""
    return (yield from allgather_obj(comm, obj, tag=TAG_ALLGATHER))


def allgather_obj(comm, obj: Any, tag: int = TAG_OBJ) -> List[Any]:
    tag = _coll_tag(comm, tag)
    size, rank = comm.size, comm.rank
    out: List[Any] = [None] * size
    out[rank] = obj
    if size == 1:
        return out
    right = (rank + 1) % size
    left = (rank - 1) % size
    for step in range(size - 1):
        outgoing = out[(rank - step) % size]
        req = yield from _isend_obj(comm, outgoing, right, tag)
        incoming, _ = yield from _recv_obj(comm, left, tag)
        out[(rank - step - 1) % size] = incoming
        yield from comm.wait(req)
    return out


def alltoall(comm, objs: List[Any]) -> List[Any]:
    """Pairwise-exchange alltoall: objs[r] goes to rank r."""
    tag = _coll_tag(comm, TAG_ALLTOALL)
    size, rank = comm.size, comm.rank
    if len(objs) != size:
        raise MPIError(f"alltoall needs one object per rank ({size})")
    out: List[Any] = [None] * size
    out[rank] = objs[rank]
    for offset in range(1, size):
        dst = (rank + offset) % size
        src = (rank - offset) % size
        req = yield from _isend_obj(comm, objs[dst], dst, tag)
        out[src], _ = yield from _recv_obj(comm, src, tag)
        yield from comm.wait(req)
    return out
