"""Compatibility shim: collectives now live in :mod:`repro.mpi.coll`.

Historical import site — the collective layer grew from this single
module into the ``repro.mpi.coll`` package (algorithm registry,
per-platform auto-selector, multiple implementations per collective).
Everything that was ever importable from here, public or private, is
re-exported so existing imports keep working unchanged.
"""

from repro.mpi.coll import *  # noqa: F401,F403
from repro.mpi.coll import (  # noqa: F401
    TAG_AGREE, TAG_ALLGATHER, TAG_ALLTOALL, TAG_BARRIER, TAG_BCAST,
    TAG_GATHER, TAG_OBJ, TAG_REDUCE, TAG_RSCAT, TAG_SCAN, TAG_SCATTER,
    _SEQ_BASE, _SEQ_SLOTS, _SEQ_WINDOW, _bcast_ptp, _coll_tag,
    _isend_obj, _just, _recv_obj, _send_obj, is_agree_tag,
)
from repro.mpi.coll import __all__ as __all__  # noqa: F401
