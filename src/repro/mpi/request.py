"""Nonblocking operation handles (MPI_Request)."""

from __future__ import annotations

from typing import Any, Optional

from repro.mpi.constants import MODE_STANDARD
from repro.mpi.status import Status

__all__ = ["Request"]


class Request:
    """Handle for a pending nonblocking send or receive.

    Completion is driven by the device: :meth:`_complete` (or
    :meth:`_fail`) flips the handle; waiting ranks observe it from their
    progress loop (SPARC-side matching means progress happens inside MPI
    calls — see the paper's Section 4.1 discussion).
    """

    _next_id = 0

    __slots__ = (
        "id",
        "kind",
        "comm",
        "buf",
        "count",
        "datatype",
        "peer",
        "tag",
        "mode",
        "complete",
        "status",
        "error",
        "data",
        "_device_state",
        "on_complete",
    )

    def __init__(
        self,
        kind: str,
        comm,
        buf,
        count: int,
        datatype,
        peer: int,
        tag: int,
        mode: str = MODE_STANDARD,
    ):
        Request._next_id += 1
        self.id = Request._next_id
        self.kind = kind  # "send" | "recv"
        self.comm = comm
        self.buf = buf
        self.count = count
        self.datatype = datatype
        self.peer = peer  # dest for sends, source (may be ANY_SOURCE) for recvs
        self.tag = tag
        self.mode = mode
        self.complete = False
        self.status: Optional[Status] = None
        self.error: Optional[BaseException] = None
        #: for buffer-less receives: the raw received bytes
        self.data: Optional[bytes] = None
        #: scratch slot for the device (protocol state)
        self._device_state: Any = None
        #: optional callback invoked once on completion (success or failure)
        self.on_complete = None

    def _complete(self, status: Optional[Status] = None) -> None:
        if self.complete:
            raise RuntimeError(f"request {self.id} completed twice")
        self.complete = True
        self.status = status if status is not None else Status()
        if self.on_complete is not None:
            self.on_complete()

    def _fail(self, error: BaseException) -> None:
        if self.complete:
            raise RuntimeError(f"request {self.id} completed twice")
        self.complete = True
        self.error = error
        if self.on_complete is not None:
            self.on_complete()

    def raise_if_failed(self) -> None:
        if self.error is not None:
            raise self.error

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "done" if self.complete else "pending"
        return f"<Request #{self.id} {self.kind} peer={self.peer} tag={self.tag} {state}>"
