"""Deterministic fault injection: plans, rules and per-fabric injectors.

The paper's protocols — eager transfer with envelope-slot flow control,
receiver-initiated rendezvous DMA, credit-based flow control over
TCP/UDP — are all *failure-handling* machinery.  This module creates the
failures systematically so that machinery can be exercised:

* a :class:`FaultPlan` is a composable list of rules (packet loss,
  duplication, corruption, link-down windows, node crashes, pauses and
  slow-downs);
* :meth:`World(faults=plan) <repro.mpi.world.World>` compiles the plan
  into one :class:`FaultInjector` per fabric (Ethernet medium, ATM
  switch, Meiko fat tree) plus host-level processes for the node rules;
* every probabilistic decision draws from an RNG seeded from
  ``(world seed, fabric name)``, so the same seed and the same plan
  produce a byte-identical simulation timeline.

Semantics of the packet-level actions:

``drop``
    The unit of delivery (Ethernet frame, ATM PDU train, Meiko packet)
    silently vanishes, exactly like the legacy ``drop_fn`` hook.
``corrupt``
    The unit is delivered damaged and discarded by the receiver's
    checksum (Ethernet CRC, AAL5 CRC-32, Elan packet CRC).  Observable
    only in the ``*_corrupted`` counters — recovery-wise it behaves
    like loss, which is what CRC-protected links actually do.
``duplicate``
    The unit is delivered twice.  Cluster fabrics only: the CS/2 fat
    tree is a source-routed circuit fabric that cannot replicate
    packets, so duplication rules never match the ``meiko`` fabric.

Node-level rules (applied by the World, not the fabrics):

* :class:`NodeCrash` — at time T the node's CPU halts forever and the
  fabric drops all of its traffic from then on;
* :class:`NodePause` — the CPU is seized for a window (a hard stall:
  GC pause, checkpoint, scheduler glitch) but traffic still flows;
* :class:`NodeSlow` — all CPU costs are scaled by ``factor`` inside the
  window (thermal throttling, a noisy neighbour).
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, replace
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

__all__ = [
    "DELIVER",
    "DROP",
    "DUPLICATE",
    "CORRUPT",
    "BatchedRandom",
    "FaultRule",
    "PacketLoss",
    "PacketDuplication",
    "PacketCorruption",
    "LinkDown",
    "NodeCrash",
    "NodePause",
    "NodeSlow",
    "FaultPlan",
    "FaultInjector",
]

#: fabric names a rule may be scoped to (None in a rule means "all").
#: "rdma" and "cxl" are the modern platform's fabrics — there the
#: fabric name doubles as the device name.
FABRICS = ("ethernet", "atm", "meiko", "rdma", "cxl")

# packet-level actions returned by FaultInjector.decide()
DELIVER = "deliver"
DROP = "drop"
DUPLICATE = "duplicate"
CORRUPT = "corrupt"


@dataclass(frozen=True)
class FaultRule:
    """Base rule: a scope (fabric / endpoints / time window) shared by
    every concrete rule type.

    ``src``/``dst`` are host ids (``None`` matches any); the window is
    ``[t_start, t_end)`` in simulated microseconds; ``max_events``
    caps how many times the rule may fire (``None`` = unlimited).
    """

    fabric: Optional[str] = None
    src: Optional[int] = None
    dst: Optional[int] = None
    t_start: float = 0.0
    t_end: float = float("inf")
    max_events: Optional[int] = None

    def __post_init__(self):
        if self.fabric is not None and self.fabric not in FABRICS:
            raise ConfigurationError(
                f"unknown fabric {self.fabric!r}; choose from {FABRICS} or None"
            )
        if self.t_end < self.t_start:
            raise ConfigurationError(
                f"rule window [{self.t_start}, {self.t_end}) is empty"
            )

    # -- scope ---------------------------------------------------------------
    def in_scope(self, fabric: str, src: int, dst: int, now: float) -> bool:
        """Does a (fabric, src, dst) delivery at time *now* fall under
        this rule's scope?"""
        if self.fabric is not None and self.fabric != fabric:
            return False
        if self.src is not None and self.src != src:
            return False
        if self.dst is not None and self.dst != dst:
            return False
        return self.t_start <= now < self.t_end

    def with_overrides(self, **kw) -> "FaultRule":
        return replace(self, **kw)


@dataclass(frozen=True)
class PacketLoss(FaultRule):
    """Drop each in-scope delivery with ``probability`` (1.0 = always)."""

    probability: float = 0.0

    def __post_init__(self):
        super().__post_init__()
        if not (0.0 <= self.probability <= 1.0):
            raise ConfigurationError(f"loss probability {self.probability} not in [0, 1]")


@dataclass(frozen=True)
class PacketDuplication(FaultRule):
    """Deliver each in-scope unit twice with ``probability``.

    Never matches the ``meiko`` fabric (see module docstring).
    """

    probability: float = 0.0

    def __post_init__(self):
        super().__post_init__()
        if not (0.0 <= self.probability <= 1.0):
            raise ConfigurationError(
                f"duplication probability {self.probability} not in [0, 1]"
            )

    def in_scope(self, fabric: str, src: int, dst: int, now: float) -> bool:
        if fabric == "meiko":
            return False
        return super().in_scope(fabric, src, dst, now)


@dataclass(frozen=True)
class PacketCorruption(FaultRule):
    """Corrupt each in-scope delivery with ``probability``; the receiver's
    checksum detects the damage and discards the unit."""

    probability: float = 0.0

    def __post_init__(self):
        super().__post_init__()
        if not (0.0 <= self.probability <= 1.0):
            raise ConfigurationError(
                f"corruption probability {self.probability} not in [0, 1]"
            )


@dataclass(frozen=True)
class LinkDown(FaultRule):
    """All traffic to/from ``node`` is dropped during the window.

    Deterministic (no RNG draw).  If ``node`` is None the ``src``/``dst``
    filters alone select the affected traffic — e.g.
    ``LinkDown(src=0, dst=1, t_start=a, t_end=b)`` takes down one
    direction of one link.
    """

    node: Optional[int] = None

    def in_scope(self, fabric: str, src: int, dst: int, now: float) -> bool:
        if not super().in_scope(fabric, src, dst, now):
            return False
        if self.node is not None and src != self.node and dst != self.node:
            return False
        return True


@dataclass(frozen=True)
class NodeCrash(FaultRule):
    """``node`` fails at time ``at``: its CPU halts forever and the
    fabric drops all of its traffic from then on."""

    node: int = 0
    at: float = 0.0

    def in_scope(self, fabric: str, src: int, dst: int, now: float) -> bool:
        if self.fabric is not None and self.fabric != fabric:
            return False
        return now >= self.at and (src == self.node or dst == self.node)


@dataclass(frozen=True)
class NodePause(FaultRule):
    """``node``'s CPU is seized for ``[t_start, t_end)`` (a hard stall);
    in-flight traffic still reaches its queues."""

    node: int = 0

    def in_scope(self, fabric: str, src: int, dst: int, now: float) -> bool:
        return False  # host-level rule: never affects packet delivery


@dataclass(frozen=True)
class NodeSlow(FaultRule):
    """``node``'s CPU costs are multiplied by ``factor`` during the
    window (``factor=2.0`` = half speed)."""

    node: int = 0
    factor: float = 2.0

    def __post_init__(self):
        super().__post_init__()
        if self.factor <= 0:
            raise ConfigurationError(f"slow-down factor must be positive, got {self.factor}")

    def in_scope(self, fabric: str, src: int, dst: int, now: float) -> bool:
        return False  # host-level rule: never affects packet delivery


#: rule types evaluated by the fabrics (everything else is host-level)
_PACKET_RULES = (PacketLoss, PacketDuplication, PacketCorruption, LinkDown, NodeCrash)
_HOST_RULES = (NodeCrash, NodePause, NodeSlow)


class BatchedRandom:
    """Uniform floats served from a pre-drawn block (refilled on
    exhaustion) over an underlying ``random.Random``.

    **Draw-order contract.**  The block is filled by *consecutive*
    ``Random.random()`` calls and consumed strictly in order, so the
    sequence of values a consumer observes is byte-identical to calling
    ``random()``/``uniform()`` directly — ``uniform(a, b)`` uses the
    same ``a + (b - a) * random()`` formula as the stdlib.  The
    determinism goldens depend on this.

    The contract only holds if **every** consumer of the underlying
    ``Random`` instance draws through this one wrapper, and only draws
    floats.  A consumer of raw bits (``randrange``/``getrandbits``,
    e.g. the Ethernet medium's binary-exponential backoff) consumes
    Mersenne-Twister words in a different pattern than ``random()``;
    pre-drawing floats past such a call would reorder the underlying
    stream and change every subsequent value.  Streams with a raw-bits
    consumer must therefore stay unbatched
    (:meth:`repro.hw.node.Host.jitter_stream` enforces this for the
    per-host streams).
    """

    __slots__ = ("_rng", "_batch", "_i")

    #: floats drawn per refill
    BATCH = 256

    def __init__(self, rng: random.Random):
        self._rng = rng
        self._batch: List[float] = []
        self._i = 0

    def random(self) -> float:
        i = self._i
        batch = self._batch
        if i >= len(batch):
            r = self._rng.random
            self._batch = batch = [r() for _ in range(self.BATCH)]
            i = 0
        self._i = i + 1
        return batch[i]

    def uniform(self, a: float, b: float) -> float:
        return a + (b - a) * self.random()


@dataclass(frozen=True)
class FaultPlan:
    """An ordered, immutable collection of fault rules.

    Rules are evaluated in order for every delivery; the first decisive
    outcome wins (deterministic rules like :class:`LinkDown` and
    :class:`NodeCrash` are checked before any RNG is consulted, so the
    random stream is identical whether or not a deterministic drop
    fires).

    >>> plan = FaultPlan.loss(0.05, fabric="ethernet")
    >>> plan = plan.add(NodeCrash(node=1, at=50_000.0))
    """

    rules: Tuple[FaultRule, ...] = ()

    def __post_init__(self):
        for rule in self.rules:
            if not isinstance(rule, FaultRule):
                raise ConfigurationError(f"{rule!r} is not a FaultRule")
        object.__setattr__(self, "rules", tuple(self.rules))

    # -- construction helpers ------------------------------------------------
    @classmethod
    def of(cls, *rules: FaultRule) -> "FaultPlan":
        return cls(tuple(rules))

    @classmethod
    def loss(cls, probability: float, **scope) -> "FaultPlan":
        """Shorthand: a plan with a single uniform loss rule."""
        return cls((PacketLoss(probability=probability, **scope),))

    def add(self, *rules: FaultRule) -> "FaultPlan":
        """A new plan with *rules* appended."""
        return FaultPlan(self.rules + tuple(rules))

    # -- compilation ---------------------------------------------------------
    def injector(self, fabric: str, sim, seed: int = 0) -> "FaultInjector":
        """Compile the packet-level rules into an injector for *fabric*."""
        return FaultInjector(self, fabric, sim, seed)

    def host_rules(self) -> List[FaultRule]:
        """The node-level rules (crash / pause / slow-down)."""
        return [r for r in self.rules if isinstance(r, _HOST_RULES)]

    def crashed_nodes(self) -> List[int]:
        """Nodes a :class:`NodeCrash` rule takes down (for diagnostics)."""
        return sorted({r.node for r in self.rules if isinstance(r, NodeCrash)})


class FaultInjector:
    """Per-fabric executor of a :class:`FaultPlan`.

    The fabric asks :meth:`decide` for every unit of delivery and honours
    the returned action.  All randomness comes from a private
    ``random.Random`` seeded from ``(seed, fabric)`` — independent of
    the hosts' RNG streams, so adding a fault plan never perturbs
    Ethernet backoff or retransmission jitter draws.

    Counters (``drops``, ``duplicates``, ``corruptions`` and the
    per-rule ``rule_events`` list) are the plan's own accounting; the
    fabrics' ``frames_dropped`` / ``pdus_dropped`` counters must agree
    with them, which the test suite asserts.
    """

    def __init__(self, plan: FaultPlan, fabric: str, sim, seed: int = 0):
        if fabric not in FABRICS:
            raise ConfigurationError(f"unknown fabric {fabric!r}")
        self.plan = plan
        self.fabric = fabric
        self.sim = sim
        self.rules: Sequence[FaultRule] = [
            r for r in plan.rules if isinstance(r, _PACKET_RULES)
        ]
        # hash() is salted per process; crc32 keeps the stream identical
        # across runs, which the determinism tests rely on
        self.rng = random.Random(
            ((seed & 0xFFFFFFFF) * 0x9E3779B1) ^ zlib.crc32(f"repro.faults/{fabric}".encode())
        )
        # decide() is called for every delivery unit; the injector's
        # stream is private and float-only, so it is always batchable
        self._draw = BatchedRandom(self.rng)
        #: per-rule dispatch, precomputed: (deterministic?, action)
        self._fate: List[Tuple[bool, str]] = [
            (True, DROP) if isinstance(r, (LinkDown, NodeCrash))
            else (False, DROP) if isinstance(r, PacketLoss)
            else (False, CORRUPT) if isinstance(r, PacketCorruption)
            else (False, DUPLICATE)
            for r in self.rules
        ]
        #: events fired per rule (parallel to ``self.rules``)
        self.rule_events: List[int] = [0] * len(self.rules)
        self.decisions = 0
        self.drops = 0
        self.duplicates = 0
        self.corruptions = 0

    def decide(self, src: int, dst: int, nbytes: int = 0) -> str:
        """The fate of one delivery: DELIVER, DROP, DUPLICATE or CORRUPT."""
        now = self.sim.now
        self.decisions += 1
        events = self.rule_events
        fabric = self.fabric
        for i, rule in enumerate(self.rules):
            if rule.max_events is not None and events[i] >= rule.max_events:
                continue
            if not rule.in_scope(fabric, src, dst, now):
                continue
            deterministic, action = self._fate[i]
            if deterministic:
                return self._fire(i, action, src, dst, nbytes)
            # probabilistic rules share one deterministic (batched) stream
            if self._draw.random() >= rule.probability:
                continue
            return self._fire(i, action, src, dst, nbytes)
        return DELIVER

    def _fire(self, index: int, action: str, src: int, dst: int, nbytes: int) -> str:
        self.rule_events[index] += 1
        if action == DROP:
            self.drops += 1
        elif action == DUPLICATE:
            self.duplicates += 1
        elif action == CORRUPT:
            self.corruptions += 1
        obs = self.sim.obs
        if obs is not None:
            obs.emit(
                self.sim.now,
                "fault",
                "inject." + action,
                rank=dst,
                detail={
                    "fabric": self.fabric,
                    "rule": type(self.rules[index]).__name__,
                    "src": src,
                    "dst": dst,
                    "nbytes": nbytes,
                },
            )
        return action

    def summary(self) -> dict:
        """Accounting snapshot (used by diagnostics and tests)."""
        return {
            "fabric": self.fabric,
            "decisions": self.decisions,
            "drops": self.drops,
            "duplicates": self.duplicates,
            "corruptions": self.corruptions,
            "rule_events": list(self.rule_events),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<FaultInjector {self.fabric} drops={self.drops} "
            f"dups={self.duplicates} corrupt={self.corruptions}>"
        )


def apply_host_faults(sim, plan: Optional[FaultPlan], hosts: Iterable) -> None:
    """Spawn the host-level fault processes (crash / pause / slow-down).

    Called by the World after the platform is built.  Unknown node ids
    raise :class:`ConfigurationError` immediately rather than silently
    doing nothing at t=T.
    """
    if plan is None:
        return
    hosts = list(hosts)
    for rule in plan.host_rules():
        if not (0 <= rule.node < len(hosts)):
            raise ConfigurationError(
                f"{type(rule).__name__} names node {rule.node}, but the "
                f"machine has nodes [0, {len(hosts)})"
            )
        host = hosts[rule.node]
        if isinstance(rule, NodeCrash):
            sim.process(
                _crash(sim, host, rule.at, rule.node), name=f"fault-crash-{rule.node}"
            )
        elif isinstance(rule, NodePause):
            sim.process(
                _pause(sim, host, rule.t_start, rule.t_end, rule.node),
                name=f"fault-pause-{rule.node}",
            )
        elif isinstance(rule, NodeSlow):
            sim.process(
                _slow(sim, host, rule.factor, rule.t_start, rule.t_end, rule.node),
                name=f"fault-slow-{rule.node}",
            )


def _emit_fault(sim, kind: str, node: int, detail: dict) -> None:
    obs = sim.obs
    if obs is not None:
        obs.emit(sim.now, "fault", kind, rank=node, detail=detail)


def _crash(sim, host, at: float, node: int = -1):
    """At time *at*, seize the node's CPU and never release it."""
    if at > sim.now:
        yield sim.timeout(at - sim.now)
    yield host.cpu.request()
    host.crashed_at = sim.now
    _emit_fault(sim, "node.crash", node, {"at": sim.now})
    # fault tolerance (opt-in): tell the world's failure detector so
    # survivors eventually learn of the death instead of deadlocking
    ft = getattr(sim, "ft", None)
    if ft is not None:
        ft.on_crash(node, sim.now)
    # hold the CPU forever: wait on an event that never fires
    yield sim.event()


def _pause(sim, host, t_start: float, t_end: float, node: int = -1):
    if t_start > sim.now:
        yield sim.timeout(t_start - sim.now)
    req = host.cpu.request()
    yield req
    _emit_fault(sim, "node.pause", node, {"until": t_end})
    # the grant may arrive late if the CPU was busy; pause until t_end
    if t_end > sim.now:
        yield sim.timeout(t_end - sim.now)
    host.cpu.release(req)
    _emit_fault(sim, "node.resume", node, {})


def _slow(sim, host, factor: float, t_start: float, t_end: float, node: int = -1):
    if t_start > sim.now:
        yield sim.timeout(t_start - sim.now)
    original = host.cpu.speed
    host.cpu.speed = original / factor
    _emit_fault(sim, "node.slow", node, {"factor": factor, "until": t_end})
    if t_end != float("inf"):
        yield sim.timeout(t_end - sim.now)
        host.cpu.speed = original
        _emit_fault(sim, "node.resume", node, {"factor": factor})
