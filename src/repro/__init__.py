"""repro — reproduction of "Low Latency MPI for Meiko CS/2 and ATM Clusters".

Jones, Singh & Agrawal, IPPS 1997.  The package contains:

* :mod:`repro.sim` — a deterministic discrete-event simulation kernel;
* :mod:`repro.hw` — models of the paper's hardware: the Meiko CS/2
  (SPARC + Elan co-processor, remote transactions, DMA, hardware
  broadcast, the tport widget), a 10 Mb/s shared Ethernet with CSMA/CD,
  and a 155 Mb/s ATM fabric (cells, AAL5/AAL3-4, ForeRunner-style
  switch);
* :mod:`repro.net` — IP / TCP / UDP / reliable-UDP protocol stacks with
  a kernel-crossing cost model;
* :mod:`repro.mpi` — the paper's MPI library: tagged point-to-point
  matching with MPI_ANY_SOURCE/ANY_TAG, all four send modes (blocking
  and nonblocking), probe, datatypes, communicators, broadcast (plus a
  set of extension collectives), running over four interchangeable
  devices (low-latency Meiko, MPICH-over-tport, TCP, UDP);
* :mod:`repro.apps` — the paper's applications (linear equation solver,
  matrix multiply, particle pairwise interactions);
* :mod:`repro.bench` — harness utilities that regenerate every figure
  and table of the paper's evaluation.

Quickstart::

    from repro.mpi import World

    def main(comm):
        if comm.rank == 0:
            yield from comm.send(b"hello", dest=1, tag=7)
        else:
            data, status = yield from comm.recv(source=0, tag=7)
            return bytes(data)

    world = World(nprocs=2, platform="meiko", device="lowlatency")
    results = world.run(main)
"""

__version__ = "1.0.0"

from repro.errors import ReproError

__all__ = ["ReproError", "__version__"]
