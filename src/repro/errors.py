"""Exception hierarchy shared across the library."""

__all__ = [
    "ReproError",
    "HardwareError",
    "NetworkError",
    "ConnectionClosed",
    "ConfigurationError",
]


class ReproError(Exception):
    """Base class for all library errors."""


class HardwareError(ReproError):
    """Misuse of a simulated hardware component."""


class NetworkError(ReproError):
    """A protocol-level failure (reset, unreachable, reassembly error)."""


class ConnectionClosed(NetworkError):
    """Operation on a connection that the peer has closed."""


class ConfigurationError(ReproError):
    """Invalid platform/world/benchmark configuration."""
