"""Exception hierarchy shared across the library."""

__all__ = [
    "ReproError",
    "HardwareError",
    "NetworkError",
    "ConnectionClosed",
    "RetransmitExhausted",
    "ConfigurationError",
    "DeadlockError",
]


class ReproError(Exception):
    """Base class for all library errors."""


class HardwareError(ReproError):
    """Misuse of a simulated hardware component."""


class NetworkError(ReproError):
    """A protocol-level failure (reset, unreachable, reassembly error)."""


class ConnectionClosed(NetworkError):
    """Operation on a connection that the peer has closed."""


class RetransmitExhausted(NetworkError):
    """A reliable transport gave up after ``max_retries`` retransmissions."""


class ConfigurationError(ReproError):
    """Invalid platform/world/benchmark configuration."""


class DeadlockError(ConfigurationError):
    """All ranks blocked with no pending events.

    The watchdog diagnostic in ``args[0]`` lists, per stuck rank, its
    outstanding sends/receives and flow-control state;
    :attr:`stuck_ranks` names the blocked ranks programmatically and
    :attr:`rank_states` maps each stuck rank to the machine-readable
    device snapshot (``Endpoint.state_snapshot()``) the lines were
    rendered from.
    """

    def __init__(self, message: str, stuck_ranks=None, rank_states=None):
        super().__init__(message)
        self.stuck_ranks = list(stuck_ranks or [])
        self.rank_states = dict(rank_states or {})
