"""Multi-workload simulator-kernel performance suite.

Every other benchmark in the repo reports *simulated* microseconds;
this module guards the *simulator's own* wall-clock performance.  Four
workloads exercise the kernel's hot paths from different directions:

``solver``
    The Figure 7 linear solver on 8 Meiko ranks — collective-heavy MPI
    traffic through the low-latency device (matching engine, DMA
    engines, process switching).
``nbody``
    The Figure 9 n-body ring on 4 Ethernet workstations — the full
    TCP/IP stack per message (byte buffers, delayed ACKs, CSMA/CD).
``chaos``
    A lossy-Ethernet ping-pong under deterministic fault injection —
    retransmission timers actually fire, exercising timer re-arm,
    cancellation, and the fault-injection hooks.
``timer_churn``
    A pure-kernel microbenchmark of the cancellable-timer pattern the
    protocol stacks use: every operation arms a long retransmit-style
    timer (the 200 ms default RTO) that is cancelled microseconds later
    when the operation completes.  Before cancellable timers, each of
    those timers sat in the heap until it fired dead.
``ring_1k``
    A 1024-rank token ring on the low-latency Meiko device — scheduling
    breadth: a thousand suspended process generators, wide matching
    state, and a strictly serialized dependency chain, so throughput is
    dominated by wake-one-resume-one kernel latency rather than batch
    drains.
``coll_4k``
    Forced-style collective algorithms at scale: a 4096-rank binomial
    broadcast (8 KB payload) plus the auto-selected tree barrier, and a
    128-rank ring + recursive-doubling allreduce pair (16 KB payloads,
    results cross-checked).  Guards the algorithm library's per-message
    costs — a ring allreduce at thousands of ranks is O(P²) messages
    and intentionally NOT benched (that's what the crossover tables are
    for; see docs/COLLECTIVES.md).
``coll_10k``
    The O(10k)-rank scaling gate: a 10,000-rank Meiko world (2048 in
    quick mode) constructs, then runs hardware bcast + reduce_bcast
    allreduce + tree barrier to completion.  Exercises lazy
    communicator construction, sparse matching state, and the
    wide-communicator algorithm crossovers end to end.

``run_suite`` returns one record per workload (events scheduled,
wall-clock seconds, events per second) ready to be serialized as
``BENCH_kernel.json`` — the tracked perf trajectory of the kernel.
"""

from __future__ import annotations

import os
import time
from dataclasses import replace
from typing import Callable, Dict, Optional

__all__ = [
    "WORKLOADS", "FLOORS", "floor_slack", "effective_floor",
    "run_workload", "run_suite",
]

#: conservative events-per-second floors (full workloads, slow-CI safe);
#: quick mode halves them.  Raised for the slot-dispatch/pooling kernel:
#: measured full-mode on the dev box solver ~235k, nbody ~148k, chaos
#: ~190k, timer_churn ~820k, ring_1k ~215k events/s; floors sit at
#: roughly half of that for runner headroom (REPRO_BENCH_FLOOR_SLACK
#: scales them further on shared runners).
FLOORS = {
    "solver": 120_000,
    "nbody": 80_000,
    "chaos": 85_000,
    "timer_churn": 400_000,
    "ring_1k": 100_000,
    # collective-scale workloads (measured full-mode ~190k and ~75k
    # events/s on the dev box; the 10k world's throughput is dominated
    # by wide-tree wakeup chains, hence the lower floor)
    "coll_4k": 90_000,
    "coll_10k": 35_000,
}


def floor_slack() -> float:
    """Relative floor tolerance from ``REPRO_BENCH_FLOOR_SLACK``.

    CI runners vary wildly in single-core speed, and parallel bench runs
    contend for cores; the env var scales every floor by one relative
    factor (e.g. ``0.5`` halves them) instead of hand-tuning absolute
    numbers per runner.  Defaults to 1.0 (floors as measured).
    """
    return float(os.environ.get("REPRO_BENCH_FLOOR_SLACK", "1.0"))


def effective_floor(name: str, quick: bool = False) -> int:
    """The enforced events/s floor: base × quick-scale × slack."""
    return int(FLOORS[name] * (0.5 if quick else 1.0) * floor_slack())


def _solver(quick: bool) -> int:
    from repro.apps import linsolve
    from repro.mpi import World

    world = World(8, platform="meiko", device="lowlatency")

    def main(comm):
        _, elapsed = yield from linsolve(comm, n=48 if quick else 96, seed=0)
        return elapsed

    world.run(main)
    return world.sim._seq


def _nbody(quick: bool) -> int:
    from repro.apps import nbody_ring
    from repro.mpi import World

    world = World(4, platform="ethernet")

    def main(comm):
        _, e = yield from nbody_ring(
            comm, nparticles=16 if quick else 32, seed=0, flop_time=0.03
        )
        return e

    world.run(main)
    return world.sim._seq


def _chaos(quick: bool) -> int:
    from repro.faults import FaultPlan, PacketLoss
    from repro.mpi import World
    from repro.net.kernel import ETH_KERNEL

    world = World(
        2,
        platform="ethernet",
        faults=FaultPlan.of(PacketLoss(probability=0.05)),
        kernel_params=replace(ETH_KERNEL, rto=4000.0, rto_max=64000.0, max_retries=8),
        seed=1,
    )
    rounds = 10 if quick else 40

    def main(comm):
        payload = bytes(256)
        for _ in range(rounds):
            if comm.rank == 0:
                yield from comm.send(payload, dest=1, tag=1)
                yield from comm.recv(source=1, tag=2)
            else:
                d, _ = yield from comm.recv(source=0, tag=1)
                yield from comm.send(d, dest=0, tag=2)
        return comm.wtime()

    world.run(main)
    return world.sim._seq


def _ring_1k(quick: bool) -> int:
    from repro.mpi import World

    world = World(1024, platform="meiko", device="lowlatency")
    laps = 1 if quick else 2

    def main(comm):
        token = bytes(8)
        nxt = (comm.rank + 1) % comm.size
        prev = (comm.rank - 1) % comm.size
        for _ in range(laps):
            if comm.rank == 0:
                yield from comm.send(token, dest=nxt, tag=7)
                token, _ = yield from comm.recv(source=prev, tag=7)
            else:
                token, _ = yield from comm.recv(source=prev, tag=7)
                yield from comm.send(token, dest=nxt, tag=7)
        return comm.wtime()

    world.run(main)
    return world.sim._seq


def _coll_4k(quick: bool) -> int:
    import numpy as np

    from repro.mpi import World

    nbig = 1024 if quick else 4096
    nring = 64 if quick else 128

    def body_big(comm):
        buf = np.zeros(1024, dtype=np.int64)
        if comm.rank == 0:
            buf[:] = 7
        yield from comm.bcast(buf, root=0, style="binomial")
        yield from comm.barrier()  # auto-selects the tree barrier
        assert int(buf[0]) == 7
        return None

    def body_ring(comm):
        val = np.full(2048, comm.rank, dtype=np.int64)
        tot = yield from comm.allreduce(val, style="ring")
        tot2 = yield from comm.allreduce(val, style="recursive_doubling")
        assert int(tot[0]) == comm.size * (comm.size - 1) // 2
        assert np.array_equal(tot, tot2)
        return None

    big = World(nbig, platform="meiko", device="lowlatency")
    big.run(body_big)
    ring = World(nring, platform="meiko", device="lowlatency")
    ring.run(body_ring)
    return big.sim._seq + ring.sim._seq


def _coll_10k(quick: bool) -> int:
    import numpy as np

    from repro.mpi import World

    world = World(2048 if quick else 10_000, platform="meiko", device="lowlatency")

    def main(comm):
        buf = np.zeros(64, dtype=np.int64)
        if comm.rank == 0:
            buf[:] = np.arange(64)
        yield from comm.bcast(buf, root=0)      # hardware broadcast
        val = np.array([comm.rank], dtype=np.int64)
        tot = yield from comm.allreduce(val)    # reduce_bcast
        yield from comm.barrier()               # tree (wide crossover)
        assert int(tot[0]) == comm.size * (comm.size - 1) // 2
        assert int(buf[63]) == 63
        return None

    world.run(main)
    return world.sim._seq


def _timer_churn(quick: bool) -> int:
    from repro.sim import Simulator

    sim = Simulator()
    n = 4_000 if quick else 20_000

    def op(sim):
        for _ in range(n):
            # the protocol-stack pattern: arm a retransmit-scale timer,
            # finish the operation almost immediately, cancel the timer
            handle = sim.call_later(200_000.0, _noop)
            yield sim.timeout(1.0)
            handle.cancel()

    def _noop(_event):  # pragma: no cover - cancelled before firing
        raise AssertionError("cancelled timer fired")

    sim.process(op(sim))
    sim.run()
    return sim._seq


WORKLOADS: Dict[str, Callable[[bool], int]] = {
    "solver": _solver,
    "nbody": _nbody,
    "chaos": _chaos,
    "timer_churn": _timer_churn,
    "ring_1k": _ring_1k,
    "coll_4k": _coll_4k,
    "coll_10k": _coll_10k,
}


def run_workload(name: str, quick: bool = False, repeats: int = 3) -> Dict:
    """Best-of-*repeats* timing for one workload."""
    fn = WORKLOADS[name]
    best = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        events = fn(quick)
        dt = time.perf_counter() - t0
        if best is None or dt < best[0]:
            best = (dt, events)
    dt, events = best
    return {
        "events": events,
        "wall_s": round(dt, 6),
        "events_per_sec": int(events / dt),
    }


def run_suite(quick: bool = False, repeats: int = 3,
              workers: Optional[int] = None) -> Dict:
    """Run every workload; returns {workload: record} plus metadata.

    ``workers`` > 1 distributes the workloads over the parallel engine
    (``repro.parallel``) — each workload still runs single-process and
    best-of-*repeats*, shards just overlap different workloads.  The
    event counts are deterministic either way; only the wall-clock
    numbers feel core contention, which is what the
    ``REPRO_BENCH_FLOOR_SLACK`` tolerance is for.  Per-shard timing is
    reported under ``"shards"`` so the speedup is tracked in the BENCH
    trajectory.
    """
    suite: Dict = {
        "mode": "quick" if quick else "full",
        "repeats": repeats,
        "workers": max(1, int(workers or 1)),
    }
    names = list(WORKLOADS)
    if workers is not None and workers > 1:
        from repro.parallel import run_cells

        # wall-clock measurements must never be served from the cache
        cells = [
            {"kind": "kernel_workload", "name": name, "quick": quick,
             "repeats": repeats, "_nocache": True}
            for name in names
        ]
        report = run_cells(cells, workers=workers, cache=False)
        suite["workloads"] = dict(zip(names, report.results))
        suite["shards"] = [s.to_dict() for s in report.shards]
        suite["parallel_wall_s"] = round(report.wall_s, 6)
    else:
        suite["workloads"] = {
            name: run_workload(name, quick=quick, repeats=repeats)
            for name in names
        }
    return suite
