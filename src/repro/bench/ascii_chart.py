"""ASCII charts for benchmark figures.

No plotting dependencies exist in the offline environment, so the
benchmark harness renders its figures as monospace scatter/line charts
— enough to eyeball a crossover or a scaling trend in a terminal or a
CI log.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

__all__ = ["ascii_chart", "MARKERS"]

#: series markers, assigned in insertion order
MARKERS = "ox+*#@%&"


def _transform(v: float, log: bool) -> float:
    if log:
        if v <= 0:
            raise ValueError(f"log scale requires positive values, got {v}")
        return math.log10(v)
    return v


def _fmt(v: float) -> str:
    if v == 0:
        return "0"
    if abs(v) >= 10000 or abs(v) < 0.01:
        return f"{v:.1e}"
    return f"{v:.4g}"


def ascii_chart(
    series: Dict[str, Sequence[Tuple[float, float]]],
    width: int = 64,
    height: int = 16,
    logx: bool = False,
    logy: bool = False,
    title: str = "",
    xlabel: str = "",
    ylabel: str = "",
) -> str:
    """Render (x, y) series as a monospace chart.

    >>> print(ascii_chart({"a": [(1, 1), (2, 4)]}, width=20, height=5))
    ... # doctest: +SKIP
    """
    if not series:
        raise ValueError("no series to plot")
    if width < 8 or height < 4:
        raise ValueError("chart too small")
    pts = [
        (_transform(x, logx), _transform(y, logy))
        for s in series.values()
        for x, y in s
    ]
    if not pts:
        raise ValueError("series contain no points")
    xs = [p[0] for p in pts]
    ys = [p[1] for p in pts]
    xmin, xmax = min(xs), max(xs)
    ymin, ymax = min(ys), max(ys)
    xspan = (xmax - xmin) or 1.0
    yspan = (ymax - ymin) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for marker, (name, points) in zip(MARKERS, series.items()):
        for x, y in points:
            tx = (_transform(x, logx) - xmin) / xspan
            ty = (_transform(y, logy) - ymin) / yspan
            col = min(width - 1, int(round(tx * (width - 1))))
            row = min(height - 1, int(round((1.0 - ty) * (height - 1))))
            cell = grid[row][col]
            grid[row][col] = marker if cell in (" ", marker) else "?"

    # frame + y labels
    def unscale_y(frac: float) -> float:
        v = ymin + frac * yspan
        return 10**v if logy else v

    def unscale_x(frac: float) -> float:
        v = xmin + frac * xspan
        return 10**v if logx else v

    lines: List[str] = []
    if title:
        lines.append(title)
    label_w = 10
    for i, row in enumerate(grid):
        frac = 1.0 - i / (height - 1)
        ylab = _fmt(unscale_y(frac)) if i in (0, height // 2, height - 1) else ""
        lines.append(f"{ylab:>{label_w}} |" + "".join(row))
    x_lo, x_mid, x_hi = (_fmt(unscale_x(f)) for f in (0.0, 0.5, 1.0))
    lines.append(" " * label_w + " +" + "-" * width)
    axis = " " * (label_w + 2) + x_lo
    mid_pos = label_w + 2 + width // 2 - len(x_mid) // 2
    axis = axis.ljust(mid_pos) + x_mid
    axis = axis.ljust(label_w + 2 + width - len(x_hi)) + x_hi
    lines.append(axis)
    if xlabel or ylabel:
        lines.append(" " * (label_w + 2) + f"x: {xlabel}   y: {ylabel}".rstrip())
    legend = "   ".join(
        f"{marker}={name}" for marker, name in zip(MARKERS, series.keys())
    )
    lines.append(" " * (label_w + 2) + legend)
    return "\n".join(lines)
