"""Paper-style output formatting for benchmark results."""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

__all__ = ["format_table", "format_series"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence], title: str = "") -> str:
    """A plain monospace table."""
    cols = [[str(h)] for h in headers]
    for row in rows:
        for i, cell in enumerate(row):
            if isinstance(cell, float):
                # keep 4 significant digits for small values, 1 decimal
                # for large ones
                cell = f"{cell:.4g}" if abs(cell) < 100 else f"{cell:.1f}"
            cols[i].append(str(cell))
    widths = [max(len(c) for c in col) for col in cols]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(h.rjust(w) for h, w in zip(headers, widths))
    lines.append(header)
    lines.append("-" * len(header))
    for r in range(1, len(cols[0])):
        lines.append("  ".join(cols[i][r].rjust(widths[i]) for i in range(len(cols))))
    return "\n".join(lines)


def format_series(
    series: Dict[str, List[Tuple[int, float]]], xlabel: str = "size", title: str = ""
) -> str:
    """Several (x, y) series as one table keyed by x."""
    names = list(series)
    xs = [x for x, _ in series[names[0]]]
    for name in names:
        if [x for x, _ in series[name]] != xs:
            raise ValueError("series must share their x samples")
    rows = []
    for i, x in enumerate(xs):
        rows.append([x] + [series[name][i][1] for name in names])
    return format_table([xlabel] + names, rows, title=title)
