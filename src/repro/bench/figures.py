"""Per-figure data generators.

Each ``figNN_*`` function regenerates the data behind one figure or
table of the paper's evaluation and returns a dict with:

* ``series`` — mapping series name -> list of (x, value) samples;
* ``paper`` — the paper's reference numbers/claims for EXPERIMENTS.md;
* figure-specific extras (e.g. the measured eager/rendezvous
  crossover for Figure 1).

Values are simulated microseconds (latency) or MB/s (bandwidth);
Figures 7-9 report application times.

Every sweep point is expressed as an independent *cell* (a plain dict
dispatched through :mod:`repro.parallel.tasks`), so a figure can be
evaluated serially (the default — identical to calling the harness
directly) or fanned out over the parallel experiment engine by passing
``runner=`` a callable that maps a cell list to a result list in the
same order (``repro sweep --workers N`` does exactly that).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.bench import harness
from repro.mpi import World

__all__ = [
    "LATENCY_SIZES",
    "BANDWIDTH_SIZES",
    "fig01_transfer_mechanisms",
    "fig02_meiko_latency",
    "fig03_meiko_bandwidth",
    "fig04_atm_latency",
    "fig05_tcp_latency",
    "fig06_tcp_bandwidth",
    "fig10_modern_crossover",
    "table1_overheads",
    "fig07_linsolve",
    "fig08_meiko_nbody",
    "fig09_tcp_nbody",
]

LATENCY_SIZES = (1, 16, 64, 128, 180, 256, 512, 1024)
BANDWIDTH_SIZES = (1024, 4096, 16384, 65536, 262144, 1048576)

#: a runner maps an ordered cell list to an ordered result list
Runner = Callable[[List[dict]], List]


def _eval(cells: List[dict], runner: Optional[Runner]) -> List:
    if runner is None:
        from repro.parallel.tasks import run_cell

        return [run_cell(cell) for cell in cells]
    return runner(cells)


def _series(cells: List[dict], xs_per_series: Dict[str, Sequence],
            runner: Optional[Runner]) -> Dict[str, List]:
    """Evaluate the flat cell list and slice it back into named series
    (cells are ordered series-by-series, matching ``xs_per_series``)."""
    values = _eval(cells, runner)
    out: Dict[str, List] = {}
    pos = 0
    for name, xs in xs_per_series.items():
        out[name] = list(zip(xs, values[pos:pos + len(xs)]))
        pos += len(xs)
    return out


# ---------------------------------------------------------------------------
# Figure 1: Meiko transfer mechanisms (buffered vs no buffering)
# ---------------------------------------------------------------------------


def fig01_transfer_mechanisms(
    sizes: Sequence[int] = (1, 32, 64, 96, 128, 160, 180, 220, 256, 320, 400, 512),
    runner: Optional[Runner] = None,
):
    """RTT of the two low-latency transfer mechanisms, forced on for all
    sizes, plus the measured crossover (paper: 180 bytes)."""
    cells = [
        {"kind": "pingpong_rtt", "platform": "meiko", "device": "lowlatency",
         "nbytes": n, "config": {"eager_threshold": 10**9}}
        for n in sizes
    ] + [
        {"kind": "pingpong_rtt", "platform": "meiko", "device": "lowlatency",
         "nbytes": n, "config": {"eager_threshold": -1}}
        for n in sizes
    ]
    series = _series(cells, {"Buffering": sizes, "No buffering": sizes}, runner)
    cross = harness.crossover(series["Buffering"], series["No buffering"])
    return {
        "series": series,
        "crossover": cross,
        "paper": {"crossover": 180},
    }


# ---------------------------------------------------------------------------
# Figure 2/3: Meiko latency and bandwidth
# ---------------------------------------------------------------------------


def fig02_meiko_latency(sizes: Sequence[int] = LATENCY_SIZES,
                        runner: Optional[Runner] = None):
    cells = (
        [{"kind": "pingpong_rtt", "platform": "meiko", "device": "mpich",
          "nbytes": n} for n in sizes]
        + [{"kind": "pingpong_rtt", "platform": "meiko", "device": "lowlatency",
            "nbytes": n} for n in sizes]
        + [{"kind": "tport_rtt", "nbytes": n} for n in sizes]
    )
    return {
        "series": _series(cells, {
            "MPI(mpich)": sizes, "MPI(low latency)": sizes, "Meiko tport": sizes,
        }, runner),
        "paper": {"tport_1B": 52.0, "lowlatency_1B": 104.0, "mpich_1B": 210.0},
    }


def fig03_meiko_bandwidth(sizes: Sequence[int] = BANDWIDTH_SIZES,
                          runner: Optional[Runner] = None):
    cells = (
        [{"kind": "bandwidth", "platform": "meiko", "device": "mpich",
          "nbytes": n} for n in sizes]
        + [{"kind": "bandwidth", "platform": "meiko", "device": "lowlatency",
            "nbytes": n} for n in sizes]
        + [{"kind": "tport_bandwidth", "nbytes": n} for n in sizes]
    )
    return {
        "series": _series(cells, {
            "MPI(mpich)": sizes, "MPI(low latency)": sizes, "Meiko tport": sizes,
        }, runner),
        "paper": {"dma_peak_MBps": 39.0, "note": "peak nearly reached; low latency >= mpich"},
    }


# ---------------------------------------------------------------------------
# Figure 4: raw ATM protocol latency
# ---------------------------------------------------------------------------


def fig04_atm_latency(sizes: Sequence[int] = LATENCY_SIZES,
                      runner: Optional[Runner] = None):
    cells = (
        [{"kind": "raw_rtt", "network": "atm", "transport": "tcp", "nbytes": n}
         for n in sizes]
        + [{"kind": "raw_rtt", "network": "atm", "transport": "udp", "nbytes": n}
           for n in sizes]
        + [{"kind": "fore_rtt", "nbytes": n} for n in sizes]
    )
    return {
        "series": _series(cells, {"TCP": sizes, "UDP": sizes, "Fore aal4": sizes},
                          runner),
        "paper": {
            "tcp_1B": 1065.0,
            "note": "indistinguishable except at small sizes (STREAMS overhead)",
        },
    }


# ---------------------------------------------------------------------------
# Figure 5/6: TCP latency and bandwidth, Ethernet vs ATM, raw vs MPI
# ---------------------------------------------------------------------------


def fig05_tcp_latency(sizes: Sequence[int] = LATENCY_SIZES,
                      runner: Optional[Runner] = None):
    cells = (
        [{"kind": "pingpong_rtt", "platform": "atm", "device": "tcp",
          "nbytes": n} for n in sizes]
        + [{"kind": "pingpong_rtt", "platform": "ethernet", "device": "tcp",
            "nbytes": n} for n in sizes]
        + [{"kind": "raw_rtt", "network": "atm", "transport": "tcp", "nbytes": n}
           for n in sizes]
        + [{"kind": "raw_rtt", "network": "ethernet", "transport": "tcp",
            "nbytes": n} for n in sizes]
    )
    return {
        "series": _series(cells, {
            "mpi/tcp/atm": sizes, "mpi/tcp/eth": sizes,
            "tcp/atm": sizes, "tcp/eth": sizes,
        }, runner),
        "paper": {"tcp_eth_1B": 925.0, "tcp_atm_1B": 1065.0, "mpi_adds_per_way": 210.0},
    }


def fig06_tcp_bandwidth(sizes: Sequence[int] = BANDWIDTH_SIZES[:-1],
                        runner: Optional[Runner] = None):
    cells = (
        [{"kind": "bandwidth", "platform": "atm", "device": "tcp",
          "nbytes": n} for n in sizes]
        + [{"kind": "bandwidth", "platform": "ethernet", "device": "tcp",
            "nbytes": n} for n in sizes]
        + [{"kind": "raw_bandwidth", "network": "atm", "transport": "tcp",
            "nbytes": n} for n in sizes]
        + [{"kind": "raw_bandwidth", "network": "ethernet", "transport": "tcp",
            "nbytes": n} for n in sizes]
    )
    return {
        "series": _series(cells, {
            "mpi/tcp/atm": sizes, "mpi/tcp/eth": sizes,
            "tcp/atm": sizes, "tcp/eth": sizes,
        }, runner),
        "paper": {"note": "ATM roughly an order of magnitude above 10 Mb/s Ethernet"},
    }


# ---------------------------------------------------------------------------
# Figure 10: the Figure-1 experiment replayed on the modern fabrics
# ---------------------------------------------------------------------------


def fig10_modern_crossover(
    sizes: Sequence[int] = (256, 1024, 2048, 4096, 8192, 12288, 16384,
                            24576, 32768, 65536),
    runner: Optional[Runner] = None,
):
    """Eager vs rendezvous RTT, each forced on for all sizes, on the
    modern ``rdma`` and ``cxl`` cells — the paper's protocol-crossover
    experiment (Figure 1) replayed cross-era.  Returns one measured
    crossover per device (tables in docs/FABRICS.md)."""
    series: Dict[str, List] = {}
    crossover: Dict[str, Optional[float]] = {}
    for device in ("rdma", "cxl"):
        cells = [
            {"kind": "pingpong_rtt", "platform": "modern", "device": device,
             "nbytes": n, "config": {"eager_threshold": 10**9}}
            for n in sizes
        ] + [
            {"kind": "pingpong_rtt", "platform": "modern", "device": device,
             "nbytes": n, "config": {"eager_threshold": -1}}
            for n in sizes
        ]
        dev_series = _series(
            cells, {f"{device} eager": sizes, f"{device} rendezvous": sizes},
            runner,
        )
        series.update(dev_series)
        crossover[device] = harness.crossover(
            dev_series[f"{device} eager"], dev_series[f"{device} rendezvous"]
        )
    return {
        "series": series,
        "crossover": crossover,
        "paper": {
            "crossover": 180,
            "note": "paper-era Meiko crossover was 180 B; registration "
                    "and copy costs push the modern switch points into "
                    "the KiB range",
        },
    }


# ---------------------------------------------------------------------------
# Table 1: MPI-over-TCP overhead breakdown
# ---------------------------------------------------------------------------


def table1_overheads():
    """The rows of Table 1, measured where measurable and taken from the
    calibrated cost model where the paper instrumented kernel code."""
    from repro.mpi.device.cluster import ClusterConfig
    from repro.net.kernel import ATM_KERNEL, ETH_KERNEL

    cfg = ClusterConfig()
    rows = {}
    for network, kp in (("ATM", ATM_KERNEL), ("Ethernet", ETH_KERNEL)):
        net = "atm" if network == "ATM" else "ethernet"
        # single deterministic shots: the first exchange has no delayed-ack
        # or contention interference, so the 25-byte delta is exact
        base = harness.raw_stream_rtt(net, "tcp", 1, repeats=1)
        info = harness.raw_stream_rtt(net, "tcp", 26, repeats=1) - base
        mpi = harness.mpi_pingpong_rtt(net, "tcp", 1, repeats=1)
        rows[network] = {
            "1 byte round-trip latency": base,
            "25 byte info overhead": info,
            "Read for msg type": kp.syscall_read,
            "Read for envelope": kp.syscall_read,
            "Overheads for matching": cfg.match_cost,
            "measured MPI 1B RTT": mpi,
        }
    paper = {
        "ATM": {
            "1 byte round-trip latency": 1065.0,
            "25 byte info overhead": 5.0,
            "Read for msg type": 85.0,
            "Read for envelope": 85.0,
            "Overheads for matching": 35.0,
        },
        "Ethernet": {
            "1 byte round-trip latency": 925.0,
            "25 byte info overhead": 45.0,
            "Read for msg type": 65.0,
            "Read for envelope": 65.0,
            "Overheads for matching": 35.0,
        },
    }
    return {"rows": rows, "paper": paper}


# ---------------------------------------------------------------------------
# Figures 7-9: applications
# ---------------------------------------------------------------------------


def _app_time(platform: str, device: str, nprocs: int, app, **kw) -> float:
    def main(comm):
        _, elapsed = yield from app(comm, **kw)
        return elapsed

    world = World(nprocs, platform=platform, device=device)
    return max(world.run(main))


def _app_cells(configs) -> List[dict]:
    """configs: iterable of (platform, device, nprocs, app name, kwargs)."""
    return [
        {"kind": "app_time", "platform": platform, "device": device,
         "nprocs": nprocs, "app": app, "kwargs": kwargs}
        for platform, device, nprocs, app, kwargs in configs
    ]


def fig07_linsolve(nprocs_list: Sequence[int] = (1, 2, 4, 8, 16, 32), n: int = 192,
                   runner: Optional[Runner] = None):
    """Meiko linear solver times (seconds) vs processes."""
    devices = (("mpich", "mpich"), ("lowlatency", "low latency"))
    cells = _app_cells(
        ("meiko", device, p, "linsolve", {"n": n, "seed": 0})
        for device, _ in devices for p in nprocs_list
    )
    values = _eval(cells, runner)
    series: Dict[str, List] = {}
    for i, (_, key) in enumerate(devices):
        chunk = values[i * len(nprocs_list):(i + 1) * len(nprocs_list)]
        series[key] = [(p, t / 1e6) for p, t in zip(nprocs_list, chunk)]
    return {
        "series": series,
        "paper": {"note": "hardware broadcast beats pt2pt; gap grows with P"},
    }


def fig08_meiko_nbody(nprocs_list: Sequence[int] = (1, 2, 3, 4, 6, 8),
                      nparticles: int = 24, runner: Optional[Runner] = None):
    """Meiko pairwise-interaction times (µs) vs processes."""
    devices = (("mpich", "mpich"), ("lowlatency", "low latency"))
    cells = _app_cells(
        ("meiko", device, p, "nbody_ring", {"nparticles": nparticles, "seed": 0})
        for device, _ in devices for p in nprocs_list
    )
    values = _eval(cells, runner)
    series: Dict[str, List] = {}
    for i, (_, key) in enumerate(devices):
        chunk = values[i * len(nprocs_list):(i + 1) * len(nprocs_list)]
        series[key] = list(zip(nprocs_list, chunk))
    return {
        "series": series,
        "paper": {"note": "24 particles; low latency wins (even loads, synchronized phases)"},
    }


def fig09_tcp_nbody(nprocs_list: Sequence[int] = (1, 2, 4, 8), nparticles: int = 128,
                    runner: Optional[Runner] = None):
    """Cluster pairwise-interaction times (µs) vs processes, Ethernet vs ATM."""
    platforms = (("ethernet", "Ethernet"), ("atm", "ATM"))
    cells = _app_cells(
        (platform, "tcp", p, "nbody_ring",
         {"nparticles": nparticles, "seed": 0, "flop_time": 0.03})
        for platform, _ in platforms for p in nprocs_list
    )
    values = _eval(cells, runner)
    series: Dict[str, List] = {}
    for i, (_, key) in enumerate(platforms):
        chunk = values[i * len(nprocs_list):(i + 1) * len(nprocs_list)]
        series[key] = list(zip(nprocs_list, chunk))
    return {
        "series": series,
        "paper": {"note": "ATM wins: no contention + higher bandwidth (128 particles)"},
    }
