"""Per-figure data generators.

Each ``figNN_*`` function regenerates the data behind one figure or
table of the paper's evaluation and returns a dict with:

* ``series`` — mapping series name -> list of (x, value) samples;
* ``paper`` — the paper's reference numbers/claims for EXPERIMENTS.md;
* figure-specific extras (e.g. the measured eager/rendezvous
  crossover for Figure 1).

Values are simulated microseconds (latency) or MB/s (bandwidth);
Figures 7-9 report application times.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.bench import harness
from repro.mpi import World

__all__ = [
    "LATENCY_SIZES",
    "BANDWIDTH_SIZES",
    "fig01_transfer_mechanisms",
    "fig02_meiko_latency",
    "fig03_meiko_bandwidth",
    "fig04_atm_latency",
    "fig05_tcp_latency",
    "fig06_tcp_bandwidth",
    "table1_overheads",
    "fig07_linsolve",
    "fig08_meiko_nbody",
    "fig09_tcp_nbody",
]

LATENCY_SIZES = (1, 16, 64, 128, 180, 256, 512, 1024)
BANDWIDTH_SIZES = (1024, 4096, 16384, 65536, 262144, 1048576)


# ---------------------------------------------------------------------------
# Figure 1: Meiko transfer mechanisms (buffered vs no buffering)
# ---------------------------------------------------------------------------


def fig01_transfer_mechanisms(sizes: Sequence[int] = (1, 32, 64, 96, 128, 160, 180, 220, 256, 320, 400, 512)):
    """RTT of the two low-latency transfer mechanisms, forced on for all
    sizes, plus the measured crossover (paper: 180 bytes)."""
    from repro.mpi.device.lowlatency import LowLatencyConfig

    eager = harness.sweep(
        lambda n: harness.mpi_pingpong_rtt(
            "meiko", "lowlatency", n,
            device_config=LowLatencyConfig(eager_threshold=10**9),
        ),
        sizes,
    )
    rendezvous = harness.sweep(
        lambda n: harness.mpi_pingpong_rtt(
            "meiko", "lowlatency", n,
            device_config=LowLatencyConfig(eager_threshold=-1),
        ),
        sizes,
    )
    cross = harness.crossover(eager, rendezvous)
    return {
        "series": {"Buffering": eager, "No buffering": rendezvous},
        "crossover": cross,
        "paper": {"crossover": 180},
    }


# ---------------------------------------------------------------------------
# Figure 2/3: Meiko latency and bandwidth
# ---------------------------------------------------------------------------


def fig02_meiko_latency(sizes: Sequence[int] = LATENCY_SIZES):
    return {
        "series": {
            "MPI(mpich)": harness.sweep(
                lambda n: harness.mpi_pingpong_rtt("meiko", "mpich", n), sizes
            ),
            "MPI(low latency)": harness.sweep(
                lambda n: harness.mpi_pingpong_rtt("meiko", "lowlatency", n), sizes
            ),
            "Meiko tport": harness.sweep(harness.tport_rtt, sizes),
        },
        "paper": {"tport_1B": 52.0, "lowlatency_1B": 104.0, "mpich_1B": 210.0},
    }


def fig03_meiko_bandwidth(sizes: Sequence[int] = BANDWIDTH_SIZES):
    return {
        "series": {
            "MPI(mpich)": harness.sweep(
                lambda n: harness.mpi_bandwidth("meiko", "mpich", n), sizes
            ),
            "MPI(low latency)": harness.sweep(
                lambda n: harness.mpi_bandwidth("meiko", "lowlatency", n), sizes
            ),
            "Meiko tport": harness.sweep(harness.tport_bandwidth, sizes),
        },
        "paper": {"dma_peak_MBps": 39.0, "note": "peak nearly reached; low latency >= mpich"},
    }


# ---------------------------------------------------------------------------
# Figure 4: raw ATM protocol latency
# ---------------------------------------------------------------------------


def fig04_atm_latency(sizes: Sequence[int] = LATENCY_SIZES):
    return {
        "series": {
            "TCP": harness.sweep(lambda n: harness.raw_stream_rtt("atm", "tcp", n), sizes),
            "UDP": harness.sweep(lambda n: harness.raw_stream_rtt("atm", "udp", n), sizes),
            "Fore aal4": harness.sweep(harness.fore_rtt, sizes),
        },
        "paper": {
            "tcp_1B": 1065.0,
            "note": "indistinguishable except at small sizes (STREAMS overhead)",
        },
    }


# ---------------------------------------------------------------------------
# Figure 5/6: TCP latency and bandwidth, Ethernet vs ATM, raw vs MPI
# ---------------------------------------------------------------------------


def fig05_tcp_latency(sizes: Sequence[int] = LATENCY_SIZES):
    return {
        "series": {
            "mpi/tcp/atm": harness.sweep(
                lambda n: harness.mpi_pingpong_rtt("atm", "tcp", n), sizes
            ),
            "mpi/tcp/eth": harness.sweep(
                lambda n: harness.mpi_pingpong_rtt("ethernet", "tcp", n), sizes
            ),
            "tcp/atm": harness.sweep(lambda n: harness.raw_stream_rtt("atm", "tcp", n), sizes),
            "tcp/eth": harness.sweep(
                lambda n: harness.raw_stream_rtt("ethernet", "tcp", n), sizes
            ),
        },
        "paper": {"tcp_eth_1B": 925.0, "tcp_atm_1B": 1065.0, "mpi_adds_per_way": 210.0},
    }


def fig06_tcp_bandwidth(sizes: Sequence[int] = BANDWIDTH_SIZES[:-1]):
    return {
        "series": {
            "mpi/tcp/atm": harness.sweep(
                lambda n: harness.mpi_bandwidth("atm", "tcp", n), sizes
            ),
            "mpi/tcp/eth": harness.sweep(
                lambda n: harness.mpi_bandwidth("ethernet", "tcp", n), sizes
            ),
            "tcp/atm": harness.sweep(
                lambda n: harness.raw_stream_bandwidth("atm", "tcp", n), sizes
            ),
            "tcp/eth": harness.sweep(
                lambda n: harness.raw_stream_bandwidth("ethernet", "tcp", n), sizes
            ),
        },
        "paper": {"note": "ATM roughly an order of magnitude above 10 Mb/s Ethernet"},
    }


# ---------------------------------------------------------------------------
# Table 1: MPI-over-TCP overhead breakdown
# ---------------------------------------------------------------------------


def table1_overheads():
    """The rows of Table 1, measured where measurable and taken from the
    calibrated cost model where the paper instrumented kernel code."""
    from repro.mpi.device.cluster import ClusterConfig
    from repro.net.kernel import ATM_KERNEL, ETH_KERNEL

    cfg = ClusterConfig()
    rows = {}
    for network, kp in (("ATM", ATM_KERNEL), ("Ethernet", ETH_KERNEL)):
        net = "atm" if network == "ATM" else "ethernet"
        # single deterministic shots: the first exchange has no delayed-ack
        # or contention interference, so the 25-byte delta is exact
        base = harness.raw_stream_rtt(net, "tcp", 1, repeats=1)
        info = harness.raw_stream_rtt(net, "tcp", 26, repeats=1) - base
        mpi = harness.mpi_pingpong_rtt(net, "tcp", 1, repeats=1)
        rows[network] = {
            "1 byte round-trip latency": base,
            "25 byte info overhead": info,
            "Read for msg type": kp.syscall_read,
            "Read for envelope": kp.syscall_read,
            "Overheads for matching": cfg.match_cost,
            "measured MPI 1B RTT": mpi,
        }
    paper = {
        "ATM": {
            "1 byte round-trip latency": 1065.0,
            "25 byte info overhead": 5.0,
            "Read for msg type": 85.0,
            "Read for envelope": 85.0,
            "Overheads for matching": 35.0,
        },
        "Ethernet": {
            "1 byte round-trip latency": 925.0,
            "25 byte info overhead": 45.0,
            "Read for msg type": 65.0,
            "Read for envelope": 65.0,
            "Overheads for matching": 35.0,
        },
    }
    return {"rows": rows, "paper": paper}


# ---------------------------------------------------------------------------
# Figures 7-9: applications
# ---------------------------------------------------------------------------


def _app_time(platform: str, device: str, nprocs: int, app, **kw) -> float:
    def main(comm):
        _, elapsed = yield from app(comm, **kw)
        return elapsed

    world = World(nprocs, platform=platform, device=device)
    return max(world.run(main))


def fig07_linsolve(nprocs_list: Sequence[int] = (1, 2, 4, 8, 16, 32), n: int = 192):
    """Meiko linear solver times (seconds) vs processes."""
    from repro.apps import linsolve

    series: Dict[str, List] = {"mpich": [], "low latency": []}
    for device, key in (("mpich", "mpich"), ("lowlatency", "low latency")):
        for p in nprocs_list:
            t = _app_time("meiko", device, p, linsolve, n=n, seed=0)
            series[key].append((p, t / 1e6))  # seconds, like the paper's axis
    return {
        "series": series,
        "paper": {"note": "hardware broadcast beats pt2pt; gap grows with P"},
    }


def fig08_meiko_nbody(nprocs_list: Sequence[int] = (1, 2, 3, 4, 6, 8), nparticles: int = 24):
    """Meiko pairwise-interaction times (µs) vs processes."""
    from repro.apps import nbody_ring

    series: Dict[str, List] = {"mpich": [], "low latency": []}
    for device, key in (("mpich", "mpich"), ("lowlatency", "low latency")):
        for p in nprocs_list:
            t = _app_time("meiko", device, p, nbody_ring, nparticles=nparticles, seed=0)
            series[key].append((p, t))
    return {
        "series": series,
        "paper": {"note": "24 particles; low latency wins (even loads, synchronized phases)"},
    }


def fig09_tcp_nbody(nprocs_list: Sequence[int] = (1, 2, 4, 8), nparticles: int = 128):
    """Cluster pairwise-interaction times (µs) vs processes, Ethernet vs ATM."""
    from repro.apps import nbody_ring

    series: Dict[str, List] = {"Ethernet": [], "ATM": []}
    for platform, key in (("ethernet", "Ethernet"), ("atm", "ATM")):
        for p in nprocs_list:
            t = _app_time(platform, "tcp", p, nbody_ring,
                          nparticles=nparticles, seed=0, flop_time=0.03)
            series[key].append((p, t))
    return {
        "series": series,
        "paper": {"note": "ATM wins: no contention + higher bandwidth (128 particles)"},
    }
