"""Benchmark harness: regenerates every figure and table of the paper.

:mod:`repro.bench.harness` has the micro-benchmark drivers (ping-pong
round trips, streaming bandwidth, raw-protocol probes);
:mod:`repro.bench.figures` produces each figure's data series;
:mod:`repro.bench.tables` formats paper-style output.

The ``benchmarks/`` directory at the repo root wraps these in
pytest-benchmark targets, one per figure/table.
"""

from repro.bench.harness import (
    mpi_pingpong_rtt,
    mpi_bandwidth,
    tport_rtt,
    tport_bandwidth,
    raw_stream_rtt,
    raw_stream_bandwidth,
    fore_rtt,
    sweep,
    crossover,
)
from repro.bench.tables import format_table, format_series

__all__ = [
    "mpi_pingpong_rtt",
    "mpi_bandwidth",
    "tport_rtt",
    "tport_bandwidth",
    "raw_stream_rtt",
    "raw_stream_bandwidth",
    "fore_rtt",
    "sweep",
    "crossover",
    "format_table",
    "format_series",
]
