"""Micro-benchmark drivers.

All functions build a fresh deterministic world per measurement and
report **simulated** microseconds (or MB/s = bytes/µs).  One warm-up
exchange precedes each timed measurement so one-time effects
(rendezvous state, ARP-less static connections) don't skew the number,
matching how the paper's curves were taken.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.mpi import World
from repro.sim import Simulator

__all__ = [
    "mpi_pingpong_rtt",
    "mpi_bandwidth",
    "tport_rtt",
    "tport_bandwidth",
    "raw_stream_rtt",
    "raw_stream_bandwidth",
    "fore_rtt",
    "sweep",
    "crossover",
]


# ---------------------------------------------------------------------------
# MPI-level drivers
# ---------------------------------------------------------------------------


def _pingpong_main(nbytes: int, repeats: int):
    def main(comm):
        payload = bytes(nbytes)
        if comm.rank == 0:
            # warm-up
            yield from comm.send(payload, dest=1, tag=0)
            yield from comm.recv(source=1, tag=0)
            t0 = comm.wtime()
            for _ in range(repeats):
                yield from comm.send(payload, dest=1, tag=1)
                data, _ = yield from comm.recv(source=1, tag=2)
            return (comm.wtime() - t0) / repeats
        else:
            yield from comm.recv(source=0, tag=0)
            yield from comm.send(payload, dest=0, tag=0)
            for _ in range(repeats):
                data, _ = yield from comm.recv(source=0, tag=1)
                yield from comm.send(data, dest=0, tag=2)

    return main


def mpi_pingpong_rtt(
    platform: str,
    device: str,
    nbytes: int,
    repeats: int = 3,
    device_config=None,
    machine_params=None,
    obs=None,
) -> float:
    """Mean MPI round-trip time (µs) for *nbytes* messages.

    Pass an :class:`~repro.obs.bus.EventBus` as *obs* to trace the run.
    """
    world = World(
        2,
        platform=platform,
        device=device,
        device_config=device_config,
        machine_params=machine_params,
        obs=obs,
    )
    return world.run(_pingpong_main(nbytes, repeats))[0]


def mpi_bandwidth(
    platform: str,
    device: str,
    nbytes: int,
    device_config=None,
) -> float:
    """One-way streaming bandwidth (MB/s) for one *nbytes* message."""

    def main(comm):
        payload = bytes(nbytes)
        if comm.rank == 0:
            yield from comm.send(b"w", dest=1, tag=0)  # warm-up
            yield from comm.recv(source=1, tag=0)
            t0 = comm.wtime()
            yield from comm.send(payload, dest=1, tag=1)
            yield from comm.recv(source=1, tag=2)  # tiny completion ack
            return nbytes / (comm.wtime() - t0)
        else:
            yield from comm.recv(source=0, tag=0)
            yield from comm.send(b"w", dest=0, tag=0)
            yield from comm.recv(source=0, tag=1)
            yield from comm.send(b"k", dest=0, tag=2)

    world = World(2, platform=platform, device=device, device_config=device_config)
    return world.run(main)[0]


# ---------------------------------------------------------------------------
# tport-level drivers (Figure 2/3 baselines)
# ---------------------------------------------------------------------------


def _tport_world(machine_params=None):
    from repro.hw.meiko import MeikoMachine

    sim = Simulator()
    machine = MeikoMachine(sim, 2, params=machine_params)
    return sim, machine.tports()


def tport_rtt(nbytes: int, repeats: int = 3, machine_params=None) -> float:
    """Bare tport widget round-trip time (µs)."""
    sim, tp = _tport_world(machine_params)

    def ping(sim):
        yield from tp[0].tsend(1, tag=0, data=bytes(nbytes))  # warm-up
        yield from tp[0].trecv(tag=100)
        t0 = sim.now
        for _ in range(repeats):
            yield from tp[0].tsend(1, tag=1, data=bytes(nbytes))
            yield from tp[0].trecv(tag=2)
        return (sim.now - t0) / repeats

    def pong(sim):
        yield from tp[1].trecv(tag=0)
        yield from tp[1].tsend(0, tag=100, data=b"")
        for _ in range(repeats):
            data, _, _ = yield from tp[1].trecv(tag=1)
            yield from tp[1].tsend(0, tag=2, data=data)

    p = sim.process(ping(sim))
    sim.process(pong(sim))
    sim.run()
    return p.value


def tport_bandwidth(nbytes: int, machine_params=None) -> float:
    """Bare tport one-way bandwidth (MB/s)."""
    sim, tp = _tport_world(machine_params)

    def sender(sim):
        t0 = sim.now
        yield from tp[0].tsend(1, tag=1, data=bytes(nbytes))
        yield from tp[0].trecv(tag=2)
        return nbytes / (sim.now - t0)

    def receiver(sim):
        yield from tp[1].trecv(tag=1)
        yield from tp[1].tsend(0, tag=2, data=b"")

    p = sim.process(sender(sim))
    sim.process(receiver(sim))
    sim.run()
    return p.value


# ---------------------------------------------------------------------------
# raw cluster-protocol drivers (Figure 4/5/6 baselines)
# ---------------------------------------------------------------------------


def _cluster(network: str, kernel_params=None):
    from repro.hw.cluster import ClusterMachine

    sim = Simulator()
    machine = ClusterMachine(sim, 2, network=network, kernel_params=kernel_params)
    return sim, machine


def _stream_pair(machine, transport: str):
    if transport == "tcp":
        from repro.net.tcp import TcpLayer

        return TcpLayer.connect_pair(machine.kernels[0], machine.kernels[1], 5000, 5000)
    if transport == "udp":
        from repro.net.rudp import RudpConnection

        s0 = machine.kernels[0].udp.bind(7000)
        s1 = machine.kernels[1].udp.bind(7000)
        a = RudpConnection(machine.kernels[0], s0, 1, 7000)
        b = RudpConnection(machine.kernels[1], s1, 0, 7000)
        return a, b
    raise ValueError(f"unknown transport {transport!r}")


def raw_stream_rtt(network: str, transport: str, nbytes: int, repeats: int = 3) -> float:
    """Raw TCP or reliable-UDP round-trip time (µs), no MPI."""
    sim, machine = _cluster(network)
    a, b = _stream_pair(machine, transport)

    def client(sim):
        yield from a.send(bytes(max(1, nbytes)))  # warm-up
        yield from a.recv_exact(max(1, nbytes))
        t0 = sim.now
        for _ in range(repeats):
            yield from a.send(bytes(max(1, nbytes)))
            yield from a.recv_exact(max(1, nbytes))
        return (sim.now - t0) / repeats

    def server(sim):
        for _ in range(repeats + 1):
            data = yield from b.recv_exact(max(1, nbytes))
            yield from b.send(data)

    p = sim.process(client(sim))
    sim.process(server(sim))
    sim.run()
    return p.value


def raw_stream_bandwidth(network: str, transport: str, nbytes: int) -> float:
    """Raw one-way streaming bandwidth (MB/s)."""
    sim, machine = _cluster(network)
    a, b = _stream_pair(machine, transport)

    def client(sim):
        t0 = sim.now
        yield from a.send(bytes(nbytes))
        yield from a.recv_exact(1)
        return nbytes / (sim.now - t0)

    def server(sim):
        yield from b.recv_exact(nbytes)
        yield from b.send(b"k")

    p = sim.process(client(sim))
    sim.process(server(sim))
    sim.run()
    return p.value


def fore_rtt(nbytes: int, repeats: int = 3) -> float:
    """Fore API (AAL3/4) round-trip time (µs) on the ATM cluster."""
    sim, machine = _cluster("atm")
    fa, fb = machine.fore(0), machine.fore(1)
    fa.bind(1)
    fb.bind(1)

    def client(sim):
        yield from fa.send(1, 1, bytes(max(1, nbytes)))  # warm-up
        yield from fa.recv(1)
        t0 = sim.now
        for _ in range(repeats):
            yield from fa.send(1, 1, bytes(max(1, nbytes)))
            yield from fa.recv(1)
        return (sim.now - t0) / repeats

    def server(sim):
        for _ in range(repeats + 1):
            data = yield from fb.recv(1)
            yield from fb.send(0, 1, data)

    p = sim.process(client(sim))
    sim.process(server(sim))
    sim.run()
    return p.value


# ---------------------------------------------------------------------------
# sweeps and crossovers
# ---------------------------------------------------------------------------


def sweep(fn: Callable[[int], float], sizes: Sequence[int]) -> List[Tuple[int, float]]:
    """Evaluate ``fn(size)`` over *sizes*."""
    return [(s, fn(s)) for s in sizes]


def crossover(
    series_a: Sequence[Tuple[int, float]], series_b: Sequence[Tuple[int, float]]
) -> Optional[float]:
    """The x where series A (lower at small x) crosses above series B.

    Linear interpolation between the bracketing sample points; None if
    they never cross in the sampled range.
    """
    if len(series_a) != len(series_b):
        raise ValueError("series must sample the same sizes")
    prev = None
    for (xa, ya), (xb, yb) in zip(series_a, series_b):
        if xa != xb:
            raise ValueError("series must sample the same sizes")
        diff = ya - yb
        if prev is not None and prev[1] < 0 <= diff:
            x0, d0 = prev
            return x0 + (xa - x0) * (-d0) / (diff - d0)
        prev = (xa, diff)
    return None
