"""Provenance stamp for benchmark JSON reports.

``BENCH_kernel.json`` (and any future bench JSON) is a *trajectory* —
numbers from different commits and machines compared over time.  A bare
number is uncomparable; :func:`bench_metadata` stamps each report with
the git SHA it measured, the host that measured it, the worker count,
and an ISO-8601 UTC timestamp, so a regression can be attributed to a
commit rather than to a slower runner.
"""

from __future__ import annotations

import os
import platform as _platform
import subprocess
import sys
from datetime import datetime, timezone
from typing import Dict, Optional

__all__ = ["git_sha", "bench_metadata"]


def git_sha() -> str:
    """The current commit (plus ``-dirty`` when the tree has changes);
    ``"unknown"`` outside a git checkout."""
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "--short=12", "HEAD"],
            capture_output=True, text=True, timeout=10, check=True,
        ).stdout.strip()
        dirty = subprocess.run(
            ["git", "status", "--porcelain"],
            capture_output=True, text=True, timeout=10, check=True,
        ).stdout.strip()
        return f"{sha}-dirty" if dirty else sha
    except Exception:  # noqa: BLE001 - no git, not a checkout, ...
        return "unknown"


def bench_metadata(workers: Optional[int] = None) -> Dict:
    """The provenance block every bench JSON report carries."""
    return {
        "git_sha": git_sha(),
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "host": {
            "platform": _platform.platform(),
            "machine": _platform.machine(),
            "cpus": os.cpu_count(),
            "python": sys.version.split()[0],
        },
        "workers": max(1, int(workers or 1)),
        "floor_slack": float(os.environ.get("REPRO_BENCH_FLOOR_SLACK", "1.0")),
    }
