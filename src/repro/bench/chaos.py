"""Chaos harness: sweep fault intensity over MPI workloads.

Each cell of the sweep builds a fresh deterministic world with a seeded
:class:`repro.faults.FaultPlan`, runs a workload, and classifies the
outcome:

* ``ok`` — the job completed; the cell reports simulated time, the
  slowdown versus the fault-free baseline (time-to-recovery cost of the
  retransmissions), and the fabric's fault accounting.
* ``net-error`` — a transport gave up (bounded retransmission
  exhausted) and the failure surfaced with rank context.
* ``deadlock`` — the watchdog diagnosed blocked ranks with no pending
  events and named them.

On the seed revision a lossy run simply hung; every cell now
terminates, which is the point of the harness.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence

from repro.errors import DeadlockError, NetworkError
from repro.faults import FaultPlan, PacketLoss
from repro.mpi import World
from repro.mpi.exceptions import CommError

__all__ = [
    "CLUSTER_PLATFORMS",
    "chaos_cell",
    "chaos_sweep",
    "format_chaos",
]

CLUSTER_PLATFORMS = ("ethernet", "atm")

#: kernel override used by the sweep: fail fast enough that a
#: non-recoverable cell ends in bounded simulated (and wall-clock) time
FAST_FAIL = {"rto": 4_000.0, "rto_max": 64_000.0, "max_retries": 8}


def _kernel_params(network: str, overrides: Optional[dict]):
    from repro.net.kernel import ATM_KERNEL, ETH_KERNEL

    base = ETH_KERNEL if network == "ethernet" else ATM_KERNEL
    return replace(base, **overrides) if overrides else base


def _pingpong(nbytes: int, repeats: int):
    def main(comm):
        payload = bytes(nbytes)
        for _ in range(repeats):
            if comm.rank == 0:
                yield from comm.send(payload, dest=1, tag=1)
                yield from comm.recv(source=1, tag=2)
            else:
                data, _ = yield from comm.recv(source=0, tag=1)
                yield from comm.send(data, dest=0, tag=2)
        return comm.wtime()

    return main, 2


def _nbody(nparticles: int, nprocs: int):
    from repro.apps import nbody_ring

    def main(comm):
        _, elapsed = yield from nbody_ring(comm, nparticles=nparticles, seed=0,
                                           flop_time=0.03)
        return elapsed

    return main, nprocs


def _workload(name: str, nprocs: int, nbytes: int, repeats: int):
    if name == "pingpong":
        return _pingpong(nbytes, repeats)
    if name == "nbody":
        return _nbody(nbytes, nprocs)  # nbytes doubles as the particle count
    raise ValueError(f"unknown chaos workload {name!r}")


def _fabric_counts(world: World) -> Dict[str, int]:
    fabric = world.platform.machine.fabric
    out = {}
    for prefix in ("frames", "pdus", "packets"):
        for what in ("dropped", "corrupted", "duplicated"):
            n = getattr(fabric, f"{prefix}_{what}", None)
            if n is not None:
                out[what] = n
    return out


def chaos_cell(
    platform: str,
    loss: float,
    workload: str = "pingpong",
    nprocs: int = 2,
    nbytes: int = 256,
    repeats: int = 20,
    seed: int = 1,
    kernel_overrides: Optional[dict] = None,
    obs=None,
) -> Dict:
    """Run one (platform, loss-rate) cell and classify the outcome.

    Pass an :class:`~repro.obs.bus.EventBus` as *obs* to trace the cell;
    its events are labelled ``platform/workload/loss=X`` so several
    cells can share one bus (one exported trace per sweep).
    """
    faults = FaultPlan.of(PacketLoss(probability=loss)) if loss > 0 else None
    main, nprocs = _workload(workload, nprocs, nbytes, repeats)
    if obs is not None:
        obs.set_run(f"{platform}/{workload}/loss={loss:g}")
    world = World(
        nprocs,
        platform=platform,
        faults=faults,
        kernel_params=_kernel_params(platform, kernel_overrides or FAST_FAIL),
        seed=seed,
        obs=obs,
    )
    row: Dict = {
        "platform": platform,
        "workload": workload,
        "loss": loss,
        "outcome": "ok",
        "time_us": None,
        "diagnostic": "",
    }
    try:
        world.run(main)
        row["time_us"] = world.sim.now
    except DeadlockError as e:
        row["outcome"] = "deadlock"
        row["time_us"] = world.sim.now
        row["diagnostic"] = f"stuck ranks {e.stuck_ranks}"
    except (NetworkError, CommError) as e:
        row["outcome"] = "net-error"
        row["time_us"] = getattr(e, "sim_time_us", world.sim.now)
        rank = getattr(e, "mpi_rank", getattr(e, "rank", "?"))
        row["diagnostic"] = f"rank {rank}: {type(e).__name__}"
    row.update(_fabric_counts(world))
    return row


def chaos_sweep(
    platforms: Sequence[str] = CLUSTER_PLATFORMS,
    losses: Sequence[float] = (0.0, 0.01, 0.05, 0.10),
    workloads: Sequence[str] = ("pingpong", "nbody"),
    nbody_particles: int = 16,
    repeats: int = 20,
    seed: int = 1,
    obs=None,
    workers: Optional[int] = None,
    use_cache: bool = False,
    cache_root=None,
) -> List[Dict]:
    """Full sweep: every (platform, workload, loss) cell + slowdowns.

    The loss=0 cell of each (platform, workload) pair is the baseline;
    completed lossy cells get ``slowdown = time / baseline_time`` (the
    goodput degradation from retransmission and backoff).

    ``workers`` (any integer, including 1) routes the cells through the
    parallel experiment engine (``repro.parallel``): every cell is an
    independent deterministic world, results merge in canonical sweep
    order, and with *obs* attached the per-shard event streams are
    threaded back through the merge — the merged bus (and any trace
    exported from it) is byte-identical to the serial sweep's.  Traced
    cells bypass the result cache; untraced cells use it when
    ``use_cache`` is set.
    """
    specs: List[Dict] = []
    for platform in platforms:
        for workload in workloads:
            nbytes = nbody_particles if workload == "nbody" else 256
            nprocs = 4 if workload == "nbody" else 2
            for loss in losses:
                specs.append({
                    "platform": platform, "workload": workload, "loss": loss,
                    "nprocs": nprocs, "nbytes": nbytes, "repeats": repeats,
                    "seed": seed,
                })

    if workers is None:
        rows = [
            chaos_cell(
                s["platform"], s["loss"], workload=s["workload"],
                nprocs=s["nprocs"], nbytes=s["nbytes"], repeats=s["repeats"],
                seed=s["seed"], obs=obs,
            )
            for s in specs
        ]
    else:
        from repro.parallel import ResultCache, run_cells

        traced = obs is not None
        cells = [
            dict(s, kind="chaos_cell", _trace=traced, _nocache=traced)
            for s in specs
        ]
        cache = ResultCache(cache_root) if use_cache else False
        report = run_cells(cells, workers=workers, cache=cache)
        rows = []
        for res in report.results:
            rows.append(res["row"])
            if traced:
                obs.extend(res["events"])

    # baselines + slowdowns: a pure function of the merged rows, so the
    # serial and parallel paths agree byte for byte
    baselines: Dict = {}
    for row in rows:
        group = (row["platform"], row["workload"])
        if row["loss"] == 0 and row["outcome"] == "ok":
            baselines[group] = row["time_us"]
        baseline = baselines.get(group)
        if baseline and row["outcome"] == "ok":
            row["slowdown"] = row["time_us"] / baseline
    return rows


def format_chaos(rows: Sequence[Dict]) -> str:
    """Paper-style fixed-width table of a chaos sweep."""
    from repro.bench.tables import format_table

    table = []
    for r in rows:
        t = f"{r['time_us']:.0f}" if r["time_us"] is not None else "-"
        s = f"{r['slowdown']:.2f}x" if r.get("slowdown") else "-"
        table.append([
            r["platform"], r["workload"], f"{r['loss']:.0%}", r["outcome"],
            t, s, r.get("dropped", 0), r["diagnostic"],
        ])
    return format_table(
        ["platform", "workload", "loss", "outcome", "sim us", "slowdown",
         "dropped", "diagnostic"],
        table,
        title="Chaos sweep: seeded packet loss over MPI workloads",
    )
