"""Chaos harness: sweep fault intensity over MPI workloads.

Each cell of the sweep builds a fresh deterministic world with a seeded
:class:`repro.faults.FaultPlan`, runs a workload, and classifies the
outcome:

* ``ok`` — the job completed; the cell reports simulated time, the
  slowdown versus the fault-free baseline (time-to-recovery cost of the
  retransmissions), and the fabric's fault accounting.
* ``net-error`` — a transport gave up (bounded retransmission
  exhausted) and the failure surfaced with rank context.
* ``deadlock`` — the watchdog diagnosed blocked ranks with no pending
  events and named them.

On the seed revision a lossy run simply hung; every cell now
terminates, which is the point of the harness.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Sequence

from repro.errors import DeadlockError, NetworkError
from repro.faults import FaultPlan, PacketLoss
from repro.mpi import World
from repro.mpi.exceptions import CommError

__all__ = [
    "CLUSTER_PLATFORMS",
    "SOAK_CRASH_AT",
    "chaos_cell",
    "chaos_sweep",
    "format_chaos",
    "soak_cell",
    "soak_sweep",
    "format_soak",
]

CLUSTER_PLATFORMS = ("ethernet", "atm")

#: kernel override used by the sweep: fail fast enough that a
#: non-recoverable cell ends in bounded simulated (and wall-clock) time
FAST_FAIL = {"rto": 4_000.0, "rto_max": 64_000.0, "max_retries": 8}


def _kernel_params(network: str, overrides: Optional[dict]):
    from repro.net.kernel import ATM_KERNEL, ETH_KERNEL

    base = ETH_KERNEL if network == "ethernet" else ATM_KERNEL
    return replace(base, **overrides) if overrides else base


def _pingpong(nbytes: int, repeats: int):
    def main(comm):
        payload = bytes(nbytes)
        for _ in range(repeats):
            if comm.rank == 0:
                yield from comm.send(payload, dest=1, tag=1)
                yield from comm.recv(source=1, tag=2)
            else:
                data, _ = yield from comm.recv(source=0, tag=1)
                yield from comm.send(data, dest=0, tag=2)
        return comm.wtime()

    return main, 2


def _nbody(nparticles: int, nprocs: int):
    from repro.apps import nbody_ring

    def main(comm):
        _, elapsed = yield from nbody_ring(comm, nparticles=nparticles, seed=0,
                                           flop_time=0.03)
        return elapsed

    return main, nprocs


def _workload(name: str, nprocs: int, nbytes: int, repeats: int):
    if name == "pingpong":
        return _pingpong(nbytes, repeats)
    if name == "nbody":
        return _nbody(nbytes, nprocs)  # nbytes doubles as the particle count
    raise ValueError(f"unknown chaos workload {name!r}")


def _fabric_counts(world: World) -> Dict[str, int]:
    fabric = world.platform.machine.fabric
    out = {}
    for prefix in ("frames", "pdus", "packets"):
        for what in ("dropped", "corrupted", "duplicated"):
            n = getattr(fabric, f"{prefix}_{what}", None)
            if n is not None:
                out[what] = n
    return out


def chaos_cell(
    platform: str,
    loss: float,
    workload: str = "pingpong",
    nprocs: int = 2,
    nbytes: int = 256,
    repeats: int = 20,
    seed: int = 1,
    kernel_overrides: Optional[dict] = None,
    obs=None,
) -> Dict:
    """Run one (platform, loss-rate) cell and classify the outcome.

    Pass an :class:`~repro.obs.bus.EventBus` as *obs* to trace the cell;
    its events are labelled ``platform/workload/loss=X`` so several
    cells can share one bus (one exported trace per sweep).
    """
    faults = FaultPlan.of(PacketLoss(probability=loss)) if loss > 0 else None
    main, nprocs = _workload(workload, nprocs, nbytes, repeats)
    if obs is not None:
        obs.set_run(f"{platform}/{workload}/loss={loss:g}")
    world = World(
        nprocs,
        platform=platform,
        faults=faults,
        kernel_params=_kernel_params(platform, kernel_overrides or FAST_FAIL),
        seed=seed,
        obs=obs,
    )
    row: Dict = {
        "platform": platform,
        "workload": workload,
        "loss": loss,
        "outcome": "ok",
        "time_us": None,
        "diagnostic": "",
    }
    try:
        world.run(main)
        row["time_us"] = world.sim.now
    except DeadlockError as e:
        row["outcome"] = "deadlock"
        row["time_us"] = world.sim.now
        row["diagnostic"] = f"stuck ranks {e.stuck_ranks}"
    except (NetworkError, CommError) as e:
        row["outcome"] = "net-error"
        row["time_us"] = getattr(e, "sim_time_us", world.sim.now)
        rank = getattr(e, "mpi_rank", getattr(e, "rank", "?"))
        row["diagnostic"] = f"rank {rank}: {type(e).__name__}"
    row.update(_fabric_counts(world))
    return row


def chaos_sweep(
    platforms: Sequence[str] = CLUSTER_PLATFORMS,
    losses: Sequence[float] = (0.0, 0.01, 0.05, 0.10),
    workloads: Sequence[str] = ("pingpong", "nbody"),
    nbody_particles: int = 16,
    repeats: int = 20,
    seed: int = 1,
    obs=None,
    workers: Optional[int] = None,
    use_cache: bool = False,
    cache_root=None,
) -> List[Dict]:
    """Full sweep: every (platform, workload, loss) cell + slowdowns.

    The loss=0 cell of each (platform, workload) pair is the baseline;
    completed lossy cells get ``slowdown = time / baseline_time`` (the
    goodput degradation from retransmission and backoff).

    ``workers`` (any integer, including 1) routes the cells through the
    parallel experiment engine (``repro.parallel``): every cell is an
    independent deterministic world, results merge in canonical sweep
    order, and with *obs* attached the per-shard event streams are
    threaded back through the merge — the merged bus (and any trace
    exported from it) is byte-identical to the serial sweep's.  Traced
    cells bypass the result cache; untraced cells use it when
    ``use_cache`` is set.
    """
    specs: List[Dict] = []
    for platform in platforms:
        for workload in workloads:
            nbytes = nbody_particles if workload == "nbody" else 256
            nprocs = 4 if workload == "nbody" else 2
            for loss in losses:
                specs.append({
                    "platform": platform, "workload": workload, "loss": loss,
                    "nprocs": nprocs, "nbytes": nbytes, "repeats": repeats,
                    "seed": seed,
                })

    if workers is None:
        rows = [
            chaos_cell(
                s["platform"], s["loss"], workload=s["workload"],
                nprocs=s["nprocs"], nbytes=s["nbytes"], repeats=s["repeats"],
                seed=s["seed"], obs=obs,
            )
            for s in specs
        ]
    else:
        from repro.parallel import ResultCache, run_cells

        traced = obs is not None
        cells = [
            dict(s, kind="chaos_cell", _trace=traced, _nocache=traced)
            for s in specs
        ]
        cache = ResultCache(cache_root) if use_cache else False
        report = run_cells(cells, workers=workers, cache=cache)
        rows = []
        for res in report.results:
            rows.append(res["row"])
            if traced:
                obs.extend(res["events"])

    # baselines + slowdowns: a pure function of the merged rows, so the
    # serial and parallel paths agree byte for byte
    baselines: Dict = {}
    for row in rows:
        group = (row["platform"], row["workload"])
        if row["loss"] == 0 and row["outcome"] == "ok":
            baselines[group] = row["time_us"]
        baseline = baselines.get(group)
        if baseline and row["outcome"] == "ok":
            row["slowdown"] = row["time_us"] / baseline
    return rows


#: default crash time of the soak scenario, per platform.  The pinned
#: instant must land after the first checkpoint commit and before the
#: final (unprotected) gather of the survivable workload — on the
#: modern fabrics the whole job runs in ~90 µs, so the paper-era
#: 900 µs crash would fire after completion and never be recovered.
SOAK_CRASH_AT = {
    "meiko": 900.0, "atm": 900.0, "ethernet": 900.0, "modern": 40.0,
}


# --------------------------------------------------------------- chaos soak
#
# The soak gate: a pinned crash schedule driven through the full ULFM
# recovery path (detect -> revoke -> shrink -> agree -> restart from
# checkpoint) on every platform/device cell.  Each cell must *complete
# with the correct answer* and its recovery event trace must be
# byte-identical across repeated seeded runs — the determinism property
# the FT layer promises.

def _ft_trace_sha(events) -> str:
    """Content hash of the ft-layer slice of an event stream.

    Canonical JSON over ``(t, kind, rank, detail)`` of every ``"ft"``
    event, in emission order.  Two runs of the same seeded cell must
    produce the same digest; two different cells generally do not
    (platform timing differs).
    """
    import hashlib
    import json

    canon = [
        [ev.t, ev.kind, ev.rank, ev.detail]
        for ev in events
        if ev.layer == "ft"
    ]
    material = json.dumps(canon, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(material.encode()).hexdigest()


def soak_cell(
    platform: str,
    device: str,
    nprocs: int = 8,
    victim: int = 3,
    crash_at: Optional[float] = None,
    n: int = 64,
    iters: int = 12,
    checkpoint_every: int = 4,
    seed: int = 1,
    obs=None,
) -> Dict:
    """One soak cell: crash *victim* mid-run, recover, verify the answer.

    Runs the survivable ring relaxation (``repro.apps.survivable``) under
    ``World(..., ft=True)`` with a pinned :class:`NodeCrash`, checks the
    survivors' result against the serial reference, and reports the
    recovery timeline plus ``trace_sha`` — the digest of the typed
    ``"ft"`` recovery events (crash/detect/revoke/shrink/agree/
    checkpoint), the determinism witness the sweep compares across
    repeated runs.

    ``crash_at=None`` picks the platform's pinned default from
    :data:`SOAK_CRASH_AT`.
    """
    import numpy as np

    from repro.apps.survivable import reference_relax, survivable_relax
    from repro.errors import DeadlockError
    from repro.faults import NodeCrash
    from repro.obs import EventBus
    from repro.platforms import device_key

    if crash_at is None:
        crash_at = SOAK_CRASH_AT.get(platform, 900.0)
    bus = obs if obs is not None else EventBus()
    if obs is not None:
        obs.set_run(f"soak/{device_key(platform, device)}/crash@{crash_at:g}")
    start = len(bus.events)
    plan = FaultPlan.of(NodeCrash(node=victim, at=crash_at))
    world = World(
        nprocs, platform=platform, device=device, seed=seed,
        faults=plan, ft=True, obs=bus,
    )
    row: Dict = {
        "platform": platform,
        "device": device,
        "cell": device_key(platform, device),
        "outcome": "ok",
        "recoveries": None,
        "survivors": None,
        "time_us": None,
        "timeline": {},
        "diagnostic": "",
    }
    try:
        results = world.run(
            lambda comm: survivable_relax(
                comm, n=n, iters=iters, checkpoint_every=checkpoint_every
            )
        )
        row["time_us"] = world.sim.now
        vecs = [r[0] for r in results if r is not None and r[0] is not None]
        info = next(r[1] for r in results if r is not None)
        row["recoveries"] = info["recoveries"]
        row["survivors"] = info["size"]
        ref = reference_relax(n, iters)
        if len(vecs) != 1 or not np.allclose(vecs[0], ref):
            row["outcome"] = "wrong-answer"
            row["diagnostic"] = f"{len(vecs)} result vectors"
    except DeadlockError as e:
        row["outcome"] = "deadlock"
        row["time_us"] = world.sim.now
        row["diagnostic"] = f"stuck ranks {e.stuck_ranks}"
    except (NetworkError, CommError) as e:
        row["outcome"] = "net-error"
        row["time_us"] = getattr(e, "sim_time_us", world.sim.now)
        rank = getattr(e, "mpi_rank", getattr(e, "rank", "?"))
        row["diagnostic"] = f"rank {rank}: {type(e).__name__}: {e}"
    row["timeline"] = dict(world.ft.timeline)
    row["trace_sha"] = _ft_trace_sha(bus.events[start:])
    tl = row["timeline"]
    if "crash" in tl and "detect" in tl:
        row["detect_us"] = tl["detect"] - tl["crash"]
    if "detect" in tl and "agree" in tl:
        row["recover_us"] = tl["agree"] - tl["detect"]
    return row


def soak_sweep(
    cells=None,
    nprocs: int = 8,
    victim: int = 3,
    crash_at: Optional[float] = None,
    n: int = 64,
    iters: int = 12,
    checkpoint_every: int = 4,
    seed: int = 1,
    repeat: int = 2,
    obs=None,
    workers: Optional[int] = None,
) -> List[Dict]:
    """The chaos-soak gate: the pinned crash scenario on every cell.

    Each (platform, device) cell runs ``repeat`` times; the first run is
    the reported row (and the traced one, when *obs* is attached), and
    every repetition's ``trace_sha`` must match it — the row's
    ``deterministic`` field records the comparison.  ``workers`` routes
    the runs through the parallel experiment engine (soak cells are
    never cached: the digest of a fresh run is the whole point).
    """
    from repro.platforms import DEVICE_MATRIX

    cells = list(cells) if cells is not None else list(DEVICE_MATRIX)
    params = {
        "nprocs": nprocs, "victim": victim, "crash_at": crash_at,
        "n": n, "iters": iters, "checkpoint_every": checkpoint_every,
        "seed": seed,
    }
    specs = [
        dict(params, platform=platform, device=device, rep=rep)
        for platform, device in cells
        for rep in range(max(1, repeat))
    ]

    if workers is None:
        rows_by_spec = []
        for s in specs:
            cell_obs = obs if s["rep"] == 0 else None
            rows_by_spec.append(soak_cell(
                s["platform"], s["device"], nprocs=s["nprocs"],
                victim=s["victim"], crash_at=s["crash_at"], n=s["n"],
                iters=s["iters"], checkpoint_every=s["checkpoint_every"],
                seed=s["seed"], obs=cell_obs,
            ))
    else:
        from repro.parallel import run_cells

        traced = obs is not None
        engine_cells = [
            dict(s, kind="soak_cell", _nocache=True,
                 _trace=traced and s["rep"] == 0)
            for s in specs
        ]
        report = run_cells(engine_cells, workers=workers, cache=False)
        rows_by_spec = []
        for res in report.results:
            rows_by_spec.append(res["row"])
            if "events" in res and obs is not None:
                obs.extend(res["events"])

    # fold repetitions: first rep is the row, the rest are witnesses
    rows: List[Dict] = []
    by_cell: Dict = {}
    for s, row in zip(specs, rows_by_spec):
        key = (s["platform"], s["device"])
        if s["rep"] == 0:
            row["deterministic"] = True
            by_cell[key] = row
            rows.append(row)
        elif row["trace_sha"] != by_cell[key]["trace_sha"]:
            by_cell[key]["deterministic"] = False
    return rows


def format_soak(rows: Sequence[Dict]) -> str:
    """Fixed-width table of a chaos-soak sweep."""
    from repro.bench.tables import format_table

    table = []
    for r in rows:
        t = f"{r['time_us']:.0f}" if r["time_us"] is not None else "-"
        det = f"{r['detect_us']:.0f}" if r.get("detect_us") is not None else "-"
        rec = f"{r['recover_us']:.0f}" if r.get("recover_us") is not None else "-"
        table.append([
            r["cell"], r["outcome"],
            r["recoveries"] if r["recoveries"] is not None else "-",
            r["survivors"] if r["survivors"] is not None else "-",
            det, rec, t,
            "yes" if r.get("deterministic") else "NO",
            r["trace_sha"][:12],
            r["diagnostic"],
        ])
    return format_table(
        ["cell", "outcome", "recov", "ranks", "detect us", "recover us",
         "sim us", "det.", "trace sha", "diagnostic"],
        table,
        title="Chaos soak: pinned mid-run crash through ULFM recovery",
    )


def format_chaos(rows: Sequence[Dict]) -> str:
    """Paper-style fixed-width table of a chaos sweep."""
    from repro.bench.tables import format_table

    table = []
    for r in rows:
        t = f"{r['time_us']:.0f}" if r["time_us"] is not None else "-"
        s = f"{r['slowdown']:.2f}x" if r.get("slowdown") else "-"
        table.append([
            r["platform"], r["workload"], f"{r['loss']:.0%}", r["outcome"],
            t, s, r.get("dropped", 0), r["diagnostic"],
        ])
    return format_table(
        ["platform", "workload", "loss", "outcome", "sim us", "slowdown",
         "dropped", "diagnostic"],
        table,
        title="Chaos sweep: seeded packet loss over MPI workloads",
    )
