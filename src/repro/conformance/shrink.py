"""Delta-debugging minimizer for failing conformance programs.

Given a failing program and a ``check(program) -> bool`` predicate
(True = still failing), :func:`shrink` greedily applies reduction
passes — drop rounds, drop transfers, collapse repetitions, shrink
payloads, simplify strategies and wildcards — keeping every candidate
that still fails and still validates, until a fixpoint or the
evaluation budget is reached.  :func:`write_artifacts` saves the
minimized program as JSON plus a standalone replay script.
"""

from __future__ import annotations

import copy
import json
import os
from typing import Callable, List, Optional

from repro.conformance.grammar import Program, validate

__all__ = ["shrink", "repro_script", "write_artifacts"]


def _clone(program: Program) -> Program:
    return Program.from_dict(copy.deepcopy(program.to_dict()))


def _candidates(program: Program) -> List[Program]:
    """One-step reductions of *program*, most aggressive first."""
    out: List[Program] = []
    nrounds = len(program.rounds)
    # drop a contiguous half, then single rounds
    if nrounds > 1:
        half = nrounds // 2
        for lo, hi in ((0, half), (half, nrounds)):
            cand = _clone(program)
            del cand.rounds[lo:hi]
            out.append(cand)
    for i in range(nrounds):
        if nrounds > 1:
            cand = _clone(program)
            del cand.rounds[i]
            out.append(cand)
    # drop individual transfers
    for i, rnd in enumerate(program.rounds):
        if rnd.kind != "exchange":
            continue
        for j in range(len(rnd.transfers)):
            cand = _clone(program)
            del cand.rounds[i].transfers[j]
            if not cand.rounds[i].transfers:
                del cand.rounds[i]
                if not cand.rounds:
                    continue
            out.append(cand)
    # simplify in place: reps, payloads, strategies, wildcards, kinds
    for i, rnd in enumerate(program.rounds):
        if rnd.kind == "exchange":
            for j, t in enumerate(rnd.transfers):
                if t.reps > 1:
                    cand = _clone(program)
                    cand.rounds[i].transfers[j].reps = t.reps - 1
                    out.append(cand)
                if t.nelems > 1:
                    cand = _clone(program)
                    cand.rounds[i].transfers[j].nelems = max(1, t.nelems // 4)
                    out.append(cand)
                if t.send_kind != "isend":
                    cand = _clone(program)
                    cand.rounds[i].transfers[j].send_kind = "isend"
                    out.append(cand)
                if t.any_source or t.any_tag:
                    cand = _clone(program)
                    cand.rounds[i].transfers[j].any_source = False
                    cand.rounds[i].transfers[j].any_tag = False
                    out.append(cand)
                if t.persistent_recv:
                    cand = _clone(program)
                    cand.rounds[i].transfers[j].persistent_recv = False
                    out.append(cand)
            if any(s != "waitall" for s in rnd.strategies.values()):
                cand = _clone(program)
                cand.rounds[i].strategies = {
                    r: "waitall" for r in rnd.strategies
                }
                out.append(cand)
        elif rnd.kind == "pingpong":
            if rnd.use_probe:
                cand = _clone(program)
                cand.rounds[i].use_probe = False
                cand.rounds[i].probe_any_tag = False
                out.append(cand)
            if rnd.nbytes > 1:
                cand = _clone(program)
                cand.rounds[i].nbytes = max(1, rnd.nbytes // 4)
                out.append(cand)
        elif rnd.kind == "collective":
            if rnd.op == "reduce_scatter":
                if rnd.nelems > program.nprocs:
                    cand = _clone(program)
                    cand.rounds[i].nelems = program.nprocs
                    out.append(cand)
            elif rnd.nelems > 1:
                cand = _clone(program)
                cand.rounds[i].nelems = 1
                out.append(cand)
    # drop the fault spec last — a failure that needs it keeps it
    if program.fault is not None:
        cand = _clone(program)
        cand.fault = None
        out.append(cand)
    return out


def shrink(
    program: Program,
    check: Callable[[Program], bool],
    max_evals: int = 250,
) -> Program:
    """Minimize *program* while ``check`` keeps failing.

    ``check`` must return True for the *original* program (still
    failing); the result is the smallest still-failing, still-valid
    program found within ``max_evals`` check evaluations.
    """
    current = program
    evals = 0
    improved = True
    while improved and evals < max_evals:
        improved = False
        for cand in _candidates(current):
            if evals >= max_evals:
                break
            if validate(cand):
                continue
            evals += 1
            try:
                failing = check(cand)
            except Exception:  # noqa: BLE001 - a crashing candidate still fails
                failing = True
            if failing and cand.op_count() <= current.op_count():
                current = cand
                improved = True
                break
    return current


def repro_script(program: Program) -> str:
    """A standalone replay script for a (shrunk) failing program."""
    blob = json.dumps(program.to_dict(), indent=2, sort_keys=True)
    return f'''#!/usr/bin/env python
"""Replay a shrunk conformance failure (seed {program.seed}).

Run with:  PYTHONPATH=src python <this file>
"""
from repro.conformance.executor import check_faulty, differential
from repro.conformance.grammar import Program

PROGRAM = Program.from_dict({blob})

result = differential(PROGRAM)
print(result.summary())
if PROGRAM.fault is not None:
    fault_result = check_faulty(PROGRAM)
    print("fault-composed:", fault_result.summary())
raise SystemExit(0 if result.ok else 1)
'''


def write_artifacts(
    program: Program, directory: str, label: Optional[str] = None
) -> List[str]:
    """Write ``<label>.json`` and ``<label>.py`` under *directory*."""
    os.makedirs(directory, exist_ok=True)
    label = label or f"repro_seed{program.seed}"
    json_path = os.path.join(directory, f"{label}.json")
    py_path = os.path.join(directory, f"{label}.py")
    with open(json_path, "w") as fh:
        json.dump(program.to_dict(), fh, indent=2, sort_keys=True)
        fh.write("\n")
    with open(py_path, "w") as fh:
        fh.write(repro_script(program))
    return [json_path, py_path]
