"""Seeded random MPI program generation.

A *program* is a JSON-serializable IR executed round-by-round on every
rank by :mod:`repro.conformance.executor`.  Three round kinds:

* **exchange** — a set of point-to-point transfers.  Every rank first
  posts *all* of its receives nonblocking, then issues its sends, then
  completes everything with a per-rank strategy (waitall / waitany
  drain / waitsome drain / test-then-waitall / ordered waits).  Because
  each rank reaches the end of its (nonblocking) receive-posting phase
  without blocking, every send eventually matches a posted receive and
  the round cannot deadlock — by induction over rounds the whole
  program is deadlock-free.
* **pingpong** — one blocking request/reply pair, covering blocking
  ``recv`` and (optionally) blocking ``probe``.
* **collective** — one call from the full collectives surface on
  MPI_COMM_WORLD.

Determinism rules (the semantic trace must be device-independent, so
wildcards are only generated where MPI's own guarantees pin the match):

* explicit tags are unique program-wide, except that a transfer with
  ``reps > 1`` reuses its tag for every repetition — those messages
  share a (source, dest, tag) triple and must match in send order
  (the non-overtaking guarantee the fuzzer exists to check);
* ``ANY_SOURCE`` receives keep an explicit tag; tag uniqueness then
  pins the matching message (and hence ``Status.source``);
* ``ANY_TAG`` receives keep an explicit source and are only generated
  for the round's sole transfer on that (src, dst) pair; per-sender
  in-order matching then pins the message;
* a double-wildcard receive is only generated when its destination
  rank receives exactly one point-to-point message in the entire
  program.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

import numpy as np

__all__ = [
    "Transfer",
    "ExchangeRound",
    "PingPongRound",
    "CollectiveRound",
    "FtRound",
    "Program",
    "generate",
    "validate",
    "collective_styles",
    "payload_bytes",
    "payload_array",
]

#: point-to-point payload byte sizes (eager/rendezvous thresholds are
#: 180 B on the Meiko low-latency device and 16384 B on the cluster
#: devices — the grammar straddles both)
BYTE_SIZES = [0, 1, 7, 64, 179, 180, 181, 513, 2048, 16384, 16385]
BYTE_WEIGHTS = [1, 4, 4, 4, 2, 2, 2, 3, 2, 1, 1]
INT_COUNTS = [1, 3, 16, 45, 128, 1024]
DOUBLE_COUNTS = [1, 2, 9, 33, 256]

SEND_KINDS = ["isend", "send", "ssend", "issend", "bsend", "persistent"]
SEND_WEIGHTS = [30, 20, 10, 10, 10, 10]
STRATEGIES = ["waitall", "waitany", "ordered", "test_then_waitall", "waitsome"]
STRATEGY_WEIGHTS = [40, 25, 20, 10, 5]
COLLECTIVE_OPS = [
    "bcast", "barrier", "reduce", "allreduce", "scan", "exscan",
    "reduce_scatter", "gather", "scatter", "allgather", "alltoall",
]
REDUCE_OPS = ["sum", "max", "min", "prod"]

_DTYPES = {"int": np.int32, "double": np.float64, "long": np.int64}


# ------------------------------------------------------------------ payloads
def _stream(material: str, nbytes: int) -> bytes:
    """Deterministic byte stream from *material* (sha256 counter mode)."""
    out = bytearray()
    ctr = 0
    while len(out) < nbytes:
        out += hashlib.sha256(f"{material}#{ctr}".encode()).digest()
        ctr += 1
    return bytes(out[:nbytes])


def payload_bytes(program_seed: int, pid: int, rep: int, nbytes: int) -> bytes:
    """The byte payload of repetition *rep* of payload id *pid*."""
    return _stream(f"{program_seed}:{pid}:{rep}", nbytes)


def payload_array(
    program_seed: int, pid: int, rep: int, dtype: str, nelems: int,
    lo: int = 0, hi: int = 97,
) -> np.ndarray:
    """A deterministic numeric payload (values in ``[lo, hi)``).

    Float payloads hold small integers divided by 8 — exact in binary,
    so identical reduction order gives bit-identical results on every
    device.
    """
    raw = np.frombuffer(
        _stream(f"{program_seed}:{pid}:{rep}", nelems), dtype=np.uint8
    ).astype(np.int64)
    vals = lo + (raw % max(1, hi - lo))
    np_dtype = _DTYPES[dtype]
    if dtype == "double":
        return (vals / 8.0).astype(np_dtype)
    return vals.astype(np_dtype)


# ------------------------------------------------------------------------ IR
@dataclass
class Transfer:
    """One point-to-point transfer inside an exchange round."""

    tid: int
    src: int
    dst: int
    tag: int
    dtype: str = "byte"          # byte | int | double
    nelems: int = 16             # bytes for dtype=byte, elements otherwise
    reps: int = 1                # messages on this (src, dst, tag) triple
    send_kind: str = "isend"     # isend|send|ssend|issend|bsend|persistent
    persistent_recv: bool = False
    any_source: bool = False
    any_tag: bool = False
    alloc_recv: bool = False     # recv with buf=None (byte dtype only)

    def nbytes(self) -> int:
        if self.dtype == "byte":
            return self.nelems
        return self.nelems * np.dtype(_DTYPES[self.dtype]).itemsize

    def to_dict(self) -> Dict[str, Any]:
        return {
            "tid": self.tid, "src": self.src, "dst": self.dst,
            "tag": self.tag, "dtype": self.dtype, "nelems": self.nelems,
            "reps": self.reps, "send_kind": self.send_kind,
            "persistent_recv": self.persistent_recv,
            "any_source": self.any_source, "any_tag": self.any_tag,
            "alloc_recv": self.alloc_recv,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "Transfer":
        return cls(**d)


@dataclass
class ExchangeRound:
    kind = "exchange"
    transfers: List[Transfer] = field(default_factory=list)
    #: per-rank completion strategy (absent rank -> waitall)
    strategies: Dict[int, str] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "exchange",
            "transfers": [t.to_dict() for t in self.transfers],
            "strategies": {str(r): s for r, s in self.strategies.items()},
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "ExchangeRound":
        return cls(
            transfers=[Transfer.from_dict(t) for t in d["transfers"]],
            strategies={int(r): s for r, s in d.get("strategies", {}).items()},
        )


@dataclass
class PingPongRound:
    kind = "pingpong"
    tid: int = 0
    src: int = 0
    dst: int = 1
    tag: int = 0
    reply_tag: int = 0
    nbytes: int = 64
    reply_nbytes: int = 64
    send_kind: str = "send"      # send | ssend
    use_probe: bool = False
    probe_any_tag: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "pingpong", "tid": self.tid, "src": self.src,
            "dst": self.dst, "tag": self.tag, "reply_tag": self.reply_tag,
            "nbytes": self.nbytes, "reply_nbytes": self.reply_nbytes,
            "send_kind": self.send_kind, "use_probe": self.use_probe,
            "probe_any_tag": self.probe_any_tag,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "PingPongRound":
        d = {k: v for k, v in d.items() if k != "kind"}
        return cls(**d)


@dataclass
class CollectiveRound:
    kind = "collective"
    cid: int = 0
    op: str = "bcast"
    root: int = 0
    dtype: str = "long"          # numeric collectives
    nelems: int = 8              # per-rank elements (total for scatter root)
    redop: str = "sum"
    #: forced algorithm choice (the "algos" profile); None = the
    #: device/selector default.  Styles never change semantics — the
    #: payloads are exact-arithmetic, so every algorithm must produce
    #: the byte-identical trace (checked against a style-stripped
    #: reference run in ``executor.differential``).
    style: Optional[str] = None

    def to_dict(self) -> Dict[str, Any]:
        d = {
            "kind": "collective", "cid": self.cid, "op": self.op,
            "root": self.root, "dtype": self.dtype, "nelems": self.nelems,
            "redop": self.redop,
        }
        if self.style is not None:
            d["style"] = self.style
        return d

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "CollectiveRound":
        d = {k: v for k, v in d.items() if k != "kind"}
        return cls(**d)


@dataclass
class FtRound:
    """ULFM recovery driven as a conformance operation.

    The program's ``ft`` spec crashes *victim* at t=0; every survivor
    then attempts a receive from the dead rank (which must fail with
    :class:`~repro.mpi.exceptions.RankFailed` or, if a peer revoked
    first, :class:`~repro.mpi.exceptions.CommRevoked`), runs
    ``revoke -> failure_ack -> shrink -> agree``, and executes a
    verification collective on the shrunken communicator.  The semantic
    trace records the acked failures, the survivor list, the agreement
    result, and the collective's digest — all timing-free, so every
    device must produce the identical recovery trace.
    """

    kind = "ft"
    tid: int = 0
    victim: int = 1
    tag: int = 1
    flag_mode: str = "all"       # all | parity (per-rank agree inputs)
    verify: str = "allreduce"    # allreduce | allgather
    nelems: int = 8

    def to_dict(self) -> Dict[str, Any]:
        return {
            "kind": "ft", "tid": self.tid, "victim": self.victim,
            "tag": self.tag, "flag_mode": self.flag_mode,
            "verify": self.verify, "nelems": self.nelems,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "FtRound":
        d = {k: v for k, v in d.items() if k != "kind"}
        return cls(**d)


_ROUND_TYPES = {
    "exchange": ExchangeRound,
    "pingpong": PingPongRound,
    "collective": CollectiveRound,
    "ft": FtRound,
}


@dataclass
class Program:
    """A complete generated MPI program."""

    seed: int
    nprocs: int
    rounds: List[Any] = field(default_factory=list)
    #: optional fault spec for the fault-composed mode:
    #: {"loss": p, "dup": p, "seed": n} (cluster fabrics only)
    fault: Optional[Dict[str, Any]] = None
    #: optional FT spec: {"victim": rank, "at": us} — the executor runs
    #: the world with ``ft=True`` and a pinned NodeCrash; set iff the
    #: program's rounds are :class:`FtRound`
    ft: Optional[Dict[str, Any]] = None

    def op_count(self) -> int:
        """Total MPI operations (sends + receives + probes + collective
        calls over all ranks) — the shrinker's size metric."""
        n = 0
        for rnd in self.rounds:
            if rnd.kind == "exchange":
                n += sum(2 * t.reps for t in rnd.transfers)
            elif rnd.kind == "pingpong":
                n += 4 + (1 if rnd.use_probe else 0)
            else:
                n += self.nprocs
        return n

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "nprocs": self.nprocs,
            "rounds": [r.to_dict() for r in self.rounds],
            "fault": self.fault,
            "ft": self.ft,
        }

    @classmethod
    def from_dict(cls, d: Dict[str, Any]) -> "Program":
        rounds = [_ROUND_TYPES[r["kind"]].from_dict(r) for r in d["rounds"]]
        return cls(
            seed=d["seed"], nprocs=d["nprocs"], rounds=rounds,
            fault=d.get("fault"), ft=d.get("ft"),
        )


# ------------------------------------------------------------------ validate
def validate(program: Program) -> List[str]:
    """Structural / determinism-rule violations (empty list == valid)."""
    problems: List[str] = []
    n = program.nprocs
    if n < 2:
        problems.append("nprocs must be >= 2")
        return problems
    seen_tags: Dict[int, int] = {}
    incoming: Dict[int, int] = {}
    for i, rnd in enumerate(program.rounds):
        if rnd.kind == "exchange":
            pair_counts: Dict[tuple, int] = {}
            for t in rnd.transfers:
                pair_counts[(t.src, t.dst)] = pair_counts.get((t.src, t.dst), 0) + 1
            for t in rnd.transfers:
                if not (0 <= t.src < n and 0 <= t.dst < n) or t.src == t.dst:
                    problems.append(f"round {i}: bad endpoints {t.src}->{t.dst}")
                seen_tags[t.tag] = seen_tags.get(t.tag, 0) + 1
                incoming[t.dst] = incoming.get(t.dst, 0) + t.reps
                if t.any_source and t.any_tag:
                    pass  # checked globally below
                elif t.any_tag and (pair_counts[(t.src, t.dst)] > 1 or t.reps > 1):
                    problems.append(
                        f"round {i}: ANY_TAG transfer {t.tid} shares its "
                        f"(src, dst) pair or repeats"
                    )
                if t.any_source and t.reps > 1:
                    problems.append(f"round {i}: ANY_SOURCE transfer {t.tid} repeats")
                if t.send_kind == "persistent" and t.dtype == "byte":
                    problems.append(f"round {i}: persistent send {t.tid} needs numeric dtype")
                if t.alloc_recv and t.dtype != "byte":
                    problems.append(f"round {i}: alloc recv {t.tid} needs byte dtype")
        elif rnd.kind == "pingpong":
            if not (0 <= rnd.src < n and 0 <= rnd.dst < n) or rnd.src == rnd.dst:
                problems.append(f"round {i}: bad pingpong pair")
            seen_tags[rnd.tag] = seen_tags.get(rnd.tag, 0) + 1
            seen_tags[rnd.reply_tag] = seen_tags.get(rnd.reply_tag, 0) + 1
            incoming[rnd.dst] = incoming.get(rnd.dst, 0) + 1
            incoming[rnd.src] = incoming.get(rnd.src, 0) + 1
        elif rnd.kind == "collective":
            if not 0 <= rnd.root < n:
                problems.append(f"round {i}: collective root out of range")
            style = getattr(rnd, "style", None)
            if style is not None and style not in collective_styles(rnd.op):
                problems.append(
                    f"round {i}: style {style!r} is not a registered "
                    f"{rnd.op} algorithm"
                )
            if rnd.op == "reduce_scatter" and rnd.nelems % n:
                problems.append(
                    f"round {i}: reduce_scatter buffer of {rnd.nelems} elements "
                    f"does not split over {n} ranks"
                )
        elif rnd.kind == "ft":
            if program.ft is None:
                problems.append(f"round {i}: ft round needs the program's ft spec")
            elif rnd.victim != program.ft.get("victim"):
                problems.append(f"round {i}: victim disagrees with the ft spec")
            if not 0 <= rnd.victim < n:
                problems.append(f"round {i}: ft victim out of range")
            if n < 3:
                problems.append(f"round {i}: ft round needs >= 3 ranks")
            if rnd.flag_mode not in ("all", "parity"):
                problems.append(f"round {i}: unknown flag_mode {rnd.flag_mode!r}")
            if rnd.verify not in ("allreduce", "allgather"):
                problems.append(f"round {i}: unknown verify {rnd.verify!r}")
            seen_tags[rnd.tag] = seen_tags.get(rnd.tag, 0) + 1
        else:  # pragma: no cover - from_dict rejects unknown kinds first
            problems.append(f"round {i}: unknown kind {rnd.kind!r}")
    if program.ft is not None:
        if program.fault is not None:
            problems.append("ft programs cannot compose a packet-fault spec")
        if any(rnd.kind != "ft" for rnd in program.rounds):
            # with the crash pinned at t=0 any non-FT round would race
            # the failure announcement nondeterministically
            problems.append("ft programs may only contain ft rounds")
        if len(program.rounds) != 1:
            problems.append("ft programs contain exactly one ft round")
    for tag, count in seen_tags.items():
        if count > 1:
            problems.append(f"tag {tag} reused across transfers")
    for rnd in program.rounds:
        if rnd.kind != "exchange":
            continue
        for t in rnd.transfers:
            if t.any_source and t.any_tag and incoming.get(t.dst, 0) != 1:
                problems.append(
                    f"double-wildcard transfer {t.tid}: rank {t.dst} receives "
                    f"{incoming.get(t.dst, 0)} messages, not exactly 1"
                )
    return problems


# ------------------------------------------------------------------ generate
def _weighted(rng: random.Random, options, weights):
    return rng.choices(options, weights=weights, k=1)[0]


class _Ids:
    def __init__(self):
        self.tag = 0
        self.tid = 0
        self.cid = 0

    def next_tag(self) -> int:
        self.tag += 1
        return self.tag

    def next_tid(self) -> int:
        self.tid += 1
        return self.tid

    def next_cid(self) -> int:
        self.cid += 1
        return self.cid


def _gen_exchange(rng: random.Random, nprocs: int, ids: _Ids) -> ExchangeRound:
    transfers: List[Transfer] = []
    for _ in range(rng.randint(1, 4)):
        src, dst = rng.sample(range(nprocs), 2)
        dtype = _weighted(rng, ["byte", "int", "double"], [5, 3, 2])
        if dtype == "byte":
            nelems = _weighted(rng, BYTE_SIZES, BYTE_WEIGHTS)
        elif dtype == "int":
            nelems = rng.choice(INT_COUNTS)
        else:
            nelems = rng.choice(DOUBLE_COUNTS)
        reps = _weighted(rng, [1, 2, 3], [7, 2, 1])
        send_kind = _weighted(rng, SEND_KINDS, SEND_WEIGHTS)
        if send_kind == "persistent" and dtype == "byte":
            dtype, nelems = "int", rng.choice(INT_COUNTS)
        persistent_recv = reps <= 3 and rng.random() < 0.15
        alloc_recv = dtype == "byte" and not persistent_recv and rng.random() < 0.4
        transfers.append(Transfer(
            tid=ids.next_tid(), src=src, dst=dst, tag=ids.next_tag(),
            dtype=dtype, nelems=nelems, reps=reps, send_kind=send_kind,
            persistent_recv=persistent_recv, alloc_recv=alloc_recv,
        ))
    # wildcard assignment (after the round's pair census is known)
    pair_counts: Dict[tuple, int] = {}
    for t in transfers:
        pair_counts[(t.src, t.dst)] = pair_counts.get((t.src, t.dst), 0) + 1
    for t in transfers:
        if t.reps > 1 or t.persistent_recv:
            continue
        roll = rng.random()
        if roll < 0.18:
            t.any_source = True
        elif roll < 0.36 and pair_counts[(t.src, t.dst)] == 1:
            t.any_tag = True
    ranks = {t.src for t in transfers} | {t.dst for t in transfers}
    strategies = {
        r: _weighted(rng, STRATEGIES, STRATEGY_WEIGHTS) for r in sorted(ranks)
    }
    return ExchangeRound(transfers=transfers, strategies=strategies)


def _gen_pingpong(rng: random.Random, nprocs: int, ids: _Ids) -> PingPongRound:
    src, dst = rng.sample(range(nprocs), 2)
    use_probe = rng.random() < 0.5
    return PingPongRound(
        tid=ids.next_tid(), src=src, dst=dst,
        tag=ids.next_tag(), reply_tag=ids.next_tag(),
        nbytes=_weighted(rng, BYTE_SIZES, BYTE_WEIGHTS),
        reply_nbytes=_weighted(rng, BYTE_SIZES, BYTE_WEIGHTS),
        send_kind=rng.choice(["send", "send", "ssend"]),
        use_probe=use_probe,
        probe_any_tag=use_probe and rng.random() < 0.3,
    )


def _gen_collective(rng: random.Random, nprocs: int, ids: _Ids) -> CollectiveRound:
    op = rng.choice(COLLECTIVE_OPS)
    redop = rng.choice(REDUCE_OPS)
    nelems = rng.choice([1, 2, 8, 32])
    if op == "reduce_scatter":
        nelems = rng.choice([1, 2, 4]) * nprocs
    dtype = rng.choice(["long", "double"])
    if redop == "prod":
        dtype = "long"  # tiny integer factors; exact products everywhere
    return CollectiveRound(
        cid=ids.next_cid(), op=op, root=rng.randrange(nprocs),
        dtype=dtype, nelems=nelems, redop=redop,
    )


def collective_styles(op: str) -> List[str]:
    """Registered algorithm names for *op* (empty for ops without a
    forced-``style`` knob, e.g. scan/exscan/alltoall)."""
    from repro.mpi.coll import registry

    return registry.algorithms(op)


def _gen_collective_styled(rng: random.Random, nprocs: int, ids: _Ids) -> CollectiveRound:
    """A collective round with a forced algorithm choice.

    Used only by the "algos" profile: the style is drawn *after* the
    base round, so the RNG stream consumed by :func:`_gen_collective`
    is untouched and every other profile's pinned seeds stay
    byte-identical.
    """
    rnd = _gen_collective(rng, nprocs, ids)
    styles = collective_styles(rnd.op)
    if styles:
        rnd.style = rng.choice(styles)
    return rnd


#: round-kind weights per profile: (exchange, pingpong, collective).
#: the "ft" profile is special-cased: one FtRound + a pinned NodeCrash;
#: "algos" is collective-heavy with every collective carrying a forced
#: algorithm style drawn from the repro.mpi.coll registry
PROFILES = {
    "mixed": (5, 2, 3),
    "pt2pt": (7, 3, 0),
    "collective": (1, 1, 8),
    "algos": (1, 1, 8),
    "fault": (6, 3, 1),
    "ft": (0, 0, 0),
}


def _gen_ft(rng: random.Random, nprocs: int, ids: _Ids) -> FtRound:
    return FtRound(
        tid=ids.next_tid(),
        victim=rng.randrange(nprocs),
        tag=ids.next_tag(),
        flag_mode=rng.choice(["all", "all", "parity"]),
        verify=rng.choice(["allreduce", "allgather"]),
        nelems=rng.choice([1, 4, 8, 32]),
    )


def generate(seed: int, nprocs: Optional[int] = None, profile: str = "mixed") -> Program:
    """Generate the program for *seed* (fully deterministic).

    ``profile`` weights the round mix (see :data:`PROFILES`); the
    ``fault`` profile additionally attaches a seeded loss/duplication
    :class:`~repro.faults.FaultPlan` spec for the fault-composed mode.
    """
    if profile not in PROFILES:
        raise ValueError(f"unknown profile {profile!r}; choose from {sorted(PROFILES)}")
    rng = random.Random((seed << 4) ^ 0x5EED)
    if profile == "ft":
        # one ULFM recovery scenario: crash at t=0, survivors recover
        nprocs = nprocs or rng.randint(3, 5)
        if nprocs < 3:
            raise ValueError("ft programs need >= 3 ranks")
        ids = _Ids()
        rnd = _gen_ft(rng, nprocs, ids)
        program = Program(
            seed=seed, nprocs=nprocs, rounds=[rnd],
            ft={"victim": rnd.victim, "at": 0.0},
        )
        problems = validate(program)
        if problems:  # pragma: no cover - generator invariant
            raise AssertionError(f"generator produced invalid program: {problems}")
        return program
    nprocs = nprocs or rng.randint(2, 5)
    ids = _Ids()
    weights = PROFILES[profile]
    gens = {"exchange": _gen_exchange, "pingpong": _gen_pingpong,
            "collective": (_gen_collective_styled if profile == "algos"
                           else _gen_collective)}
    rounds: List[Any] = []
    for _ in range(rng.randint(2, 5)):
        kind = _weighted(rng, ["exchange", "pingpong", "collective"], weights)
        rounds.append(gens[kind](rng, nprocs, ids))
    # double-wildcard promotion: a rank that receives exactly one
    # point-to-point message in the whole program may take it with
    # (ANY_SOURCE, ANY_TAG)
    incoming: Dict[int, int] = {}
    for rnd in rounds:
        if rnd.kind == "exchange":
            for t in rnd.transfers:
                incoming[t.dst] = incoming.get(t.dst, 0) + t.reps
        elif rnd.kind == "pingpong":
            incoming[rnd.dst] = incoming.get(rnd.dst, 0) + 1
            incoming[rnd.src] = incoming.get(rnd.src, 0) + 1
    eligible = [
        t for rnd in rounds if rnd.kind == "exchange" for t in rnd.transfers
        if incoming.get(t.dst) == 1 and t.reps == 1 and t.dtype == "byte"
        and not t.persistent_recv
    ]
    if eligible and rng.random() < 0.6:
        chosen = rng.choice(eligible)
        chosen.any_source = chosen.any_tag = True
        chosen.alloc_recv = True
    fault = None
    if profile == "fault" or (profile == "mixed" and rng.random() < 0.15):
        fault = {
            "loss": rng.choice([0.03, 0.06, 0.10]),
            "dup": rng.choice([0.0, 0.02, 0.05]),
            "seed": rng.randrange(1, 1000),
        }
    program = Program(seed=seed, nprocs=nprocs, rounds=rounds, fault=fault)
    problems = validate(program)
    if problems:  # pragma: no cover - generator invariant
        raise AssertionError(f"generator produced invalid program: {problems}")
    return program
