"""The pinned seed corpus run in CI (``repro fuzz --corpus ci``).

Every entry is a ``(seed, profile)`` pair; the corpus mixes pure
point-to-point, collective-heavy, mixed, and fault-composed programs.
The seeds are pinned so a CI run is fully reproducible — when a seed
fails, the shrunk repro artifacts say exactly why.  Policy: seeds are
append-only; a failing seed is a bug to fix, never a seed to delete
(see ``docs/TESTING.md``).

``run_corpus(workers=N)`` fans the entries out over the parallel
experiment engine (``repro.parallel``): each entry is an independent
deterministic cell, results are merged in corpus order, and the printed
lines, summary, reference traces, and shrunk artifacts are
byte-identical to the serial run.  With the content-addressed result
cache enabled (the default on the engine path), a warm re-run of an
unchanged tree skips every entry.
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Tuple

from repro.conformance.executor import check_faulty, differential
from repro.conformance.grammar import generate
from repro.conformance.shrink import shrink, write_artifacts

__all__ = ["CI_CORPUS", "run_corpus"]

#: the pinned CI corpus: (seed, profile) — 45 programs mixing
#: point-to-point, collectives, forced collective algorithms,
#: fault-composed, and ULFM-recovery runs
CI_CORPUS: List[Tuple[int, str]] = [
    (1, "mixed"), (2, "mixed"), (3, "mixed"), (4, "mixed"), (5, "mixed"),
    (6, "mixed"), (7, "mixed"), (8, "mixed"),
    (11, "pt2pt"), (12, "pt2pt"), (13, "pt2pt"), (14, "pt2pt"),
    (15, "pt2pt"), (16, "pt2pt"), (17, "pt2pt"), (18, "pt2pt"),
    (21, "collective"), (22, "collective"), (23, "collective"),
    (24, "collective"), (25, "collective"), (26, "collective"),
    (27, "collective"), (28, "collective"),
    (31, "fault"), (32, "fault"), (33, "fault"), (34, "fault"),
    (41, "ft"), (42, "ft"), (43, "ft"), (44, "ft"),
    # forced collective-algorithm programs: every collective carries a
    # style from the repro.mpi.coll registry; the executor also diffs
    # each against a style-stripped reference run.  These seven seeds
    # jointly exercise every registered algorithm of every collective
    (51, "algos"), (58, "algos"), (59, "algos"), (61, "algos"),
    (76, "algos"), (83, "algos"), (88, "algos"),
    # appended with the modern rdma/cxl cells (8-cell matrix): one seed
    # per profile whose differential traces were verified byte-identical
    # across all eight cells, including the RDMA-READ rendezvous and
    # CXL zero-copy handoff paths
    (91, "pt2pt"), (92, "collective"), (93, "mixed"), (94, "fault"),
    (95, "ft"), (96, "algos"),
]


def _shrink_failure(program, matrix, failed_fault: bool, shrink_budget: int):
    """The parent-side shrink predicate — identical for the serial and
    parallel paths, so both produce the same artifacts."""

    def still_fails(candidate):
        if failed_fault:
            return candidate.fault is not None and not check_faulty(candidate).ok
        return not differential(candidate, matrix=matrix).ok

    return shrink(program, still_fails, max_evals=shrink_budget)


def run_corpus(
    entries: Optional[Sequence[Tuple[int, str]]] = None,
    budget_s: Optional[float] = None,
    artifacts_dir: Optional[str] = None,
    out=None,
    matrix=None,
    shrink_budget: int = 120,
    workers: Optional[int] = None,
    use_cache: bool = True,
    cache_root: Optional[str] = None,
) -> dict:
    """Run the corpus; return a summary dict.

    Stops early (and says so) when ``budget_s`` wall-clock seconds run
    out — a budgeted run that found no failure reports how much of the
    corpus it actually covered rather than claiming full coverage.
    Failures are shrunk and written to ``artifacts_dir`` when given.

    ``workers=None`` (the default) is the plain serial loop.  Any
    integer — including 1 — routes through the parallel engine instead,
    with the content-addressed result cache enabled unless
    ``use_cache=False``.  The engine path's printed lines, summary,
    traces, and artifacts are byte-identical to the serial path; the
    summary additionally carries engine statistics.
    """
    entries = CI_CORPUS if entries is None else list(entries)
    started = time.monotonic()
    if workers is not None:
        return _run_corpus_engine(
            entries, started, budget_s, artifacts_dir, out, matrix,
            shrink_budget, workers, use_cache, cache_root,
        )
    ran, failures, artifacts = 0, [], []
    canons = {}
    for seed, profile in entries:
        if budget_s is not None and time.monotonic() - started > budget_s:
            break
        program = generate(seed, profile=profile)
        result = differential(program, matrix=matrix)
        fault_result = None
        if result.ok and program.fault is not None:
            fault_result = check_faulty(program)
        ran += 1
        if result.reference is not None:
            canons[f"{profile}-{seed}"] = result.canons[result.reference]
        failed = not result.ok or (fault_result is not None and not fault_result.ok)
        line = result.summary() if not (fault_result and not fault_result.ok) \
            else fault_result.summary() + " [fault-composed]"
        if out is not None:
            print(f"[{ran}/{len(entries)}] {profile}: {line}", file=out)
        if not failed:
            continue
        failures.append((seed, profile, line))
        if artifacts_dir is not None:
            failed_fault = fault_result is not None and not fault_result.ok
            small = _shrink_failure(program, matrix, failed_fault, shrink_budget)
            artifacts += write_artifacts(
                small, artifacts_dir, label=f"repro_{profile}_seed{seed}"
            )
    return _summarize(entries, started, ran, failures, artifacts, canons, out)


def _run_corpus_engine(
    entries, started, budget_s, artifacts_dir, out, matrix,
    shrink_budget, workers, use_cache, cache_root,
):
    from repro.parallel import ResultCache, run_cells
    from repro.parallel.engine import SKIPPED

    cache = ResultCache(cache_root) if use_cache else False
    cells = [
        {"kind": "fuzz_entry", "seed": seed, "profile": profile,
         "matrix": None if matrix is None else [list(p) for p in matrix]}
        for seed, profile in entries
    ]
    report = run_cells(cells, workers=workers, cache=cache, budget_s=budget_s)
    ran, failures, artifacts = 0, [], []
    canons = {}
    for (seed, profile), res in zip(entries, report.results):
        if res is SKIPPED:
            continue
        ran += 1
        if res["canon"] is not None:
            canons[f"{profile}-{seed}"] = res["canon"]
        failed_fault = res["fault_checked"] and not res["fault_ok"]
        failed = not res["ok"] or failed_fault
        line = res["summary"] if not failed_fault \
            else res["fault_summary"] + " [fault-composed]"
        if out is not None:
            print(f"[{ran}/{len(entries)}] {profile}: {line}", file=out)
        if not failed:
            continue
        failures.append((seed, profile, line))
        if artifacts_dir is not None:
            program = generate(seed, profile=profile)
            small = _shrink_failure(program, matrix, failed_fault, shrink_budget)
            artifacts += write_artifacts(
                small, artifacts_dir, label=f"repro_{profile}_seed{seed}"
            )
    summary = _summarize(entries, started, ran, failures, artifacts, canons, out)
    summary["engine"] = {
        "workers": report.workers,
        "cached": report.cached,
        "executed": report.executed,
        "skipped": report.skipped,
        "shards": [s.to_dict() for s in report.shards],
    }
    return summary


def _summarize(entries, started, ran, failures, artifacts, canons, out) -> dict:
    summary = {
        "total": len(entries),
        "ran": ran,
        "passed": ran - len(failures),
        "failures": failures,
        "artifacts": artifacts,
        "canons": canons,
        "elapsed_s": round(time.monotonic() - started, 2),
        "truncated": ran < len(entries),
    }
    if out is not None:
        status = "FAIL" if failures else "OK"
        note = " (budget exhausted before full corpus)" if summary["truncated"] else ""
        print(
            f"corpus {status}: {summary['passed']}/{ran} passed "
            f"in {summary['elapsed_s']}s{note}",
            file=out,
        )
    return summary
