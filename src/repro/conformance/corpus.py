"""The pinned seed corpus run in CI (``repro fuzz --corpus ci``).

Every entry is a ``(seed, profile)`` pair; the corpus mixes pure
point-to-point, collective-heavy, mixed, and fault-composed programs.
The seeds are pinned so a CI run is fully reproducible — when a seed
fails, the shrunk repro artifacts say exactly why.  Policy: seeds are
append-only; a failing seed is a bug to fix, never a seed to delete
(see ``docs/TESTING.md``).
"""

from __future__ import annotations

import time
from typing import List, Optional, Sequence, Tuple

from repro.conformance.executor import check_faulty, differential
from repro.conformance.grammar import generate
from repro.conformance.shrink import shrink, write_artifacts

__all__ = ["CI_CORPUS", "run_corpus"]

#: the pinned CI corpus: (seed, profile) — 28 programs mixing
#: point-to-point, collectives, and fault-composed runs
CI_CORPUS: List[Tuple[int, str]] = [
    (1, "mixed"), (2, "mixed"), (3, "mixed"), (4, "mixed"), (5, "mixed"),
    (6, "mixed"), (7, "mixed"), (8, "mixed"),
    (11, "pt2pt"), (12, "pt2pt"), (13, "pt2pt"), (14, "pt2pt"),
    (15, "pt2pt"), (16, "pt2pt"), (17, "pt2pt"), (18, "pt2pt"),
    (21, "collective"), (22, "collective"), (23, "collective"),
    (24, "collective"), (25, "collective"), (26, "collective"),
    (27, "collective"), (28, "collective"),
    (31, "fault"), (32, "fault"), (33, "fault"), (34, "fault"),
]


def run_corpus(
    entries: Optional[Sequence[Tuple[int, str]]] = None,
    budget_s: Optional[float] = None,
    artifacts_dir: Optional[str] = None,
    out=None,
    matrix=None,
    shrink_budget: int = 120,
) -> dict:
    """Run the corpus; return a summary dict.

    Stops early (and says so) when ``budget_s`` wall-clock seconds run
    out — a budgeted run that found no failure reports how much of the
    corpus it actually covered rather than claiming full coverage.
    Failures are shrunk and written to ``artifacts_dir`` when given.
    """
    entries = CI_CORPUS if entries is None else list(entries)
    started = time.monotonic()
    ran, failures, artifacts = 0, [], []
    for seed, profile in entries:
        if budget_s is not None and time.monotonic() - started > budget_s:
            break
        program = generate(seed, profile=profile)
        result = differential(program, matrix=matrix)
        fault_result = None
        if result.ok and program.fault is not None:
            fault_result = check_faulty(program)
        ran += 1
        failed = not result.ok or (fault_result is not None and not fault_result.ok)
        line = result.summary() if not (fault_result and not fault_result.ok) \
            else fault_result.summary() + " [fault-composed]"
        if out is not None:
            print(f"[{ran}/{len(entries)}] {profile}: {line}", file=out)
        if not failed:
            continue
        failures.append((seed, profile, line))
        if artifacts_dir is not None:
            failing = result if not result.ok else fault_result

            def still_fails(candidate, _fault=(failing is fault_result)):
                if _fault:
                    return candidate.fault is not None and not check_faulty(candidate).ok
                return not differential(candidate, matrix=matrix).ok

            small = shrink(program, still_fails, max_evals=shrink_budget)
            artifacts += write_artifacts(
                small, artifacts_dir, label=f"repro_{profile}_seed{seed}"
            )
    summary = {
        "total": len(entries),
        "ran": ran,
        "passed": ran - len(failures),
        "failures": failures,
        "artifacts": artifacts,
        "elapsed_s": round(time.monotonic() - started, 2),
        "truncated": ran < len(entries),
    }
    if out is not None:
        status = "FAIL" if failures else "OK"
        note = " (budget exhausted before full corpus)" if summary["truncated"] else ""
        print(
            f"corpus {status}: {summary['passed']}/{ran} passed "
            f"in {summary['elapsed_s']}s{note}",
            file=out,
        )
    return summary
