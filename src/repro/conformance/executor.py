"""Differential execution: run a generated program on every device and
extract a device-independent *semantic trace*.

The trace records, per rank and in **program order** (never completion
order — waitany/waitsome completion indices are timing artifacts):

* every receive: resolved ``Status`` source/tag/byte-count plus a
  sha256 digest of the delivered payload;
* every probe: the probed source/tag/count;
* every collective: a digest of this rank's result.

Two runs agree iff their canonical JSON traces are byte-identical.
Latency differences between devices never enter the trace.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.conformance.grammar import (
    CollectiveRound,
    ExchangeRound,
    PingPongRound,
    Program,
    payload_array,
    payload_bytes,
)
from repro.errors import ConfigurationError
from repro.mpi import World
from repro.mpi.constants import ANY_SOURCE, ANY_TAG

__all__ = [
    "run_program",
    "canonical_trace",
    "differential",
    "check_faulty",
    "DifferentialResult",
    "FAULT_PLATFORMS",
]

#: platforms where lossy runs recover (RUDP/TCP retransmission); the
#: Meiko has no retransmit path, so fault-composed runs are cluster-only
FAULT_PLATFORMS = ("atm", "ethernet")

_NP_DTYPES = {"int": np.int32, "double": np.float64, "long": np.int64}


def _digest(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()[:16]


def _buf_digest(buf) -> str:
    if isinstance(buf, np.ndarray):
        return _digest(buf.tobytes())
    return _digest(bytes(buf))


# ------------------------------------------------------------ rank programs
def _recv_buffer(t):
    if t.dtype == "byte":
        return bytearray(t.nelems)
    return np.zeros(t.nelems, dtype=_NP_DTYPES[t.dtype])


def _complete(comm, strategy: str, reqs: List[Any]):
    """Complete *reqs* with the round's strategy; statuses align with
    the request list regardless of completion order."""
    if not reqs:
        return []
    statuses: List[Any] = [None] * len(reqs)
    if strategy == "ordered":
        for i, r in enumerate(reqs):
            statuses[i] = yield from comm.wait(r)
    elif strategy == "waitany":
        remaining = list(range(len(reqs)))
        while remaining:
            idx, st = yield from comm.waitany([reqs[i] for i in remaining])
            statuses[remaining[idx]] = st
            del remaining[idx]
    elif strategy == "waitsome":
        remaining = list(range(len(reqs)))
        while remaining:
            idxs, sts = yield from comm.waitsome([reqs[i] for i in remaining])
            done = set(idxs)
            for j, st in zip(idxs, sts):
                statuses[remaining[j]] = st
            remaining = [r for i, r in enumerate(remaining) if i not in done]
    elif strategy == "test_then_waitall":
        pending = []
        for i, r in enumerate(reqs):
            done, st = yield from comm.test(r)
            if done:
                statuses[i] = st
            else:
                pending.append(i)
        if pending:
            sts = yield from comm.waitall([reqs[i] for i in pending])
            for i, st in zip(pending, sts):
                statuses[i] = st
    else:  # waitall (the default)
        statuses = yield from comm.waitall(reqs)
    return statuses


def _exec_exchange(comm, rnd: ExchangeRound, program: Program, rec: List[dict]):
    me = comm.rank
    incoming = [t for t in rnd.transfers if t.dst == me]
    outgoing = [t for t in rnd.transfers if t.src == me]
    results: Dict[Tuple[int, int], dict] = {}

    # phase 1: post every receive without blocking
    recv_items: List[Tuple[Any, int, Any, Any]] = []  # (transfer, rep, req, buf)
    persistent: List[Tuple[Any, Any, Any]] = []       # (transfer, handle, buf)
    for t in incoming:
        source = ANY_SOURCE if t.any_source else t.src
        tag = ANY_TAG if t.any_tag else t.tag
        if t.persistent_recv:
            buf = _recv_buffer(t)
            handle = comm.recv_init(buf, source=source, tag=tag)
            yield from comm.start(handle)
            recv_items.append((t, 0, handle, buf))
            persistent.append((t, handle, buf))
        else:
            for rep in range(t.reps):
                if t.alloc_recv:
                    req = yield from comm.irecv(source=source, tag=tag)
                    recv_items.append((t, rep, req, None))
                else:
                    buf = _recv_buffer(t)
                    req = yield from comm.irecv(source=source, tag=tag, buf=buf)
                    recv_items.append((t, rep, req, buf))

    # phase 2: sends (blocking ones are safe — all receivers reach
    # their phase 1 without blocking)
    send_reqs: List[Any] = []
    for t in outgoing:
        if t.send_kind in ("isend", "issend"):
            for rep in range(t.reps):
                data = _send_payload(program, t, rep)
                if t.send_kind == "isend":
                    req = yield from comm.isend(data, t.dst, t.tag)
                else:
                    req = yield from comm.issend(data, t.dst, t.tag)
                send_reqs.append(req)
        elif t.send_kind == "persistent":
            arr = _send_payload(program, t, 0)
            handle = comm.send_init(arr, t.dst, t.tag)
            for rep in range(t.reps):
                if rep:
                    arr[:] = _send_payload(program, t, rep)
                yield from comm.start(handle)
                yield from comm.wait(handle)
        else:  # send / ssend / bsend
            fn = getattr(comm, t.send_kind)
            for rep in range(t.reps):
                yield from fn(_send_payload(program, t, rep), t.dst, t.tag)

    # phase 3: complete everything with this rank's strategy
    reqs = [item[2] for item in recv_items] + send_reqs
    strategy = rnd.strategies.get(me, "waitall")
    statuses = yield from _complete(comm, strategy, reqs)
    for (t, rep, req, buf), st in zip(recv_items, statuses):
        data = req.data if buf is None else buf
        results[(t.tid, rep)] = {
            "e": "recv", "tid": t.tid, "rep": rep, "src": st.source,
            "tag": st.tag, "n": st.count_bytes, "d": _buf_digest(data),
        }
    # remaining repetitions of persistent receives: restart/wait chains
    # (each sender's matching rep is already in flight or blocked in a
    # blocking send, so the chain always progresses)
    for t, handle, buf in persistent:
        for rep in range(1, t.reps):
            yield from comm.start(handle)
            st = yield from comm.wait(handle)
            results[(t.tid, rep)] = {
                "e": "recv", "tid": t.tid, "rep": rep, "src": st.source,
                "tag": st.tag, "n": st.count_bytes, "d": _buf_digest(buf),
            }
    for key in sorted(results):
        rec.append(results[key])


def _send_payload(program: Program, t, rep: int):
    if t.dtype == "byte":
        return payload_bytes(program.seed, t.tid, rep, t.nelems)
    return payload_array(program.seed, t.tid, rep, t.dtype, t.nelems)


def _exec_pingpong(comm, rnd: PingPongRound, program: Program, rec: List[dict]):
    if comm.rank == rnd.src:
        send = getattr(comm, rnd.send_kind)
        yield from send(
            payload_bytes(program.seed, rnd.tid, 0, rnd.nbytes), rnd.dst, rnd.tag
        )
        data, st = yield from comm.recv(source=rnd.dst, tag=rnd.reply_tag)
        rec.append({
            "e": "recv", "tid": rnd.tid, "rep": 1, "src": st.source,
            "tag": st.tag, "n": st.count_bytes, "d": _buf_digest(data),
        })
    elif comm.rank == rnd.dst:
        if rnd.use_probe:
            tag = ANY_TAG if rnd.probe_any_tag else rnd.tag
            st = yield from comm.probe(source=rnd.src, tag=tag)
            rec.append({
                "e": "probe", "tid": rnd.tid, "src": st.source,
                "tag": st.tag, "n": st.count_bytes,
            })
        data, st = yield from comm.recv(source=rnd.src, tag=rnd.tag)
        rec.append({
            "e": "recv", "tid": rnd.tid, "rep": 0, "src": st.source,
            "tag": st.tag, "n": st.count_bytes, "d": _buf_digest(data),
        })
        yield from getattr(comm, rnd.send_kind)(
            payload_bytes(program.seed, rnd.tid, 1, rnd.reply_nbytes),
            rnd.src, rnd.reply_tag,
        )


def _exec_collective(comm, rnd: CollectiveRound, program: Program, rec: List[dict]):
    from repro.mpi.collectives import MAX, MIN, PROD, SUM

    ops = {"sum": SUM, "max": MAX, "min": MIN, "prod": PROD}
    seed, cid, rank, size = program.seed, rnd.cid, comm.rank, comm.size
    style = getattr(rnd, "style", None)  # forced algorithm ("algos" profile)
    ev = {"e": "coll", "cid": cid, "op": rnd.op}
    if rnd.op == "barrier":
        yield from comm.barrier(style=style)
    elif rnd.op == "bcast":
        if rank == rnd.root:
            buf = payload_array(seed, cid, 0, rnd.dtype, rnd.nelems)
        else:
            buf = np.zeros(rnd.nelems, dtype=_NP_DTYPES[rnd.dtype])
        yield from comm.bcast(buf, root=rnd.root, style=style)
        ev["d"] = _digest(buf.tobytes())
    elif rnd.op in ("reduce", "allreduce", "scan", "exscan", "reduce_scatter"):
        send = payload_array(seed, cid, rank, rnd.dtype, rnd.nelems)
        if rnd.op == "reduce":
            result = yield from comm.reduce(
                send, root=rnd.root, op=ops[rnd.redop], style=style
            )
        elif rnd.op == "allreduce":
            result = yield from comm.allreduce(send, op=ops[rnd.redop], style=style)
        elif rnd.op == "scan":
            result = yield from comm.scan(send, op=ops[rnd.redop])
        elif rnd.op == "exscan":
            result = yield from comm.exscan(send, op=ops[rnd.redop])
        else:
            result = yield from comm.reduce_scatter(send, op=ops[rnd.redop])
        ev["d"] = "-" if result is None else _digest(np.asarray(result).tobytes())
    elif rnd.op in ("gather", "allgather"):
        obj = payload_bytes(seed, cid, rank, rnd.nelems)
        if rnd.op == "gather":
            out = yield from comm.gather(obj, root=rnd.root, style=style)
        else:
            out = yield from comm.allgather(obj, style=style)
        ev["d"] = "-" if out is None else _digest(b"|".join(out))
    elif rnd.op == "scatter":
        chunks = None
        if rank == rnd.root:
            chunks = [
                payload_bytes(seed, cid, 1000 + r, rnd.nelems) for r in range(size)
            ]
        mine = yield from comm.scatter(chunks, root=rnd.root, style=style)
        ev["d"] = _digest(mine)
    elif rnd.op == "alltoall":
        objs = [
            payload_bytes(seed, cid, rank * size + dst, rnd.nelems)
            for dst in range(size)
        ]
        out = yield from comm.alltoall(objs)
        ev["d"] = _digest(b"|".join(out))
    else:  # pragma: no cover - validate() rejects unknown ops
        raise ConfigurationError(f"unknown collective op {rnd.op!r}")
    rec.append(ev)


def _exec_ft(comm, rnd, program: Program, rec: List[dict]):
    """One ULFM recovery, recorded timing-free.

    The victim (crashed at t=0 by the program's ft spec) contributes an
    empty trace.  Every survivor attempts a receive from the dead rank —
    which must fail with :class:`RankFailed`, or :class:`CommRevoked`
    when a faster peer already revoked the communicator (both prove the
    failure was delivered; which one arrives is a timing artifact, so
    the trace does not record it) — then revokes, acknowledges, shrinks,
    agrees, and runs a verification collective on the survivor
    communicator.
    """
    from repro.mpi.collectives import SUM
    from repro.mpi.exceptions import CommRevoked, RankFailed

    if comm.rank == rnd.victim:
        return  # crashed at t=0; never runs under FT
    try:
        yield from comm.recv(source=rnd.victim, tag=rnd.tag)
        rec.append({"e": "ft", "tid": rnd.tid, "recovered": False})
        return  # a delivery from a dead rank is itself the finding
    except (RankFailed, CommRevoked):
        pass
    comm.revoke()
    comm.failure_ack()
    acked = sorted(comm.get_acked().world_ranks)
    new = yield from comm.shrink()
    flag = True if rnd.flag_mode == "all" else (new.rank % 2 == 0)
    agreed = yield from new.agree(flag)
    survivors = list(new.group.world_ranks)
    ev = {
        "e": "ft", "tid": rnd.tid, "recovered": True, "acked": acked,
        "survivors": survivors, "rank": new.rank, "agreed": bool(agreed),
    }
    if rnd.verify == "allreduce":
        send = payload_array(program.seed, 5000 + rnd.tid, new.rank,
                             "long", rnd.nelems)
        result = yield from new.allreduce(send, op=SUM)
        ev["d"] = _digest(np.asarray(result).tobytes())
    else:
        obj = payload_bytes(program.seed, 5000 + rnd.tid, new.rank, rnd.nelems)
        out = yield from new.allgather(obj)
        ev["d"] = _digest(b"|".join(out))
    rec.append(ev)


def _rank_main(comm, program: Program, rec: List[dict]):
    bsend_bytes = sum(
        t.nbytes() * t.reps
        for rnd in program.rounds if rnd.kind == "exchange"
        for t in rnd.transfers
        if t.src == comm.rank and t.send_kind == "bsend"
    )
    if bsend_bytes or any(
        t.send_kind == "bsend" and t.src == comm.rank
        for rnd in program.rounds if rnd.kind == "exchange"
        for t in rnd.transfers
    ):
        comm.buffer_attach(bsend_bytes + 8192)
    for rnd in program.rounds:
        if rnd.kind == "exchange":
            yield from _exec_exchange(comm, rnd, program, rec)
        elif rnd.kind == "pingpong":
            yield from _exec_pingpong(comm, rnd, program, rec)
        elif rnd.kind == "ft":
            yield from _exec_ft(comm, rnd, program, rec)
        else:
            yield from _exec_collective(comm, rnd, program, rec)


# ------------------------------------------------------------------ running
def run_program(
    program: Program,
    platform: str,
    device: str,
    fault: bool = False,
    world_mutator: Optional[Callable[[World], None]] = None,
    limit: float = 2e9,
) -> dict:
    """Execute *program* on (platform, device); return its semantic trace.

    With ``fault=True`` the program's fault spec is applied (cluster
    platforms only — the Meiko has no retransmission path) with a
    retransmit-friendly kernel timer, exactly like the chaos harness.
    """
    faults = None
    kw: Dict[str, Any] = {}
    seed = 0
    if fault:
        if program.fault is None:
            raise ConfigurationError("program has no fault spec")
        if platform not in FAULT_PLATFORMS:
            raise ConfigurationError(
                f"fault-composed runs need a cluster platform, not {platform!r}"
            )
        from repro.faults import FaultPlan, PacketDuplication, PacketLoss
        from repro.net.kernel import KernelParams

        spec = program.fault
        rules = [PacketLoss(probability=spec["loss"])]
        if spec.get("dup"):
            rules.append(PacketDuplication(probability=spec["dup"]))
        faults = FaultPlan.of(*rules)
        kw["kernel_params"] = KernelParams().with_overrides(rto=8_000.0)
        seed = spec.get("seed", 0)
    if program.ft is not None:
        from repro.faults import FaultPlan, NodeCrash

        faults = FaultPlan.of(NodeCrash(
            node=program.ft["victim"], at=program.ft.get("at", 0.0)
        ))
        kw["ft"] = True
    world = World(
        program.nprocs, platform=platform, device=device, seed=seed,
        faults=faults, **kw,
    )
    if world_mutator is not None:
        world_mutator(world)
    recs: List[List[dict]] = [[] for _ in range(program.nprocs)]

    def main(comm):
        yield from _rank_main(comm, program, recs[comm.rank])

    world.run(main, limit=limit)
    return {"nprocs": program.nprocs, "seed": program.seed, "ranks": recs}


def canonical_trace(trace: dict) -> str:
    """Canonical JSON — byte-identical iff the semantics agree."""
    return json.dumps(trace, sort_keys=True, separators=(",", ":"))


# ------------------------------------------------------------- differential
def _strip_styles(program: Program) -> Optional[Program]:
    """A copy of *program* with every forced collective ``style``
    removed, or None when no round carries one.

    Algorithm styles must never change a collective's *result* — the
    fuzzer's payloads are exact-arithmetic, so a styled program and its
    stripped twin (running the device/selector defaults) must produce
    byte-identical semantic traces.
    """
    if not any(getattr(r, "style", None) for r in program.rounds):
        return None
    d = program.to_dict()
    for r in d["rounds"]:
        r.pop("style", None)
    return Program.from_dict(d)


@dataclass
class DifferentialResult:
    """Outcome of one program across the device matrix."""

    program: Program
    ok: bool
    reference: Optional[str] = None            #: "platform-device" key
    canons: Dict[str, str] = field(default_factory=dict)
    errors: Dict[str, str] = field(default_factory=dict)
    mismatched: List[str] = field(default_factory=list)

    def summary(self) -> str:
        if self.ok:
            return f"seed {self.program.seed}: OK ({len(self.canons)} devices agree)"
        parts = []
        if self.mismatched:
            parts.append(f"mismatch on {', '.join(self.mismatched)}")
        for key, err in self.errors.items():
            parts.append(f"{key}: {err}")
        return f"seed {self.program.seed}: FAIL ({'; '.join(parts)})"


def differential(
    program: Program,
    matrix: Optional[Sequence[Tuple[str, str]]] = None,
    mutators: Optional[Dict[str, Callable[[World], None]]] = None,
    workers: Optional[int] = None,
    use_cache: bool = False,
) -> DifferentialResult:
    """Run *program* on every (platform, device) of *matrix* and demand
    byte-identical semantic traces.

    ``mutators`` maps "platform-device" keys to world mutation hooks —
    used by the mutation tests to verify a deliberately broken device
    is caught.  ``workers`` > 1 fans the matrix cells out over the
    parallel engine (``repro.parallel``) — each cell is an independent
    deterministic simulation, so the merged result is identical to the
    serial loop; mutators are in-process callables and force the serial
    path.  ``use_cache`` additionally consults the content-addressed
    result cache (parallel path only).
    """
    from repro.platforms import device_key

    if matrix is None:
        from repro.platforms import DEVICE_MATRIX

        matrix = DEVICE_MATRIX
    canons: Dict[str, str] = {}
    errors: Dict[str, str] = {}
    if workers and workers > 1 and not mutators:
        from repro.parallel import run_cells

        cells = [
            {"kind": "conformance_cell", "program": program.to_dict(),
             "platform": platform, "device": device}
            for platform, device in matrix
        ]
        report = run_cells(cells, workers=workers, cache=use_cache)
        for (platform, device), res in zip(matrix, report.results):
            key = device_key(platform, device)
            if "error" in res:
                errors[key] = res["error"]
            else:
                canons[key] = res["canon"]
    else:
        for platform, device in matrix:
            key = device_key(platform, device)
            mut = (mutators or {}).get(key)
            try:
                trace = run_program(program, platform, device, world_mutator=mut)
                canons[key] = canonical_trace(trace)
            except Exception as exc:  # noqa: BLE001 - any failure is a finding
                errors[key] = f"{type(exc).__name__}: {exc}"
    reference = next(iter(canons), None)
    mismatched = [
        key for key, canon in canons.items()
        if reference is not None and canon != canons[reference]
    ]
    # styled programs additionally diff against a style-stripped run on
    # the reference cell: forcing an algorithm must not change semantics
    stripped = _strip_styles(program)
    if stripped is not None and reference is not None and not mismatched:
        platform, device = matrix[0]
        try:
            naive = canonical_trace(run_program(stripped, platform, device))
        except Exception as exc:  # noqa: BLE001 - any failure is a finding
            errors["styled-reference"] = f"{type(exc).__name__}: {exc}"
        else:
            if naive != canons[reference]:
                mismatched.append("styled-reference")
    ok = not errors and not mismatched and bool(canons)
    return DifferentialResult(
        program=program, ok=ok, reference=reference, canons=canons,
        errors=errors, mismatched=mismatched,
    )


def check_faulty(
    program: Program,
    matrix: Optional[Sequence[Tuple[str, str]]] = None,
) -> DifferentialResult:
    """Fault-composed mode: a lossy run must converge to the fault-free
    semantic trace or raise the documented ``CommError`` /
    ``RetransmitExhausted``.  Restricted to the cluster fabrics, where
    RUDP/TCP recovery is deterministic."""
    from repro.errors import RetransmitExhausted
    from repro.mpi.exceptions import CommError

    if matrix is None:
        from repro.platforms import PLATFORM_DEVICES

        matrix = [
            (p, d) for p in FAULT_PLATFORMS for d in PLATFORM_DEVICES[p]
        ]
    from repro.platforms import device_key

    canons: Dict[str, str] = {}
    errors: Dict[str, str] = {}
    mismatched: List[str] = []
    reference = None
    for platform, device in matrix:
        key = device_key(platform, device)
        clean = canonical_trace(run_program(program, platform, device))
        if reference is None:
            reference = key
        canons[key] = clean
        try:
            lossy = canonical_trace(
                run_program(program, platform, device, fault=True)
            )
        except (CommError, RetransmitExhausted):
            continue  # the documented failure mode — acceptable
        except Exception as exc:  # noqa: BLE001 - undocumented escape
            errors[key] = f"{type(exc).__name__}: {exc}"
            continue
        if lossy != clean:
            mismatched.append(key)
    ok = not errors and not mismatched and bool(canons)
    return DifferentialResult(
        program=program, ok=ok, reference=reference, canons=canons,
        errors=errors, mismatched=mismatched,
    )
