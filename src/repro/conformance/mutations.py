"""Deliberately broken devices — mutation test doubles.

The fuzzer's value proposition is that it *catches* semantic bugs, so
these mutants implement real MPI violations for the tests to verify
against: a differential run with one mutated device must fail, and the
shrinker must reduce the failure to a tiny repro.

The mutants subvert :class:`repro.mpi.matching.MatchQueues`, the
matching engine shared by the low-latency and cluster devices (the
MPICH device matches Elan-side and is not mutable this way).
"""

from __future__ import annotations

from repro.mpi.constants import ANY_TAG, INTERNAL_TAG_BASE
from repro.mpi.matching import MatchQueues

__all__ = ["OvertakingMatchQueues", "mutate_overtaking"]


class OvertakingMatchQueues(MatchQueues):
    """Violates non-overtaking: an arriving envelope matches the
    *newest* compatible posted receive instead of the oldest, so two
    same-(source, tag) messages land in swapped receives."""

    def arrive(self, arrival):
        env = arrival.envelope
        newest = None
        for e in self._posted_fifo:
            if not e.alive:
                continue
            req = e.item
            if env.tag >= INTERNAL_TAG_BASE and req.tag == ANY_TAG:
                continue  # keep collective traffic correctly matched
            if self._request_accepts(req, env):
                newest = e
        if newest is None:
            return super().arrive(arrival)
        self.total_arrivals += 1
        req = newest.item
        newest.alive = False
        self._posted_live -= 1
        del self._posted_by_req[id(req)]
        return req, 1


def mutate_overtaking(world) -> None:
    """World mutator: swap every endpoint's match queues for the
    overtaking mutant (endpoints without a main-processor queue — the
    MPICH device — are left alone)."""
    for ep in world.endpoints:
        queues = getattr(ep, "queues", None)
        if isinstance(queues, MatchQueues):
            queues.__class__ = OvertakingMatchQueues


MUTATORS: dict = {
    "overtaking": mutate_overtaking,
}
