"""Differential MPI conformance fuzzing.

One seeded random MPI program, executed on every device the paper
implements; the semantics (delivered payloads, statuses, matching
order, collective results) must be byte-identical everywhere — only
the latencies may differ.  See ``docs/TESTING.md``.

* :mod:`repro.conformance.grammar` — program IR + seeded generator;
* :mod:`repro.conformance.executor` — interpreter, semantic traces,
  differential and fault-composed checks;
* :mod:`repro.conformance.shrink` — delta-debugging minimizer;
* :mod:`repro.conformance.corpus` — the pinned CI seed corpus;
* :mod:`repro.conformance.mutations` — deliberately broken devices
  (test doubles) that the fuzzer must catch.
"""

from repro.conformance.corpus import CI_CORPUS, run_corpus
from repro.conformance.executor import (
    DifferentialResult,
    canonical_trace,
    check_faulty,
    differential,
    run_program,
)
from repro.conformance.grammar import Program, generate
from repro.conformance.shrink import repro_script, shrink, write_artifacts

__all__ = [
    "Program",
    "generate",
    "run_program",
    "canonical_trace",
    "differential",
    "check_faulty",
    "DifferentialResult",
    "shrink",
    "repro_script",
    "write_artifacts",
    "CI_CORPUS",
    "run_corpus",
]
