"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``
    Platform/device inventory and calibrated endpoints.
``pingpong``
    MPI round-trip latency for one configuration and size sweep.
``bandwidth``
    One-way streaming bandwidth for one configuration.
``figure``
    Regenerate one of the paper's figures/tables (fig01..fig09, table1)
    as a table and an ASCII chart.
``app``
    Run one of the applications (linsolve, matmul, nbody, jacobi) and
    report time + verification.
``chaos``
    Sweep seeded packet loss over MPI workloads on the cluster fabrics
    and report recovery slowdown or the failure diagnostic per cell.
``phases``
    Trace a 2-rank ping-pong per message size and print the Table-1
    envelope/match/data phase breakdown from the event bus.
``fuzz``
    Differential MPI conformance fuzzer: generate a random program
    from a seed, run it on every device in the matrix, and assert all
    produce the identical semantic trace.  ``--corpus ci`` runs the
    pinned seed corpus; failures are shrunk to minimal repro scripts.
``sweep``
    Regenerate one or more paper figures through the parallel
    experiment engine — every sweep point is an independent cell
    fanned out over ``--workers`` processes and cached
    content-addressed under ``.repro-cache/``.

``pingpong``, ``app``, ``chaos`` and ``phases`` accept
``--trace FILE`` (+ ``--trace-format {chrome,jsonl}``) to export the
run's structured event trace — ``chrome`` loads in ``chrome://tracing``
or Perfetto.

``fuzz``, ``chaos`` and ``sweep`` accept ``--workers N`` to shard
their independent cells over N worker processes (merged output is
byte-identical to the serial run; engine statistics go to stderr) and
``--no-cache`` to bypass the result cache.  See ``docs/PERF.md``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.bench import figures, harness
from repro.bench.ascii_chart import ascii_chart
from repro.bench.tables import format_series, format_table
from repro.platforms import PLATFORM_DEVICES

__all__ = ["main", "build_parser"]

FIGURES = {
    "fig01": (figures.fig01_transfer_mechanisms, "bytes", False),
    "fig02": (figures.fig02_meiko_latency, "bytes", False),
    "fig03": (figures.fig03_meiko_bandwidth, "bytes", True),
    "fig04": (figures.fig04_atm_latency, "bytes", False),
    "fig05": (figures.fig05_tcp_latency, "bytes", False),
    "fig06": (figures.fig06_tcp_bandwidth, "bytes", True),
    "fig07": (figures.fig07_linsolve, "procs", False),
    "fig08": (figures.fig08_meiko_nbody, "procs", False),
    "fig09": (figures.fig09_tcp_nbody, "procs", False),
    "fig10": (figures.fig10_modern_crossover, "bytes", False),
}


def _add_trace_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--trace", default=None, metavar="FILE",
                   help="write the run's structured event trace to FILE")
    p.add_argument("--trace-format", default="chrome", choices=["chrome", "jsonl"],
                   help="chrome (chrome://tracing / Perfetto JSON) or jsonl")


def _add_parallel_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--workers", type=int, default=None, metavar="N",
                   help="shard independent cells over N worker processes")
    p.add_argument("--no-cache", action="store_true",
                   help="bypass the content-addressed result cache")


def _make_bus(args):
    """An EventBus if ``--trace`` was given, else None (tracing off)."""
    if getattr(args, "trace", None) is None:
        return None
    from repro.obs import EventBus

    return EventBus()


def _write_trace(bus, args, out) -> None:
    if bus is None:
        return
    from repro.obs import write_trace

    write_trace(bus, args.trace, args.trace_format)
    print(f"trace: {len(bus)} events -> {args.trace} ({args.trace_format})", file=out)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Low Latency MPI for Meiko CS/2 and ATM Clusters'",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("info", help="platform/device inventory")

    pp = sub.add_parser("pingpong", help="MPI round-trip latency sweep")
    pp.add_argument("--platform", default="meiko", choices=sorted(PLATFORM_DEVICES))
    pp.add_argument("--device", default=None)
    pp.add_argument("--sizes", default="1,64,256,1024",
                    help="comma-separated message sizes in bytes")
    _add_trace_args(pp)

    bw = sub.add_parser("bandwidth", help="one-way streaming bandwidth")
    bw.add_argument("--platform", default="meiko", choices=sorted(PLATFORM_DEVICES))
    bw.add_argument("--device", default=None)
    bw.add_argument("--sizes", default="4096,65536,1048576")

    fig = sub.add_parser("figure", help="regenerate a paper figure/table")
    fig.add_argument("name", choices=sorted(FIGURES) + ["table1"])
    fig.add_argument("--chart", action="store_true", help="also render an ASCII chart")

    app = sub.add_parser("app", help="run an application")
    app.add_argument("name", choices=["linsolve", "matmul", "nbody", "jacobi"])
    app.add_argument("--platform", default="meiko", choices=sorted(PLATFORM_DEVICES))
    app.add_argument("--device", default=None)
    app.add_argument("--nprocs", type=int, default=4)
    app.add_argument("--size", type=int, default=None,
                     help="problem size (N / particles / grid rows)")
    _add_trace_args(app)

    ch = sub.add_parser("chaos", help="fault-injection sweep over MPI workloads")
    ch.add_argument("--platforms", default="ethernet,atm",
                    help="comma-separated cluster fabrics to sweep")
    ch.add_argument("--losses", default="0,0.01,0.05,0.1",
                    help="comma-separated packet-loss probabilities")
    ch.add_argument("--workloads", default="pingpong,nbody",
                    help="comma-separated workloads (pingpong, nbody)")
    ch.add_argument("--repeats", type=int, default=20,
                    help="ping-pong round trips per cell")
    ch.add_argument("--seed", type=int, default=1)
    ch.add_argument("--soak", action="store_true",
                    help="run the ULFM recovery soak instead of the loss "
                         "sweep: a pinned mid-run NodeCrash driven through "
                         "detect/revoke/shrink/agree + checkpoint restart "
                         "on every platform/device cell")
    ch.add_argument("--cells", default="all", metavar="CELLS",
                    help="soak mode: comma-separated platform-device cells "
                         "(default: the full device matrix)")
    ch.add_argument("--crash-at", type=float, default=None,
                    help="soak mode: simulated us at which the victim dies "
                         "(default: the platform's pinned schedule, "
                         "repro.bench.chaos.SOAK_CRASH_AT)")
    ch.add_argument("--victim", type=int, default=3,
                    help="soak mode: world rank that crashes")
    ch.add_argument("--nprocs", type=int, default=8,
                    help="soak mode: ranks in the survivable workload")
    ch.add_argument("--soak-repeat", type=int, default=2,
                    help="soak mode: seeded runs per cell whose recovery "
                         "traces must be byte-identical")
    _add_trace_args(ch)
    _add_parallel_args(ch)

    sw = sub.add_parser(
        "sweep", help="figure sweeps through the parallel experiment engine"
    )
    sw.add_argument("names", nargs="*", metavar="FIG",
                    help=f"figures to regenerate, from {', '.join(sorted(FIGURES))} "
                         "(default: fig02 fig05)")
    sw.add_argument("--chart", action="store_true", help="also render ASCII charts")
    _add_parallel_args(sw)

    ph = sub.add_parser(
        "phases", help="Table-1 phase breakdown of a traced ping-pong"
    )
    ph.add_argument("--platform", default="ethernet", choices=sorted(PLATFORM_DEVICES))
    ph.add_argument("--device", default=None)
    ph.add_argument("--sizes", default="1,16384",
                    help="comma-separated message sizes in bytes")
    _add_trace_args(ph)

    pf = sub.add_parser("perf", help="simulator-kernel performance workloads")
    pf.add_argument("--workload", default="solver",
                    help="kernel_perf workload name, or 'all' (default: solver)")
    pf.add_argument("--quick", action="store_true", help="reduced problem sizes")
    pf.add_argument("--repeats", type=int, default=3, help="best-of repetitions")
    pf.add_argument("--profile", action="store_true",
                    help="run under cProfile and print the hottest functions")
    pf.add_argument("--top", type=int, default=25,
                    help="rows of profile output (with --profile)")
    pf.add_argument("--profile-out", default=None, metavar="PATH",
                    help="also dump raw cProfile stats to PATH (with --profile)")

    fz = sub.add_parser("fuzz", help="differential MPI conformance fuzzer")
    fz.add_argument("--seed", type=int, default=None,
                    help="generate and check one program from this seed")
    fz.add_argument("--seeds", default=None,
                    help="comma-separated list of seeds to check")
    fz.add_argument("--profile", default="mixed",
                    choices=["mixed", "pt2pt", "collective", "algos",
                             "fault", "ft"],
                    help="generator op-mix profile (default: mixed); "
                         "'algos' forces a collective-algorithm style per "
                         "round; 'ft' generates ULFM crash-recovery programs")
    fz.add_argument("--nprocs", type=int, default=None,
                    help="force the rank count (default: seed-derived)")
    fz.add_argument("--corpus", default=None, choices=["ci"],
                    help="run the pinned seed corpus instead of --seed(s)")
    fz.add_argument("--budget", default=None, metavar="DURATION",
                    help="wall-clock budget, e.g. 60s or 5m (corpus mode)")
    fz.add_argument("--artifacts", default=None, metavar="DIR",
                    help="write shrunk repro scripts for failures to DIR")
    fz.add_argument("--dump-trace", action="store_true",
                    help="print the canonical reference trace per seed")
    _add_parallel_args(fz)
    return parser


def _parse_budget(text: Optional[str]) -> Optional[float]:
    if text is None:
        return None
    text = text.strip().lower()
    scale = 1.0
    if text.endswith("ms"):
        scale, text = 1e-3, text[:-2]
    elif text.endswith("s"):
        scale, text = 1.0, text[:-1]
    elif text.endswith("m"):
        scale, text = 60.0, text[:-1]
    return float(text) * scale


def _parse_sizes(text: str) -> List[int]:
    return [int(s) for s in text.split(",") if s.strip()]


def cmd_info(args, out) -> int:
    rows = []
    for platform, devices in PLATFORM_DEVICES.items():
        for device in devices:
            rtt = harness.mpi_pingpong_rtt(platform, device, 1)
            rows.append([platform, device, rtt])
    print(format_table(
        ["platform", "device", "1B RTT (us)"], rows,
        title="Simulated platforms (paper: meiko 104/210; clusters 925/1065 + MPI overheads)",
    ), file=out)
    return 0


def cmd_pingpong(args, out) -> int:
    sizes = _parse_sizes(args.sizes)
    device = args.device or PLATFORM_DEVICES[args.platform][0]
    bus = _make_bus(args)
    rows = []
    for n in sizes:
        if bus is not None:
            bus.set_run(f"pingpong/{args.platform}/{device}/{n}B")
        rows.append([n, harness.mpi_pingpong_rtt(args.platform, device, n, obs=bus)])
    print(format_table(
        ["bytes", "RTT (us)"], rows,
        title=f"MPI ping-pong on {args.platform}/{device}",
    ), file=out)
    _write_trace(bus, args, out)
    return 0


def cmd_bandwidth(args, out) -> int:
    sizes = _parse_sizes(args.sizes)
    device = args.device or PLATFORM_DEVICES[args.platform][0]
    rows = [
        [n, harness.mpi_bandwidth(args.platform, device, n)] for n in sizes
    ]
    print(format_table(
        ["bytes", "MB/s"], rows,
        title=f"MPI bandwidth on {args.platform}/{device}",
    ), file=out)
    return 0


def _print_figure(name, result, chart, out) -> None:
    _, xlabel, is_bandwidth = FIGURES[name]
    unit = "MB/s" if is_bandwidth else "us"
    print(format_series(result["series"], xlabel=xlabel,
                        title=f"{name} ({unit})"), file=out)
    cross = result.get("crossover")
    if isinstance(cross, dict):
        for cell, value in cross.items():
            if value:
                print(f"crossover[{cell}]: {value:.0f} B "
                      f"(paper-era: {result['paper'].get('crossover')} B)",
                      file=out)
    elif cross:
        print(f"crossover: {cross:.0f} B "
              f"(paper: {result['paper'].get('crossover')})", file=out)
    if chart:
        logx = xlabel == "bytes"
        print(file=out)
        print(ascii_chart(result["series"], logx=logx, title=name,
                          xlabel=xlabel, ylabel=unit), file=out)


def cmd_figure(args, out) -> int:
    if args.name == "table1":
        result = figures.table1_overheads()
        rows = [
            [key, result["rows"]["ATM"][key], result["paper"]["ATM"][key],
             result["rows"]["Ethernet"][key], result["paper"]["Ethernet"][key]]
            for key in result["paper"]["ATM"]
        ]
        print(format_table(
            ["row", "ATM", "paper", "Ethernet", "paper"], rows,
            title="Table 1: MPI round-trip overheads with TCP (us)",
        ), file=out)
        return 0
    fn, _, _ = FIGURES[args.name]
    _print_figure(args.name, fn(), args.chart, out)
    return 0


def cmd_sweep(args, out) -> int:
    from repro.parallel import run_cells

    names = args.names or ["fig02", "fig05"]
    unknown = [n for n in names if n not in FIGURES]
    if unknown:
        print(f"sweep: unknown figure(s) {', '.join(unknown)} "
              f"(choose from {', '.join(sorted(FIGURES))})", file=out)
        return 2
    reports = []

    def runner(cells):
        report = run_cells(cells, workers=args.workers,
                           cache=not args.no_cache)
        reports.append(report)
        return report.results

    for name in names:
        fn, _, _ = FIGURES[name]
        _print_figure(name, fn(runner=runner), args.chart, out)
    cached = sum(r.cached for r in reports)
    executed = sum(r.executed for r in reports)
    wall = sum(r.wall_s for r in reports)
    print(
        f"sweep: {len(names)} figure(s), workers={max(1, args.workers or 1)}, "
        f"cells={cached + executed} (cached={cached} executed={executed}), "
        f"wall={wall:.2f}s",
        file=sys.stderr,
    )
    return 0


def cmd_app(args, out) -> int:
    import numpy as np

    from repro import apps
    from repro.mpi import World

    device = args.device or PLATFORM_DEVICES[args.platform][0]
    flop_time = 0.1 if args.platform == "meiko" else 0.03
    bus = _make_bus(args)
    if bus is not None:
        bus.set_run(f"app/{args.name}/{args.platform}/{device}")

    if args.name == "linsolve":
        n = args.size or 64

        def main(comm):
            x, elapsed = yield from apps.linsolve(comm, n=n, seed=1, flop_time=flop_time)
            return x, elapsed

        results = World(args.nprocs, platform=args.platform, device=device, obs=bus).run(main)
        a, b = apps.generate_system(n, seed=1)
        ok = np.allclose(a @ results[0][0], b, atol=1e-8)
    elif args.name == "matmul":
        n = args.size or 32

        def main(comm):
            c, elapsed = yield from apps.matmul(comm, n=n, seed=1, flop_time=flop_time)
            return c, elapsed

        results = World(args.nprocs, platform=args.platform, device=device, obs=bus).run(main)
        rng = np.random.default_rng(1)
        ok = np.allclose(results[0][0], rng.standard_normal((n, n)) @ rng.standard_normal((n, n)))
    elif args.name == "nbody":
        n = args.size or (args.nprocs * 8)

        def main(comm):
            f, elapsed = yield from apps.nbody_ring(
                comm, nparticles=n, seed=1, flop_time=flop_time
            )
            return f, elapsed

        results = World(args.nprocs, platform=args.platform, device=device, obs=bus).run(main)
        ok = np.allclose(
            results[0][0],
            apps.reference_forces(apps.generate_particles(n, seed=1)),
            atol=1e-9,
        )
    else:  # jacobi
        n = args.size or 32

        def main(comm):
            g, elapsed = yield from apps.jacobi_heat(
                comm, nx=n, ny=n, iters=10, flop_time=flop_time
            )
            return g, elapsed

        results = World(args.nprocs, platform=args.platform, device=device, obs=bus).run(main)
        ok = np.allclose(
            results[0][0], apps.reference_jacobi(apps.initial_grid(n, n), 10)
        )

    elapsed = max(r[1] for r in results)
    print(
        f"{args.name} on {args.platform}/{device} x{args.nprocs}: "
        f"{elapsed:.1f} us simulated, verification {'OK' if ok else 'FAILED'}",
        file=out,
    )
    _write_trace(bus, args, out)
    return 0 if ok else 1


def cmd_chaos(args, out) -> int:
    from repro.bench.chaos import chaos_sweep, format_chaos

    if args.soak:
        return _cmd_chaos_soak(args, out)
    bus = _make_bus(args)
    rows = chaos_sweep(
        platforms=[p for p in args.platforms.split(",") if p],
        losses=[float(x) for x in args.losses.split(",") if x.strip()],
        workloads=[w for w in args.workloads.split(",") if w],
        repeats=args.repeats,
        seed=args.seed,
        obs=bus,
        workers=args.workers,
        use_cache=args.workers is not None and not args.no_cache,
    )
    print(format_chaos(rows), file=out)
    _write_trace(bus, args, out)
    return 0


def _cmd_chaos_soak(args, out) -> int:
    """``repro chaos --soak``: the ULFM recovery gate.

    Exits non-zero unless every cell completes with the correct answer
    AND its recovery event trace is byte-identical across the repeated
    seeded runs.
    """
    from repro.bench.chaos import format_soak, soak_sweep
    from repro.platforms import DEVICE_MATRIX, device_key

    if args.cells == "all":
        cells = list(DEVICE_MATRIX)
    else:
        wanted = {c.strip() for c in args.cells.split(",") if c.strip()}
        cells = [pd for pd in DEVICE_MATRIX if device_key(*pd) in wanted]
        unknown = wanted - {device_key(*pd) for pd in cells}
        if unknown:
            print(f"unknown cells: {', '.join(sorted(unknown))}", file=sys.stderr)
            return 2
    bus = _make_bus(args)
    rows = soak_sweep(
        cells=cells, nprocs=args.nprocs, victim=args.victim,
        crash_at=args.crash_at, seed=args.seed, repeat=args.soak_repeat,
        obs=bus, workers=args.workers,
    )
    print(format_soak(rows), file=out)
    _write_trace(bus, args, out)
    bad = [r for r in rows if r["outcome"] != "ok" or not r["deterministic"]]
    if bad:
        for r in bad:
            why = r["diagnostic"] or (
                "non-deterministic recovery trace" if not r["deterministic"]
                else r["outcome"])
            print(f"soak FAIL {r['cell']}: {why}", file=sys.stderr)
        return 1
    return 0


def cmd_phases(args, out) -> int:
    from repro.mpi import World
    from repro.obs import EventBus, PhaseLedger

    device = args.device or PLATFORM_DEVICES[args.platform][0]
    sizes = _parse_sizes(args.sizes)
    # one shared bus so --trace exports the whole sweep; the per-size
    # ledger scans only that run's slice
    bus = _make_bus(args) or EventBus()

    def exchange(nbytes):
        def main(comm):
            payload = bytes(nbytes)
            if comm.rank == 0:
                yield from comm.send(payload, dest=1, tag=1)
                yield from comm.recv(source=1, tag=2)
            else:
                data, _ = yield from comm.recv(source=0, tag=1)
                yield from comm.send(data, dest=0, tag=2)
            return comm.wtime()

        return main

    for nbytes in sizes:
        bus.set_run(f"phases/{args.platform}/{device}/{nbytes}B")
        start = len(bus.events)
        World(2, platform=args.platform, device=device, obs=bus).run(exchange(nbytes))
        run_bus = EventBus()
        run_bus.events = bus.events[start:]
        ledger = PhaseLedger.from_bus(run_bus)
        print(
            f"{nbytes}-byte ping-pong on {args.platform}/{device} "
            "(envelope/match/data us, paper Table 1):",
            file=out,
        )
        print(ledger.table(), file=out)
        print(file=out)
    if getattr(args, "trace", None) is not None:
        _write_trace(bus, args, out)
    return 0


def cmd_perf(args, out) -> int:
    """Run kernel-perf workloads, optionally under cProfile.

    ``--profile`` wraps the selected workload(s) in a profiler and
    prints the top cumulative-time hot spots — the same view used to
    drive the kernel's slot-dispatch and pooling optimisations.
    """
    from repro.bench.kernel_perf import WORKLOADS, run_workload

    if args.workload == "all":
        names = list(WORKLOADS)
    elif args.workload in WORKLOADS:
        names = [args.workload]
    else:
        print(f"unknown workload {args.workload!r}; choose from "
              f"{', '.join(WORKLOADS)} or 'all'", file=out)
        return 2
    if args.profile:
        import cProfile
        import pstats

        for name in names:  # warm imports so they don't dominate the profile
            WORKLOADS[name](True)
        profiler = cProfile.Profile()
        profiler.enable()
        for name in names:
            WORKLOADS[name](args.quick)
        profiler.disable()
        stats = pstats.Stats(profiler, stream=out).sort_stats("cumulative")
        print(f"profile: {', '.join(names)} "
              f"({'quick' if args.quick else 'full'} mode)", file=out)
        stats.print_stats(args.top)
        if args.profile_out:
            stats.dump_stats(args.profile_out)
            print(f"raw profile stats -> {args.profile_out}", file=out)
        return 0
    for name in names:
        rec = run_workload(name, quick=args.quick, repeats=args.repeats)
        print(f"{name:<12} {rec['events']:>8} events  {rec['wall_s']:>9.4f} s  "
              f"{rec['events_per_sec']:>9} ev/s", file=out)
    return 0


def cmd_fuzz(args, out) -> int:
    from repro.conformance.corpus import run_corpus
    from repro.conformance.executor import check_faulty, differential
    from repro.conformance.grammar import generate
    from repro.conformance.shrink import shrink, write_artifacts

    if args.corpus is not None:
        summary = run_corpus(
            budget_s=_parse_budget(args.budget),
            artifacts_dir=args.artifacts,
            out=out,
            workers=args.workers,
            use_cache=not args.no_cache,
        )
        engine = summary.get("engine")
        if engine is not None:
            shards = " ".join(
                f"shard{s['shard']}:{s['cells']}c/{s['wall_s']:.2f}s"
                for s in engine["shards"]
            )
            print(
                f"parallel: workers={engine['workers']} "
                f"cached={engine['cached']} executed={engine['executed']}"
                + (f" skipped={engine['skipped']}" if engine["skipped"] else "")
                + (f" [{shards}]" if shards else ""),
                file=sys.stderr,
            )
        return 1 if summary["failures"] else 0

    if args.seed is None and args.seeds is None:
        print("fuzz: one of --seed, --seeds or --corpus is required", file=out)
        return 2
    seeds = [args.seed] if args.seed is not None else []
    if args.seeds:
        seeds += [int(s) for s in args.seeds.split(",") if s.strip()]

    failed = 0
    for seed in seeds:
        program = generate(seed, nprocs=args.nprocs, profile=args.profile)
        result = differential(program, workers=args.workers,
                              use_cache=args.workers is not None and not args.no_cache)
        print(result.summary(), file=out)
        ok = result.ok
        if ok and program.fault is not None:
            fault_result = check_faulty(program)
            print(fault_result.summary() + " [fault-composed]", file=out)
            ok = fault_result.ok
        if args.dump_trace and result.reference is not None:
            print(result.canons[result.reference], file=out)
        if ok:
            continue
        failed += 1
        if args.artifacts is not None:
            small = shrink(program, lambda p: not differential(p).ok)
            for path in write_artifacts(small, args.artifacts,
                                        label=f"repro_seed{seed}"):
                print(f"shrunk repro: {path}", file=out)
    return 1 if failed else 0


def main(argv: Optional[List[str]] = None, out=None) -> int:
    out = out or sys.stdout
    args = build_parser().parse_args(argv)
    handler = {
        "info": cmd_info,
        "pingpong": cmd_pingpong,
        "bandwidth": cmd_bandwidth,
        "figure": cmd_figure,
        "app": cmd_app,
        "chaos": cmd_chaos,
        "phases": cmd_phases,
        "perf": cmd_perf,
        "fuzz": cmd_fuzz,
        "sweep": cmd_sweep,
    }[args.command]
    return handler(args, out)


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
