"""The CS/2 data network: a radix-4 fat tree with hardware broadcast.

The fabric has full bisection bandwidth, so the model charges
serialization at the injection point (the Elan or the DMA engine — see
:mod:`repro.hw.meiko.node`) and the fabric itself only adds routing
latency: a base cost plus a per-stage cost, where the number of stages
is how high in the fat tree the route must climb
(``ceil(log4(span))`` for nodes *src*, *dst* with span
``max(src,dst)//4**k`` logic below).

Hardware broadcast delivers one packet to every node of a contiguous
segment in a single traversal of the tree (the CS/2's broadcast uses
the top switch level), costing one full-height route plus
:attr:`MeikoParams.bcast_extra`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional

from repro.errors import HardwareError
from repro.hw.meiko.params import MeikoParams
from repro.sim import Simulator

__all__ = ["Packet", "MeikoNetwork", "PKT_TXN", "PKT_DMA"]

#: packet kinds: remote transactions are processed by the receiving Elan
#: (charged elan_rx); DMA packets are deposited by the DMA engine
#: (charged dma_rx).
PKT_TXN = "txn"
PKT_DMA = "dma"


@dataclass
class Packet:
    """A unit of delivery handed to the destination node's receive path."""

    kind: str
    src: int
    dst: int
    nbytes: int
    #: callable or generator-function invoked at the receiver (in Elan
    #: context) to apply the packet's effect
    deliver: Callable[[], Any]
    debug: Optional[str] = None


class MeikoNetwork:
    """Latency model of the fat-tree fabric."""

    def __init__(self, sim: Simulator, nnodes: int, params: MeikoParams, injector=None):
        if nnodes < 1:
            raise HardwareError(f"need at least one node, got {nnodes}")
        self.sim = sim
        self.nnodes = nnodes
        self.params = params
        #: structured fault injection (:class:`repro.faults.FaultInjector`);
        #: the CS/2 fabric is CRC-protected per link, so a corrupted packet
        #: behaves like a dropped one (counted separately below)
        self.injector = injector
        #: filled by MeikoMachine: node index -> MeikoNode
        self.nodes: List = []
        #: delivered packet count, by kind (for tests/diagnostics)
        self.delivered = {PKT_TXN: 0, PKT_DMA: 0}
        self.packets_dropped = 0
        self.packets_corrupted = 0

    # -- topology ---------------------------------------------------------
    def stages(self, src: int, dst: int) -> int:
        """Fat-tree stages a route climbs (0 for self, else >= 1)."""
        self._check(src)
        self._check(dst)
        if src == dst:
            return 0
        radix = self.params.fat_tree_radix
        span = radix
        stages = 1
        while src // span != dst // span:
            span *= radix
            stages += 1
        return stages

    def height(self) -> int:
        """Stages needed to span the whole machine (broadcast height)."""
        radix = self.params.fat_tree_radix
        span = radix
        h = 1
        while span < self.nnodes:
            span *= radix
            h += 1
        return h

    def route_latency(self, src: int, dst: int) -> float:
        """One-way fabric latency, excluding injection serialization."""
        p = self.params
        # up and down the tree: 2*stages - 1 switch traversals
        s = self.stages(src, dst)
        hops = max(1, 2 * s - 1)
        return p.net_base + p.net_per_stage * hops

    def _check(self, node: int) -> None:
        if not (0 <= node < self.nnodes):
            raise HardwareError(f"node {node} out of range [0, {self.nnodes})")

    # -- transmission -------------------------------------------------------
    def transmit(self, packet: Packet) -> None:
        """Launch *packet*; it arrives at the destination after the route
        latency and is queued on the destination's receive path."""
        self._check(packet.src)
        self._check(packet.dst)
        if self._faulted(packet):
            return
        delay = self.route_latency(packet.src, packet.dst)
        ev = self.sim.timeout(delay, packet)
        ev.add_callback(self._arrive)

    def _faulted(self, packet: Packet) -> bool:
        """Consult the fault injector; True if the packet is lost."""
        if self.injector is None:
            return False
        from repro.faults import CORRUPT, DROP

        action = self.injector.decide(packet.src, packet.dst, packet.nbytes)
        if action == DROP:
            self.packets_dropped += 1
            return True
        if action == CORRUPT:
            # per-link CRC: the fabric discards a damaged packet
            self.packets_corrupted += 1
            return True
        return False  # duplication never matches the meiko fabric

    def broadcast(self, src: int, make_packet: Callable[[int], Packet]) -> None:
        """Hardware broadcast: one traversal delivers to **all** nodes
        (including the sender — the CS/2 broadcast range covers the whole
        segment; senders typically ignore their own copy)."""
        self._check(src)
        p = self.params
        delay = p.net_base + p.net_per_stage * (2 * self.height() - 1) + p.bcast_extra
        for dst in range(self.nnodes):
            packet = make_packet(dst)
            if packet is None:
                continue
            if self._faulted(packet):
                continue
            ev = self.sim.timeout(delay, packet)
            ev.add_callback(self._arrive)

    def _arrive(self, event) -> None:
        packet: Packet = event.value
        self.delivered[packet.kind] += 1
        self.nodes[packet.dst].enqueue_rx(packet)
