"""Calibrated cost model for the Meiko CS/2.

All times are microseconds, all rates are microseconds per byte.  The
constants are calibrated (see ``tests/calibration``) so the model's
endpoints match the paper's measurements:

* tport 1-byte round trip          ≈ 52 µs   (paper, Figure 2)
* low-latency MPI 1-byte round trip ≈ 104 µs (paper, Figure 2)
* MPICH/tport 1-byte round trip    ≈ 210 µs  (paper, Figure 2)
* DMA peak bandwidth               ≈ 39 MB/s (paper, Figure 3)
* eager/rendezvous crossover       ≈ 180 B   (paper, Figure 1)

The split between SPARC, Elan and wire components follows the paper's
qualitative description (40 MHz SPARC ≫ 10 MHz Elan; remote
transactions are word-by-word and therefore an order of magnitude
slower per byte than DMA).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["MeikoParams"]


@dataclass(frozen=True)
class MeikoParams:
    """Timing constants of the simulated CS/2.  See module docstring."""

    # --- network fabric (fat tree, radix 4) -----------------------------
    #: per-packet base latency of entering/leaving the fabric
    net_base: float = 1.0
    #: added latency per fat-tree stage traversed
    net_per_stage: float = 0.4
    #: wire serialization per byte (≈50 MB/s links)
    wire_per_byte: float = 0.02
    #: fixed header bytes added to every packet on the wire
    packet_header: int = 16
    #: radix of the fat tree (stage count is log_radix of span)
    fat_tree_radix: int = 4

    # --- SPARC (40 MHz main processor) ----------------------------------
    #: entering a user-level communication call
    sparc_call: float = 1.5
    #: writing a command descriptor to the Elan command queue
    txn_issue: float = 2.0
    #: SPARC memcpy rate (bounce buffer -> user buffer)
    sparc_copy_per_byte: float = 0.015
    #: cost of one matching attempt on the SPARC
    sparc_match: float = 1.5
    #: SPARC noticing an Elan-side completion (event sync)
    sparc_elan_sync: float = 5.0
    #: waking from / checking a hardware event
    event_poll: float = 1.0

    # --- Elan (10 MHz communications co-processor) ----------------------
    #: dequeue + decode one command
    elan_cmd: float = 3.0
    #: per-packet receive processing
    elan_rx: float = 3.0
    #: one matching attempt on the Elan (tport)
    elan_match: float = 6.5
    #: Elan-side copy rate (tport buffer -> user buffer)
    elan_copy_per_byte: float = 0.02
    #: remote-transaction data cost per byte (word-by-word stores,
    #: ≈7 MB/s — this is what makes eager transfers expensive per byte)
    txn_per_byte: float = 0.14
    #: setting or forwarding a hardware event
    elan_event: float = 0.5

    # --- DMA engine ------------------------------------------------------
    #: issue cost of a DMA descriptor (SPARC->Elan->engine)
    dma_setup: float = 8.0
    #: streamed transfer rate (peak ≈39 MB/s, paper Figure 3)
    dma_per_byte: float = 1.0 / 39.0
    #: receiver-side cost of accepting a DMA (engine writes memory directly)
    dma_rx: float = 1.0

    # --- tport widget ----------------------------------------------------
    #: above this size the tport switches to rendezvous + DMA (where the
    #: word-by-word eager path crosses the DMA cost for the widget)
    tport_rdv_threshold: int = 200
    #: SPARC-side overhead of a tport call beyond the raw primitives
    tport_call_overhead: float = 1.3

    # --- hardware broadcast ----------------------------------------------
    #: extra fabric latency of a broadcast traversal vs a point-to-point
    bcast_extra: float = 2.0

    def with_overrides(self, **kw) -> "MeikoParams":
        """A copy with selected constants replaced (for sweeps/ablations)."""
        return replace(self, **kw)
