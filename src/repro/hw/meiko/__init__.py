"""Meiko CS/2 hardware model.

The CS/2 node pairs a 40 MHz SPARC with a 10 MHz Elan communications
co-processor on a fat-tree data network.  User-level communication uses
three hardware mechanisms, all modeled here:

* **remote transactions** (:mod:`repro.hw.meiko.txn`) — small word-by-word
  writes into a remote node's memory, low latency but low bandwidth;
* **DMA** (:mod:`repro.hw.meiko.dma`) — block transfers streamed by the
  Elan/DMA engine at ≈39 MB/s after a setup cost;
* **hardware broadcast** — a single network traversal delivering to every
  node of a segment.

On top of these, :mod:`repro.hw.meiko.tport` implements Meiko's tagged
message-passing widget (matching on the Elan), the base of the MPICH
comparison implementation in the paper.
"""

from repro.hw.meiko.params import MeikoParams
from repro.hw.meiko.events import HwEvent
from repro.hw.meiko.node import MeikoNode, Region
from repro.hw.meiko.machine import MeikoMachine
from repro.hw.meiko.tport import TPort, TPortHandle

__all__ = [
    "MeikoParams",
    "HwEvent",
    "MeikoNode",
    "Region",
    "MeikoMachine",
    "TPort",
    "TPortHandle",
]
