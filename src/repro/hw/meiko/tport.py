"""The Meiko *tport* widget: tagged message passing with Elan matching.

This is the communication layer the stock MPICH CS/2 port is built on
(and the baseline of the paper's Figure 2/3).  Semantics:

* a **send** carries a (sender, tag) pair and a byte payload;
* a **receive** posts a descriptor with a sender filter (exact id or
  ``ANY_SENDER``) and a tag/mask filter;
* **matching runs on the Elan co-processor** in arrival order, so the
  main SPARC processor is free, at the cost of slow (10 MHz) matching
  and SPARC↔Elan synchronization on completion;
* messages up to :attr:`MeikoParams.tport_rdv_threshold` travel eagerly
  with the envelope (buffered in the tport heap if unmatched); larger
  messages send an envelope and the data follows by DMA once matched
  (rendezvous), giving the widget its high large-message bandwidth.

Tags are arbitrary-width Python ints; ``mask`` selects the bits that
must agree — MPI layers use wide tags encoding (context, user tag).
Non-overtaking: matching scans queues in arrival/post order, and the
fabric delivers envelopes of a sender pair in issue order.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.errors import HardwareError
from repro.hw.meiko.events import HwEvent
from repro.hw.meiko.node import ElanCallCommand, MeikoNode, TxnCommand, DmaCommand

__all__ = ["ANY_SENDER", "ALL_BITS", "TPort", "TPortHandle"]

#: wildcard sender filter
ANY_SENDER = -1
#: default mask: all tag bits must match
ALL_BITS = -1  # Python ints: -1 is ...111 in two's complement, & keeps all bits

#: envelope bytes carried by every tport message on the wire
ENVELOPE_BYTES = 24


class TPortHandle:
    """Completion handle for a nonblocking tport operation."""

    __slots__ = ("kind", "done", "data", "src", "tag", "nbytes", "sender_filter", "mask")

    def __init__(self, kind: str, done: HwEvent):
        self.kind = kind
        self.done = done
        self.data: Optional[bytes] = None
        self.src: Optional[int] = None
        self.tag: Optional[int] = None
        self.nbytes = 0
        self.sender_filter = ANY_SENDER
        self.mask = ALL_BITS

    @property
    def complete(self) -> bool:
        """True once the operation has finished (event was set)."""
        return self.done.total_sets > 0


class _Arrival:
    """An envelope sitting in the unexpected queue (Elan side)."""

    __slots__ = ("src", "tag", "data", "nbytes", "request_data")

    def __init__(self, src, tag, nbytes, data=None, request_data=None):
        self.src = src
        self.tag = tag
        self.nbytes = nbytes
        #: payload, present for eager arrivals (buffered in the tport heap)
        self.data = data
        #: for rendezvous arrivals: callable(handle) that asks the sender
        #: to DMA straight into the matched receive
        self.request_data = request_data


class TPort:
    """Per-node endpoint of the machine-wide tport widget."""

    def __init__(self, node: MeikoNode, machine):
        self.node = node
        self.machine = machine
        self.params = node.params
        #: receive descriptors posted but unmatched (Elan state)
        self.posted: Deque[TPortHandle] = deque()
        #: arrivals not yet matched (Elan state)
        self.unexpected: Deque[_Arrival] = deque()
        #: rendezvous sends awaiting the receiver's data request,
        #: keyed by a per-send cookie
        self._pending_rdv = {}
        self._cookie = 0

    # -- public API (SPARC context, generators) ---------------------------
    def isend(self, dst: int, tag: int, data: bytes) -> TPortHandle:
        """Nonblocking tagged send; handle completes when the payload has
        left the user buffer.  Constant SPARC cost — the Elan does the rest.
        """
        self._check_dst(dst)
        data = bytes(data)
        handle = TPortHandle("send", self.node.event("tsend"))
        handle.nbytes = len(data)
        p = self.params
        if len(data) <= p.tport_rdv_threshold:
            self.node.issue(
                TxnCommand(
                    dst,
                    ENVELOPE_BYTES + len(data),
                    self._make_eager_deliver(dst, tag, data),
                    local_done=handle.done,
                    debug=f"tport-eager tag={tag}",
                )
            )
        else:
            cookie = self._cookie = self._cookie + 1
            self._pending_rdv[cookie] = (dst, data, handle)
            self.node.issue(
                TxnCommand(
                    dst,
                    ENVELOPE_BYTES,
                    self._make_rdv_envelope_deliver(dst, tag, len(data), cookie),
                    debug=f"tport-rdv-env tag={tag}",
                )
            )
        return handle

    def tsend(self, dst: int, tag: int, data: bytes):
        """Blocking tagged send (generator)."""
        yield from self.node.cpu.execute(self.params.sparc_call + self.params.tport_call_overhead)
        yield from self.node.cpu.execute(self.params.txn_issue)
        handle = self.isend(dst, tag, data)
        yield from self.twait(handle)

    def irecv(
        self, tag: int, sender: int = ANY_SENDER, mask: int = ALL_BITS
    ) -> TPortHandle:
        """Nonblocking tagged receive: posts a descriptor to the Elan."""
        handle = TPortHandle("recv", self.node.event("trecv"))
        handle.sender_filter = sender
        handle.tag = tag
        handle.mask = mask
        self.node.issue(ElanCallCommand(lambda: self._elan_post(handle), debug="tport-post"))
        return handle

    def trecv(self, tag: int, sender: int = ANY_SENDER, mask: int = ALL_BITS):
        """Blocking tagged receive (generator); returns (data, src, tag)."""
        yield from self.node.cpu.execute(
            self.params.sparc_call + self.params.tport_call_overhead + self.params.txn_issue
        )
        handle = self.irecv(tag, sender, mask)
        yield from self.twait(handle)
        return handle.data, handle.src, handle.tag

    def twait(self, handle: TPortHandle):
        """Wait for a handle; charges the SPARC↔Elan completion sync."""
        yield handle.done.wait1()
        yield from self.node.cpu.execute(self.params.sparc_elan_sync)

    def tcancel(self, handle: TPortHandle):
        """Generator -> bool: withdraw a posted, unmatched receive
        descriptor (asks the Elan; True if it was still posted)."""
        yield from self.node.cpu.execute(self.params.sparc_call + self.params.txn_issue)
        holder = {}
        done = self.node.event("tcancel")

        def scan():
            try:
                self.posted.remove(handle)
                holder["ok"] = True
            except ValueError:
                holder["ok"] = False
            done.set()

        self.node.issue(ElanCallCommand(scan, debug="tport-cancel"))
        yield done.wait1()
        yield from self.node.cpu.execute(self.params.sparc_elan_sync)
        return holder["ok"]

    # -- Elan-side machinery ------------------------------------------------
    def _check_dst(self, dst: int) -> None:
        if not (0 <= dst < self.machine.nnodes):
            raise HardwareError(f"tport destination {dst} out of range")

    def _remote(self, dst: int) -> "TPort":
        return self.machine.tports()[dst]

    @staticmethod
    def _matches(handle: TPortHandle, src: int, tag: int) -> bool:
        if handle.sender_filter != ANY_SENDER and handle.sender_filter != src:
            return False
        return (tag & handle.mask) == (handle.tag & handle.mask)

    def _make_eager_deliver(self, dst, tag, data):
        src = self.node.hostid
        remote = self._remote(dst)

        def deliver():
            return remote._elan_arrival(_Arrival(src, tag, len(data), data=data))

        return deliver

    def _make_rdv_envelope_deliver(self, dst, tag, nbytes, cookie):
        src = self.node.hostid
        remote = self._remote(dst)
        sender_port = self

        def request_data(handle: TPortHandle):
            """Runs at the *receiver's* Elan when the envelope matches:
            sends the data request back to the sender."""
            def deliver_request():
                return sender_port._elan_start_dma(cookie, handle)

            remote.node.issue(
                TxnCommand(src, ENVELOPE_BYTES, deliver_request, debug="tport-rdv-req")
            )

        def deliver():
            return remote._elan_arrival(
                _Arrival(src, tag, nbytes, request_data=request_data)
            )

        return deliver

    def _elan_arrival(self, arrival: _Arrival):
        """Runs in this node's Elan receive context (generator).

        Costs are charged *before* the scan so that the scan and the
        queue update are atomic — a concurrent post must not interleave
        between them (it would strand both sides in their queues).
        """
        p = self.params
        yield from self.node.elan.execute(p.elan_match * max(1, len(self.posted)))
        if arrival.data is not None:
            # copy into the tport heap / matched buffer
            yield from self.node.elan.execute(len(arrival.data) * p.elan_copy_per_byte)
        for handle in self.posted:
            if self._matches(handle, arrival.src, arrival.tag):
                self.posted.remove(handle)
                self._elan_complete_recv(handle, arrival)
                return
        self.unexpected.append(arrival)

    def _elan_post(self, handle: TPortHandle):
        """Runs in this node's Elan command context (generator).

        Same atomicity discipline as :meth:`_elan_arrival`.
        """
        p = self.params
        yield from self.node.elan.execute(p.elan_match * max(1, len(self.unexpected)))
        matched = None
        for arrival in self.unexpected:
            if self._matches(handle, arrival.src, arrival.tag):
                matched = arrival
                break
        if matched is None:
            self.posted.append(handle)
            return
        self.unexpected.remove(matched)
        if matched.data is not None:
            yield from self.node.elan.execute(len(matched.data) * p.elan_copy_per_byte)
        self._elan_complete_recv(handle, matched)

    def _elan_complete_recv(self, handle: TPortHandle, arrival: _Arrival) -> None:
        """Atomic completion step (copy costs already charged by callers)."""
        handle.src = arrival.src
        handle.tag = arrival.tag
        handle.nbytes = arrival.nbytes
        if arrival.data is not None:
            handle.data = arrival.data
            handle.done.set()
        else:
            # Rendezvous: ask the sender to DMA straight into the buffer.
            arrival.request_data(handle)

    def _elan_start_dma(self, cookie: int, recv_handle: TPortHandle):
        """Runs at the sender's Elan when the data request arrives."""
        dst, data, send_handle = self._pending_rdv.pop(cookie)

        def deliver():
            recv_handle.data = data
            recv_handle.done.set()

        self.node.issue(
            DmaCommand(dst, len(data), deliver, local_done=send_handle.done, debug="tport-dma")
        )
        return None
