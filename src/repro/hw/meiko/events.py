"""Hardware events: the CS/2's remote-settable synchronization words.

An Elan event is a memory word that hardware (a completing DMA, a
remote transaction) can *set* and a processor can *wait on* or *poll*.
Sets are counted, so a set that arrives before the wait is not lost —
semaphore semantics, which is how the real hardware's event wait
operates.  The implementation is the generic counted notification from
:mod:`repro.sim.notify`.
"""

from repro.sim.notify import Notify

__all__ = ["HwEvent"]


class HwEvent(Notify):
    """A counted hardware event word (set/wait/poll)."""
