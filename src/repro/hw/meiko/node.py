"""A Meiko CS/2 node: SPARC + Elan + DMA engine + memory regions.

The SPARC (the node's :attr:`Host.cpu`) runs application and library
code.  Communication is issued by writing command descriptors to the
Elan's command queue; the Elan worker process executes them in FIFO
order, charging Elan time, and injects packets into the fabric.  An
arriving packet is processed by the receive worker (charging
``elan_rx`` or ``dma_rx``) which applies the packet's ``deliver``
closure — writing a :class:`Region`, setting a hardware event, or
running protocol code in Elan context.

Memory is modeled as named :class:`Region` objects (bounce buffers,
envelope slots, user buffers); remote stores and DMA write into regions
at offsets, exactly the user-level remote-memory-access the CS/2
provides.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import HardwareError
from repro.hw.meiko.events import HwEvent
from repro.hw.meiko.network import PKT_DMA, PKT_TXN, Packet
from repro.hw.meiko.params import MeikoParams
from repro.hw.node import Host, Processor
from repro.sim import Resource, Simulator, Store

__all__ = [
    "Region",
    "MeikoNode",
    "TxnCommand",
    "DmaCommand",
    "BcastCommand",
    "ElanCallCommand",
]


class Region:
    """A named, fixed-size memory region (destination of remote writes)."""

    def __init__(self, name: str, size: int):
        if size < 0:
            raise ValueError(f"negative region size {size}")
        self.name = name
        self.data = bytearray(size)

    def __len__(self) -> int:
        return len(self.data)

    def write(self, offset: int, payload: bytes) -> None:
        end = offset + len(payload)
        if offset < 0 or end > len(self.data):
            raise HardwareError(
                f"write [{offset}, {end}) outside region {self.name!r} of size {len(self.data)}"
            )
        self.data[offset:end] = payload

    def read(self, offset: int, nbytes: int) -> bytes:
        end = offset + nbytes
        if offset < 0 or end > len(self.data):
            raise HardwareError(
                f"read [{offset}, {end}) outside region {self.name!r} of size {len(self.data)}"
            )
        return bytes(self.data[offset:end])


@dataclass
class TxnCommand:
    """Remote transaction: word-by-word store of *payload_nbytes* bytes."""

    dst: int
    payload_nbytes: int
    deliver: Callable
    #: optional event set locally once the Elan has injected the packet
    local_done: Optional[HwEvent] = None
    debug: Optional[str] = None


@dataclass
class DmaCommand:
    """Block transfer streamed by the DMA engine."""

    dst: int
    nbytes: int
    deliver: Callable
    #: optional event set locally once the stream has left the node
    local_done: Optional[HwEvent] = None
    debug: Optional[str] = None


@dataclass
class BcastCommand:
    """Hardware broadcast: one DMA injection, one fabric traversal,
    delivered to every node (the CS/2 broadcast range).  ``make_deliver``
    maps a destination node id to its deliver closure (or None to skip)."""

    nbytes: int
    make_deliver: Callable[[int], Optional[Callable]]
    local_done: Optional[HwEvent] = None
    debug: Optional[str] = None


@dataclass
class ElanCallCommand:
    """Run protocol code on the Elan (used by the tport widget to post
    receive descriptors and by devices for Elan-side bookkeeping)."""

    run: Callable
    debug: Optional[str] = None


class MeikoNode(Host):
    """One CS/2 node.  ``cpu`` is the SPARC; ``elan`` the co-processor."""

    def __init__(self, sim: Simulator, hostid: int, params: MeikoParams, network, seed: int = 0):
        super().__init__(sim, hostid, name=f"meiko{hostid}", seed=seed)
        self.params = params
        self.network = network
        self.elan = Processor(sim, name=f"{self.name}.elan")
        self.dma_engine = Resource(sim, capacity=1, name=f"{self.name}.dma")
        self.cmdq: Store = Store(sim, name=f"{self.name}.cmdq")
        self.rxq: Store = Store(sim, name=f"{self.name}.rxq")
        self._regions = {}
        self._started = False

    # -- memory -----------------------------------------------------------
    def alloc_region(self, name: str, size: int) -> Region:
        """Allocate a named memory region on this node."""
        if name in self._regions:
            raise HardwareError(f"region {name!r} already allocated on {self.name}")
        region = Region(f"{self.name}.{name}", size)
        self._regions[name] = region
        return region

    def region(self, name: str) -> Region:
        return self._regions[name]

    def event(self, name: str = "") -> HwEvent:
        """A fresh hardware event word on this node."""
        return HwEvent(self.sim, name=f"{self.name}.{name}")

    # -- workers ------------------------------------------------------------
    def start(self) -> None:
        """Start the Elan command and receive workers (idempotent)."""
        if self._started:
            return
        self._started = True
        self.sim.process(self._cmd_worker(), name=f"{self.name}.elan-cmd")
        self.sim.process(self._rx_worker(), name=f"{self.name}.elan-rx")

    def enqueue_rx(self, packet: Packet) -> None:
        """Called by the network when a packet arrives for this node."""
        self.rxq.put(packet)

    def _cmd_worker(self):
        p = self.params
        while True:
            cmd = yield self.cmdq.get()
            if isinstance(cmd, TxnCommand):
                # Elan generates the remote stores word by word.
                cost = p.elan_cmd + cmd.payload_nbytes * p.txn_per_byte
                yield from self.elan.execute(cost)
                self.network.transmit(
                    Packet(
                        PKT_TXN,
                        self.hostid,
                        cmd.dst,
                        cmd.payload_nbytes + p.packet_header,
                        cmd.deliver,
                        cmd.debug,
                    )
                )
                if cmd.local_done is not None:
                    cmd.local_done.set()
            elif isinstance(cmd, DmaCommand):
                # Elan processes the descriptor, then the DMA engine
                # streams the block; the Elan is free during the stream.
                yield from self.elan.execute(p.elan_cmd + p.dma_setup)
                self.sim.process(self._dma_stream(cmd), name=f"{self.name}.dma-stream")
            elif isinstance(cmd, BcastCommand):
                yield from self.elan.execute(p.elan_cmd + p.dma_setup)
                self.sim.process(self._bcast_stream(cmd), name=f"{self.name}.bcast-stream")
            elif isinstance(cmd, ElanCallCommand):
                yield from self.elan.execute(p.elan_cmd)
                result = cmd.run()
                if inspect.isgenerator(result):
                    yield from result
            else:  # pragma: no cover - defensive
                raise HardwareError(f"unknown Elan command {cmd!r}")

    def _dma_stream(self, cmd: DmaCommand):
        p = self.params
        yield from self.dma_engine.use(cmd.nbytes * p.dma_per_byte)
        self.network.transmit(
            Packet(
                PKT_DMA,
                self.hostid,
                cmd.dst,
                cmd.nbytes + p.packet_header,
                cmd.deliver,
                cmd.debug,
            )
        )
        if cmd.local_done is not None:
            cmd.local_done.set()

    def _bcast_stream(self, cmd: BcastCommand):
        p = self.params
        yield from self.dma_engine.use(cmd.nbytes * p.dma_per_byte)
        src = self.hostid
        wire = cmd.nbytes + p.packet_header

        def make_packet(dst: int) -> Optional[Packet]:
            deliver = cmd.make_deliver(dst)
            if deliver is None:
                return None
            return Packet(PKT_DMA, src, dst, wire, deliver, cmd.debug)

        self.network.broadcast(src, make_packet)
        if cmd.local_done is not None:
            cmd.local_done.set()

    def _rx_worker(self):
        p = self.params
        while True:
            packet = yield self.rxq.get()
            yield from self.elan.execute(p.elan_rx if packet.kind == PKT_TXN else p.dma_rx)
            result = packet.deliver()
            if inspect.isgenerator(result):
                # deliver may be protocol code running in Elan context
                yield from result

    # -- SPARC-side primitives (generators, run in the caller's process) ----
    def issue(self, cmd) -> None:
        """Enqueue an Elan command without charging SPARC time (internal)."""
        self.cmdq.put(cmd)

    def issue_txn(
        self,
        dst: int,
        payload_nbytes: int,
        deliver: Callable,
        local_done: Optional[HwEvent] = None,
        debug: Optional[str] = None,
    ):
        """Issue a remote transaction from the SPARC (charges txn_issue)."""
        yield from self.cpu.execute(self.params.txn_issue)
        self.cmdq.put(TxnCommand(dst, payload_nbytes, deliver, local_done, debug))

    def issue_dma(
        self,
        dst: int,
        nbytes: int,
        deliver: Callable,
        local_done: Optional[HwEvent] = None,
        debug: Optional[str] = None,
    ):
        """Issue a DMA from the SPARC (charges txn_issue for the descriptor)."""
        yield from self.cpu.execute(self.params.txn_issue)
        self.cmdq.put(DmaCommand(dst, nbytes, deliver, local_done, debug))

    def issue_bcast(
        self,
        nbytes: int,
        make_deliver: Callable[[int], Optional[Callable]],
        local_done: Optional[HwEvent] = None,
        debug: Optional[str] = None,
    ):
        """Issue a hardware broadcast from the SPARC."""
        yield from self.cpu.execute(self.params.txn_issue)
        self.cmdq.put(BcastCommand(nbytes, make_deliver, local_done, debug))

    def set_remote_event(self, dst: int, event: HwEvent, debug: Optional[str] = None):
        """Set a hardware event on a remote node (a zero-payload txn)."""
        yield from self.issue_txn(dst, 0, event.set, debug=debug or "remote-event")

    def wait_event(self, event: HwEvent):
        """SPARC wait on a hardware event (charges the wake/poll cost)."""
        yield event.wait1()
        yield from self.cpu.execute(self.params.event_poll)
