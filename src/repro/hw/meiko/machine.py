"""Machine builder: a complete simulated Meiko CS/2."""

from __future__ import annotations

from typing import List, Optional

from repro.errors import ConfigurationError
from repro.hw.meiko.network import MeikoNetwork
from repro.hw.meiko.node import MeikoNode
from repro.hw.meiko.params import MeikoParams
from repro.sim import Simulator

__all__ = ["MeikoMachine"]


class MeikoMachine:
    """A CS/2 with *nnodes* nodes on one fat-tree fabric.

    >>> sim = Simulator()
    >>> machine = MeikoMachine(sim, nnodes=4)
    >>> machine.nodes[0].name
    'meiko0'
    """

    def __init__(
        self,
        sim: Simulator,
        nnodes: int,
        params: Optional[MeikoParams] = None,
        seed: int = 0,
        faults=None,
    ):
        if nnodes < 1:
            raise ConfigurationError(f"nnodes must be >= 1, got {nnodes}")
        self.sim = sim
        self.params = params or MeikoParams()
        injector = faults.injector("meiko", sim, seed) if faults is not None else None
        self.network = MeikoNetwork(sim, nnodes, self.params, injector=injector)
        self.nodes: List[MeikoNode] = [
            MeikoNode(sim, i, self.params, self.network, seed=seed) for i in range(nnodes)
        ]
        self.network.nodes = self.nodes
        for node in self.nodes:
            node.start()
        self._tports = None

    @property
    def nnodes(self) -> int:
        return len(self.nodes)

    def tports(self):
        """The machine-wide tport widget set (created on first use)."""
        if self._tports is None:
            from repro.hw.meiko.tport import TPort

            self._tports = [TPort(node, self) for node in self.nodes]
        return self._tports
