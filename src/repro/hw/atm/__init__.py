"""155 Mb/s ATM: cells, AAL segmentation/reassembly, switch, NICs.

Models the paper's Fore Systems hardware: a ForeRunner ASX-200 switch
with eight 155 Mb/s ports, and GIA-200 interface cards whose on-board
i960 performs AAL3/4 and AAL5 segmentation and reassembly without the
host processor.
"""

from repro.hw.atm.params import AtmParams
from repro.hw.atm.aal import AAL5, AAL34, aal_cells, aal_wire_bytes
from repro.hw.atm.switch import AtmSwitch
from repro.hw.atm.nic import AtmNic, Pdu

__all__ = [
    "AtmParams",
    "AAL5",
    "AAL34",
    "aal_cells",
    "aal_wire_bytes",
    "AtmSwitch",
    "AtmNic",
    "Pdu",
]
