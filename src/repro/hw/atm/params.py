"""ATM constants (times in µs, sizes in bytes)."""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["AtmParams"]


@dataclass(frozen=True)
class AtmParams:
    """155.52 Mb/s ATM over a ForeRunner ASX-200-class switch."""

    #: line rate: 155.52 Mb/s = 19.44 B/µs (per byte on the wire)
    per_byte: float = 1.0 / 19.44
    #: cell size / payload capacities
    cell_bytes: int = 53
    aal5_payload: int = 48
    #: AAL3/4 carries 44 payload bytes per cell (4 bytes of SAR header)
    aal34_payload: int = 44
    #: AAL5 trailer (pad + 8-byte trailer included in the last cell(s))
    aal5_trailer: int = 8
    #: fixed switch forwarding latency per PDU train
    switch_latency: float = 10.0
    #: maximum AAL5 PDU (classical IP over ATM default MTU 9180 + LLC)
    max_pdu: int = 9188
    #: i960 SAR engine: fixed per-PDU cost on the interface card
    sar_per_pdu: float = 6.0
    #: i960 SAR engine: per-cell segmentation/reassembly cost
    sar_per_cell: float = 0.4

    def cell_time(self) -> float:
        return self.cell_bytes * self.per_byte

    def with_overrides(self, **kw) -> "AtmParams":
        return replace(self, **kw)
