"""The Fore GIA-200 interface card.

The card's i960 performs segmentation and reassembly on board, so SAR
costs are charged to the card's own processor, not the host CPU — the
host only pays its protocol-stack and syscall costs (which, the paper
finds, dominate: the Fore API is barely faster than kernel TCP).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional

from repro.errors import NetworkError
from repro.hw.atm.aal import AAL5, aal_cells
from repro.hw.atm.params import AtmParams
from repro.hw.node import Processor
from repro.sim import Store

__all__ = ["Pdu", "AtmNic"]


@dataclass
class Pdu:
    """An AAL protocol data unit traveling the fabric as a cell train."""

    src: int
    dst: int
    nbytes: int
    ncells: int
    aal: str
    payload: Any


class AtmNic:
    """One host's GIA-200 attachment to the switch."""

    def __init__(self, host, switch, addr: Optional[int] = None, params: Optional[AtmParams] = None):
        self.host = host
        self.sim = host.sim
        self.switch = switch
        self.params = params or switch.params
        self.addr = host.hostid if addr is None else addr
        #: set by the protocol stack: called with each reassembled Pdu
        self.rx_handler: Optional[Callable[[Pdu], None]] = None
        #: the on-board i960 doing SAR
        self.i960 = Processor(host.sim, name=f"atm{self.addr}.i960")
        self._txq: Store = Store(host.sim, name=f"atm{self.addr}.txq")
        self.mtu = self.params.max_pdu
        self.sim.process(self._tx_worker(), name=f"atm{self.addr}.tx")
        switch.attach(self)

    @property
    def max_payload(self) -> int:
        return self.mtu

    def send(self, dst: int, nbytes: int, payload: Any, aal: str = AAL5) -> None:
        """Queue a PDU for transmission (the card segments and sends in
        the background)."""
        if nbytes > self.mtu:
            raise NetworkError(f"PDU of {nbytes} bytes exceeds max {self.mtu}")
        ncells = aal_cells(nbytes, aal, self.params)
        self._txq.put(Pdu(self.addr, dst, nbytes, ncells, aal, payload))

    def _tx_worker(self):
        p = self.params
        while True:
            pdu = yield self._txq.get()
            # i960 segmentation
            yield from self.i960.execute(p.sar_per_pdu + pdu.ncells * p.sar_per_cell)
            # serialize the cell train onto the link
            yield self.sim.timeout(pdu.ncells * p.cell_time())
            self.switch.forward(pdu)

    def on_pdu(self, pdu: Pdu) -> None:
        """Called by the switch when the train has cleared our port;
        reassembly runs on the i960, then the stack is notified."""
        self.sim.process(self._rx_one(pdu), name=f"atm{self.addr}.rx")

    def _rx_one(self, pdu: Pdu):
        p = self.params
        yield from self.i960.execute(p.sar_per_pdu + pdu.ncells * p.sar_per_cell)
        if self.rx_handler is not None:
            self.rx_handler(pdu)
