"""ATM adaptation layers: cell counts for AAL5 and AAL3/4.

AAL5 packs 48 payload bytes per cell with an 8-byte trailer (plus
padding) in the final cell.  AAL3/4 spends 4 bytes of every cell on its
own SAR header, leaving 44 — so the same PDU needs more cells, which is
why the Fore AAL3/4 path is not faster than AAL5/TCP for large
messages (paper, Figure 4 discussion).
"""

from __future__ import annotations

import math

from repro.hw.atm.params import AtmParams

__all__ = ["AAL5", "AAL34", "aal_cells", "aal_wire_bytes"]

AAL5 = "aal5"
AAL34 = "aal3/4"


def aal_cells(nbytes: int, aal: str, params: AtmParams) -> int:
    """Number of 53-byte cells to carry an *nbytes* PDU."""
    if nbytes < 0:
        raise ValueError(f"negative PDU size {nbytes}")
    if aal == AAL5:
        return max(1, math.ceil((nbytes + params.aal5_trailer) / params.aal5_payload))
    if aal == AAL34:
        return max(1, math.ceil(max(1, nbytes) / params.aal34_payload))
    raise ValueError(f"unknown adaptation layer {aal!r}")


def aal_wire_bytes(nbytes: int, aal: str, params: AtmParams) -> int:
    """Bytes serialized on the wire for an *nbytes* PDU."""
    return aal_cells(nbytes, aal, params) * params.cell_bytes
