"""The ATM switch: output-buffered, one queue per port.

A PDU travels as a train of cells.  The model serializes the train on
the sender's link (done by the NIC), adds the switch's fixed forwarding
latency, then serializes the train again on the destination's output
port — contention between senders targeting the same receiver queues at
that port, exactly like an output-buffered ASX-200.  There is no shared
medium: disjoint pairs communicate without interference (the property
Figure 9 credits for ATM's scaling).
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.errors import NetworkError
from repro.sim import Resource, Simulator

__all__ = ["AtmSwitch"]


class AtmSwitch:
    """An output-buffered cell switch."""

    def __init__(self, sim: Simulator, params, nports: int = 8, drop_fn=None, injector=None):
        self.sim = sim
        self.params = params
        self.nports = nports
        #: legacy loss injection hook: return True to drop a PDU train
        #: (deprecated — prefer a FaultPlan via ``injector``)
        self.drop_fn: Optional[Callable] = drop_fn
        #: structured fault injection (:class:`repro.faults.FaultInjector`)
        self.injector = injector
        self._ports: Dict[int, Resource] = {
            i: Resource(sim, 1, name=f"atm-port{i}") for i in range(nports)
        }
        self.nics: Dict[int, "AtmNicLike"] = {}
        self.pdus_forwarded = 0
        self.pdus_dropped = 0
        self.pdus_corrupted = 0
        self.pdus_duplicated = 0

    def attach(self, nic) -> None:
        if nic.addr in self.nics:
            raise NetworkError(f"port {nic.addr} already attached")
        if not (0 <= nic.addr < self.nports):
            raise NetworkError(f"port {nic.addr} out of range [0, {self.nports})")
        self.nics[nic.addr] = nic

    def forward(self, pdu) -> None:
        """Accept a PDU train from an input port (called by the NIC after
        link serialization); forwards it in the background."""
        if pdu.dst not in self.nics:
            raise NetworkError(f"no NIC on port {pdu.dst}")
        if self.drop_fn is not None and self.drop_fn(pdu):
            self.pdus_dropped += 1
            return
        copies = 1
        if self.injector is not None:
            from repro.faults import CORRUPT, DROP, DUPLICATE

            action = self.injector.decide(pdu.src, pdu.dst, pdu.nbytes)
            if action == DROP:
                self.pdus_dropped += 1
                return
            if action == CORRUPT:
                # delivered damaged; the AAL5 CRC-32 discards the train
                self.pdus_corrupted += 1
                return
            if action == DUPLICATE:
                self.pdus_duplicated += 1
                copies = 2
        for _ in range(copies):
            self.sim.process(self._forward(pdu), name=f"atm-fwd-{pdu.dst}")

    def _forward(self, pdu):
        p = self.params
        yield self.sim.timeout(p.switch_latency)
        # serialize the train on the destination's output port
        train_time = pdu.ncells * p.cell_time()
        yield from self._ports[pdu.dst].use(train_time)
        self.pdus_forwarded += 1
        self.nics[pdu.dst].on_pdu(pdu)
