"""The workstation cluster: SGI hosts on Ethernet or ATM.

Models the paper's testbed: eight SGI Indys (plus a Challenge) with
64 MB RAM each, connected by a 10 Mb/s shared Ethernet *and* a Fore
ASX-200 ATM switch.  A :class:`ClusterMachine` is built over one fabric
at a time (the platform choice selects which figure's configuration you
get); each host runs a kernel protocol stack charged to its CPU.
"""

from __future__ import annotations

from typing import Any, List, Optional

from repro.errors import ConfigurationError
from repro.hw.atm import AtmNic, AtmParams, AtmSwitch
from repro.hw.ethernet import EthernetNic, EthernetParams, Medium
from repro.hw.node import Host
from repro.net.ip import IP_HEADER
from repro.net.kernel import ATM_KERNEL, ETH_KERNEL, Kernel, KernelParams
from repro.net.tcp import TCP_HEADER
from repro.sim import Simulator

__all__ = ["ClusterMachine"]


class ClusterMachine:
    """*n* workstations on one fabric ('ethernet' or 'atm')."""

    def __init__(
        self,
        sim: Simulator,
        nhosts: int,
        network: str = "ethernet",
        params: Any = None,
        kernel_params: Optional[KernelParams] = None,
        seed: int = 0,
        drop_fn=None,
        host_speeds: Optional[List[float]] = None,
        faults=None,
    ):
        if nhosts < 1:
            raise ConfigurationError(f"nhosts must be >= 1, got {nhosts}")
        if network not in ("ethernet", "atm"):
            raise ConfigurationError(f"network must be 'ethernet' or 'atm', got {network!r}")
        if host_speeds is not None and len(host_speeds) != nhosts:
            raise ConfigurationError(
                f"host_speeds has {len(host_speeds)} entries for {nhosts} hosts"
            )
        self.sim = sim
        self.network = network
        speeds = host_speeds or [1.0] * nhosts
        self.hosts: List[Host] = [
            Host(sim, i, name=f"sgi{i}", seed=seed, speed=speeds[i]) for i in range(nhosts)
        ]
        self.kernels: List[Kernel] = []
        injector = faults.injector(network, sim, seed) if faults is not None else None
        if network == "ethernet":
            self.params = params or EthernetParams()
            self.fabric = Medium(sim, self.params, drop_fn=drop_fn, injector=injector)
            kparams = kernel_params or ETH_KERNEL
            for host in self.hosts:
                nic = EthernetNic(host, self.fabric)
                self.fabric.attach(nic)
                self._finish_host(host, nic, kparams)
        else:
            self.params = params or AtmParams()
            self.fabric = AtmSwitch(
                sim, self.params, nports=max(8, nhosts), drop_fn=drop_fn,
                injector=injector,
            )
            kparams = kernel_params or ATM_KERNEL
            for host in self.hosts:
                nic = AtmNic(host, self.fabric)
                self._finish_host(host, nic, kparams)
        self._fore_apis = {}

    def _finish_host(self, host: Host, nic, kparams: KernelParams) -> None:
        mss = nic.max_payload - IP_HEADER - TCP_HEADER
        kernel = Kernel(host, kparams, nic, mss)
        # NIC deliveries go to the kernel's interrupt path
        if self.network == "ethernet":
            nic.rx_handler = lambda frame, k=kernel: k.enqueue_rx(frame.payload)
        else:
            nic.rx_handler = lambda pdu, k=kernel: k.enqueue_rx(pdu.payload)
        host.nic = nic
        host.stack = kernel
        self.kernels.append(kernel)

    @property
    def nhosts(self) -> int:
        return len(self.hosts)

    def fore(self, hostid: int):
        """The host's Fore API instance (ATM clusters only; lazy)."""
        if self.network != "atm":
            raise ConfigurationError("the Fore API needs the ATM cluster")
        if hostid not in self._fore_apis:
            from repro.net.fore import ForeApi

            self._fore_apis[hostid] = ForeApi(self.kernels[hostid])
        return self._fore_apis[hostid]

    def connect_endpoints(self, endpoints) -> None:
        """Let the device type wire its full mesh of connections."""
        if endpoints:
            type(endpoints[0]).wire(self, endpoints)
