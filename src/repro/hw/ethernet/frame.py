"""Ethernet frames (payloads are opaque upper-layer bytes/objects)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

__all__ = ["Frame", "BROADCAST"]

#: broadcast destination address
BROADCAST = -1


@dataclass
class Frame:
    """A link-layer frame.

    ``payload`` is the upper-layer object (an IP packet); ``nbytes`` is
    its serialized length, which determines wire time.
    """

    src: int
    dst: int
    nbytes: int
    payload: Any

    def __post_init__(self):
        if self.nbytes < 0:
            raise ValueError(f"negative frame payload size {self.nbytes}")
