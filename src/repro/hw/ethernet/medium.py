"""The shared Ethernet segment: CSMA/CD with truncated binary
exponential backoff.

Collision model: a station senses the carrier only ``prop_delay`` after
a transmission begins, so any station that starts transmitting while
another attempt is inside its vulnerable window collides with it.  All
colliding stations jam, back off a random number of 51.2 µs slots
(doubling the range each attempt, per-host seeded RNG), and retry.
This is what makes the paper's shared 10 Mb/s segment degrade as more
workstations communicate at once (Figure 9).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.errors import NetworkError
from repro.hw.ethernet.frame import BROADCAST, Frame
from repro.hw.ethernet.params import EthernetParams
from repro.sim import Simulator

__all__ = ["Medium"]


class _Attempt:
    __slots__ = ("start", "collided", "acquired")

    def __init__(self, start: float):
        self.start = start
        self.collided = False
        self.acquired = False


class Medium:
    """One shared segment.  NICs attach; transmissions contend."""

    def __init__(
        self,
        sim: Simulator,
        params: Optional[EthernetParams] = None,
        drop_fn: Optional[Callable[[Frame], bool]] = None,
        injector=None,
    ):
        self.sim = sim
        self.params = params or EthernetParams()
        #: legacy loss injection: return True to silently drop a frame
        #: (deprecated — prefer a FaultPlan via ``injector``)
        self.drop_fn = drop_fn
        #: structured fault injection (:class:`repro.faults.FaultInjector`)
        self.injector = injector
        self.nics: Dict[int, "EthernetNicLike"] = {}
        self._busy_until = 0.0
        self._attempts: List[_Attempt] = []
        # statistics
        self.frames_delivered = 0
        self.frames_dropped = 0
        self.frames_corrupted = 0
        self.frames_duplicated = 0
        self.collisions = 0
        self.busy_time = 0.0

    def attach(self, nic) -> None:
        if nic.addr in self.nics:
            raise NetworkError(f"address {nic.addr} already attached")
        self.nics[nic.addr] = nic

    def utilization(self) -> float:
        """Fraction of elapsed time the wire carried bits."""
        return self.busy_time / self.sim.now if self.sim.now > 0 else 0.0

    # ------------------------------------------------------------------ tx
    def transmit(self, frame: Frame, rng):
        """Generator: contend for the wire and send *frame*.

        Completes when the frame has been fully serialized; delivery at
        the receivers happens ``prop_delay`` later.  Raises
        :class:`NetworkError` after 16 failed attempts (excessive
        collisions), like a real transceiver.
        """
        p = self.params
        attempts = 0
        while True:
            # carrier sense; stations that deferred restart with a small
            # random jitter (see EthernetParams.defer_jitter)
            deferred = False
            while self.sim.now < self._busy_until:
                deferred = True
                yield self.sim.timeout(self._busy_until - self.sim.now)
            if deferred and p.defer_jitter > 0:
                yield self.sim.timeout(rng.uniform(0.0, p.defer_jitter))
                if self.sim.now < self._busy_until:
                    continue  # someone else took the wire during our jitter
            att = _Attempt(self.sim.now)
            if self._attempts:
                # someone else is inside their vulnerable window: collision
                att.collided = True
                for other in self._attempts:
                    if not other.acquired:
                        other.collided = True
            self._attempts.append(att)
            yield self.sim.timeout(p.prop_delay)
            if att.collided:
                self._attempts.remove(att)
                self.collisions += 1
                jam_end = self.sim.now + p.jam_time
                self._busy_until = max(self._busy_until, jam_end + p.ifg)
                attempts += 1
                if attempts >= p.max_attempts:
                    raise NetworkError(
                        f"excessive collisions sending from station {frame.src}"
                    )
                k = min(attempts, p.backoff_limit)
                backoff = rng.randrange(2**k) * p.slot_time
                yield self.sim.timeout(p.jam_time + backoff)
                continue
            # acquired the wire
            att.acquired = True
            ftime = p.frame_time(frame.nbytes)
            self._busy_until = att.start + ftime + p.ifg
            self.busy_time += ftime
            remaining = ftime - p.prop_delay
            if remaining > 0:
                yield self.sim.timeout(remaining)
            self._attempts.remove(att)
            self._schedule_delivery(frame)
            return attempts

    def _schedule_delivery(self, frame: Frame) -> None:
        if self.drop_fn is not None and self.drop_fn(frame):
            self.frames_dropped += 1
            return
        copies = 1
        if self.injector is not None:
            from repro.faults import CORRUPT, DROP, DUPLICATE

            action = self.injector.decide(frame.src, frame.dst, frame.nbytes)
            if action == DROP:
                self.frames_dropped += 1
                return
            if action == CORRUPT:
                # delivered damaged; the receiver's CRC discards it
                self.frames_corrupted += 1
                return
            if action == DUPLICATE:
                self.frames_duplicated += 1
                copies = 2
        for _ in range(copies):
            ev = self.sim.timeout(self.params.prop_delay, frame)
            ev.add_callback(self._deliver)

    def _deliver(self, event) -> None:
        frame: Frame = event.value
        if frame.dst == BROADCAST:
            for addr, nic in self.nics.items():
                if addr != frame.src:
                    self.frames_delivered += 1
                    nic.on_frame(frame)
        else:
            nic = self.nics.get(frame.dst)
            if nic is not None:
                self.frames_delivered += 1
                nic.on_frame(frame)
            # frames to unknown addresses vanish, like real Ethernet
