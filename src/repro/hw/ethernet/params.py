"""Classic 10BASE Ethernet constants (times in µs, sizes in bytes)."""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["EthernetParams"]


@dataclass(frozen=True)
class EthernetParams:
    """10 Mb/s shared-segment Ethernet."""

    #: wire time per byte: 10 Mb/s = 1.25 MB/s
    per_byte: float = 0.8
    #: preamble + start-frame delimiter
    preamble: int = 8
    #: destination + source + ethertype
    header: int = 14
    #: frame check sequence
    fcs: int = 4
    #: minimum frame (header+payload+fcs); shorter frames are padded
    min_frame: int = 64
    #: maximum payload (MTU)
    mtu: int = 1500
    #: inter-frame gap (9.6 µs at 10 Mb/s)
    ifg: float = 9.6
    #: end-to-end propagation delay of the segment (~120 m of coax)
    prop_delay: float = 0.6
    #: station restart jitter after deferring to a busy wire — real
    #: transceivers do not all resume at the identical instant; without
    #: this the model deterministically collides every deferred pair,
    #: an artificial capture effect
    defer_jitter: float = 6.4
    #: collision backoff slot (51.2 µs at 10 Mb/s)
    slot_time: float = 51.2
    #: jam signal duration after a collision
    jam_time: float = 3.2
    #: ceiling exponent of truncated binary exponential backoff
    backoff_limit: int = 10
    #: give up after this many attempts (excessive collisions)
    max_attempts: int = 16

    def frame_wire_bytes(self, payload: int) -> int:
        """Bytes actually serialized for a frame with *payload* bytes."""
        body = self.header + payload + self.fcs
        return self.preamble + max(body, self.min_frame)

    def frame_time(self, payload: int) -> float:
        return self.frame_wire_bytes(payload) * self.per_byte

    def with_overrides(self, **kw) -> "EthernetParams":
        return replace(self, **kw)
