"""Ethernet NIC: one transmit queue per station, receive hand-off.

The NIC serializes this station's outgoing frames (a second send waits
for the first to clear the transceiver) and hands received frames to
the host's protocol stack via ``rx_handler``.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.errors import NetworkError
from repro.hw.ethernet.frame import Frame
from repro.hw.ethernet.medium import Medium
from repro.sim import Store

__all__ = ["EthernetNic"]


class EthernetNic:
    """One station's attachment to the shared segment."""

    def __init__(self, host, medium: Medium, addr: Optional[int] = None):
        self.host = host
        self.sim = host.sim
        self.medium = medium
        # backoff draws randrange from host.rng: pin the host's jitter
        # stream to the raw Random (no float batching, see Host.claim_raw_rng)
        host.claim_raw_rng()
        self.addr = host.hostid if addr is None else addr
        #: set by the protocol stack: called with each received Frame
        self.rx_handler: Optional[Callable[[Frame], None]] = None
        #: frames abandoned after 16 collisions (excessive-collision errors)
        self.tx_aborts = 0
        self._txq: Store = Store(host.sim, name=f"eth{self.addr}.txq")
        self.mtu = medium.params.mtu
        self.sim.process(self._tx_worker(), name=f"eth{self.addr}.tx")

    @property
    def max_payload(self) -> int:
        return self.mtu

    def send(self, dst: int, nbytes: int, payload: Any) -> None:
        """Queue a frame for transmission (returns immediately; the NIC
        transmits in the background)."""
        if nbytes > self.mtu:
            raise NetworkError(f"payload {nbytes} exceeds Ethernet MTU {self.mtu}")
        self._txq.put(Frame(self.addr, dst, nbytes, payload))

    def _tx_worker(self):
        while True:
            frame = yield self._txq.get()
            try:
                yield from self.medium.transmit(frame, self.host.rng)
            except NetworkError:
                # Excessive collisions: a real transceiver gives up on
                # *this frame* and reports the error — the station keeps
                # transmitting and the protocol layers retransmit.  The
                # worker must survive, or the station is mute forever.
                self.tx_aborts += 1

    def on_frame(self, frame: Frame) -> None:
        """Called by the medium on delivery."""
        if self.rx_handler is not None:
            self.rx_handler(frame)
