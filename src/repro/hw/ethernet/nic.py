"""Ethernet NIC: one transmit queue per station, receive hand-off.

The NIC serializes this station's outgoing frames (a second send waits
for the first to clear the transceiver) and hands received frames to
the host's protocol stack via ``rx_handler``.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.errors import NetworkError
from repro.hw.ethernet.frame import Frame
from repro.hw.ethernet.medium import Medium
from repro.sim import Store

__all__ = ["EthernetNic"]


class EthernetNic:
    """One station's attachment to the shared segment."""

    def __init__(self, host, medium: Medium, addr: Optional[int] = None):
        self.host = host
        self.sim = host.sim
        self.medium = medium
        self.addr = host.hostid if addr is None else addr
        #: set by the protocol stack: called with each received Frame
        self.rx_handler: Optional[Callable[[Frame], None]] = None
        self._txq: Store = Store(host.sim, name=f"eth{self.addr}.txq")
        self.mtu = medium.params.mtu
        self.sim.process(self._tx_worker(), name=f"eth{self.addr}.tx")

    @property
    def max_payload(self) -> int:
        return self.mtu

    def send(self, dst: int, nbytes: int, payload: Any) -> None:
        """Queue a frame for transmission (returns immediately; the NIC
        transmits in the background)."""
        if nbytes > self.mtu:
            raise NetworkError(f"payload {nbytes} exceeds Ethernet MTU {self.mtu}")
        self._txq.put(Frame(self.addr, dst, nbytes, payload))

    def _tx_worker(self):
        while True:
            frame = yield self._txq.get()
            yield from self.medium.transmit(frame, self.host.rng)

    def on_frame(self, frame: Frame) -> None:
        """Called by the medium on delivery."""
        if self.rx_handler is not None:
            self.rx_handler(frame)
