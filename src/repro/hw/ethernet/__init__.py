"""10 Mb/s shared Ethernet: frames, CSMA/CD medium, NICs.

The paper's cluster connects eight SGI Indys and a Challenge over a
single shared 10 Mb/s segment — every frame contends with every other
(Figure 9's Ethernet curves degrade with process count for exactly this
reason).  The model implements carrier sense, collision detection
within the propagation window, and truncated binary exponential
backoff, all with per-host seeded RNGs so runs are deterministic.
"""

from repro.hw.ethernet.params import EthernetParams
from repro.hw.ethernet.frame import Frame, BROADCAST
from repro.hw.ethernet.medium import Medium
from repro.hw.ethernet.nic import EthernetNic

__all__ = ["EthernetParams", "Frame", "BROADCAST", "Medium", "EthernetNic"]
