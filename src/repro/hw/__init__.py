"""Simulated hardware: hosts, the Meiko CS/2, Ethernet, and ATM."""

from repro.hw.node import Host, Processor

__all__ = ["Host", "Processor"]
