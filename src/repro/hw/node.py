"""Host and processor models.

A :class:`Host` is a simulated machine: it owns one or more
:class:`Processor` resources and a deterministic per-host RNG.  The
application and the (simulated) kernel protocol code share the host's
main CPU, so protocol processing delays computation and vice versa —
the non-preemptive approximation documented in DESIGN.md.

Costs are charged in microseconds.  Where a cost is derived from work
(bytes copied, flops executed), the per-unit rates live in the platform
parameter dataclasses, not here.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.sim import Resource, SimulationError, Simulator

__all__ = ["Processor", "Host"]

#: Default compute-slice length: long computations yield the CPU every
#: this many microseconds so kernel protocol work can interleave.
DEFAULT_QUANTUM = 50.0


class Processor:
    """A single execution unit (SPARC, Elan, i960, ...) as a FIFO resource.

    ``speed`` scales all costs: a cost of *c* µs of reference work takes
    ``c / speed`` µs here — how the cluster models the faster SGI
    Challenge next to the Indys.
    """

    def __init__(self, sim: Simulator, name: str = "cpu", speed: float = 1.0):
        if speed <= 0:
            raise ValueError(f"speed must be positive, got {speed!r}")
        self.sim = sim
        self.name = name
        self.speed = speed
        self._res = Resource(sim, capacity=1, name=name)
        self.busy_time = 0.0

    @property
    def queued(self) -> int:
        """Processes waiting for this processor."""
        return self._res.queued

    @property
    def in_use(self) -> bool:
        return self._res.in_use > 0

    def execute(self, cost: float):
        """Generator: occupy the processor for *cost* µs of reference work."""
        if cost < 0:
            raise ValueError(f"negative execution cost {cost!r}")
        scaled = cost / self.speed
        self.busy_time += scaled
        # Uncontended fast path inlined from Resource.use: same grant
        # event + hold timeout (identical event count and ordering), on
        # pooled records, without the extra delegating generator frame.
        res = self._res
        if res._in_use < res.capacity and not res._queue:
            res._in_use += 1
            sim = res.sim
            try:
                yield sim.event1().succeed(None)
                yield sim.timeout1(scaled)
            finally:
                if res._queue:
                    nxt = res._queue.popleft()
                    nxt.succeed(nxt)
                else:
                    if res._in_use <= 0:
                        raise SimulationError(f"over-release of resource {res.name!r}")
                    res._in_use -= 1
            return
        yield from res.use(scaled)

    def request(self):
        return self._res.request()

    def release(self, req) -> None:
        self._res.release(req)


class Host:
    """A simulated machine.

    Parameters
    ----------
    sim:
        The simulator this host lives in.
    hostid:
        Small integer identity (also used as the network address by the
        cluster fabrics).
    name:
        Human-readable name for traces.
    seed:
        Per-host RNG seed; combined with *hostid* so hosts draw distinct
        but reproducible random streams (Ethernet backoff etc.).
    """

    def __init__(
        self, sim: Simulator, hostid: int, name: str = "", seed: int = 0, speed: float = 1.0
    ):
        self.sim = sim
        self.hostid = hostid
        self.name = name or f"host{hostid}"
        self.cpu = Processor(sim, name=f"{self.name}.cpu", speed=speed)
        self.rng = random.Random((seed << 16) ^ (hostid * 2654435761 % 2**32))
        #: raw-bits consumers of self.rng (Ethernet backoff draws via
        #: randrange); when non-zero jitter_stream() must stay unbatched
        self._rng_bits_users = 0
        self._jitter_cache: Optional[tuple] = None
        #: attachment point for NICs / protocol stacks, filled in by builders
        self.nic = None
        self.stack = None

    def wtime(self) -> float:
        """Wall-clock time on this host (the global simulated clock), µs."""
        return self.sim.now

    def claim_raw_rng(self) -> random.Random:
        """Register a raw-bits consumer of this host's RNG stream.

        Components drawing via ``randrange``/``getrandbits`` (the
        Ethernet NIC's binary-exponential backoff) must call this at
        build time, before any draws: it pins :meth:`jitter_stream` to
        the raw ``Random`` so float batching cannot reorder the
        Mersenne word stream (see
        :class:`repro.faults.BatchedRandom`).
        """
        self._rng_bits_users += 1
        self._jitter_cache = None
        return self.rng

    def jitter_stream(self):
        """The stream for float-only jitter draws (transport RTO jitter).

        A :class:`repro.faults.BatchedRandom` over ``self.rng`` when no
        raw-bits consumer shares the host stream, the raw ``Random``
        otherwise — the observed draw values are byte-identical either
        way.
        """
        cache = self._jitter_cache
        if cache is not None and cache[0] is self.rng:
            return cache[1]
        if self._rng_bits_users:
            stream = self.rng
        else:
            from repro.faults import BatchedRandom

            stream = BatchedRandom(self.rng)
        self._jitter_cache = (self.rng, stream)
        return stream

    def compute(self, total: float, quantum: Optional[float] = None):
        """Generator: perform *total* µs of application computation.

        The work is sliced into *quantum*-sized pieces, releasing the CPU
        between slices so kernel work queued behind the application can
        run (coarse model of interrupt handling).
        """
        if total < 0:
            raise ValueError(f"negative compute time {total!r}")
        q = DEFAULT_QUANTUM if quantum is None else quantum
        if q <= 0:
            raise ValueError(f"quantum must be positive, got {q!r}")
        remaining = total
        while remaining > 0:
            piece = min(q, remaining)
            yield from self.cpu.execute(piece)
            remaining -= piece

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Host {self.name}>"
