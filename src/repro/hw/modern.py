"""Modern interconnects: an RDMA NIC fabric and a CXL memory fabric.

The paper's protocol questions — where to match, eager vs rendezvous
handoff, flow control without sliding windows — replay on today's
interconnects.  A :class:`ModernMachine` is the cross-era testbed:
*n* hosts on either

* an ``rdma`` fabric (InfiniBand/RoCE-style: a switched, lossless-ish
  link whose NIC retransmits on a per-packet timeout and deduplicates
  by PSN, MVAPICH-style), or
* a ``cxl`` fabric (a CXL switch carrying load/store traffic to shared
  memory segments, cMPI-style).

Both fabrics share one delivery model, :class:`ModernFabric`: a lazily
created worker per directed host pair serializes units in FIFO order,
charges wire time (overhead + bytes/bandwidth) on the simulator clock —
**never** on a host CPU, which is the defining contrast with the kernel
TCP/UDP paths — and hands the unit to the destination's completion
queue.  Delivery is a plain callback plus a counted kick, so a crashed
host (CPU seized forever) never blocks the fabric: its CQ just fills
and is never polled.

Faults plug in exactly like the legacy fabrics: one
:class:`repro.faults.FaultInjector` per fabric decides the fate of every
unit.  Drops and corruptions trigger the NIC's bounded link-level
retransmission (head-of-line blocking: the link retries the head unit
in place, preserving FIFO, unlike the go-back-N kernel transports);
duplicates burn wire time and are absorbed by the PSN check at the
receiving NIC, observable only in the counters.  Exhausted retries kill
the link and surface a :class:`~repro.errors.NetworkError` on both
endpoints — the transport-level failure backstop the FT layer's
detector races against.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, replace
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError, NetworkError
from repro.hw.node import Host
from repro.sim import Simulator
from repro.sim.notify import Notify

__all__ = [
    "ModernLinkParams",
    "RDMA_LINK",
    "CXL_LINK",
    "ModernFabric",
    "ModernMachine",
]


@dataclass(frozen=True)
class ModernLinkParams:
    """Wire-level tunables of a modern fabric (bytes / µs)."""

    #: per-unit serialization + switch + propagation overhead
    link_overhead: float = 0.6
    #: inverse bandwidth (µs per byte)
    per_byte: float = 1.0 / 12500.0
    #: NIC retransmission timeout after a lost/corrupted unit
    retry_timeout: float = 10.0
    #: retransmissions before the link is declared dead.  The budget
    #: (``retry_timeout * max_retries``) deliberately exceeds the FT
    #: layer's ``DETECT_DELAY["modern"]`` so the failure detector, not
    #: the transport, normally announces a crash.
    max_retries: int = 6

    def with_overrides(self, **kw) -> "ModernLinkParams":
        return replace(self, **kw)


#: 100 Gb/s-class switched RDMA fabric (~0.6 µs port-to-port)
RDMA_LINK = ModernLinkParams()

#: CXL 2.0 x8-class memory fabric: lower per-hop latency, higher
#: bandwidth, faster retry on its short link
CXL_LINK = ModernLinkParams(
    link_overhead=0.25, per_byte=1.0 / 25000.0, retry_timeout=5.0,
    max_retries=10,
)

#: wire bytes of a control unit (RTS / FIN / ACK / credit / READ request)
CONTROL_BYTES = 32


class _Unit:
    """One unit of delivery: opaque item + accounting size."""

    __slots__ = ("nbytes", "item", "read")

    def __init__(self, nbytes: int, item: Any, read=None):
        self.nbytes = nbytes
        self.item = item
        #: None, or (reader hostid, data bytes, resolve fn) for the
        #: request leg of an RDMA READ
        self.read = read


class _Link:
    """One directed host pair: FIFO queue + its worker's kick."""

    __slots__ = ("q", "kick", "error")

    def __init__(self, sim: Simulator, name: str):
        self.q: deque = deque()
        self.kick = Notify(sim, name)
        self.error: Optional[Exception] = None


class ModernFabric:
    """Per-pair FIFO delivery with NIC-level retransmission.

    Endpoints attach with :meth:`attach`; units arrive through the
    registered ``deliver`` callback (append to the endpoint's CQ) at
    the moment the wire time elapses — no destination CPU involved,
    which is what lets an RDMA write or READ progress against a busy
    (or crashed) peer.
    """

    def __init__(self, sim: Simulator, name: str, params: ModernLinkParams,
                 injector=None):
        self.sim = sim
        self.name = name
        self.params = params
        self.injector = injector
        self._links: Dict[Tuple[int, int], _Link] = {}
        #: hostid -> (deliver(unit item), link_dead(peer, err))
        self._handlers: Dict[int, Tuple[Callable, Callable]] = {}
        self.packets_sent = 0
        self.packets_dropped = 0
        self.packets_corrupted = 0
        self.packets_duplicated = 0
        self.retransmits = 0

    # -------------------------------------------------------------- wiring
    def attach(self, hostid: int, deliver: Callable[[Any], None],
               link_dead: Callable[[int, Exception], None]) -> None:
        self._handlers[hostid] = (deliver, link_dead)

    # ------------------------------------------------------------ transfer
    def send(self, src: int, dst: int, nbytes: int, item: Any) -> None:
        """Queue one unit on the (src, dst) link (returns immediately)."""
        self._enqueue(src, dst, _Unit(nbytes, item))

    def read(self, reader: int, target: int, nbytes: int,
             resolve: Callable[[], Any]) -> None:
        """RDMA READ: a control-sized request travels reader -> target;
        at arrival the target NIC runs *resolve* (no target CPU) and, if
        it returns an item, streams *nbytes* of data back to *reader*.
        ``resolve`` returning None abandons the pull (the exposed region
        was withdrawn — e.g. the sender's operation was poisoned)."""
        self._enqueue(reader, target,
                      _Unit(CONTROL_BYTES, None, read=(reader, nbytes, resolve)))

    def link_error(self, src: int, dst: int) -> Optional[Exception]:
        link = self._links.get((src, dst))
        return link.error if link is not None else None

    # ----------------------------------------------------------- internals
    def _enqueue(self, src: int, dst: int, unit: _Unit) -> None:
        key = (src, dst)
        link = self._links.get(key)
        if link is None:
            link = self._links[key] = _Link(
                self.sim, f"{self.name}-{src}->{dst}")
            self.sim.process(self._worker(src, dst, link),
                             name=f"{self.name}-link-{src}-{dst}")
        if link.error is not None:
            return  # dead link: the unit is lost, like the peer
        link.q.append(unit)
        link.kick.set()

    def _worker(self, src: int, dst: int, link: _Link):
        """One in-flight unit at a time, FIFO, head-of-line retry."""
        p = self.params
        sim = self.sim
        while True:
            yield link.kick.wait1()
            if not link.q:
                continue  # spurious kick (unit lost to a dying link)
            unit = link.q.popleft()
            attempts = 0
            while True:
                yield sim.timeout1(p.link_overhead + unit.nbytes * p.per_byte)
                self.packets_sent += 1
                fate = ("deliver" if self.injector is None
                        else self.injector.decide(src, dst, unit.nbytes))
                if fate == "duplicate":
                    # the duplicate serializes too; the receiving NIC's
                    # PSN check discards it (counter-visible only)
                    self.packets_duplicated += 1
                    yield sim.timeout1(p.link_overhead + unit.nbytes * p.per_byte)
                    fate = "deliver"
                if fate == "deliver":
                    break
                if fate == "corrupt":
                    self.packets_corrupted += 1
                else:
                    self.packets_dropped += 1
                if attempts >= p.max_retries:
                    self._kill(src, dst, link, attempts + 1)
                    return
                attempts += 1
                self.retransmits += 1
                yield sim.timeout1(p.retry_timeout)
            self._deliver(dst, unit)

    def _deliver(self, dst: int, unit: _Unit) -> None:
        if unit.read is not None:
            reader, nbytes, resolve = unit.read
            item = resolve()
            if item is not None:
                self.send(dst, reader, nbytes, item)
            return
        handler = self._handlers.get(dst)
        if handler is not None:
            handler[0](unit.item)

    def _kill(self, src: int, dst: int, link: _Link, tries: int) -> None:
        err = NetworkError(
            f"{self.name} link {src}->{dst} dead: {tries} transmissions "
            "lost (retry budget exhausted)"
        )
        link.error = err
        link.q.clear()
        for hostid, peer in ((src, dst), (dst, src)):
            handler = self._handlers.get(hostid)
            if handler is not None:
                handler[1](peer, err)


class ModernMachine:
    """*n* hosts on one modern fabric ('rdma' or 'cxl')."""

    def __init__(
        self,
        sim: Simulator,
        nhosts: int,
        network: str = "rdma",
        params: Optional[ModernLinkParams] = None,
        seed: int = 0,
        faults=None,
    ):
        if nhosts < 1:
            raise ConfigurationError(f"nhosts must be >= 1, got {nhosts}")
        if network not in ("rdma", "cxl"):
            raise ConfigurationError(
                f"network must be 'rdma' or 'cxl', got {network!r}")
        self.sim = sim
        self.network = network
        self.hosts: List[Host] = [
            Host(sim, i, name=f"node{i}", seed=seed) for i in range(nhosts)
        ]
        self.params = params or (RDMA_LINK if network == "rdma" else CXL_LINK)
        injector = faults.injector(network, sim, seed) if faults is not None else None
        self.fabric = ModernFabric(sim, network, self.params, injector=injector)

    @property
    def nhosts(self) -> int:
        return len(self.hosts)

    def connect_endpoints(self, endpoints) -> None:
        """Let the device type attach its endpoints to the fabric."""
        if endpoints:
            type(endpoints[0]).wire(self, endpoints)
