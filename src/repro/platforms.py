"""Platform builders: assemble a machine + MPI endpoints for a World.

==========  ======================  =============================
platform    machine                 devices
==========  ======================  =============================
meiko       Meiko CS/2 (fat tree)   lowlatency (default), mpich
atm         SGI cluster + ATM       tcp (default), udp
ethernet    SGI cluster + Ethernet  tcp (default), udp
modern      RDMA / CXL testbed      rdma (default), cxl
==========  ======================  =============================

The ``modern`` platform is the cross-era control group: the same
protocol questions (matching locus, eager/rendezvous crossover, credit
flow control) on today's fabrics — an RDMA NIC (MVAPICH-style) and a
CXL shared-memory switch (cMPI-style).  See docs/FABRICS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional

from repro.errors import ConfigurationError
from repro.sim import Simulator

__all__ = [
    "Platform",
    "build_platform",
    "device_key",
    "DEFAULT_DEVICES",
    "PLATFORM_DEVICES",
    "DEVICE_MATRIX",
    "COLL_TUNING",
]


def device_key(platform: str, device: str) -> str:
    """Canonical ``"platform-device"`` cell label.

    This is the key used everywhere a (platform, device) pair names an
    experiment cell: differential-conformance results, parallel-engine
    cache entries, and test parametrisation ids.
    """
    return f"{platform}-{device}"

DEFAULT_DEVICES = {
    "meiko": "lowlatency", "atm": "tcp", "ethernet": "tcp", "modern": "rdma",
}

#: every device available on each platform (the default listed first)
PLATFORM_DEVICES = {
    "meiko": ("lowlatency", "mpich"),
    "atm": ("tcp", "udp"),
    "ethernet": ("tcp", "udp"),
    "modern": ("rdma", "cxl"),
}

#: the full (platform, device) matrix — the paper's device
#: implementations (lowlatency, mpich, and the cluster tcp/udp
#: endpoints on both fabrics) plus the modern rdma/cxl cells.  Test
#: fixtures and the conformance fuzzer iterate this.  Order matters:
#: the modern cells are appended *last* so the legacy cell order (and
#: the fuzzer's reference cell, the first entry) is untouched and the
#: pinned determinism goldens stay byte-identical.
DEVICE_MATRIX = tuple(
    (platform, device)
    for platform in ("meiko", "atm", "ethernet", "modern")
    for device in PLATFORM_DEVICES[platform]
)


# Per-cell collective tuning tables consumed by the auto-selector in
# repro.mpi.coll.registry (schema documented there; catalog + measured
# crossover numbers in docs/COLLECTIVES.md).  The "small" entries are
# exactly the paper-era defaults, so worlds in the golden determinism
# regimes (<= 8 ranks, sub-crossover payloads) run byte-identical
# traffic; "large"/"wide" entries switch to bandwidth/latency shapes
# where the defaults stop scaling.  Stamped onto every endpoint as
# ``ep.coll_tuning`` by the platform builders.

def _cluster_tuning(shared_medium: bool = False) -> dict:
    # on the shared 10 Mb/s Ethernet every byte serializes onto one
    # wire, so the scatter-allgather broadcast's extra messages never
    # pay off (measured: docs/COLLECTIVES.md) — only the switched ATM
    # fabric gets the large-payload bcast crossover
    bcast = {"small": "linear", "wide": "binomial", "wide_ranks": 16}
    if not shared_medium:
        bcast.update({"large": "scatter_allgather", "large_bytes": 65536,
                      "large_max_ranks": 64})
    return {
        "bcast": bcast,
        "allreduce": {"small": "reduce_bcast", "large": "ring",
                      "large_bytes": 65536, "large_max_ranks": 64},
        "barrier": {"small": "dissemination", "wide": "tree", "wide_ranks": 512},
        "gather": {"small": "linear", "wide": "binomial", "wide_ranks": 16},
        "scatter": {"small": "linear", "wide": "binomial", "wide_ranks": 16},
        "allgather": {"small": "ring", "wide": "gather_bcast", "wide_ranks": 16},
    }


def _modern_tuning() -> dict:
    # switched, full-bisection fabrics: MPICH-style defaults with the
    # bandwidth crossovers pushed out (the wire is ~2 orders of
    # magnitude faster than ATM, so latency shapes win until well past
    # the paper-era 64 KiB switch point — measured: docs/FABRICS.md)
    return {
        "bcast": {"small": "binomial", "large": "scatter_allgather",
                  "large_bytes": 131072, "large_max_ranks": 128},
        "allreduce": {"small": "reduce_bcast", "large": "ring",
                      "large_bytes": 131072, "large_max_ranks": 128},
        "barrier": {"small": "dissemination", "wide": "tree", "wide_ranks": 512},
        "gather": {"small": "linear", "wide": "binomial", "wide_ranks": 16},
        "scatter": {"small": "linear", "wide": "binomial", "wide_ranks": 16},
        "allgather": {"small": "ring", "wide": "gather_bcast", "wide_ranks": 16},
    }


COLL_TUNING = {
    # the CS/2 hardware broadcast beats every point-to-point tree at
    # all sizes measured (docs/COLLECTIVES.md), so bcast never crosses
    # over; allreduce still profits from ring reduce-scatter bandwidth
    "meiko-lowlatency": {
        "bcast": {"small": "hardware"},
        "allreduce": {"small": "reduce_bcast", "large": "ring",
                      "large_bytes": 65536, "large_max_ranks": 128},
        "barrier": {"small": "dissemination", "wide": "tree", "wide_ranks": 512},
        "gather": {"small": "linear", "wide": "binomial", "wide_ranks": 16},
        "scatter": {"small": "linear", "wide": "binomial", "wide_ranks": 16},
        "allgather": {"small": "ring", "wide": "gather_bcast", "wide_ranks": 16},
    },
    "meiko-mpich": {
        "bcast": {"small": "binomial", "large": "scatter_allgather",
                  "large_bytes": 65536, "large_max_ranks": 128},
        "allreduce": {"small": "reduce_bcast", "large": "ring",
                      "large_bytes": 65536, "large_max_ranks": 128},
        "barrier": {"small": "dissemination", "wide": "tree", "wide_ranks": 512},
        "gather": {"small": "linear", "wide": "binomial", "wide_ranks": 16},
        "scatter": {"small": "linear", "wide": "binomial", "wide_ranks": 16},
        "allgather": {"small": "ring", "wide": "gather_bcast", "wide_ranks": 16},
    },
    "atm-tcp": _cluster_tuning(),
    "atm-udp": _cluster_tuning(),
    "ethernet-tcp": _cluster_tuning(shared_medium=True),
    "ethernet-udp": _cluster_tuning(shared_medium=True),
    "modern-rdma": _modern_tuning(),
    "modern-cxl": _modern_tuning(),
}


@dataclass
class Platform:
    """A built machine: hosts + one MPI endpoint per rank."""

    name: str
    device: str
    sim: Simulator
    hosts: List[Any]
    endpoints: List[Any]
    machine: Any = None
    extra: dict = field(default_factory=dict)


def build_platform(
    platform: str,
    device: Optional[str],
    nprocs: int,
    sim: Simulator,
    seed: int = 0,
    machine_params: Any = None,
    device_config: Any = None,
    host_speeds: Any = None,
    kernel_params: Any = None,
    drop_fn: Any = None,
    faults: Any = None,
) -> Platform:
    """Build *platform* with *nprocs* ranks on *sim*.

    ``faults`` (a :class:`repro.faults.FaultPlan`) is valid on every
    platform; the legacy ``drop_fn`` hook is cluster-only and deprecated.
    """
    if nprocs < 1:
        raise ConfigurationError(f"nprocs must be >= 1, got {nprocs}")
    if platform not in DEFAULT_DEVICES:
        raise ConfigurationError(
            f"unknown platform {platform!r}; choose from {sorted(DEFAULT_DEVICES)}"
        )
    device = device or DEFAULT_DEVICES[platform]
    if platform == "meiko":
        if host_speeds is not None or kernel_params is not None or drop_fn is not None:
            raise ConfigurationError(
                "host_speeds/kernel_params/drop_fn apply to the workstation clusters only"
            )
        return _build_meiko(
            device, nprocs, sim, seed, machine_params, device_config, faults
        )
    if platform == "modern":
        if host_speeds is not None or kernel_params is not None or drop_fn is not None:
            raise ConfigurationError(
                "host_speeds/kernel_params/drop_fn apply to the workstation clusters only"
            )
        return _build_modern(
            device, nprocs, sim, seed, machine_params, device_config, faults
        )
    return _build_cluster(
        platform, device, nprocs, sim, seed, machine_params, device_config,
        host_speeds, kernel_params, drop_fn, faults,
    )


def _build_meiko(
    device, nprocs, sim, seed, machine_params, device_config, faults=None
) -> Platform:
    from repro.hw.meiko import MeikoMachine, MeikoParams

    params = machine_params or MeikoParams()
    machine = MeikoMachine(sim, nprocs, params=params, seed=seed, faults=faults)
    if device == "lowlatency":
        from repro.mpi.device.lowlatency import LowLatencyEndpoint

        endpoints = [
            LowLatencyEndpoint(i, machine.nodes[i], config=device_config)
            for i in range(nprocs)
        ]
        for ep in endpoints:
            ep.peers = endpoints
            ep.coll_tuning = COLL_TUNING["meiko-lowlatency"]
    elif device == "mpich":
        from repro.mpi.device.mpich import MpichEndpoint

        tports = machine.tports()
        endpoints = [
            MpichEndpoint(i, machine.nodes[i], tports[i], config=device_config)
            for i in range(nprocs)
        ]
        for ep in endpoints:
            ep.peers = endpoints
            ep.coll_tuning = COLL_TUNING["meiko-mpich"]
    else:
        raise ConfigurationError(
            f"device {device!r} not available on the meiko platform "
            "(choose 'lowlatency' or 'mpich')"
        )
    return Platform("meiko", device, sim, list(machine.nodes), endpoints, machine)


def _build_modern(
    device, nprocs, sim, seed, machine_params, device_config, faults=None
) -> Platform:
    from repro.hw.modern import ModernMachine

    if device not in ("rdma", "cxl"):
        raise ConfigurationError(
            f"device {device!r} not available on the modern platform "
            "(choose 'rdma' or 'cxl')"
        )
    machine = ModernMachine(
        sim, nprocs, network=device, params=machine_params, seed=seed,
        faults=faults,
    )
    if device == "rdma":
        from repro.mpi.device.rdma import RdmaEndpoint

        endpoints = [
            RdmaEndpoint(i, machine.hosts[i], config=device_config)
            for i in range(nprocs)
        ]
    else:
        from repro.mpi.device.cxl import CxlEndpoint

        endpoints = [
            CxlEndpoint(i, machine.hosts[i], config=device_config)
            for i in range(nprocs)
        ]
    tuning = COLL_TUNING[device_key("modern", device)]
    for ep in endpoints:
        ep.peers = endpoints
        ep.coll_tuning = tuning
    machine.connect_endpoints(endpoints)
    return Platform("modern", device, sim, list(machine.hosts), endpoints, machine)


def _build_cluster(
    platform, device, nprocs, sim, seed, machine_params, device_config,
    host_speeds=None, kernel_params=None, drop_fn=None, faults=None,
) -> Platform:
    from repro.hw.cluster import ClusterMachine

    machine = ClusterMachine(
        sim, nprocs, network=platform, params=machine_params, seed=seed,
        host_speeds=host_speeds, kernel_params=kernel_params, drop_fn=drop_fn,
        faults=faults,
    )
    if device == "tcp":
        from repro.mpi.device.tcpdev import TcpEndpoint

        endpoints = [
            TcpEndpoint(i, machine.hosts[i], config=device_config) for i in range(nprocs)
        ]
    elif device == "udp":
        from repro.mpi.device.udpdev import UdpEndpoint

        endpoints = [
            UdpEndpoint(i, machine.hosts[i], config=device_config) for i in range(nprocs)
        ]
    else:
        raise ConfigurationError(
            f"device {device!r} not available on the {platform} platform "
            "(choose 'tcp' or 'udp')"
        )
    tuning = COLL_TUNING[device_key(platform, device)]
    for ep in endpoints:
        ep.peers = endpoints
        ep.coll_tuning = tuning
    machine.connect_endpoints(endpoints)
    return Platform(platform, device, sim, list(machine.hosts), endpoints, machine)
