"""Counted notifications: set/wait/poll with semaphore semantics.

A :class:`Notify` is the kernel-side analogue of a condition flag: a
``set()`` that arrives before the ``wait()`` is not lost (it is
counted), waiters wake FIFO, and an un-fired wait can be cancelled so
its token is not consumed by a stale waiter.  The Meiko hardware event
(:class:`repro.hw.meiko.events.HwEvent`) and the protocol stacks'
wakeups are both built on this.
"""

from __future__ import annotations

from collections import deque
from typing import Deque

from repro.sim.core import Event, Simulator

__all__ = ["Notify"]


class Notify:
    """A counted event (semaphore-style signal)."""

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        self._count = 0
        self._waiters: Deque[Event] = deque()
        self.total_sets = 0

    @property
    def count(self) -> int:
        """Pending (unconsumed) sets."""
        return self._count

    def set(self) -> None:
        """Fire once; wakes the oldest waiter if any."""
        self.total_sets += 1
        if self._waiters:
            self._waiters.popleft().succeed(None)
        else:
            self._count += 1

    def wait(self) -> Event:
        """An event firing when a set is available (consumes one set)."""
        ev = Event(self.sim)
        if self._count > 0:
            self._count -= 1
            ev.succeed(None)
        else:
            self._waiters.append(ev)
        return ev

    def wait1(self) -> Event:
        """Pooled :meth:`wait` for internal hot paths.

        The returned event comes from the simulator's record pool
        (:meth:`repro.sim.Simulator.event1`): yield it exactly once and
        drop it.  Never put a ``wait1`` event into an
        :class:`~repro.sim.AnyOf`/:class:`~repro.sim.AllOf` or read it
        after it fired — use :meth:`wait` for those (the transports'
        RTO races do).  ``cancel_wait`` is safe on either kind.
        """
        ev = self.sim.event1()
        if self._count > 0:
            self._count -= 1
            ev.succeed(None)
        else:
            self._waiters.append(ev)
        return ev

    def cancel_wait(self, ev: Event) -> bool:
        """Withdraw a not-yet-fired wait.  True if it was still queued."""
        try:
            self._waiters.remove(ev)
            return True
        except ValueError:
            return False

    def poll(self) -> bool:
        """Consume one pending set if available (non-blocking)."""
        if self._count > 0:
            self._count -= 1
            return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name} count={self._count} waiters={len(self._waiters)}>"
