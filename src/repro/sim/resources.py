"""Shared-resource primitives built on the event kernel.

* :class:`Resource` -- a counted resource (CPU, bus, DMA engine) with a
  strict-FIFO wait queue;
* :class:`Store` -- an unbounded-or-bounded FIFO of items (mailboxes,
  NIC receive queues, co-processor command queues);
* :class:`PriorityStore` -- a store whose ``get`` returns the smallest
  item first.

All waits are events, so processes use them with plain ``yield``::

    req = cpu.request()
    yield req
    yield sim.timeout(cost)
    cpu.release(req)

or, more conveniently, with :meth:`Resource.use`::

    yield from cpu.use(cost)
"""

from __future__ import annotations

from heapq import heappush, heappop
from collections import deque
from typing import Any, Deque, List, Optional, Tuple

from repro.sim.core import Event, _PENDING, SimulationError, Simulator

__all__ = ["Request", "Resource", "Store", "PriorityStore"]


class Request(Event):
    """A pending claim on a :class:`Resource` (fires when granted).

    Requests are handles the caller retains across the hold (``release``
    takes the request back), so they are never pooled.
    """

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource"):
        self.sim = resource.sim
        self.callbacks = []
        self._value = _PENDING
        self._ok = None
        self._scheduled = False
        self._defused = False
        self._cancelled = False
        self.resource = resource


class Resource:
    """A counted resource with FIFO granting.

    ``capacity`` units exist; :meth:`request` returns an event that fires
    when a unit is granted; :meth:`release` returns the unit and wakes
    the next waiter.
    """

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._queue: Deque[Request] = deque()

    @property
    def in_use(self) -> int:
        """Units currently granted."""
        return self._in_use

    @property
    def queued(self) -> int:
        """Requests waiting for a unit."""
        return len(self._queue)

    def request(self) -> Request:
        """Claim one unit; the returned event fires when granted."""
        req = Request(self)
        if self._in_use < self.capacity:
            self._in_use += 1
            req.succeed(req)
        else:
            self._queue.append(req)
        return req

    def release(self, request: Request) -> None:
        """Return a previously granted unit."""
        if request.resource is not self:
            raise SimulationError("release() of a request from a different resource")
        if not request.triggered:
            # The request never got granted: just cancel it.
            try:
                self._queue.remove(request)
            except ValueError:
                raise SimulationError("release() of an unknown pending request") from None
            request.succeed(None)  # fire so any waiter is not stranded
            return
        if self._queue:
            nxt = self._queue.popleft()
            nxt.succeed(nxt)
        else:
            if self._in_use <= 0:
                raise SimulationError(f"over-release of resource {self.name!r}")
            self._in_use -= 1

    def use(self, hold_time: float):
        """Generator helper: acquire, hold for *hold_time*, release.

        The release is in a ``finally`` that also covers the acquisition
        wait, so an exception thrown into the generator at any point
        (interrupt, failure) returns or cancels the claim.

        The uncontended path runs entirely on pooled records: the grant
        is a pooled event scheduled exactly where a Request grant would
        be (identical event count and sequence numbering — determinism
        depends on it), the hold a pooled timeout.
        """
        sim = self.sim
        if self._in_use < self.capacity and not self._queue:
            self._in_use += 1
            try:
                yield sim.event1().succeed(None)
                yield sim.timeout1(hold_time)
            finally:
                if self._queue:
                    nxt = self._queue.popleft()
                    nxt.succeed(nxt)
                else:
                    if self._in_use <= 0:
                        raise SimulationError(f"over-release of resource {self.name!r}")
                    self._in_use -= 1
            return
        req = self.request()
        released = False
        try:
            yield req
            yield sim.timeout1(hold_time)
            self.release(req)
            released = True
        finally:
            if not released:
                self.release(req)


class Store:
    """A FIFO buffer of items with blocking ``put`` (if bounded) and ``get``.

    ``put(item)`` returns an event firing when the item has been
    accepted; ``get()`` returns an event firing with the next item.

    Both handles come from the simulator's record pool: yield them once
    and drop them (every caller in the tree does — they are the NIC
    rx/tx and co-processor command queues, the hottest store traffic in
    the simulation).
    """

    def __init__(self, sim: Simulator, capacity: float = float("inf"), name: str = ""):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()
        #: queued put handles ride with their item: (event, item)
        self._putters: Deque[Tuple[Event, Any]] = deque()

    def __len__(self) -> int:
        return len(self.items)

    @property
    def waiting_getters(self) -> int:
        return len(self._getters)

    def _do_put(self, item: Any) -> None:
        self.items.append(item)

    def _do_get(self) -> Any:
        return self.items.popleft()

    def put(self, item: Any) -> Event:
        ev = self.sim.event1()
        if len(self.items) < self.capacity:
            self._do_put(item)
            ev.succeed(None)
            if self._getters:
                self._wake_getters()
        else:
            self._putters.append((ev, item))
        return ev

    def get(self) -> Event:
        ev = self.sim.event1()
        if self.items:
            ev.succeed(self._do_get())
            if self._putters:
                self._admit_putters()
        else:
            self._getters.append(ev)
        return ev

    def try_get(self) -> Optional[Any]:
        """Non-blocking get: the next item, or None if empty."""
        if not self.items:
            return None
        item = self._do_get()
        self._admit_putters()
        return item

    def _wake_getters(self) -> None:
        while self._getters and self.items:
            getter = self._getters.popleft()
            getter.succeed(self._do_get())
            self._admit_putters()

    def _admit_putters(self) -> None:
        while self._putters and len(self.items) < self.capacity:
            putter, item = self._putters.popleft()
            self._do_put(item)
            putter.succeed(None)
            self._wake_getters()


class PriorityStore(Store):
    """A store whose ``get`` returns the smallest item (heap order)."""

    def __init__(self, sim: Simulator, capacity: float = float("inf"), name: str = ""):
        super().__init__(sim, capacity, name)
        self.items: List[Any] = []  # type: ignore[assignment]

    def _do_put(self, item: Any) -> None:
        heappush(self.items, item)

    def _do_get(self) -> Any:
        return heappop(self.items)
