"""Core of the discrete-event simulation kernel.

The kernel is intentionally small and has no dependencies beyond the
standard library.  It provides:

* :class:`Simulator` -- the event loop (a binary heap of scheduled
  events, a monotonically increasing clock, deterministic tie-breaking,
  a same-timestamp batch drain in :meth:`Simulator.run`);
* :class:`Event` -- a one-shot future that processes can wait on;
* :class:`Timeout` -- an event that fires after a fixed delay; also a
  cancellable timer handle (:meth:`Timeout.cancel`, O(1) lazy heap
  deletion) and the vehicle for callback timers
  (:meth:`Simulator.call_later`);
* :class:`Process` -- a generator coroutine driven by the simulator,
  itself an event (it fires when the generator returns);
* :class:`AnyOf` / :class:`AllOf` -- condition events;
* :class:`Interrupt` -- asynchronous interruption of a process.

Hot-loop architecture (see docs/PERF.md "Kernel architecture")
--------------------------------------------------------------
The run loop is compiled down to plain-list and tuple operations:

* **Kind dispatch.** Every event class carries a class-level ``_kind``
  tag (`K_EVENT`/`K_TIMEOUT`/`K_PROCESS`); the loop branches on the tag
  instead of ``type()``/``isinstance`` checks, so the only polymorphic
  call left per event is the waiter callback itself.
* **Dual loops, obs hoisted.** :meth:`Simulator.run` dispatches once on
  ``self.obs`` to either :meth:`_run_fast` (tracing disabled: zero obs
  attribute loads per event) or :meth:`_run_traced` (identical event
  order, with bus emissions).  Tracing provably cannot perturb the
  simulation because both loops drive the same inlined fire sequence.
* **Record pooling.** Internal single-waiter records (the timeouts
  behind :meth:`repro.sim.resources.Resource.use`, the wakeup events
  behind :class:`repro.sim.notify.Notify`) come from per-simulator free
  lists via :meth:`Simulator.timeout1` / :meth:`Simulator.event1` and
  are recycled the moment their callbacks have run.  Public
  :meth:`Simulator.timeout` / :meth:`Simulator.event` handles are never
  pooled -- callers may retain them, put them in conditions, or cancel
  them late.  Set ``REPRO_SIM_POOL=0`` to disable recycling (records
  are then ordinary garbage); event order is identical either way.
* **Inlined scheduling.**  ``succeed``/``fail``/``Timeout()`` push the
  heap entry directly instead of funnelling through :meth:`_schedule`.

Determinism
-----------
Events scheduled for the same simulated time fire in (priority,
sequence-number) order, where the sequence number is assigned at
scheduling time.  Given identical inputs and seeds, every run of a
simulation produces the identical event order.  None of the machinery
above may change how sequence numbers are allocated: pooling recycles
*records*, never sequence numbers, and both run loops drain batches in
exactly the order the heap yields them.
"""

from __future__ import annotations

import os
from heapq import heapify, heappush, heappop
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "URGENT",
    "NORMAL",
    "SimulationError",
    "StopRun",
    "Interrupt",
    "Event",
    "Timeout",
    "Process",
    "AnyOf",
    "AllOf",
    "Simulator",
]

_INF = float("inf")

#: Scheduling priority for events that must run before ordinary events at
#: the same timestamp (used internally for process interruption).
URGENT = 0
#: Default scheduling priority.
NORMAL = 1

_PENDING = object()

#: Event-kind tags: class-level dispatch constants read by the run loop
#: (and by the tracer to classify timer fires) instead of type checks.
K_EVENT = 0
K_TIMEOUT = 1
K_PROCESS = 2

#: Free lists stop growing past this many recycled records apiece.
_POOL_CAP = 4096


class SimulationError(Exception):
    """Raised for misuse of the kernel (double trigger, bad yield, ...)."""


class StopRun(BaseException):
    """Raised by an event callback to stop :meth:`Simulator.run` early.

    The run loop swallows it and returns with the clock at the stopping
    event's timestamp; remaining same-time events stay queued.  Derives
    from ``BaseException`` so protocol code catching ``Exception`` can
    never absorb it.  Only raise it from plain callbacks driven by
    ``run()`` -- raising it inside a process generator or under
    :meth:`Simulator.step` propagates to the caller instead.
    """


class Interrupt(Exception):
    """Thrown *into* a process by :meth:`Process.interrupt`.

    The interrupted process may catch it and continue; ``cause`` carries
    the value passed to :meth:`Process.interrupt`.
    """

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence that processes can wait on.

    An event is *pending* until :meth:`succeed` or :meth:`fail` is
    called, after which it is scheduled and eventually *fires*: its
    callbacks run and any waiting process resumes with :attr:`value` (or
    has the failure exception thrown into it).
    """

    __slots__ = ("sim", "callbacks", "_value", "_ok", "_scheduled", "_defused", "_cancelled")

    #: kind tag for the run loop's dispatch (overridden by subclasses)
    _kind = K_EVENT
    #: free-list tag: 0 = never recycled, 1 = timeout pool, 2 = event pool
    _pooled = 0

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        #: Callables invoked with the event when it fires.  ``None`` once
        #: the event has fired (new callbacks are then invoked directly).
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok: Optional[bool] = None
        self._scheduled = False
        self._defused = False
        self._cancelled = False

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been succeeded or failed."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event succeeded.  Only valid once triggered."""
        if self._value is _PENDING:
            raise SimulationError("event is still pending")
        return bool(self._ok)

    @property
    def value(self) -> Any:
        """The event's value (or failure exception).  Only valid once triggered."""
        if self._value is _PENDING:
            raise SimulationError("event is still pending")
        return self._value

    # -- triggering -----------------------------------------------------
    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Mark the event successful and schedule it to fire *now*."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        self._ok = True
        self._value = value
        self._scheduled = True
        sim = self.sim
        sim._seq = seq = sim._seq + 1
        heappush(sim._heap, (sim._now, priority, seq, self))
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        """Mark the event failed; waiters get *exception* thrown into them."""
        if self._value is not _PENDING:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        self._ok = False
        self._value = exception
        self._scheduled = True
        sim = self.sim
        sim._seq = seq = sim._seq + 1
        heappush(sim._heap, (sim._now, priority, seq, self))
        return self

    def defuse(self) -> None:
        """Mark a failed event as handled so it does not crash the run.

        A failed event with no waiter would otherwise abort
        :meth:`Simulator.run` (failures must not pass silently).
        """
        self._defused = True

    # -- waiting --------------------------------------------------------
    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        """Run *fn(event)* when the event fires (immediately if already fired)."""
        if self.callbacks is None:
            fn(self)
        else:
            self.callbacks.append(fn)

    def _fire(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        had_waiter = False
        for fn in callbacks:
            had_waiter = True
            fn(self)
        if not self._ok and not had_waiter and not self._defused:
            # An unhandled failure: abort the simulation loudly.
            raise self._value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending" if not self.triggered else ("ok" if self._ok else "failed")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` microseconds after creation.

    A Timeout doubles as a *cancellable timer handle*: :meth:`cancel`
    withdraws it in O(1) before it fires (lazy heap deletion — the heap
    entry becomes a tombstone that the simulator discards unfired).
    This is how the protocol stacks retire retransmission timers whose
    work was obsoleted by an ACK, instead of letting dead events pile up
    and fire into no-op guards.
    """

    __slots__ = ("delay",)

    _kind = K_TIMEOUT

    def __init__(self, sim: "Simulator", delay: float, value: Any = None):
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        # flat init: one attribute store per slot, no super() chain
        self.sim = sim
        self.callbacks = []
        self._value = value
        self._ok = True
        self._scheduled = True
        self._defused = False
        self._cancelled = False
        self.delay = delay
        sim._seq = seq = sim._seq + 1
        heappush(sim._heap, (sim._now + delay, NORMAL, seq, self))

    def cancel(self) -> bool:
        """Withdraw the timer before it fires.  Returns True on success.

        O(1): the scheduled heap entry is tombstoned and skipped (never
        fired) when it reaches the top; the heap is compacted once
        tombstones dominate.  Cancelling an already-fired (or already-
        cancelled) timer returns False and does nothing.

        Cancellation silently discards the timer's callbacks — a process
        blocked on a cancelled timer would never resume, so only cancel
        timers you own (callback timers from :meth:`Simulator.call_later`
        or timeouts nothing is waiting on).
        """
        if self._cancelled or self.callbacks is None:
            return False
        self._cancelled = True
        self.callbacks = []  # drop references; never runs, `processed` stays False
        sim = self.sim
        sim._note_cancel()
        obs = sim.obs
        if obs is not None:
            obs.emit(sim._now, "sim", "timer.cancel", detail={"delay": self.delay})
        return True


class _PooledTimeout(Timeout):
    """A :class:`Timeout` allocated by :meth:`Simulator.timeout1`.

    Identical behaviour; the tag routes the record back to the
    simulator's timeout free list once its callbacks have run.
    """

    __slots__ = ()

    _pooled = 1


class _PooledEvent(Event):
    """An :class:`Event` allocated by :meth:`Simulator.event1`."""

    __slots__ = ()

    _pooled = 2


class _Initialize(Event):
    """Internal event used to start a freshly created process."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", process: "Process"):
        self.sim = sim
        self.callbacks = [process._resume_cb]
        self._value = None
        self._ok = True
        self._scheduled = True
        self._defused = False
        self._cancelled = False
        sim._seq = seq = sim._seq + 1
        heappush(sim._heap, (sim._now, URGENT, seq, self))


class Process(Event):
    """A generator coroutine driven by the simulator.

    The wrapped generator yields :class:`Event` objects; each yield
    suspends the process until the event fires.  The process is itself an
    event: it succeeds with the generator's return value, or fails with
    an uncaught exception from the generator.
    """

    __slots__ = ("_generator", "_target", "name", "_resume_cb", "_send", "_throw")

    _kind = K_PROCESS

    def __init__(self, sim: "Simulator", generator: Generator, name: str = ""):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"Process() needs a generator, got {generator!r}")
        super().__init__(sim)
        self._generator = generator
        #: the event this process is currently waiting on (None if running/new)
        self._target: Optional[Event] = None
        self.name = name or getattr(generator, "__name__", "process")
        # Cache the bound methods used once per resume: creating a fresh
        # bound-method object per yield is measurable in the hot loop.
        self._resume_cb = self._resume
        self._send = generator.send
        self._throw = generator.throw
        _Initialize(sim, self)

    @property
    def is_alive(self) -> bool:
        """True while the generator has not finished."""
        return not self.triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time.

        Interrupting a finished process is an error; interrupting a
        process blocked on an event detaches it from that event (the
        event remains valid and may be re-awaited).
        """
        if self.triggered:
            raise SimulationError(f"{self.name} has already finished")
        if self.sim._active_process is self:
            raise SimulationError("a process cannot interrupt itself")
        interrupt_ev = Event(self.sim)
        interrupt_ev._ok = False
        interrupt_ev._value = Interrupt(cause)
        interrupt_ev._defused = True
        interrupt_ev.callbacks.append(self._resume_cb)
        self.sim._schedule(interrupt_ev, 0.0, URGENT)
        # Detach from the event we were waiting on so its firing does not
        # also resume us.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume_cb)
            except ValueError:
                pass
        self._target = None

    # -- driving --------------------------------------------------------
    def _resume(self, event: Event) -> None:
        sim = self.sim
        send = self._send
        resume_cb = self._resume_cb
        sim._active_process = self
        self._target = None
        while True:
            try:
                if event._ok:
                    target = send(event._value)
                else:
                    # mark the failure as handled: it is being delivered
                    event._defused = True
                    target = self._throw(event._value)
            except StopIteration as exc:
                sim._active_process = None
                self._ok = True
                self._value = exc.value
                self._scheduled = True
                sim._seq = seq = sim._seq + 1
                heappush(sim._heap, (sim._now, NORMAL, seq, self))
                obs = sim.obs
                if obs is not None:
                    obs.emit(sim._now, "sim", "process.exit",
                             detail={"name": self.name, "ok": True})
                return
            except BaseException as exc:
                sim._active_process = None
                self._ok = False
                self._value = exc
                self._scheduled = True
                sim._seq = seq = sim._seq + 1
                heappush(sim._heap, (sim._now, NORMAL, seq, self))
                obs = sim.obs
                if obs is not None:
                    obs.emit(sim._now, "sim", "process.exit",
                             detail={"name": self.name, "ok": False})
                return

            # Duck-typed Event check: every kernel event has a
            # `callbacks` slot, nothing else a process may yield does
            # (zero-cost try/except replaces isinstance here).
            try:
                cbs = target.callbacks
            except AttributeError:
                exc = SimulationError(
                    f"process {self.name!r} yielded {target!r}; processes must yield Events"
                )
                sim._active_process = None
                self._ok = False
                self._value = exc
                self._scheduled = True
                sim._seq = seq = sim._seq + 1
                heappush(sim._heap, (sim._now, NORMAL, seq, self))
                return
            if cbs is None:
                # Already fired: loop and deliver immediately.
                event = target
                continue
            cbs.append(resume_cb)
            self._target = target
            sim._active_process = None
            return


class _Condition(Event):
    """Base for :class:`AnyOf` / :class:`AllOf`."""

    __slots__ = ("events", "_count")

    def __init__(self, sim: "Simulator", events: Iterable[Event]):
        super().__init__(sim)
        self.events = tuple(events)
        for ev in self.events:
            if ev.sim is not sim:
                raise SimulationError("condition mixes events from different simulators")
        self._count = 0
        if not self.events:
            self.succeed(self._collect())
            return
        for ev in self.events:
            ev.add_callback(self._check)

    def _collect(self) -> dict:
        """Values of all fired-and-ok member events, in member order.

        Uses *processed* (callbacks ran), not merely *triggered*:
        a Timeout is triggered from creation but has not yet occurred.
        """
        return {ev: ev._value for ev in self.events if ev.callbacks is None and ev._ok}

    def _check(self, event: Event) -> None:
        if self.triggered:
            if not event._ok:
                event._defused = True
            return
        if not event._ok:
            event._defused = True
            self.fail(event._value)
            return
        self._count += 1
        if self._satisfied():
            self.succeed(self._collect())

    def _satisfied(self) -> bool:  # pragma: no cover - abstract
        raise NotImplementedError


class AnyOf(_Condition):
    """Fires when any member event succeeds (fails if one fails first)."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._count >= 1


class AllOf(_Condition):
    """Fires when all member events have succeeded."""

    __slots__ = ()

    def _satisfied(self) -> bool:
        return self._count >= len(self.events)


class Simulator:
    """The discrete-event loop.

    >>> sim = Simulator()
    >>> def hello(sim):
    ...     yield sim.timeout(3.0)
    ...     return sim.now
    >>> p = sim.process(hello(sim))
    >>> sim.run()
    >>> p.value
    3.0

    ``pool`` controls record recycling for the internal
    :meth:`timeout1`/:meth:`event1` fast paths; the default follows the
    ``REPRO_SIM_POOL`` environment variable (on unless set to ``0``).
    Event order is identical with pooling on or off.
    """

    def __init__(self, pool: Optional[bool] = None):
        self._now = 0.0
        self._heap: List = []
        self._seq = 0
        self._active_process: Optional[Process] = None
        #: tombstoned (cancelled) entries still sitting in the heap
        self._dead = 0
        #: optional :class:`repro.obs.EventBus`; None keeps every
        #: emission site to a single attribute load + None check
        self.obs = None
        if pool is None:
            pool = os.environ.get("REPRO_SIM_POOL", "1") != "0"
        self._pool_on = bool(pool)
        #: free lists of recycled records (see timeout1/event1)
        self._tpool: List[Timeout] = []
        self._epool: List[Event] = []

    @property
    def now(self) -> float:
        """Current simulated time in microseconds."""
        return self._now

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently executing, if any."""
        return self._active_process

    # -- factories ------------------------------------------------------
    def event(self) -> Event:
        """A fresh pending event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """An event firing *delay* microseconds from now."""
        return Timeout(self, delay, value)

    def timeout1(self, delay: float, value: Any = None) -> Timeout:
        """A pooled one-shot timeout for internal hot paths.

        Pool contract (see docs/PERF.md): the caller yields the returned
        event exactly once and then drops every reference.  The record
        is recycled into a free list the moment its callbacks have run,
        so it must never be retained across a suspension, given a second
        waiter, placed in an :class:`AnyOf`/:class:`AllOf`, or cancelled
        after it fired.  Use :meth:`timeout` for anything user-visible.
        """
        if self._pool_on:
            pool = self._tpool
            if pool:
                if delay < 0:
                    raise ValueError(f"negative delay {delay!r}")
                t = pool.pop()
                t.callbacks = []
                t._value = value
                t._scheduled = True
                t._defused = False
                t._cancelled = False
                t.delay = delay
                self._seq = seq = self._seq + 1
                heappush(self._heap, (self._now + delay, NORMAL, seq, t))
                return t
            return _PooledTimeout(self, delay, value)
        return Timeout(self, delay, value)

    def event1(self) -> Event:
        """A pooled pending event for internal hot paths.

        Same contract as :meth:`timeout1`.  An event1 that is abandoned
        before firing is simply garbage (it never reaches the pool).
        """
        if self._pool_on:
            pool = self._epool
            if pool:
                ev = pool.pop()
                ev.callbacks = []
                ev._value = _PENDING
                ev._ok = None
                ev._scheduled = False
                ev._defused = False
                ev._cancelled = False
                return ev
            return _PooledEvent(self)
        return Event(self)

    def call_later(self, delay: float, fn: Callable[[Event], None]) -> Timeout:
        """Schedule ``fn(event)`` to run *delay* microseconds from now.

        Returns the :class:`Timeout` as a cancellable timer handle:
        ``handle.cancel()`` withdraws the callback in O(1) before it
        fires.  This is the cheap way to run timer-driven bookkeeping
        (retransmission deadlines, delayed ACKs) without dedicating a
        process to sleep on each timer.
        """
        t = Timeout(self, delay)
        t.callbacks.append(fn)
        obs = self.obs
        if obs is not None:
            obs.emit(self._now, "sim", "timer.arm", detail={"delay": delay})
        return t

    def process(self, generator: Generator, name: str = "") -> Process:
        """Start a new process from *generator*."""
        p = Process(self, generator, name)
        obs = self.obs
        if obs is not None:
            obs.emit(self._now, "sim", "process.spawn", detail={"name": p.name})
        return p

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    # -- scheduling -----------------------------------------------------
    def _schedule(self, event: Event, delay: float, priority: int) -> None:
        if event._scheduled:
            raise SimulationError(f"{event!r} is already scheduled")
        event._scheduled = True
        seq = self._seq + 1
        self._seq = seq
        heappush(self._heap, (self._now + delay, priority, seq, event))

    def _note_cancel(self) -> None:
        """Account one tombstone; compact the heap if they dominate."""
        self._dead += 1
        heap = self._heap
        if self._dead > 512 and self._dead * 2 > len(heap):
            # in place: run()/step() hold local references to this list
            heap[:] = [entry for entry in heap if not entry[3]._cancelled]
            heapify(heap)
            self._dead = 0

    def _recycle(self, ev: Event) -> None:
        """Return a pooled record to its free list (drops the payload ref)."""
        k = ev._pooled
        if k:
            ev._value = None
            pool = self._tpool if k == 1 else self._epool
            if len(pool) < _POOL_CAP:
                pool.append(ev)

    # -- running --------------------------------------------------------
    def step(self) -> None:
        """Fire the next scheduled live event, advancing the clock.

        Cancelled timers encountered on the way are discarded unfired.
        Stepping an empty (or all-tombstone) queue raises
        :class:`SimulationError`.
        """
        heap = self._heap
        while heap:
            t, _prio, _seq, event = heappop(heap)
            if event._cancelled:
                self._dead -= 1
                self._recycle(event)
                continue
            if t < self._now:  # pragma: no cover - defensive
                raise SimulationError("time went backwards")
            self._now = t
            obs = self.obs
            if obs is not None and event._kind == K_TIMEOUT:
                obs.emit(t, "sim", "timer.fire", detail={"delay": event.delay})
            event._fire()
            self._recycle(event)
            return
        raise SimulationError("step() on an empty event queue")

    def peek(self) -> float:
        """Time of the next live scheduled event (``inf`` if none).

        Prunes cancelled timers off the top of the heap, so after a call
        ``self._heap`` is empty iff no live events remain.
        """
        heap = self._heap
        while heap and heap[0][3]._cancelled:
            _t, _prio, _seq, dead = heappop(heap)
            self._dead -= 1
            self._recycle(dead)
        return heap[0][0] if heap else _INF

    def run(self, until: Optional[float] = None) -> None:
        """Run until the event queue drains or the clock passes *until*.

        If *until* is given the clock is left exactly at ``until`` when
        the horizon is reached (pending events stay queued).

        The loop drains all events that share a timestamp in one batch:
        the horizon check and clock write happen once per distinct
        timestamp, not once per event.  A callback raising
        :class:`StopRun` returns immediately (remaining events stay
        queued).
        """
        if until is not None and until < self._now:
            raise ValueError(f"until={until!r} is in the past (now={self._now!r})")
        if self.obs is not None:
            self._run_traced(until)
        else:
            self._run_fast(until)

    def _run_fast(self, until: Optional[float]) -> None:
        # The hot loop: no obs loads, no method calls besides heappop and
        # the waiter callbacks, kind/pool dispatch on class-level ints.
        heap = self._heap
        pop = heappop
        tpool = self._tpool
        epool = self._epool
        horizon = _INF if until is None else until
        try:
            while heap:
                entry = heap[0]
                ev = entry[3]
                if ev._cancelled:
                    pop(heap)
                    self._dead -= 1
                    k = ev._pooled
                    if k:
                        ev._value = None
                        pool = tpool if k == 1 else epool
                        if len(pool) < _POOL_CAP:
                            pool.append(ev)
                    continue
                t = entry[0]
                if t > horizon:
                    self._now = until
                    return
                self._now = t
                # same-timestamp batch drain (includes events the fired
                # events schedule for this same instant)
                while heap and heap[0][0] == t:
                    ev = pop(heap)[3]
                    if ev._cancelled:
                        self._dead -= 1
                    else:
                        cbs = ev.callbacks
                        ev.callbacks = None
                        if cbs:
                            # single-waiter wakeup fast path
                            if len(cbs) == 1:
                                cbs[0](ev)
                            else:
                                for fn in cbs:
                                    fn(ev)
                        elif ev._ok is False and not ev._defused:
                            raise ev._value
                    k = ev._pooled
                    if k:
                        ev._value = None
                        pool = tpool if k == 1 else epool
                        if len(pool) < _POOL_CAP:
                            pool.append(ev)
        except StopRun:
            return
        if until is not None:
            self._now = until

    def _run_traced(self, until: Optional[float]) -> None:
        # Identical drain order to _run_fast, plus bus emissions.
        heap = self._heap
        pop = heappop
        obs = self.obs
        horizon = _INF if until is None else until
        try:
            while heap:
                entry = heap[0]
                ev = entry[3]
                if ev._cancelled:
                    pop(heap)
                    self._dead -= 1
                    self._recycle(ev)
                    continue
                t = entry[0]
                if t > horizon:
                    self._now = until
                    return
                self._now = t
                while heap and heap[0][0] == t:
                    ev = pop(heap)[3]
                    if ev._cancelled:
                        self._dead -= 1
                    else:
                        if ev._kind == K_TIMEOUT:
                            obs.emit(t, "sim", "timer.fire", detail={"delay": ev.delay})
                        cbs = ev.callbacks
                        ev.callbacks = None
                        if cbs:
                            for fn in cbs:
                                fn(ev)
                        elif ev._ok is False and not ev._defused:
                            raise ev._value
                    self._recycle(ev)
        except StopRun:
            return
        if until is not None:
            self._now = until

    def run_until_complete(self, process: Process, limit: float = float("inf")):
        """Run until *process* finishes; return its value or re-raise its error.

        ``limit`` guards against deadlock: exceeding it raises
        :class:`SimulationError`.

        After the generator returns, the loop keeps stepping until the
        process *event* itself has fired, so ``process.processed`` is
        True on return and same-time bookkeeping (waiter callbacks,
        condition updates) has run.
        """
        while not process.triggered:
            t = self.peek()  # prunes tombstones: _heap empty <=> drained
            if not self._heap:
                raise SimulationError(
                    f"deadlock: event queue drained but {process.name!r} never finished"
                )
            if t > limit:
                raise SimulationError(f"time limit {limit} exceeded waiting for {process.name!r}")
            self.step()
        if not process.ok:
            process._defused = True
        # Drain up to (and including) the completion event so .processed
        # is consistent for the caller.
        while not process.processed:
            self.step()
        if not process.ok:
            raise process.value
        return process.value
