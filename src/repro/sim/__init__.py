"""Deterministic discrete-event simulation kernel.

Everything in :mod:`repro` runs on this kernel: simulated processors,
network links, protocol stacks and MPI ranks are all :class:`Process`
coroutines scheduled by a single :class:`Simulator`.

The programming model follows the classic generator-coroutine style
(similar to SimPy): a simulated activity is a Python generator that
``yield``\\ s :class:`Event` objects; the process resumes when the event
fires.  Composition uses ``yield from``::

    def pinger(sim, wire):
        yield sim.timeout(5.0)          # wait 5 simulated microseconds
        yield from wire.send(b"ping")   # delegate to a sub-activity

Time is a ``float`` in **microseconds** throughout the library; ties are
broken by (priority, sequence number) so runs are fully deterministic.
"""

from repro.sim.core import (
    URGENT,
    NORMAL,
    Event,
    Timeout,
    Process,
    Simulator,
    AnyOf,
    AllOf,
    Interrupt,
    SimulationError,
    StopRun,
)
from repro.sim.resources import Resource, Store, PriorityStore
from repro.sim.trace import Tracer, TraceRecord

__all__ = [
    "URGENT",
    "NORMAL",
    "Event",
    "Timeout",
    "Process",
    "Simulator",
    "AnyOf",
    "AllOf",
    "Interrupt",
    "SimulationError",
    "StopRun",
    "Resource",
    "Store",
    "PriorityStore",
    "Tracer",
    "TraceRecord",
]
