"""Lightweight event tracing and measurement helpers.

A :class:`Tracer` collects timestamped records by category.  It is used
by the protocol stacks for debugging and by the benchmark harness to
break down latencies (Table 1 of the paper).

Since the unified instrumentation spine landed, a Tracer is a thin view
over an :class:`~repro.obs.bus.EventBus`: every :meth:`log` call emits a
``trace``-layer event, and :attr:`records` derives the classic
:class:`TraceRecord` list from the bus.  Pass ``bus=`` to share a
world's event bus, so ad-hoc trace records interleave with the
sim/net/dev/mpi events in one exported timeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional

from repro.obs.bus import EventBus

__all__ = ["TraceRecord", "Tracer"]

#: the bus layer Tracer records live on
TRACE_LAYER = "trace"


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry: *when*, *who*, *what*."""

    time: float
    category: str
    detail: Any = None


class Tracer:
    """Collects :class:`TraceRecord` entries, optionally filtered.

    Tracing is off by default; enable categories with :meth:`enable`
    (``"*"`` enables everything).
    """

    def __init__(self, bus: Optional[EventBus] = None):
        self.bus = bus if bus is not None else EventBus()
        self._enabled: set = set()

    @property
    def records(self) -> List[TraceRecord]:
        """The trace-layer events of the bus, as classic records."""
        return [
            TraceRecord(e.t, e.kind, e.detail)
            for e in self.bus.events
            if e.layer == TRACE_LAYER
        ]

    def enable(self, *categories: str) -> None:
        self._enabled.update(categories)

    def disable(self, *categories: str) -> None:
        self._enabled.difference_update(categories)

    def enabled(self, category: str) -> bool:
        return "*" in self._enabled or category in self._enabled

    def log(self, time: float, category: str, detail: Any = None) -> None:
        if self.enabled(category):
            self.bus.emit(time, TRACE_LAYER, category, detail=detail)

    def by_category(self, category: str) -> Iterator[TraceRecord]:
        return (r for r in self.records if r.category == category)

    def clear(self) -> None:
        """Drop the trace-layer records (other layers on a shared bus
        are left alone)."""
        self.bus.events[:] = [e for e in self.bus.events if e.layer != TRACE_LAYER]

    def spans(self, start_cat: str, end_cat: str) -> List[float]:
        """Pair up start/end records in order and return durations."""
        out: List[float] = []
        starts: List[float] = []
        for rec in self.records:
            if rec.category == start_cat:
                starts.append(rec.time)
            elif rec.category == end_cat and starts:
                out.append(rec.time - starts.pop(0))
        return out

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for rec in self.records:
            out[rec.category] = out.get(rec.category, 0) + 1
        return out

    def last(self, category: str) -> Optional[TraceRecord]:
        for rec in reversed(self.records):
            if rec.category == category:
                return rec
        return None
