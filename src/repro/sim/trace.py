"""Lightweight event tracing and measurement helpers.

A :class:`Tracer` collects timestamped records by category.  It is used
by the protocol stacks for debugging and by the benchmark harness to
break down latencies (Table 1 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

__all__ = ["TraceRecord", "Tracer"]


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry: *when*, *who*, *what*."""

    time: float
    category: str
    detail: Any = None


@dataclass
class Tracer:
    """Collects :class:`TraceRecord` entries, optionally filtered.

    Tracing is off by default; enable categories with :meth:`enable`
    (``"*"`` enables everything).
    """

    records: List[TraceRecord] = field(default_factory=list)
    _enabled: set = field(default_factory=set)

    def enable(self, *categories: str) -> None:
        self._enabled.update(categories)

    def disable(self, *categories: str) -> None:
        self._enabled.difference_update(categories)

    def enabled(self, category: str) -> bool:
        return "*" in self._enabled or category in self._enabled

    def log(self, time: float, category: str, detail: Any = None) -> None:
        if self.enabled(category):
            self.records.append(TraceRecord(time, category, detail))

    def by_category(self, category: str) -> Iterator[TraceRecord]:
        return (r for r in self.records if r.category == category)

    def clear(self) -> None:
        self.records.clear()

    def spans(self, start_cat: str, end_cat: str) -> List[float]:
        """Pair up start/end records in order and return durations."""
        out: List[float] = []
        starts: List[float] = []
        for rec in self.records:
            if rec.category == start_cat:
                starts.append(rec.time)
            elif rec.category == end_cat and starts:
                out.append(rec.time - starts.pop(0))
        return out

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for rec in self.records:
            out[rec.category] = out.get(rec.category, 0) + 1
        return out

    def last(self, category: str) -> Optional[TraceRecord]:
        for rec in reversed(self.records):
            if rec.category == category:
                return rec
        return None
