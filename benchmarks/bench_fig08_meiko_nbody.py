"""Figure 8 — Meiko particle pairwise interactions (24 particles,
up to 8 processes).

Paper: with evenly loaded processes interacting at nearly the same
time, the lower-latency communication mechanism is beneficial.
"""

from benchmarks.conftest import attach_series, run_once
from repro.bench import figures
from repro.bench.tables import format_series


def test_fig08_meiko_nbody(benchmark):
    result = run_once(benchmark, figures.fig08_meiko_nbody)
    series = result["series"]
    ll = dict(series["low latency"])
    mp = dict(series["mpich"])

    for p in ll:
        if p > 1:
            assert ll[p] < mp[p], f"low latency not faster at P={p}"
    # at only 24 particles, communication eventually dominates MPICH:
    # its time at 8 processes is no better than at 4
    assert mp[8] >= mp[4] * 0.8

    attach_series(benchmark, result)
    print()
    print(format_series(series, xlabel="procs",
                        title="Figure 8: Meiko pairwise interactions (us, 24 particles)"))
    print("paper: low latency wins; scaling is communication-bound at 24 particles")
