"""Figure 6 — TCP bandwidth on Ethernet and ATM, raw vs MPI.

Paper: ATM delivers roughly an order of magnitude more bandwidth than
the shared 10 Mb/s Ethernet; MPI tracks raw TCP closely.
"""

from benchmarks.conftest import attach_series, run_once
from repro.bench import figures
from repro.bench.tables import format_series


def test_fig06_tcp_bandwidth(benchmark):
    result = run_once(benchmark, figures.fig06_tcp_bandwidth)
    series = result["series"]
    tcp_eth = dict(series["tcp/eth"])
    tcp_atm = dict(series["tcp/atm"])
    mpi_eth = dict(series["mpi/tcp/eth"])
    mpi_atm = dict(series["mpi/tcp/atm"])
    big = max(tcp_eth)

    # Ethernet is wire-limited under 1.25 MB/s; ATM far above it
    assert tcp_eth[big] < 1.25
    assert tcp_atm[big] > 4 * tcp_eth[big]
    # MPI costs a little bandwidth but stays in the same regime
    assert mpi_eth[big] > 0.5 * tcp_eth[big]
    assert mpi_atm[big] > 0.5 * tcp_atm[big]
    # bandwidth grows with message size for all series
    small = min(tcp_eth)
    for s in (tcp_eth, tcp_atm, mpi_eth, mpi_atm):
        assert s[small] < s[big]

    attach_series(benchmark, result)
    print()
    print(format_series(series, xlabel="bytes", title="Figure 6: TCP bandwidth (MB/s)"))
    print("paper: ATM >> shared Ethernet; MPI tracks raw TCP")
