"""Figure 1 — Meiko transfer mechanisms: buffered (eager) vs
no-buffering (rendezvous) round-trip time, and their crossover.

Paper: the curves intersect at 180 bytes, which the implementation
adopts as the eager/rendezvous threshold.
"""

from benchmarks.conftest import attach_series, run_once
from repro.bench import figures
from repro.bench.tables import format_series


def test_fig01_transfer_mechanisms(benchmark):
    result = run_once(benchmark, figures.fig01_transfer_mechanisms)
    series = result["series"]
    eager = dict(series["Buffering"])
    rdv = dict(series["No buffering"])

    # shape: buffering wins for tiny messages, rendezvous for large ones
    assert eager[1] < rdv[1]
    assert eager[512] > rdv[512]
    # crossover in the paper's neighbourhood (DESIGN.md band)
    assert result["crossover"] is not None
    assert 120 <= result["crossover"] <= 260, result["crossover"]

    attach_series(benchmark, result)
    benchmark.extra_info["crossover_bytes"] = round(result["crossover"], 1)
    print()
    print(format_series(series, xlabel="bytes", title="Figure 1: Meiko transfer mechanisms (RTT us)"))
    print(f"measured crossover: {result['crossover']:.0f} B (paper: 180 B)")
