"""Tracked kernel performance suite — writes ``BENCH_kernel.json``.

Two entry points:

* ``python benchmarks/bench_kernel_perf.py [--quick] [--workers N]
  [--out PATH]`` — run the four kernel workloads (see
  ``repro.bench.kernel_perf``), print a table, write the JSON report,
  and exit non-zero if any workload falls below its events-per-second
  floor.  ``--quick`` runs reduced problem sizes (CI smoke) and halves
  the floors; ``--workers N`` overlaps the workloads on the parallel
  experiment engine (per-shard timing lands in the report).  Floors
  scale by the ``REPRO_BENCH_FLOOR_SLACK`` env var (relative tolerance
  for slow or contended runners).
* ``pytest benchmarks/bench_simulator_throughput.py`` — the same
  workloads and floors as pytest-benchmark cases.

The report is stamped with git SHA, host info, worker count, and an ISO
timestamp (``repro.bench.meta``) so the trajectory stays comparable
across commits and machines.
"""

import argparse
import json
import sys

from repro.bench.kernel_perf import effective_floor, run_suite
from repro.bench.meta import bench_metadata


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true", help="reduced sizes, halved floors")
    ap.add_argument("--out", default="BENCH_kernel.json", help="JSON report path")
    ap.add_argument("--repeats", type=int, default=3, help="best-of repetitions")
    ap.add_argument("--workers", type=int, default=None,
                    help="overlap workloads over N worker processes")
    ap.add_argument("--no-floor", action="store_true", help="report only, never fail")
    args = ap.parse_args(argv)

    suite = run_suite(quick=args.quick, repeats=args.repeats, workers=args.workers)
    suite["meta"] = bench_metadata(workers=args.workers)
    failed = []
    print(
        f"kernel perf suite ({suite['mode']} mode, best of {args.repeats}, "
        f"{suite['workers']} worker{'s' if suite['workers'] != 1 else ''})"
    )
    for name, rec in suite["workloads"].items():
        floor = effective_floor(name, quick=args.quick)
        ok = rec["events_per_sec"] >= floor
        if not ok:
            failed.append(name)
        print(
            f"  {name:<12} {rec['events']:>8} events  {rec['wall_s']:>9.4f} s  "
            f"{rec['events_per_sec']:>9} ev/s  (floor {floor}{'' if ok else '  ** UNDER **'})"
        )
    for shard in suite.get("shards", ()):
        print(f"  shard {shard['shard']}: {shard['cells']} workloads "
              f"in {shard['wall_s']:.3f} s")
    with open(args.out, "w") as fh:
        json.dump(suite, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out} ({suite['meta']['git_sha']} @ {suite['meta']['timestamp']})")
    if failed and not args.no_floor:
        print(f"FAIL: under floor: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
