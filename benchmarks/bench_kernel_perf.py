"""Tracked kernel performance suite — writes ``BENCH_kernel.json``.

Two entry points:

* ``python benchmarks/bench_kernel_perf.py [--quick] [--out PATH]`` —
  run the four kernel workloads (see ``repro.bench.kernel_perf``),
  print a table, write the JSON report, and exit non-zero if any
  workload falls below its events-per-second floor.  ``--quick`` runs
  reduced problem sizes (CI smoke) and halves the floors.
* ``pytest benchmarks/bench_simulator_throughput.py`` — the same
  workloads and floors as pytest-benchmark cases.
"""

import argparse
import json
import sys

from repro.bench.kernel_perf import FLOORS, run_suite


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--quick", action="store_true", help="reduced sizes, halved floors")
    ap.add_argument("--out", default="BENCH_kernel.json", help="JSON report path")
    ap.add_argument("--repeats", type=int, default=3, help="best-of repetitions")
    ap.add_argument("--no-floor", action="store_true", help="report only, never fail")
    args = ap.parse_args(argv)

    suite = run_suite(quick=args.quick, repeats=args.repeats)
    scale = 0.5 if args.quick else 1.0
    failed = []
    print(f"kernel perf suite ({suite['mode']} mode, best of {args.repeats})")
    for name, rec in suite["workloads"].items():
        floor = int(FLOORS[name] * scale)
        ok = rec["events_per_sec"] >= floor
        if not ok:
            failed.append(name)
        print(
            f"  {name:<12} {rec['events']:>8} events  {rec['wall_s']:>9.4f} s  "
            f"{rec['events_per_sec']:>9} ev/s  (floor {floor}{'' if ok else '  ** UNDER **'})"
        )
    with open(args.out, "w") as fh:
        json.dump(suite, fh, indent=2)
        fh.write("\n")
    print(f"wrote {args.out}")
    if failed and not args.no_floor:
        print(f"FAIL: under floor: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
