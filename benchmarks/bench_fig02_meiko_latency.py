"""Figure 2 — Meiko round-trip latency: MPI(mpich) vs MPI(low latency)
vs the bare tport widget.

Paper: 1-byte round trips of 52 µs (tport), 104 µs (low-latency MPI,
+52 over the widget) and 210 µs (MPICH, +158 over the widget).
"""

from benchmarks.conftest import attach_series, run_once
from repro.bench import figures
from repro.bench.tables import format_series


def test_fig02_meiko_latency(benchmark):
    result = run_once(benchmark, figures.fig02_meiko_latency)
    series = result["series"]
    tport = dict(series["Meiko tport"])
    ll = dict(series["MPI(low latency)"])
    mpich = dict(series["MPI(mpich)"])

    # ordering holds at every size
    for n in tport:
        assert tport[n] < ll[n] < mpich[n], f"ordering broken at {n} bytes"
    # calibrated endpoints within 15% of the paper
    assert abs(tport[1] - 52.0) / 52.0 < 0.15
    assert abs(ll[1] - 104.0) / 104.0 < 0.15
    assert abs(mpich[1] - 210.0) / 210.0 < 0.15
    # the low-latency curve bends at the 180-byte protocol switch:
    # the marginal per-byte cost drops after the threshold
    slope_before = (ll[180] - ll[128]) / (180 - 128)
    slope_after = (ll[512] - ll[256]) / (512 - 256)
    assert slope_after < slope_before

    attach_series(benchmark, result)
    print()
    print(format_series(series, xlabel="bytes", title="Figure 2: Meiko round-trip latency (us)"))
    print("paper 1B: tport 52, low latency 104, mpich 210")
