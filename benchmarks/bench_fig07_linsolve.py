"""Figure 7 — Meiko linear equation solver, 1-32 processes.

Paper: the hardware-broadcast implementation outperforms MPICH's
point-to-point broadcast, increasingly so at higher process counts.
"""

from benchmarks.conftest import attach_series, run_once
from repro.bench import figures
from repro.bench.tables import format_series


def test_fig07_linsolve(benchmark):
    result = run_once(benchmark, figures.fig07_linsolve)
    series = result["series"]
    ll = dict(series["low latency"])
    mp = dict(series["mpich"])

    # identical at P=1 (no communication), low latency wins beyond
    assert abs(ll[1] - mp[1]) / mp[1] < 0.05
    for p in ll:
        if p > 1:
            assert ll[p] < mp[p], f"low latency not faster at P={p}"
    # the advantage grows with process count
    assert mp[32] / ll[32] > mp[2] / ll[2]
    # parallelism helps the low-latency implementation throughout
    assert ll[32] < ll[4] < ll[1]

    attach_series(benchmark, result)
    print()
    print(format_series(series, xlabel="procs",
                        title="Figure 7: Meiko linear equation solver (s, N=192)"))
    print("paper: hardware broadcast beats pt2pt broadcast; gap grows with P")
