"""Benchmark-suite helpers.

Every target regenerates one figure/table of the paper.  The benchmark
fixture measures wall-clock cost of the (deterministic) simulation; the
*simulated* results are printed as paper-style tables and attached to
``benchmark.extra_info`` so ``--benchmark-json`` output carries them.

Run with::

    pytest benchmarks/ --benchmark-only
"""

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run *fn* exactly once under the benchmark timer (simulations are
    deterministic, so repeat rounds would measure the same thing)."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


def attach_series(benchmark, result, scale=1.0):
    """Stash measured series into benchmark.extra_info."""
    for name, points in result["series"].items():
        benchmark.extra_info[name] = [(x, round(v * scale, 3)) for x, v in points]
    if "paper" in result:
        benchmark.extra_info["paper"] = {
            k: v for k, v in result["paper"].items() if not isinstance(v, dict)
        }
