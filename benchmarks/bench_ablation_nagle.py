"""Ablation — Nagle's algorithm vs MPI-style small-message traffic.

The era's MPI-over-TCP implementations all set TCP_NODELAY; this bench
shows why: with Nagle on, a burst of small messages coalesces into few
segments (good for the wire) but the final sub-MSS piece is held until
the previous data is acknowledged — and the receiver's *delayed* ACK
only fires after its timer, so the tail of every burst eats a
multi-millisecond stall.
"""

from benchmarks.conftest import run_once
from repro.bench.tables import format_table
from repro.hw.cluster import ClusterMachine
from repro.net.kernel import ATM_KERNEL
from repro.net.tcp import TcpLayer
from repro.sim import Simulator

BURST = 10
NBYTES = 100


def _request(nagle: bool):
    """The classic pathology: a request written as two pieces (header,
    then payload) followed by a wait for the reply.  Nagle holds the
    payload until the header is acked — and the ack is delayed."""
    kp = ATM_KERNEL.with_overrides(nagle=nagle)
    sim = Simulator()
    m = ClusterMachine(sim, 2, network="atm", kernel_params=kp)
    a, b = TcpLayer.connect_pair(m.kernels[0], m.kernels[1], 5000, 5000)

    def client(sim):
        t0 = sim.now
        yield from a.send(bytes(25))    # the MPI header write
        yield from a.send(bytes(100))   # the payload write
        yield from a.recv_exact(1)
        return sim.now - t0

    def server(sim):
        yield from b.recv_exact(125)
        yield from b.send(b"k")

    p = sim.process(client(sim))
    sim.process(server(sim))
    sim.run()
    return p.value


def _burst(nagle: bool):
    kp = ATM_KERNEL.with_overrides(nagle=nagle)
    sim = Simulator()
    m = ClusterMachine(sim, 2, network="atm", kernel_params=kp)
    a, b = TcpLayer.connect_pair(m.kernels[0], m.kernels[1], 5000, 5000)
    total = BURST * NBYTES

    def client(sim):
        t0 = sim.now
        for _ in range(BURST):
            yield from a.send(bytes(NBYTES))
        yield from a.recv_exact(1)
        return sim.now - t0

    def server(sim):
        yield from b.recv_exact(total)
        yield from b.send(b"k")

    p = sim.process(client(sim))
    sim.process(server(sim))
    sim.run()
    return p.value, a.segments_sent


def _measure():
    off_time, off_segs = _burst(False)
    on_time, on_segs = _burst(True)
    return {
        "off": {"time": off_time, "segments": off_segs, "request": _request(False)},
        "on": {"time": on_time, "segments": on_segs, "request": _request(True)},
    }


def test_ablation_nagle(benchmark):
    result = run_once(benchmark, _measure)
    off, on = result["off"], result["on"]

    # Nagle coalesces: strictly fewer data segments on the burst
    assert on["segments"] < off["segments"]
    # ...at a real cost even there
    assert on["time"] > off["time"] * 1.1
    # and a header+payload request stalls on the delayed ACK: disastrous
    assert on["request"] > off["request"] * 1.5

    benchmark.extra_info["nagle_off"] = {k: round(v, 1) for k, v in off.items()}
    benchmark.extra_info["nagle_on"] = {k: round(v, 1) for k, v in on.items()}
    print()
    print(format_table(
        ["Nagle", f"{BURST}x{NBYTES}B burst (us)", "segments", "hdr+payload req (us)"],
        [["off (TCP_NODELAY)", off["time"], off["segments"], off["request"]],
         ["on", on["time"], on["segments"], on["request"]]],
        title="Ablation: Nagle's algorithm under MPI-style small messages",
    ))
    print("Nagle saves segments but stalls on the delayed ACK — why every")
    print("MPI-over-TCP of the era set TCP_NODELAY.")
