"""Ablation — broadcast algorithm vs fabric and scale.

The paper's cluster broadcast is "a succession of point-to-point
messages" (linear).  Naive?  Measurements say no at the paper's scale:
with a root that can pipeline cheap sends, a linear broadcast to 8
workstations is competitive with a binomial tree (each tree hop pays a
full receive-and-forward), on the shared Ethernet *and* the switched
ATM fabric.  The tree pays off at larger process counts — visible on
the 32-node Meiko — and the CS/2 hardware broadcast beats everything.
"""

import numpy as np

from benchmarks.conftest import run_once
from repro.bench.tables import format_table
from repro.mpi import World

NBYTES = 1024


def _bcast_time(platform: str, device: str, style: str, nprocs: int) -> float:
    def main(comm):
        buf = np.zeros(NBYTES // 8)
        yield from comm.barrier()
        t0 = comm.wtime()
        yield from comm.bcast(buf, root=0, style=style)
        yield from comm.barrier()
        return comm.wtime() - t0

    world = World(nprocs, platform=platform, device=device)
    return max(world.run(main))


def _measure():
    out = {}
    for platform, device in (("ethernet", "tcp"), ("atm", "tcp")):
        out[platform] = {
            "linear": _bcast_time(platform, device, "linear", 8),
            "binomial": _bcast_time(platform, device, "binomial", 8),
        }
    # scale study on the Meiko (software trees vs linear vs hardware)
    out["meiko_p8"] = {
        "linear": _bcast_time("meiko", "lowlatency", "linear", 8),
        "binomial": _bcast_time("meiko", "lowlatency", "binomial", 8),
        "hardware": _bcast_time("meiko", "lowlatency", "hardware", 8),
    }
    out["meiko_p32"] = {
        "linear": _bcast_time("meiko", "lowlatency", "linear", 32),
        "binomial": _bcast_time("meiko", "lowlatency", "binomial", 32),
        "hardware": _bcast_time("meiko", "lowlatency", "hardware", 32),
    }
    return out


def test_ablation_bcast_algorithm(benchmark):
    result = run_once(benchmark, _measure)
    eth, atm = result["ethernet"], result["atm"]
    m8, m32 = result["meiko_p8"], result["meiko_p32"]

    # at the paper's cluster scale (8 hosts), linear is competitive with
    # the tree on both fabrics — the paper's choice is sound
    assert abs(atm["linear"] - atm["binomial"]) / atm["linear"] < 0.25
    assert abs(eth["linear"] - eth["binomial"]) / eth["linear"] < 0.25
    # at 32 nodes the tree's log-depth wins over the linear root
    assert m32["binomial"] < m32["linear"] * 0.8
    # and hardware broadcast beats every software scheme at every scale
    assert m8["hardware"] < min(m8["linear"], m8["binomial"]) * 0.75
    assert m32["hardware"] < min(m32["linear"], m32["binomial"]) * 0.6

    benchmark.extra_info.update(
        {k: {n: round(v, 1) for n, v in d.items()} for k, d in result.items()}
    )
    rows = [
        ["ethernet/tcp x8", eth["linear"], eth["binomial"], "-"],
        ["atm/tcp x8", atm["linear"], atm["binomial"], "-"],
        ["meiko x8", m8["linear"], m8["binomial"], m8["hardware"]],
        ["meiko x32", m32["linear"], m32["binomial"], m32["hardware"]],
    ]
    print()
    print(format_table(
        ["fabric", "linear (us)", "binomial (us)", "hardware (us)"],
        rows,
        title=f"Ablation: broadcast algorithm, {NBYTES} B payload",
    ))
    print("Linear is fine at 8 hosts (the paper's cluster); trees win at 32;")
    print("the CS/2 hardware broadcast beats everything.")
