"""Table 1 — MPI round-trip overheads with TCP.

Paper (µs):

====================================  =====  ========
row                                    ATM   Ethernet
====================================  =====  ========
1 byte round-trip latency              1065       925
25 byte info overhead                     5        45
Read for msg type                        85        65
Read for envelope                        85        65
Overheads for matching                   35        35
====================================  =====  ========
"""

from benchmarks.conftest import run_once
from repro.bench import figures
from repro.bench.tables import format_table


def test_table1_overheads(benchmark):
    result = run_once(benchmark, figures.table1_overheads)
    rows = result["rows"]
    paper = result["paper"]

    for network in ("ATM", "Ethernet"):
        got, want = rows[network], paper[network]
        # base RTT calibrated within 15%
        base = "1 byte round-trip latency"
        assert abs(got[base] - want[base]) / want[base] < 0.15, (network, got[base])
        # the syscall and matching rows are the calibrated model inputs
        assert got["Read for msg type"] == want["Read for msg type"]
        assert got["Read for envelope"] == want["Read for envelope"]
        assert got["Overheads for matching"] == want["Overheads for matching"]
    # the 25-byte info overhead is wire-dominated: far more expensive on
    # 10 Mb/s Ethernet than on 155 Mb/s ATM
    assert rows["Ethernet"]["25 byte info overhead"] > rows["ATM"]["25 byte info overhead"]
    # the measured MPI RTT exceeds the raw RTT by roughly the sum of the
    # per-message overheads, paid once per direction
    for network in ("ATM", "Ethernet"):
        got = rows[network]
        per_msg = (
            got["25 byte info overhead"] / 2
            + got["Read for msg type"]
            + got["Read for envelope"]
            + got["Overheads for matching"]
        )
        gap = got["measured MPI 1B RTT"] - got["1 byte round-trip latency"]
        assert 1.0 * per_msg <= gap <= 3.5 * per_msg, (network, gap, per_msg)

    headers = ["row", "ATM (us)", "paper", "Ethernet (us)", "paper"]
    table_rows = []
    for key in (
        "1 byte round-trip latency",
        "25 byte info overhead",
        "Read for msg type",
        "Read for envelope",
        "Overheads for matching",
    ):
        table_rows.append(
            [key, rows["ATM"][key], paper["ATM"][key], rows["Ethernet"][key],
             paper["Ethernet"][key]]
        )
    table_rows.append(
        ["measured MPI 1B RTT", rows["ATM"]["measured MPI 1B RTT"], "-",
         rows["Ethernet"]["measured MPI 1B RTT"], "-"]
    )
    for network in ("ATM", "Ethernet"):
        benchmark.extra_info[network] = {k: round(v, 1) for k, v in rows[network].items()}
    print()
    print(format_table(headers, table_rows, title="Table 1: MPI round-trip overheads with TCP"))
