"""Simulator wall-clock throughput (not in the paper).

Every other benchmark here reports *simulated* microseconds; this one
guards the *simulator's own* performance — events per wall-clock second
— so a kernel regression shows up as a benchmark regression rather than
a mysteriously slow suite.

Four workloads (defined in ``repro.bench.kernel_perf``) cover the hot
paths from different directions: the Figure 7 solver (collective-heavy
Meiko traffic), the Figure 9 n-body ring (full TCP/Ethernet stack), a
lossy ping-pong under fault injection (retransmission timers really
fire), and a pure timer-churn microbenchmark (the arm/cancel pattern
the protocol stacks use for their RTO timers).

``python benchmarks/bench_kernel_perf.py`` runs the same workloads from
the command line and writes the tracked ``BENCH_kernel.json`` report.
"""

import pytest

from repro.bench.kernel_perf import WORKLOADS, effective_floor


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_simulator_throughput(benchmark, name):
    events = benchmark(WORKLOADS[name], False)
    assert events > 500  # a real workload, not a trivial loop
    wall_s = benchmark.stats["mean"]
    throughput = events / wall_s
    benchmark.extra_info["events"] = events
    benchmark.extra_info["events_per_sec"] = int(throughput)
    # per-workload floors (scaled by REPRO_BENCH_FLOOR_SLACK for slow
    # runners): a big kernel regression trips the assert before it
    # hurts elsewhere
    floor = effective_floor(name)
    assert throughput > floor, f"{name}: {throughput:.0f} events/s under floor {floor}"
