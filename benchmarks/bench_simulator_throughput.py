"""Simulator wall-clock throughput (not in the paper).

Every other benchmark here reports *simulated* microseconds; this one
guards the *simulator's own* performance — events per wall-clock second
on a representative workload (the Figure 7 linear solver at 8 ranks) —
so a kernel regression shows up as a benchmark regression rather than a
mysteriously slow suite.
"""

from repro.apps import linsolve
from repro.mpi import World


def _solver_events():
    """Run a mid-size solver and return how many events were scheduled."""
    world = World(8, platform="meiko", device="lowlatency")

    def main(comm):
        _, elapsed = yield from linsolve(comm, n=96, seed=0)
        return elapsed

    world.run(main)
    return world.sim._seq  # total events scheduled over the run


def test_simulator_throughput(benchmark):
    events = benchmark(_solver_events)
    assert events > 10_000  # a real workload, not a trivial loop
    wall_s = benchmark.stats["mean"]
    throughput = events / wall_s
    benchmark.extra_info["events"] = events
    benchmark.extra_info["events_per_sec"] = int(throughput)
    # floor: even a slow CI box should push > 50k events/s through the
    # heap-based kernel; a big regression trips this before it hurts
    assert throughput > 50_000, f"simulator at {throughput:.0f} events/s"
    print(f"\nsimulator throughput: {throughput/1e6:.2f} M events/s "
          f"({events} events per solver run)")
