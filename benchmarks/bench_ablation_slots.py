"""Ablation — envelope slots per sender (paper, Section 4.1).

The paper allocates a *single* envelope slot per sending processor at
each receiver to minimize memory and latency; a sender with an
outstanding envelope must wait for the slot acknowledgement.  This
bench shows what that choice costs on bursts of back-to-back small
messages (pipelining), and why it is harmless for the paper's
ping-pong-style workloads.
"""

from benchmarks.conftest import run_once
from repro.bench import harness
from repro.bench.tables import format_table
from repro.mpi import World
from repro.mpi.device.lowlatency import LowLatencyConfig

BURST = 32
NBYTES = 64
SLOTS = (1, 4, 8, 32)


RECEIVER_COMPUTE_US = 100.0


def _burst_time(slots: int) -> float:
    """Time until the *sender* is free after a burst at a slow receiver.

    Eager sends complete at issue, but issuing needs a free envelope
    slot, and a receiver computing between receives is slow to return
    slot acknowledgements — with one slot the sender is chained to the
    receiver's pace; with many it decouples."""
    cfg = LowLatencyConfig(slots_per_sender=slots)

    def main(comm):
        if comm.rank == 0:
            t0 = comm.wtime()
            reqs = []
            for i in range(BURST):
                r = yield from comm.isend(bytes(NBYTES), dest=1, tag=1)
                reqs.append(r)
            yield from comm.waitall(reqs)
            return comm.wtime() - t0
        else:
            for _ in range(BURST):
                yield from comm.endpoint.host.compute(RECEIVER_COMPUTE_US)
                yield from comm.recv(source=0, tag=1)

    return World(2, platform="meiko", device="lowlatency", device_config=cfg).run(main)[0]


def _measure():
    burst = {s: _burst_time(s) for s in SLOTS}
    pingpong = {
        s: harness.mpi_pingpong_rtt(
            "meiko", "lowlatency", 1,
            device_config=LowLatencyConfig(slots_per_sender=s),
        )
        for s in SLOTS
    }
    return {"burst": burst, "pingpong": pingpong}


def test_ablation_envelope_slots(benchmark):
    result = run_once(benchmark, _measure)
    burst, pingpong = result["burst"], result["pingpong"]

    # more slots decouple the sender from the slow receiver
    assert burst[4] < burst[1]
    assert burst[32] < burst[1] * 0.5
    # but the single slot costs nothing on the latency benchmark the
    # paper optimizes for (request/response never has two outstanding)
    assert abs(pingpong[1] - pingpong[8]) / pingpong[1] < 0.02

    benchmark.extra_info["burst_us"] = {str(s): round(v, 1) for s, v in burst.items()}
    benchmark.extra_info["pingpong_us"] = {
        str(s): round(v, 1) for s, v in pingpong.items()
    }
    rows = [[s, burst[s], pingpong[s]] for s in SLOTS]
    print()
    print(format_table(
        ["slots/sender", f"{BURST}-msg burst, sender free (us)", "1B ping-pong (us)"],
        rows,
        title="Ablation: envelope slots per sender",
    ))
    print("One slot throttles bursts at a slow receiver but is free for")
    print("request/response — the paper's choice favors memory and latency.")
