"""Figure 5 — TCP round-trip latency on Ethernet and ATM, raw vs MPI.

Paper: raw 1-byte round trips of 925 µs (Ethernet) and 1065 µs (ATM);
MPI adds the envelope/matching overheads of Table 1 on top.
"""

from benchmarks.conftest import attach_series, run_once
from repro.bench import figures
from repro.bench.tables import format_series


def test_fig05_tcp_latency(benchmark):
    result = run_once(benchmark, figures.fig05_tcp_latency)
    series = result["series"]
    tcp_eth = dict(series["tcp/eth"])
    tcp_atm = dict(series["tcp/atm"])
    mpi_eth = dict(series["mpi/tcp/eth"])
    mpi_atm = dict(series["mpi/tcp/atm"])

    # calibrated raw endpoints
    assert abs(tcp_eth[1] - 925.0) / 925.0 < 0.15
    assert abs(tcp_atm[1] - 1065.0) / 1065.0 < 0.15
    # MPI sits above raw TCP at every size, by a few hundred us
    for n in tcp_eth:
        assert mpi_eth[n] > tcp_eth[n]
        assert mpi_atm[n] > tcp_atm[n]
    gap_eth = mpi_eth[1] - tcp_eth[1]
    assert 250 <= gap_eth <= 650, gap_eth
    # at small sizes ATM is *slower* than Ethernet (per-packet stack
    # cost); at 1 KB the wire speed has flipped the ordering
    assert tcp_atm[1] > tcp_eth[1]
    assert tcp_atm[1024] < tcp_eth[1024]

    attach_series(benchmark, result)
    print()
    print(format_series(series, xlabel="bytes", title="Figure 5: TCP round-trip latency (us)"))
    print("paper 1B: tcp/eth 925, tcp/atm 1065; MPI adds envelope+matching overheads")
