"""Figure 3 — Meiko bandwidth vs message size.

Paper: the best possible DMA bandwidth of 39 MB/s is nearly reached,
and the low-latency implementation's bandwidth is at least MPICH's
(lower latency raises mid-size throughput).
"""

from benchmarks.conftest import attach_series, run_once
from repro.bench import figures
from repro.bench.tables import format_series


def test_fig03_meiko_bandwidth(benchmark):
    result = run_once(benchmark, figures.fig03_meiko_bandwidth)
    series = result["series"]
    tport = dict(series["Meiko tport"])
    ll = dict(series["MPI(low latency)"])
    mpich = dict(series["MPI(mpich)"])
    big = max(tport)

    # the DMA ceiling is approached but not exceeded
    assert 36.0 <= tport[big] <= 39.5
    assert 36.0 <= ll[big] <= 39.5
    # low latency >= mpich at every size (paper: "bandwidth is in fact
    # increased as a result of decreasing latency")
    for n in ll:
        assert ll[n] >= mpich[n] * 0.98, f"low latency below mpich at {n} bytes"
    # bandwidth grows with size
    sizes = sorted(ll)
    assert ll[sizes[0]] < ll[sizes[-1]]

    attach_series(benchmark, result)
    print()
    print(format_series(series, xlabel="bytes", title="Figure 3: Meiko bandwidth (MB/s)"))
    print("paper: DMA peak 39 MB/s nearly reached")
