"""Ablation — where to match: SPARC vs Elan (paper, Section 4.1).

The paper's design discussion in one experiment pair:

* **latency**: SPARC matching is fast, so the low-latency device wins
  the 1-byte ping-pong (104 vs 210 µs);
* **background progress**: SPARC matching only advances inside MPI
  calls, so a rendezvous send to a busy receiver stalls until the
  receiver re-enters the library — while MPICH's Elan matches, requests
  and DMAs the data with the receiver's SPARC fully occupied.

Both sides of the trade-off must reproduce.
"""

from benchmarks.conftest import run_once
from repro.bench import harness
from repro.bench.tables import format_table
from repro.mpi import World

COMPUTE_US = 50_000.0
NBYTES = 65_536


def _send_completion(device: str) -> float:
    """Time for a standard rendezvous send to complete while the
    receiver is busy computing (receive pre-posted)."""

    def main(comm):
        if comm.rank == 0:
            yield comm.endpoint.sim.timeout(1000.0)  # let rank 1 post
            t0 = comm.wtime()
            yield from comm.send(bytes(NBYTES), dest=1, tag=1)
            return comm.wtime() - t0
        else:
            buf = bytearray(NBYTES)
            req = yield from comm.irecv(source=0, tag=1, buf=buf)
            yield from comm.endpoint.host.compute(COMPUTE_US)
            yield from comm.wait(req)

    return World(2, platform="meiko", device=device).run(main)[0]


def _measure():
    return {
        "latency": {
            "lowlatency": harness.mpi_pingpong_rtt("meiko", "lowlatency", 1),
            "mpich": harness.mpi_pingpong_rtt("meiko", "mpich", 1),
        },
        "progress": {
            "lowlatency": _send_completion("lowlatency"),
            "mpich": _send_completion("mpich"),
        },
    }


def test_ablation_matching_location(benchmark):
    result = run_once(benchmark, _measure)
    lat, prog = result["latency"], result["progress"]

    # side 1: SPARC matching wins latency by ~2x
    assert lat["lowlatency"] < lat["mpich"] * 0.65
    # side 2: Elan matching wins background progress by >10x
    assert prog["mpich"] < prog["lowlatency"] / 10
    # SPARC-side completion is pinned to the receiver's compute phase
    assert prog["lowlatency"] >= COMPUTE_US * 0.9

    benchmark.extra_info.update(
        {k: {n: round(v, 1) for n, v in d.items()} for k, d in result.items()}
    )
    print()
    print(format_table(
        ["metric", "lowlatency (SPARC)", "mpich (Elan)"],
        [
            ["1B ping-pong RTT (us)", lat["lowlatency"], lat["mpich"]],
            [f"rdv send vs busy receiver (us)", prog["lowlatency"], prog["mpich"]],
        ],
        title="Ablation: matching on the SPARC vs the Elan co-processor",
    ))
    print("SPARC matching buys latency; Elan matching buys background progress")
    print("— the exact trade-off of the paper's Section 4.1.")
