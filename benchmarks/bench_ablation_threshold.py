"""Ablation — the eager/rendezvous threshold (paper, Figure 1's choice).

Sweeps the protocol switch point and confirms the paper's 180 B choice
is near-optimal: a threshold below the crossover wastes a round trip on
small messages; far above it pays the slow word-by-word transaction
path for large ones.
"""

from benchmarks.conftest import run_once
from repro.bench import harness
from repro.bench.tables import format_table
from repro.mpi.device.lowlatency import LowLatencyConfig

THRESHOLDS = (0, 64, 180, 512, 4096)
SIZES = (16, 180, 1024, 8192)


def _measure():
    table = {}
    for thr in THRESHOLDS:
        cfg = LowLatencyConfig(eager_threshold=thr)
        table[thr] = {
            n: harness.mpi_pingpong_rtt("meiko", "lowlatency", n, device_config=cfg)
            for n in SIZES
        }
    return table


def test_ablation_eager_threshold(benchmark):
    table = run_once(benchmark, _measure)

    # rendezvous-always is the worst choice for tiny messages
    assert table[0][16] > table[180][16] * 1.2
    # eager-always is the worst choice for large ones
    assert table[4096][1024] > table[180][1024] * 1.1
    # the paper's threshold is within 2% of the best measured config at
    # every size (no other sampled threshold dominates it)
    for n in SIZES:
        best = min(table[t][n] for t in THRESHOLDS)
        assert table[180][n] <= best * 1.02, (n, table[180][n], best)

    benchmark.extra_info["table"] = {
        str(t): {str(n): round(v, 1) for n, v in row.items()} for t, row in table.items()
    }
    rows = [[t] + [table[t][n] for n in SIZES] for t in THRESHOLDS]
    print()
    print(format_table(
        ["threshold"] + [f"RTT@{n}B" for n in SIZES],
        rows,
        title="Ablation: eager/rendezvous switch point (us)",
    ))
    print("The paper's 180 B threshold is undominated across sizes.")
