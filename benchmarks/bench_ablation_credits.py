"""Ablation — the TCP device's credit reservation (paper, Section 5.1).

The receiver reserves memory per sender; the sender transmits
optimistically against it.  Too small a reservation throttles bursts of
eager messages (the sender stalls waiting for freed-credit returns);
the paper-scale 64 KB keeps the pipe full.
"""

from benchmarks.conftest import run_once
from repro.bench.tables import format_table
from repro.mpi import World
from repro.mpi.device.cluster import ClusterConfig

BURST = 16
NBYTES = 4096
RESERVES = (8_192, 16_384, 131_072, 262_144)


def _burst_time(reserve: int) -> float:
    cfg = ClusterConfig(reserve_bytes=reserve, credit_refresh=reserve // 2)

    def main(comm):
        if comm.rank == 0:
            t0 = comm.wtime()
            reqs = []
            for _ in range(BURST):
                r = yield from comm.isend(bytes(NBYTES), dest=1, tag=1)
                reqs.append(r)
            yield from comm.waitall(reqs)
            yield from comm.recv(source=1, tag=2)
            return comm.wtime() - t0
        else:
            for _ in range(BURST):
                yield from comm.recv(source=0, tag=1)
            yield from comm.send(b"k", dest=0, tag=2)

    return World(2, platform="atm", device="tcp", device_config=cfg).run(main)[0]


def _measure():
    return {r: _burst_time(r) for r in RESERVES}


def test_ablation_credit_reservation(benchmark):
    times = run_once(benchmark, _measure)

    # a small reservation stalls the burst behind credit returns
    assert times[8_192] > times[131_072] * 1.05
    # beyond the burst's footprint (16 x (4096+25) B), more buys nothing
    assert abs(times[131_072] - times[262_144]) / times[131_072] < 0.05

    benchmark.extra_info["burst_us"] = {str(r): round(v, 1) for r, v in times.items()}
    print()
    print(format_table(
        ["reserve (B)", f"{BURST}x{NBYTES}B burst (us)"],
        [[r, times[r]] for r in RESERVES],
        title="Ablation: per-sender credit reservation (MPI over TCP/ATM)",
    ))
    print("Optimistic sending needs enough reserved memory to cover the burst;")
    print("the paper's receiver-managed credits provide exactly that.")
