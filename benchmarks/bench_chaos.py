"""Chaos sweep — seeded packet loss over MPI workloads on both
cluster fabrics.

Not a figure from the paper: this exercises the fault-injection
subsystem end to end.  Every cell must *terminate* — recovering through
bounded retransmission (reporting its slowdown over the fault-free
baseline) or failing fast with a rank-attributed diagnostic.

Runs standalone too (CI uses this)::

    python benchmarks/bench_chaos.py --smoke   # seconds, small sweep
    python benchmarks/bench_chaos.py           # full sweep
"""

import argparse
import sys

from repro.bench.chaos import chaos_sweep, format_chaos

SMOKE = dict(losses=(0.0, 0.05), workloads=("pingpong",), repeats=10)
FULL = dict(losses=(0.0, 0.01, 0.05, 0.10, 0.20),
            workloads=("pingpong", "nbody"), repeats=20)


def _check(rows):
    """Every cell terminated; failures carry a diagnostic."""
    for r in rows:
        assert r["outcome"] in ("ok", "net-error", "deadlock"), r
        if r["outcome"] != "ok":
            assert r["diagnostic"], f"undiagnosed failure: {r}"
    ok = [r for r in rows if r["outcome"] == "ok"]
    assert ok, "no cell completed"


def test_chaos_sweep(benchmark):
    from benchmarks.conftest import run_once

    rows = run_once(benchmark, chaos_sweep, **SMOKE)
    _check(rows)
    print()
    print(format_chaos(rows))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true",
                        help="small fast sweep (CI)")
    parser.add_argument("--trace", default=None, metavar="FILE",
                        help="export the sweep's event trace (Chrome JSON)")
    args = parser.parse_args(argv)
    bus = None
    if args.trace:
        from repro.obs import EventBus

        bus = EventBus()
    rows = chaos_sweep(**(SMOKE if args.smoke else FULL), obs=bus)
    _check(rows)
    print(format_chaos(rows))
    if bus is not None:
        from repro.obs import write_trace

        write_trace(bus, args.trace, "chrome")
        print(f"trace: {len(bus)} events -> {args.trace}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
