"""Figure 9 — cluster particle pairwise interactions (128 particles,
Ethernet vs ATM over TCP).

Paper: "The ATM shows a clear performance gain, primarily because
there is no network contention and fairly large messages are used,
exploiting ATM's higher bandwidth."
"""

from benchmarks.conftest import attach_series, run_once
from repro.bench import figures
from repro.bench.tables import format_series


def test_fig09_tcp_nbody(benchmark):
    result = run_once(benchmark, figures.fig09_tcp_nbody)
    series = result["series"]
    atm = dict(series["ATM"])
    eth = dict(series["Ethernet"])

    for p in atm:
        if p > 1:
            assert atm[p] < eth[p], f"ATM not faster at P={p}"
    # the gap widens with more processes (shared-segment contention)
    assert eth[8] / atm[8] > eth[2] / atm[2]

    attach_series(benchmark, result)
    print()
    print(format_series(series, xlabel="procs",
                        title="Figure 9: TCP pairwise interactions (us, 128 particles)"))
    print("paper: ATM clearly faster (no contention, higher bandwidth)")
