"""Figure 4 — raw ATM round-trip latency: TCP vs UDP vs Fore AAL3/4.

Paper: "Except for small message sizes, the latency of these protocols
are indistinguishable from each other" — the STREAMS modules dominate,
so the direct adaptation-layer API buys little.
"""

from benchmarks.conftest import attach_series, run_once
from repro.bench import figures
from repro.bench.tables import format_series


def test_fig04_atm_latency(benchmark):
    result = run_once(benchmark, figures.fig04_atm_latency)
    series = result["series"]
    tcp = dict(series["TCP"])
    udp = dict(series["UDP"])
    fore = dict(series["Fore aal4"])

    # TCP 1-byte RTT within 15% of the paper's 1065 us
    assert abs(tcp[1] - 1065.0) / 1065.0 < 0.15
    # TCP and UDP track each other closely everywhere
    for n in tcp:
        assert abs(tcp[n] - udp[n]) / tcp[n] < 0.35, f"TCP/UDP diverge at {n}"
    # the Fore API helps at small sizes but converges at larger ones
    small_gap = (tcp[1] - fore[1]) / tcp[1]
    big = max(tcp)
    big_gap = abs(tcp[big] - fore[big]) / tcp[big]
    assert small_gap > 0.05
    assert big_gap < small_gap + 0.1

    attach_series(benchmark, result)
    print()
    print(format_series(series, xlabel="bytes", title="Figure 4: ATM round-trip latency (us)"))
    print("paper: indistinguishable except at small sizes; TCP 1B = 1065 us")
