"""The disabled bus must cost nothing measurable.

``Simulator.obs`` is ``None`` unless a bus is attached, every emission
site guards with one attribute load plus a ``None`` check, and the
kernel perf floors in ``benchmarks/bench_kernel_perf.py`` — captured
before the instrumentation landed — still hold with the bus disabled.
The wall-clock check here reruns the cheapest workload against its
(quick-mode, halved) floor; the full-floor enforcement lives in the CI
bench job.
"""

from repro.bench.kernel_perf import FLOORS, run_workload
from repro.mpi import World
from repro.sim import Simulator


def test_bus_is_absent_by_default():
    assert Simulator().obs is None
    world = World(2, platform="meiko")
    assert world.sim.obs is None

    def main(comm):
        assert comm.endpoint.sim.obs is None
        yield from comm.barrier()

    world.run(main)


def test_disabled_path_meets_kernel_floor():
    """timer_churn is the purest kernel hot loop — the workload with the
    highest event rate and therefore the most sensitive to per-event
    overhead.  It must still clear its quick-mode floor."""
    rec = run_workload("timer_churn", quick=True, repeats=1)
    assert rec["events_per_sec"] >= FLOORS["timer_churn"] * 0.5, rec
