"""Structured device state: ``state_snapshot()`` is the primary dump,
``describe_state()`` merely renders it, and the deadlock watchdog ships
the structured form on :class:`DeadlockError.rank_states`."""

import pytest

from repro.errors import DeadlockError
from repro.faults import FaultPlan, PacketLoss
from repro.mpi import World


@pytest.mark.parametrize(
    "platform, device",
    [("meiko", "lowlatency"), ("meiko", "mpich"),
     ("ethernet", "tcp"), ("atm", "udp")],
)
def test_state_snapshot_is_structured(platform, device):
    """Every device reports posted/unexpected queues as plain dicts, and
    the string form is derived from them."""
    out = {}

    def main(comm):
        sim = comm.endpoint.sim
        if comm.rank == 0:
            yield sim.timeout(500.0)  # let the receive sit posted
            yield from comm.send(b"x" * 8, dest=1, tag=7)
        else:
            req = yield from comm.irecv(source=0, tag=7)
            yield sim.timeout(100.0)  # Elan-side posting is asynchronous
            out["snap"] = comm.endpoint.state_snapshot()
            out["desc"] = comm.endpoint.describe_state()
            yield from comm.wait(req)

    World(2, platform=platform, device=device).run(main)
    snap = out["snap"]
    assert snap["rank"] == 1
    assert isinstance(snap["posted"], list)
    assert isinstance(snap["unexpected"], list)
    assert {"source": 0, "tag": 7} in snap["posted"]
    if "flow" in snap:
        assert isinstance(snap["flow"], dict)
    assert "tag=7" in out["desc"]  # rendering reflects the snapshot


def test_lowlatency_flow_snapshot_keys():
    out = {}

    def main(comm):
        out[comm.rank] = comm.endpoint.state_snapshot()
        yield from comm.barrier()

    World(2, platform="meiko", device="lowlatency").run(main)
    flow = out[0]["flow"]
    assert set(flow) >= {"sends_waiting_for_slot", "rendezvous_awaiting_request",
                         "ssends_awaiting_ack"}


def test_deadlock_error_carries_rank_states():
    """The watchdog attaches each stuck rank's machine-readable snapshot,
    and the human message is rendered from the same data."""

    def main(comm):
        if comm.rank == 0:
            yield from comm.ssend(b"x" * 64, dest=1, tag=9)
        else:
            yield from comm.recv(source=0, tag=9)

    world = World(2, platform="meiko",
                  faults=FaultPlan.of(PacketLoss(probability=1.0, max_events=1)),
                  seed=0)
    with pytest.raises(DeadlockError) as ei:
        world.run(main)
    e = ei.value
    assert sorted(e.rank_states) == [0, 1]
    assert {"source": 0, "tag": 9} in e.rank_states[1]["posted"]
    assert e.rank_states[0]["flow"]["ssends_awaiting_ack"] == 1
    assert "tag=9" in str(e)


def test_watchdog_caps_snapshots_on_wide_deadlocks():
    """A wide deadlock ships at most WATCHDOG_SNAPSHOT_CAP per-rank
    snapshots (with an elision note); the full stuck-rank list still
    rides on ``stuck_ranks``."""
    from repro.mpi.world import WATCHDOG_SNAPSHOT_CAP

    nprocs = WATCHDOG_SNAPSHOT_CAP + 4

    def main(comm):
        # everyone waits on a message nobody sends
        yield from comm.recv(source=(comm.rank + 1) % comm.size, tag=3)

    with pytest.raises(DeadlockError) as ei:
        World(nprocs, platform="meiko", device="lowlatency").run(main)
    e = ei.value
    assert len(e.stuck_ranks) == nprocs
    assert len(e.rank_states) == WATCHDOG_SNAPSHOT_CAP
    assert f"{nprocs - WATCHDOG_SNAPSHOT_CAP} more ranks elided" in str(e)
