"""Tracing must be a pure observer: enabling the bus cannot move a
single simulated microsecond.

These tests rerun the determinism goldens from ``tests/test_determinism``
with a full (unfiltered) EventBus attached — the pinned outputs must
stay byte-identical while the bus fills with events.
"""

import pytest

from repro.bench.harness import mpi_pingpong_rtt
from repro.mpi import World
from repro.obs import EventBus

from tests.test_determinism import GOLDEN_FIG02, GOLDEN_RING_TRACE


def _ring_trace(platform, obs):
    world = World(4, platform=platform, seed=3, obs=obs)
    trace = []

    def main(comm):
        rank = comm.rank
        nxt, prv = (rank + 1) % 4, (rank - 1) % 4
        for i in range(5):
            if rank % 2 == 0:
                yield from comm.send(bytes([i] * 64), dest=nxt, tag=i)
                yield from comm.recv(source=prv, tag=i)
            else:
                yield from comm.recv(source=prv, tag=i)
                yield from comm.send(bytes([i] * 64), dest=nxt, tag=i)
            trace.append((round(comm.wtime(), 3), rank, i))
        return None

    world.run(main)
    return sorted(trace)


@pytest.mark.parametrize("platform", sorted(GOLDEN_RING_TRACE))
def test_traced_ring_matches_golden(platform):
    """The golden ring trace survives full tracing, and the bus actually
    observed every layer of the run."""
    bus = EventBus()
    assert _ring_trace(platform, bus) == GOLDEN_RING_TRACE[platform]
    assert len(bus) > 0
    layers = {e.layer for e in bus}
    assert "mpi" in layers and "sim" in layers
    if platform == "meiko":
        assert "dev" in layers
    else:
        assert "net" in layers  # cluster fabrics run the TCP stack
    # every MPI send got its enter/exit pair
    assert (bus.counters.get("mpi.call.enter")
            == bus.counters.get("mpi.call.exit"))


def test_traced_pingpong_matches_golden_fig02_point():
    """The Figure-2 1-byte low-latency point is pinned; tracing the very
    same measurement must reproduce it exactly."""
    bus = EventBus()
    rtt = mpi_pingpong_rtt("meiko", "lowlatency", 1, obs=bus)
    assert rtt == pytest.approx(GOLDEN_FIG02["MPI(low latency)"][1], abs=1e-9)
    assert bus.counters.get("dev.msg.send") > 0


def test_traced_equals_untraced_on_the_tcp_stack():
    """Ethernet runs timers and a shared RNG — the sharpest place for an
    observer effect to show up.  Traced and untraced runs must agree."""
    untraced = mpi_pingpong_rtt("ethernet", "tcp", 1024)
    traced = mpi_pingpong_rtt("ethernet", "tcp", 1024, obs=EventBus())
    assert traced == untraced
