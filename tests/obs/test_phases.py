"""PhaseLedger: the paper's Table-1 decomposition rebuilt from a trace.

The load-bearing property is *telescoping*: envelope + match + data for
the two timed messages of a ping-pong must equal the measured round-trip
time **exactly** — no microsecond of simulated latency may fall between
phases.  Both eager and rendezvous protocols are checked on both the
Meiko low-latency device and the TCP cluster device.
"""

import pytest

from repro.bench.harness import mpi_pingpong_rtt
from repro.mpi import World
from repro.obs import EventBus, PhaseLedger


def _traced_pingpong(platform, device, nbytes):
    bus = EventBus()
    rtt = mpi_pingpong_rtt(platform, device, nbytes, repeats=1, obs=bus)
    return rtt, PhaseLedger.from_bus(bus)


# ---------------------------------------------------------------------------
# phases sum to the measured latency, exactly
# ---------------------------------------------------------------------------


@pytest.mark.parametrize(
    "platform, device, nbytes, proto, wakeups",
    [
        ("meiko", "lowlatency", 1, "eager", 0),       # Table 1's 1-byte row
        ("meiko", "lowlatency", 16384, "rdv", 2),     # > 180 B threshold
        ("ethernet", "tcp", 1, "eager", 0),
        ("ethernet", "tcp", 32768, "rdv", 0),         # > 16 KiB threshold
        ("modern", "rdma", 1024, "eager", 0),         # RDMA-write eager
        ("modern", "rdma", 65536, "rdv", 0),          # RDMA-READ pull
        ("modern", "cxl", 1024, "eager", 0),          # segment copy-in/out
        ("modern", "cxl", 65536, "rdv", 0),           # zero-copy handoff
    ],
)
def test_phase_sum_equals_round_trip(platform, device, nbytes, proto, wakeups):
    """The timed ping (tag 1) and pong (tag 2) totals telescope to the
    measured RTT with zero slack, and the protocol is classified right.

    The one deterministic exception: a Meiko rendezvous completes via
    DMA in Elan context, so the blocked receiver pays one ``event_poll``
    CPU charge waking up *after* ``msg.complete`` — exactly one per
    rendezvous half, outside any message's life.
    """
    rtt, ledger = _traced_pingpong(platform, device, nbytes)
    (ping,) = ledger.lookup(tag=1, complete=True)
    (pong,) = ledger.lookup(tag=2, complete=True)
    for m in (ping, pong):
        assert m.proto == proto
        assert m.nbytes >= nbytes
        assert m.envelope > 0
        assert m.match >= 0
        assert m.data >= 0
        assert m.total == pytest.approx(m.envelope + m.match + m.data, abs=1e-12)
    if wakeups:
        from repro.hw.meiko.params import MeikoParams

        rtt -= wakeups * MeikoParams().event_poll
    assert ping.total + pong.total == pytest.approx(rtt, abs=1e-9)


def test_meiko_one_byte_breakdown_matches_table1_shape():
    """Envelope transfer dominates the 1-byte Meiko latency, as in the
    paper's Table 1 (protocol processing is small next to the wire)."""
    rtt, ledger = _traced_pingpong("meiko", "lowlatency", 1)
    (ping,) = ledger.lookup(tag=1, complete=True)
    assert ping.envelope > ping.match + ping.data
    assert not ping.unexpected  # receive was pre-posted


# ---------------------------------------------------------------------------
# unexpected messages: the buffered wait lands in the match phase
# ---------------------------------------------------------------------------


def test_unmatched_eager_wait_is_charged_to_match_phase():
    """An eager message arriving before the receive is posted sits
    buffered as unexpected; that whole wait belongs to the match phase
    and the message is flagged.

    The receiver probes first so its SPARC actually drains the arrival
    into the unexpected heap (a rank that never drives progress leaves
    the message parked in the Elan delivery queue instead)."""
    bus = EventBus()
    world = World(2, platform="meiko", obs=bus)

    def main(comm):
        if comm.rank == 0:
            yield from comm.send(b"x" * 64, dest=1, tag=5)
        else:
            yield from comm.probe(source=0, tag=5)  # buffer it as unexpected
            yield comm.endpoint.sim.timeout(500.0)  # dawdle before posting
            yield from comm.recv(source=0, tag=5)

    world.run(main)
    ledger = PhaseLedger.from_bus(bus)
    (m,) = ledger.lookup(tag=5, complete=True)
    assert m.unexpected
    assert m.envelope < 100.0          # the wire was fast...
    assert m.match > 300.0             # ...the buffered wait was not
    assert bus.counters.get("dev.copy.unexpected") >= 1


# ---------------------------------------------------------------------------
# ledger queries and rendering
# ---------------------------------------------------------------------------


def test_ledger_queries_summary_and_table():
    _, ledger = _traced_pingpong("meiko", "lowlatency", 1)
    assert len(ledger) >= 4  # warm-up pair + timed pair
    (ping,) = ledger.lookup(src=0, dst=1, tag=1)
    assert ledger.get(ping.msg) is ping
    assert ledger.lookup(tag=999) == []

    s = ledger.summary()
    assert s["messages"] == len([m for m in ledger if m.complete()])
    assert s["total_us"] == pytest.approx(
        s["envelope_us"] + s["match_us"] + s["data_us"], abs=1e-9
    )

    text = ledger.table()
    assert "envelope" in text and "match" in text and "data" in text
    assert "0->1" in text.replace(" ", "")


def test_mpich_send_side_only_is_incomplete():
    """The MPICH device's matching runs on the Elan, invisible to the
    SPARC — its ledger rows carry the send side only and never complete
    (Table-1 phase accounting targets the envelope devices)."""
    bus = EventBus()
    mpi_pingpong_rtt("meiko", "mpich", 1, repeats=1, obs=bus)
    ledger = PhaseLedger.from_bus(bus)
    assert len(ledger) > 0
    assert ledger.lookup(complete=True) == []
    assert all(m.t_send is not None for m in ledger)
