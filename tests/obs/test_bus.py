"""EventBus unit tests: emission, counters, filtering, subscribers,
run labelling, and message correlation."""

from repro.obs import Event, EventBus, msgid


def test_emit_records_typed_event():
    bus = EventBus()
    mid = msgid(0, 1, 0, 3)
    bus.emit(12.5, "dev", "env.arrived", rank=1, msg=mid, detail={"tag": 7})
    assert len(bus) == 1
    ev = bus.events[0]
    assert isinstance(ev, Event)
    assert (ev.t, ev.layer, ev.kind, ev.rank) == (12.5, "dev", "env.arrived", 1)
    assert ev.msg == (0, 1, 0, 3)
    assert ev.detail == {"tag": 7}
    assert ev.run is None


def test_counters_auto_increment_per_layer_kind():
    bus = EventBus()
    bus.emit(0.0, "dev", "msg.send")
    bus.emit(1.0, "dev", "msg.send")
    bus.emit(2.0, "net", "seg.retx")
    assert bus.counters.get("dev.msg.send") == 2
    assert bus.counters.get("net.seg.retx") == 1


def test_layer_filter_drops_at_the_door():
    bus = EventBus(layers={"dev"})
    bus.emit(0.0, "dev", "msg.send")
    bus.emit(0.0, "sim", "timer.arm")
    bus.emit(0.0, "net", "seg.send")
    assert [e.layer for e in bus] == ["dev"]
    # dropped events don't count either
    assert bus.counters.get("sim.timer.arm") == 0


def test_subscribe_and_unsubscribe():
    bus = EventBus()
    seen = []
    fn = bus.subscribe(seen.append)
    bus.emit(0.0, "mpi", "call.enter")
    bus.unsubscribe(fn)
    bus.emit(1.0, "mpi", "call.exit")
    assert [e.kind for e in seen] == ["call.enter"]
    # unsubscribing twice is harmless
    bus.unsubscribe(fn)


def test_set_run_labels_subsequent_events():
    bus = EventBus()
    bus.emit(0.0, "dev", "msg.send")
    bus.set_run("sweep/loss=0.05")
    bus.emit(1.0, "dev", "msg.send")
    assert bus.events[0].run is None
    assert bus.events[1].run == "sweep/loss=0.05"


def test_for_message_collects_one_messages_life():
    bus = EventBus()
    mid = msgid(0, 1, 0, 0)
    other = msgid(1, 0, 0, 0)
    bus.emit(0.0, "dev", "msg.send", rank=0, msg=mid)
    bus.emit(1.0, "dev", "env.arrived", rank=1, msg=other)
    bus.emit(2.0, "dev", "env.arrived", rank=1, msg=mid)
    assert [e.kind for e in bus.for_message(mid)] == ["msg.send", "env.arrived"]


def test_queries_and_clear():
    bus = EventBus()
    bus.emit(0.0, "dev", "msg.send")
    bus.emit(1.0, "net", "seg.send")
    assert [e.kind for e in bus.by_layer("net")] == ["seg.send"]
    assert [e.layer for e in bus.by_kind("msg.send")] == ["dev"]
    bus.clear()
    assert len(bus) == 0
    assert bus.counters.get("dev.msg.send") == 0
