"""Trace exporters and the CI schema checker."""

import json

import pytest

from repro.obs import EventBus, msgid, to_chrome, to_jsonl_lines, write_trace
from repro.obs.schema import main as schema_main
from repro.obs.schema import validate_chrome_trace


def _call_bus():
    """A tiny bus with one MPI call span per rank and a device instant."""
    bus = EventBus()
    bus.emit(0.0, "mpi", "call.enter", rank=0, detail={"call": "send", "peer": 1})
    bus.emit(1.0, "dev", "msg.send", rank=0, msg=msgid(0, 1, 0, 0),
             detail={"tag": 7, "nbytes": 64})
    bus.emit(5.0, "mpi", "call.exit", rank=0, detail={"call": "send", "peer": 1})
    bus.emit(2.0, "mpi", "call.enter", rank=1, detail={"call": "recv"})
    bus.emit(6.0, "mpi", "call.exit", rank=1, detail={"call": "recv"})
    return bus


def test_chrome_spans_and_instants():
    trace = to_chrome(_call_bus())
    events = trace["traceEvents"]
    assert validate_chrome_trace(trace) == []
    spans = [e for e in events if e["ph"] in ("B", "E")]
    assert [e["ph"] for e in spans if e["tid"] == 0] == ["B", "E"]
    assert [e["ph"] for e in spans if e["tid"] == 1] == ["B", "E"]
    (b0,) = [e for e in spans if e["ph"] == "B" and e["tid"] == 0]
    assert b0["name"] == "send" and b0["ts"] == 0.0
    (inst,) = [e for e in events if e["ph"] == "i"]
    assert inst["name"] == "msg.send"
    assert inst["args"]["msg"] == [0, 1, 0, 0]
    # thread metadata names each rank's track
    names = {e["args"]["name"] for e in events if e["ph"] == "M"}
    assert {"rank 0", "rank 1"} <= names


def test_chrome_pids_follow_run_labels():
    bus = EventBus()
    bus.set_run("run-a")
    bus.emit(0.0, "dev", "msg.send", rank=0)
    bus.set_run("run-b")
    bus.emit(1.0, "dev", "msg.send", rank=0)
    trace = to_chrome(bus)
    procs = {e["args"]["name"]: e["pid"] for e in trace["traceEvents"]
             if e["ph"] == "M" and e["name"] == "process_name"}
    assert set(procs) == {"run-a", "run-b"}
    assert len(set(procs.values())) == 2
    assert validate_chrome_trace(trace) == []


def test_jsonl_round_trips():
    lines = list(to_jsonl_lines(_call_bus()))
    assert len(lines) == 5
    recs = [json.loads(line) for line in lines]
    assert recs[1] == {"t": 1.0, "layer": "dev", "kind": "msg.send", "rank": 0,
                       "msg": [0, 1, 0, 0], "detail": {"tag": 7, "nbytes": 64}}


def test_write_trace_formats(tmp_path):
    bus = _call_bus()
    chrome = tmp_path / "t.json"
    jsonl = tmp_path / "t.jsonl"
    write_trace(bus, str(chrome), "chrome")
    write_trace(bus, str(jsonl), "jsonl")
    assert validate_chrome_trace(json.loads(chrome.read_text())) == []
    assert len(jsonl.read_text().splitlines()) == 5
    with pytest.raises(ValueError, match="unknown trace format"):
        write_trace(bus, str(chrome), "protobuf")


# ---------------------------------------------------------------------------
# the validator itself: bad traces must be rejected
# ---------------------------------------------------------------------------


def test_validator_rejects_malformed_traces():
    assert validate_chrome_trace([]) != []
    assert validate_chrome_trace({}) == ["missing or non-list 'traceEvents'"]
    errs = validate_chrome_trace({"traceEvents": [
        {"ph": "Z", "pid": 0, "tid": 0},                       # unknown phase
        {"ph": "i", "pid": 0, "tid": 0, "ts": -1, "name": "x"},  # negative ts
        {"ph": "i", "pid": 0, "ts": 0, "name": "x"},           # missing tid
        {"ph": "i", "pid": 0, "tid": 0, "ts": 0},              # missing name
    ]})
    assert len(errs) == 4


def test_validator_rejects_unbalanced_spans():
    unopened = {"traceEvents": [
        {"ph": "E", "pid": 0, "tid": 0, "ts": 1.0, "name": "send"},
    ]}
    assert any("no open B" in e for e in validate_chrome_trace(unopened))
    unclosed = {"traceEvents": [
        {"ph": "B", "pid": 0, "tid": 0, "ts": 0.0, "name": "send"},
    ]}
    assert any("unclosed" in e for e in validate_chrome_trace(unclosed))


def test_schema_cli(tmp_path, capsys):
    good = tmp_path / "good.json"
    write_trace(_call_bus(), str(good), "chrome")
    assert schema_main([str(good)]) == 0
    assert "OK" in capsys.readouterr().out

    bad = tmp_path / "bad.json"
    bad.write_text('{"traceEvents": [{"ph": "E", "pid": 0, "tid": 0, '
                   '"ts": 1.0, "name": "x"}]}')
    assert schema_main([str(bad)]) == 1
    assert schema_main([str(tmp_path / "missing.json")]) == 1
    assert schema_main([]) == 2
