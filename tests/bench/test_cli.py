"""CLI tests (python -m repro ...)."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(*argv):
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_info_lists_all_configurations():
    code, text = run_cli("info")
    assert code == 0
    for token in ("meiko", "lowlatency", "mpich", "ethernet", "atm", "tcp", "udp"):
        assert token in text


def test_pingpong_table():
    code, text = run_cli("pingpong", "--platform", "meiko", "--sizes", "1,64")
    assert code == 0
    assert "RTT (us)" in text
    assert "64" in text


def test_pingpong_default_device_per_platform():
    code, text = run_cli("pingpong", "--sizes", "1")
    assert code == 0
    assert "lowlatency" in text


def test_bandwidth_table():
    code, text = run_cli("bandwidth", "--platform", "meiko", "--sizes", "65536")
    assert code == 0
    assert "MB/s" in text


def test_figure_with_chart():
    code, text = run_cli("figure", "fig02", "--chart")
    assert code == 0
    assert "Meiko tport" in text
    assert "o=MPI(mpich)" in text  # the chart legend


def test_figure_table1():
    code, text = run_cli("figure", "table1")
    assert code == 0
    assert "Read for msg type" in text


def test_figure_fig01_reports_crossover():
    code, text = run_cli("figure", "fig01")
    assert code == 0
    assert "crossover" in text


def test_unknown_figure_rejected():
    with pytest.raises(SystemExit):
        run_cli("figure", "fig99")


def test_sweep_matches_figure_output(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    _, figure_text = run_cli("figure", "fig02")
    code, sweep_text = run_cli("sweep", "fig02", "--workers", "2")
    assert code == 0
    assert sweep_text == figure_text  # engine stats go to stderr only


def test_sweep_rejects_unknown_figure():
    code, text = run_cli("sweep", "fig99")
    assert code == 2
    assert "unknown figure" in text


@pytest.mark.parametrize("app", ["linsolve", "matmul", "nbody", "jacobi"])
def test_apps_verify(app):
    code, text = run_cli("app", app, "--nprocs", "2", "--size", "8")
    assert code == 0
    assert "verification OK" in text
