"""Tests for table formatting and ASCII charts."""

import pytest

from repro.bench.ascii_chart import MARKERS, ascii_chart
from repro.bench.tables import format_series, format_table


# ---------------------------------------------------------------------------
# tables
# ---------------------------------------------------------------------------


def test_format_table_alignment():
    out = format_table(["a", "bb"], [[1, 2.5], [30, 4.125]])
    lines = out.splitlines()
    assert lines[0].endswith("bb")
    assert "30" in lines[3]
    assert "4.125" in lines[3]


def test_format_table_title():
    out = format_table(["x"], [[1]], title="T")
    assert out.splitlines()[0] == "T"


def test_format_table_large_floats_one_decimal():
    out = format_table(["v"], [[12345.678]])
    assert "12345.7" in out


def test_format_series():
    out = format_series({"a": [(1, 2.0), (2, 4.0)], "b": [(1, 3.0), (2, 5.0)]},
                        xlabel="n")
    lines = out.splitlines()
    assert lines[0].split() == ["n", "a", "b"]
    assert lines[2].split() == ["1", "2", "3"]


def test_format_series_mismatched_x_rejected():
    with pytest.raises(ValueError):
        format_series({"a": [(1, 2.0)], "b": [(2, 3.0)]})


# ---------------------------------------------------------------------------
# ascii chart
# ---------------------------------------------------------------------------


def test_chart_contains_markers_and_legend():
    out = ascii_chart({"up": [(1, 1), (2, 2)], "down": [(1, 2), (2, 1)]},
                      width=20, height=6)
    assert MARKERS[0] in out and MARKERS[1] in out
    assert "o=up" in out and "x=down" in out


def test_chart_extremes_on_borders():
    out = ascii_chart({"s": [(0, 0), (10, 100)]}, width=30, height=8)
    lines = [l for l in out.splitlines() if "|" in l]
    # max value appears on the top plot row, min on the bottom
    assert "o" in lines[0]
    assert "o" in lines[-1]


def test_chart_axis_labels():
    out = ascii_chart({"s": [(1, 5), (9, 5)]}, width=24, height=5,
                      xlabel="bytes", ylabel="us")
    assert "x: bytes" in out and "y: us" in out


def test_chart_log_scale():
    out = ascii_chart({"s": [(1, 1), (10, 10), (100, 100)]},
                      width=21, height=7, logx=True, logy=True)
    cols = []
    for line in out.splitlines():
        if "|" in line and "o" in line:
            cols.append(line.index("o"))
    # log-log of a power law is a straight line: equally spaced columns
    assert len(cols) == 3
    assert abs((cols[1] - cols[0]) - (cols[2] - cols[1])) <= 1


def test_chart_log_scale_rejects_nonpositive():
    with pytest.raises(ValueError):
        ascii_chart({"s": [(0, 1)]}, logx=True)


def test_chart_validation():
    with pytest.raises(ValueError):
        ascii_chart({})
    with pytest.raises(ValueError):
        ascii_chart({"s": [(1, 1)]}, width=2)
    with pytest.raises(ValueError):
        ascii_chart({"s": []})


def test_chart_flat_series_does_not_crash():
    out = ascii_chart({"s": [(1, 5), (2, 5), (3, 5)]}, width=16, height=5)
    plot_rows = [l for l in out.splitlines() if "|" in l]
    assert sum(row.count("o") for row in plot_rows) == 3


def test_chart_overlap_marked():
    out = ascii_chart({"a": [(1, 1)], "b": [(1, 1)]}, width=16, height=5)
    assert "?" in out
