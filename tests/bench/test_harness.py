"""Unit tests for the benchmark harness: drivers, sweeps, crossovers."""

import pytest

from repro.bench import harness


# ---------------------------------------------------------------------------
# crossover
# ---------------------------------------------------------------------------


def test_crossover_interpolates():
    a = [(0, 0.0), (10, 10.0)]
    b = [(0, 5.0), (10, 5.0)]
    assert harness.crossover(a, b) == pytest.approx(5.0)


def test_crossover_none_when_no_cross():
    a = [(0, 0.0), (10, 1.0)]
    b = [(0, 5.0), (10, 5.0)]
    assert harness.crossover(a, b) is None


def test_crossover_at_sample_point():
    a = [(0, 0.0), (5, 5.0), (10, 10.0)]
    b = [(0, 5.0), (5, 5.0), (10, 5.0)]
    assert harness.crossover(a, b) == pytest.approx(5.0)


def test_crossover_mismatched_samples_rejected():
    with pytest.raises(ValueError):
        harness.crossover([(0, 1.0)], [(1, 1.0)])
    with pytest.raises(ValueError):
        harness.crossover([(0, 1.0), (1, 1.0)], [(0, 1.0)])


def test_sweep_evaluates_in_order():
    calls = []

    def fn(n):
        calls.append(n)
        return n * 2.0

    out = harness.sweep(fn, [1, 4, 2])
    assert out == [(1, 2.0), (4, 8.0), (2, 4.0)]
    assert calls == [1, 4, 2]


# ---------------------------------------------------------------------------
# drivers produce sane, consistent numbers
# ---------------------------------------------------------------------------


def test_mpi_pingpong_deterministic():
    a = harness.mpi_pingpong_rtt("meiko", "lowlatency", 64)
    b = harness.mpi_pingpong_rtt("meiko", "lowlatency", 64)
    assert a == b


def test_mpi_pingpong_monotone_in_size():
    small = harness.mpi_pingpong_rtt("meiko", "lowlatency", 1)
    large = harness.mpi_pingpong_rtt("meiko", "lowlatency", 4096)
    assert large > small


def test_tport_rtt_below_mpi():
    assert harness.tport_rtt(1) < harness.mpi_pingpong_rtt("meiko", "lowlatency", 1)


def test_bandwidth_positive_and_bounded():
    bw = harness.mpi_bandwidth("meiko", "lowlatency", 262144)
    assert 0 < bw < 40.0  # cannot beat the DMA engine


def test_raw_stream_transport_validation():
    with pytest.raises(ValueError):
        harness.raw_stream_rtt("atm", "sctp", 1)


def test_fore_rtt_sane():
    rtt = harness.fore_rtt(1)
    assert 500 < rtt < 1200


def test_tport_bandwidth_approaches_dma():
    bw = harness.tport_bandwidth(1_000_000)
    assert 37.0 < bw < 39.5
