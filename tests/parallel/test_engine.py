"""The parallel experiment engine's own tests.

The contract under test (see ``src/repro/parallel/engine.py``):
seed-stable round-robin sharding, canonical-order merge identical to
the serial run, budget skips as :data:`SKIPPED`, worker exceptions
re-raised as :class:`CellError`, and — for traced sweeps — per-shard
event streams threaded back through the merge so an exported trace is
byte-identical to the serial sweep's.

Tests use the ``_selftest`` cell kind (a pure digest of the spec, no
simulation) so engine behaviour is isolated from simulator behaviour.
"""

import json

import pytest

from repro.parallel import CellError, SKIPPED, plan_shards, run_cells
from repro.parallel.engine import RunReport


def _cells(n, **extra):
    return [{"kind": "_selftest", "i": i, **extra} for i in range(n)]


# ---------------------------------------------------------------- sharding
def test_plan_shards_is_round_robin():
    assert plan_shards(7, 3) == [[0, 3, 6], [1, 4], [2, 5]]


def test_plan_shards_is_a_pure_function_of_counts():
    assert plan_shards(10, 4) == plan_shards(10, 4)


def test_plan_shards_covers_every_index_exactly_once():
    for n, w in [(0, 1), (1, 4), (9, 2), (16, 16), (5, 7)]:
        flat = sorted(i for shard in plan_shards(n, w) for i in shard)
        assert flat == list(range(n))


def test_plan_shards_clamps_workers_to_one():
    assert plan_shards(3, 0) == [[0, 1, 2]]


# ------------------------------------------------------------------- merge
def test_parallel_results_equal_serial(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
    cells = _cells(9)
    serial = run_cells(cells, workers=1, cache=False)
    parallel = run_cells(cells, workers=4, cache=False)
    assert parallel.results == serial.results
    assert [r["digest"] for r in parallel.results] == [
        r["digest"] for r in serial.results
    ]


def test_merge_is_in_submission_order():
    cells = _cells(6)
    report = run_cells(cells, workers=3, cache=False)
    expected = [run_cells([c], cache=False).results[0] for c in cells]
    assert report.results == expected


def test_report_accounting():
    report = run_cells(_cells(5), workers=2, cache=False)
    assert isinstance(report, RunReport)
    assert report.executed == 5
    assert report.cached == 0
    assert report.skipped == 0
    assert sum(s.cells for s in report.shards) == 5
    assert "workers=2" in report.stats_line()


def test_empty_cell_list():
    report = run_cells([], workers=4, cache=False)
    assert report.results == []
    assert report.executed == 0


# ------------------------------------------------------------------ budget
def test_budget_skips_remaining_cells():
    cells = _cells(8, spin=200_000)
    report = run_cells(cells, workers=1, cache=False, budget_s=0.0)
    # budget 0 → the first cell of the shard still starts before the
    # clock is checked, everything after is skipped
    assert report.skipped >= 1
    assert any(r is SKIPPED for r in report.results)
    assert report.executed + report.skipped == len(cells)


def test_skipped_cells_use_the_sentinel_not_none():
    report = run_cells(_cells(4, spin=200_000), workers=1,
                       cache=False, budget_s=0.0)
    for r in report.results:
        assert r is SKIPPED or isinstance(r, dict)


# ------------------------------------------------------------------ errors
def test_worker_exception_becomes_cell_error():
    cells = _cells(2) + [{"kind": "no_such_task"}]
    with pytest.raises(CellError) as excinfo:
        run_cells(cells, workers=2, cache=False)
    assert excinfo.value.index == 2
    assert "no_such_task" in str(excinfo.value)


def test_cell_error_carries_the_cell():
    with pytest.raises(CellError) as excinfo:
        run_cells([{"kind": "no_such_task", "x": 1}], cache=False)
    assert excinfo.value.cell == {"kind": "no_such_task", "x": 1}


# ----------------------------------------------------------------- retries
def _flaky(tmp_path, i, fail_times, retries):
    return {"kind": "_flaky_selftest", "i": i, "_fail_times": fail_times,
            "_counter": str(tmp_path / f"attempts{i}"), "_retries": retries}


def test_retries_recover_transient_failures(tmp_path):
    flaky = [_flaky(tmp_path, i, fail_times=2, retries=3) for i in range(3)]
    clean = [{"kind": "_flaky_selftest", "i": i} for i in range(3)]
    report = run_cells(flaky, workers=2, cache=False)
    serial = run_cells(clean, workers=1, cache=False)
    # byte-identical to the never-flaked serial run on success
    assert report.results == serial.results
    assert report.executed == 3


def test_retries_exhausted_surface_cell_error(tmp_path):
    cells = [_flaky(tmp_path, 0, fail_times=99, retries=2)]
    with pytest.raises(CellError) as excinfo:
        run_cells(cells, workers=1, cache=False)
    assert "retries exhausted" in str(excinfo.value)
    # 1 initial attempt + 2 retries, no more
    assert (tmp_path / "attempts0").stat().st_size == 3


def test_no_retries_without_opt_in(tmp_path):
    cell = _flaky(tmp_path, 0, fail_times=1, retries=0)
    with pytest.raises(CellError):
        run_cells([cell], workers=1, cache=False)
    assert (tmp_path / "attempts0").stat().st_size == 1


def test_retry_backoff_is_deterministic_and_capped():
    from repro.parallel.engine import retry_backoff_s

    assert [retry_backoff_s(a) for a in range(1, 7)] == \
        [0.05, 0.1, 0.2, 0.4, 0.8, 1.0]
    assert retry_backoff_s(40) == 1.0


def test_retries_do_not_perturb_the_cache_key():
    from repro.parallel.tasks import cacheable_spec

    assert cacheable_spec({"kind": "k", "i": 0, "_retries": 3}) == \
        {"kind": "k", "i": 0}


# ----------------------------------------------- traced sweeps (obs merge)
def _traced_chaos_sweep(workers, trace_path):
    from repro.bench.chaos import chaos_sweep
    from repro.obs import EventBus
    from repro.obs.export import write_trace

    bus = EventBus()
    rows = chaos_sweep(
        platforms=["ethernet"], losses=(0.0, 0.05), workloads=("pingpong",),
        repeats=2, obs=bus, workers=workers, use_cache=False,
    )
    write_trace(bus, str(trace_path))
    return rows, len(bus.events)


def test_traced_chaos_parallel_trace_is_byte_identical(tmp_path):
    serial_rows, serial_events = _traced_chaos_sweep(None, tmp_path / "s.json")
    par_rows, par_events = _traced_chaos_sweep(2, tmp_path / "p.json")
    assert par_rows == serial_rows
    assert par_events == serial_events > 0
    assert (tmp_path / "p.json").read_bytes() == (tmp_path / "s.json").read_bytes()
    json.loads((tmp_path / "s.json").read_text())  # stays valid JSON
