"""Content-addressed result cache: correctness contract.

The three properties the ISSUE pins down:

1. a re-run with identical inputs is answered from the cache (zero
   cells dispatched),
2. a change to the ``src/repro`` code digest invalidates every entry,
3. ``--no-cache`` (``cache=False``) never reads *or writes* the cache.
"""

import json

import pytest

from repro.parallel import ResultCache, cell_key, code_digest, run_cells
from repro.parallel.tasks import cacheable_spec


@pytest.fixture()
def cache(tmp_path):
    return ResultCache(str(tmp_path / "cache"))


def _cells(n):
    return [{"kind": "_selftest", "i": i} for i in range(n)]


# --------------------------------------------------------------- unit level
def test_put_get_roundtrip(cache):
    key = cell_key("_selftest", {"i": 0})
    assert cache.get(key) == (False, None)
    assert cache.put(key, "_selftest", {"i": 0}, {"answer": 42})
    assert cache.get(key) == (True, {"answer": 42})
    assert (cache.hits, cache.misses, cache.stores) == (1, 1, 1)


def test_entries_are_self_describing(cache):
    key = cell_key("_selftest", {"i": 3})
    cache.put(key, "_selftest", {"i": 3}, [1, 2, 3])
    entry = json.loads(cache._path(key).read_text())
    assert entry["key"] == key
    assert entry["kind"] == "_selftest"
    assert entry["cell"] == {"i": 3}
    assert entry["code"] == code_digest()
    assert "created" in entry


def test_corrupt_entry_is_a_miss(cache):
    key = cell_key("_selftest", {"i": 0})
    cache.put(key, "_selftest", {"i": 0}, "ok")
    cache._path(key).write_text("{not json")
    assert cache.get(key) == (False, None)


def test_corrupt_entry_is_quarantined_not_left_in_place(cache):
    key = cell_key("_selftest", {"i": 0})
    cache.put(key, "_selftest", {"i": 0}, "ok")
    path = cache._path(key)
    path.write_text("{not json")
    assert cache.get(key) == (False, None)
    assert cache.quarantined == 1
    # the bad bytes moved aside for the audit trail, slot freed
    assert not path.exists()
    aside = path.with_suffix(path.suffix + ".corrupt")
    assert aside.read_text() == "{not json"
    # the freed slot is immediately reusable
    assert cache.put(key, "_selftest", {"i": 0}, "again")
    assert cache.get(key) == (True, "again")


def test_wrong_key_entry_is_quarantined(cache):
    key_a = cell_key("_selftest", {"i": 1})
    key_b = cell_key("_selftest", {"i": 2})
    cache.put(key_a, "_selftest", {"i": 1}, "a")
    # misfile A's (valid) bytes into B's slot
    path_b = cache._path(key_b)
    path_b.parent.mkdir(parents=True, exist_ok=True)
    path_b.write_text(cache._path(key_a).read_text())
    assert cache.get(key_b) == (False, None)
    assert cache.quarantined == 1
    assert not path_b.exists()
    assert path_b.with_suffix(path_b.suffix + ".corrupt").exists()
    # the correctly-filed entry is untouched
    assert cache.get(key_a) == (True, "a")


def test_entry_without_value_is_quarantined(cache):
    key = cell_key("_selftest", {"i": 0})
    path = cache._path(key)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps({"key": key, "kind": "_selftest"}))
    assert cache.get(key) == (False, None)
    assert cache.quarantined == 1
    assert not path.exists()


def test_plain_miss_is_not_quarantine(cache):
    assert cache.get(cell_key("_selftest", {"i": 7})) == (False, None)
    assert cache.quarantined == 0


def test_unserializable_value_is_rejected(cache):
    key = cell_key("_selftest", {"i": 0})
    assert not cache.put(key, "_selftest", {"i": 0}, object())
    assert cache.get(key) == (False, None)


def test_cell_key_depends_on_code_digest():
    spec = {"i": 0}
    assert cell_key("k", spec, code="aaa") != cell_key("k", spec, code="bbb")
    assert cell_key("k", spec) == cell_key("k", spec)


def test_cell_key_depends_on_kind_and_spec():
    assert cell_key("a", {"i": 0}) != cell_key("b", {"i": 0})
    assert cell_key("a", {"i": 0}) != cell_key("a", {"i": 1})


def test_underscore_keys_never_reach_the_cache_key():
    assert cacheable_spec({"kind": "k", "i": 0, "_budget": 9}) == \
        {"kind": "k", "i": 0}
    assert cacheable_spec({"kind": "k", "_nocache": True}) is None


def test_cache_dir_env_override(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "elsewhere"))
    cache = ResultCache()
    assert str(cache.root) == str(tmp_path / "elsewhere")


# ------------------------------------------------------------- engine level
def test_warm_rerun_hits_for_identical_inputs(cache):
    cells = _cells(4)
    cold = run_cells(cells, workers=2, cache=cache)
    assert (cold.executed, cold.cached) == (4, 0)
    warm = run_cells(cells, workers=2, cache=cache)
    assert (warm.executed, warm.cached) == (0, 4)
    assert warm.results == cold.results


def test_code_digest_change_invalidates(cache, monkeypatch):
    cells = _cells(3)
    run_cells(cells, cache=cache)
    monkeypatch.setattr(
        "repro.parallel.cache.code_digest", lambda: "edited-tree-digest"
    )
    rerun = run_cells(cells, cache=cache)
    assert (rerun.executed, rerun.cached) == (3, 0)


def test_no_cache_neither_reads_nor_writes(cache):
    cells = _cells(3)
    run_cells(cells, cache=cache)  # populate
    report = run_cells(cells, workers=2, cache=False)
    assert (report.executed, report.cached) == (3, 0)  # no reads
    assert cache.hits == 0


def test_no_cache_creates_no_directory(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "never"))
    monkeypatch.chdir(tmp_path)
    run_cells(_cells(2), workers=2, cache=False)
    assert not (tmp_path / "never").exists()
    assert not (tmp_path / ".repro-cache").exists()


def test_nocache_cells_are_executed_every_time(cache):
    cells = [{"kind": "_selftest", "i": i, "_nocache": True} for i in range(3)]
    first = run_cells(cells, cache=cache)
    second = run_cells(cells, cache=cache)
    assert first.executed == second.executed == 3
    assert second.cached == 0
    assert cache.stores == 0
