"""Serial/parallel equivalence of the fuzz-corpus runner.

The acceptance contract from the ISSUE: a 4-worker corpus run must
produce byte-identical merged semantic traces (the per-entry printed
lines and the reference canonical traces) and identical shrunk repro
artifacts versus the serial run — plus, with a warm cache, a re-run of
an unchanged tree must skip every entry.
"""

import io
from pathlib import Path

import pytest

from repro.conformance.corpus import run_corpus
from repro.conformance.executor import DifferentialResult
from repro.conformance.grammar import generate
from repro.parallel import ResultCache

#: small cross-profile slice of the pinned corpus (kept fault-free so the
#: injected-failure test below exercises only the differential path)
ENTRIES = [(1, "mixed"), (11, "pt2pt"), (21, "collective"),
           (2, "mixed"), (12, "pt2pt"), (31, "fault")]


def _lines(buf):
    """Per-entry output lines; the trailing summary line carries a
    wall-clock elapsed figure, so it is compared field-wise instead."""
    lines = buf.getvalue().splitlines()
    assert lines[-1].startswith("corpus ")
    return lines[:-1]


# ------------------------------------------------- byte-identical merge
def test_four_worker_run_matches_serial():
    serial_out, parallel_out = io.StringIO(), io.StringIO()
    serial = run_corpus(ENTRIES, out=serial_out)
    parallel = run_corpus(ENTRIES, out=parallel_out, workers=4,
                          use_cache=False)

    assert _lines(parallel_out) == _lines(serial_out)
    for field in ("total", "ran", "passed", "failures", "truncated"):
        assert parallel[field] == serial[field]
    # the merged semantic traces: reference canonical trace per entry
    assert parallel["canons"] == serial["canons"]
    assert len(serial["canons"]) == len(ENTRIES)
    eng = parallel["engine"]
    assert eng["workers"] == 4
    assert eng["executed"] == len(ENTRIES)
    assert len(eng["shards"]) <= 4


def test_workers_one_also_matches_serial():
    serial_out, one_out = io.StringIO(), io.StringIO()
    entries = ENTRIES[:3]
    serial = run_corpus(entries, out=serial_out)
    one = run_corpus(entries, out=one_out, workers=1, use_cache=False)
    assert _lines(one_out) == _lines(serial_out)
    assert one["canons"] == serial["canons"]


# ----------------------------------------------------------- warm cache
def test_warm_cache_skips_every_entry(tmp_path):
    entries = ENTRIES[:4]
    cache_root = str(tmp_path / "cache")
    cold = run_corpus(entries, workers=2, cache_root=cache_root)
    assert cold["engine"]["executed"] == len(entries)
    warm = run_corpus(entries, workers=2, cache_root=cache_root)
    assert warm["engine"]["executed"] == 0
    assert warm["engine"]["cached"] == len(entries)
    assert warm["canons"] == cold["canons"]
    assert warm["passed"] == cold["passed"]


# ------------------------------------------------------ shrunk artifacts
def _has_collective(program):
    return any(r.kind == "collective" for r in program.rounds)


def _inject_collective_failure(monkeypatch):
    """Replace the differential oracle with a deterministic structural
    predicate: any program containing a collective round 'fails'.  The
    patch is installed before the worker pool forks, so worker processes
    inherit it; the shrinker then minimises under the same predicate in
    both the serial and the engine path."""

    def fake_differential(program, matrix=None, **kwargs):
        return DifferentialResult(program=program, ok=not _has_collective(program))

    monkeypatch.setattr(
        "repro.conformance.executor.differential", fake_differential
    )
    monkeypatch.setattr(
        "repro.conformance.corpus.differential", fake_differential
    )


def test_shrunk_repros_identical_serial_vs_parallel(tmp_path, monkeypatch):
    _inject_collective_failure(monkeypatch)
    entries = [(11, "pt2pt"), (21, "collective")]
    assert _has_collective(generate(21, profile="collective"))

    serial_dir, parallel_dir = tmp_path / "serial", tmp_path / "parallel"
    serial = run_corpus(entries, artifacts_dir=str(serial_dir),
                        shrink_budget=40)
    parallel = run_corpus(entries, artifacts_dir=str(parallel_dir),
                          shrink_budget=40, workers=4, use_cache=False)

    assert serial["failures"] and parallel["failures"]
    assert [f[:2] for f in parallel["failures"]] == \
        [f[:2] for f in serial["failures"]]

    serial_files = sorted(p.name for p in serial_dir.iterdir())
    parallel_files = sorted(p.name for p in parallel_dir.iterdir())
    assert parallel_files == serial_files
    assert serial_files == ["repro_collective_seed21.json",
                            "repro_collective_seed21.py"]
    for name in serial_files:
        assert (parallel_dir / name).read_bytes() == \
            (serial_dir / name).read_bytes()
