"""Kernel / ClusterMachine / Fore API tests: cost charging, dispatch,
CPU contention between protocol work and application compute."""

import pytest

from repro.errors import ConfigurationError, NetworkError
from repro.hw.cluster import ClusterMachine
from repro.net.kernel import ATM_KERNEL, ETH_KERNEL, KernelParams
from repro.net.tcp import TcpLayer
from repro.sim import Simulator


def build(network="ethernet", **kw):
    sim = Simulator()
    return sim, ClusterMachine(sim, 2, network=network, **kw)


# ---------------------------------------------------------------------------
# machine construction
# ---------------------------------------------------------------------------


def test_cluster_validation():
    sim = Simulator()
    with pytest.raises(ConfigurationError):
        ClusterMachine(sim, 0)
    with pytest.raises(ConfigurationError):
        ClusterMachine(sim, 2, network="token-ring")


def test_mss_per_interface():
    _, eth = build("ethernet")
    _, atm = build("atm")
    assert eth.kernels[0].mss == 1500 - 40
    assert atm.kernels[0].mss == 9188 - 40
    assert atm.kernels[0].mss > eth.kernels[0].mss


def test_kernel_profiles_differ():
    _, eth = build("ethernet")
    _, atm = build("atm")
    assert eth.kernels[0].params is ETH_KERNEL
    assert atm.kernels[0].params is ATM_KERNEL
    assert atm.kernels[0].params.syscall_read > eth.kernels[0].params.syscall_read


def test_kernel_params_override():
    kp = KernelParams().with_overrides(syscall_read=5.0)
    _, m = build("ethernet", kernel_params=kp)
    assert m.kernels[0].params.syscall_read == 5.0


def test_fore_requires_atm():
    _, m = build("ethernet")
    with pytest.raises(ConfigurationError):
        m.fore(0)


def test_fore_api_lazy_and_cached():
    _, m = build("atm")
    assert m.fore(0) is m.fore(0)


def test_fore_bind_duplicate_rejected():
    _, m = build("atm")
    api = m.fore(0)
    api.bind(5)
    with pytest.raises(NetworkError):
        api.bind(5)


def test_fore_recv_unbound_rejected():
    sim, m = build("atm")
    api = m.fore(0)
    with pytest.raises(NetworkError):
        next(api.recv(99))


# ---------------------------------------------------------------------------
# cost charging
# ---------------------------------------------------------------------------


def test_syscall_costs_charged_to_cpu():
    sim, m = build("ethernet")
    k = m.kernels[0]

    def proc(sim):
        yield from k.syscall_write(1000)
        yield from k.syscall_read(1000)

    sim.process(proc(sim))
    sim.run()
    p = k.params
    expected = p.syscall_write + p.syscall_read + 2000 * p.copy_per_byte
    assert m.hosts[0].cpu.busy_time == pytest.approx(expected)


def test_protocol_work_contends_with_compute():
    """A host busy computing delays its own receive processing."""

    def one_way(busy: bool):
        sim, m = build("ethernet")
        a, b = TcpLayer.connect_pair(m.kernels[0], m.kernels[1], 5000, 5000)

        def sender(sim):
            yield sim.timeout(10.0)
            yield from a.send(b"x" * 100)

        def busy_receiver(sim):
            if busy:
                # hog the CPU in one huge uninterruptible slice
                yield from m.hosts[1].cpu.execute(5_000.0)
            got = yield from b.recv_exact(100)
            return sim.now

        sim.process(sender(sim))
        p = sim.process(busy_receiver(sim))
        sim.run()
        return p.value

    assert one_way(True) > one_way(False) + 3000.0


def test_rx_worker_dispatches_by_type():
    """Unknown link payload types are ignored, not crashed on."""
    sim, m = build("ethernet")

    class Alien:
        pass

    m.kernels[0].enqueue_rx(Alien())
    sim.run()  # no exception


def test_ip_layer_stats():
    sim, m = build("ethernet")
    sock0 = m.kernels[0].udp.bind(1)
    sock1 = m.kernels[1].udp.bind(1)

    def sender(sim):
        yield from sock0.sendto(1, 1, bytes(4000))

    sim.process(sender(sim))
    sim.run()
    assert m.kernels[0].ip.datagrams_sent == 1
    assert m.kernels[0].ip.fragments_sent > 1
    assert m.kernels[1].ip.datagrams_delivered == 1


def test_atm_kernel_fore_costs_nonzero():
    assert ATM_KERNEL.fore_out > 0
    assert ATM_KERNEL.fore_in > 0
    # and the Ethernet profile has no Fore path
    assert ETH_KERNEL.fore_out == 0
