"""Cancelled retransmission timers must never fire.

Before cancellable timers, every segment left a sleeping retransmit
process in the heap that woke at the RTO just to discover its data had
been ACKed.  Now the ACK cancels the timer outright; on a lossless
network the retransmit callback must never run at all.
"""

from repro.hw.cluster import ClusterMachine
from repro.net.tcp import TcpLayer
from repro.sim import Simulator


def _pingpong(rounds=20, payload=512):
    sim = Simulator()
    m = ClusterMachine(sim, 2, network="ethernet")
    a, b = TcpLayer.connect_pair(m.kernels[0], m.kernels[1], 5000, 5000)

    fires = []
    for conn in (a, b):
        orig = conn._on_retx_timer

        def counted(_event=None, _orig=orig, _conn=conn):
            fires.append(_conn.local_port)
            _orig(_event)

        conn._on_retx_timer = counted

    def side(conn, first):
        def gen(sim):
            data = bytes(payload)
            for _ in range(rounds):
                if first:
                    yield from conn.send(data)
                    yield from conn.recv_exact(payload)
                else:
                    yield from conn.recv_exact(payload)
                    yield from conn.send(data)

        return gen

    sim.process(side(a, True)(sim))
    sim.process(side(b, False)(sim))
    sim.run()
    return a, b, fires


def test_lossless_run_never_fires_retx_timer():
    a, b, fires = _pingpong()
    assert fires == [], "retransmit timer fired on a lossless network"
    assert a.retransmissions == 0
    assert b.retransmissions == 0
    assert a.error is None and b.error is None


def test_lossless_run_leaves_no_armed_timers():
    a, b, _ = _pingpong(rounds=5)
    for conn in (a, b):
        assert conn._retx_timer is None
        timer = conn._ack_timer
        assert timer is None or timer._cancelled or timer.processed
