"""Ethernet medium tests: CSMA/CD invariants, contention, framing."""

import pytest

from repro.errors import NetworkError
from repro.hw.ethernet import BROADCAST, EthernetParams, Frame, Medium
from repro.hw.node import Host
from repro.sim import Simulator


class StubNic:
    def __init__(self, addr):
        self.addr = addr
        self.received = []

    def on_frame(self, frame):
        self.received.append(frame)


def build(n=2, **overrides):
    sim = Simulator()
    params = EthernetParams().with_overrides(**overrides) if overrides else EthernetParams()
    medium = Medium(sim, params)
    hosts = [Host(sim, i, seed=3) for i in range(n)]
    nics = [StubNic(i) for i in range(n)]
    for nic in nics:
        medium.attach(nic)
    return sim, medium, hosts, nics


def test_frame_wire_bytes_min_frame():
    p = EthernetParams()
    # 1-byte payload is padded to the 64-byte minimum (+ 8 preamble)
    assert p.frame_wire_bytes(1) == 72
    assert p.frame_wire_bytes(1500) == 8 + 14 + 1500 + 4


def test_frame_time_10mbps():
    p = EthernetParams()
    assert p.frame_time(1500) == pytest.approx(1526 * 0.8)


def test_single_frame_delivered():
    sim, medium, hosts, nics = build()

    def sender(sim):
        yield from medium.transmit(Frame(0, 1, 100, "payload"), hosts[0].rng)

    sim.process(sender(sim))
    sim.run()
    assert len(nics[1].received) == 1
    assert nics[1].received[0].payload == "payload"
    assert nics[0].received == []  # unicast not echoed to sender


def test_broadcast_frame():
    sim, medium, hosts, nics = build(4)

    def sender(sim):
        yield from medium.transmit(Frame(0, BROADCAST, 50, "all"), hosts[0].rng)

    sim.process(sender(sim))
    sim.run()
    for nic in nics[1:]:
        assert len(nic.received) == 1
    assert nics[0].received == []


def test_two_senders_serialize_no_overlap():
    """The wire carries one frame at a time: completion times differ by
    at least a frame time."""
    sim, medium, hosts, nics = build(3)
    done = []

    def sender(sim, src):
        yield from medium.transmit(Frame(src, 2, 1000, src), hosts[src].rng)
        done.append(sim.now)

    sim.process(sender(sim, 0))
    sim.process(sender(sim, 1))
    sim.run()
    assert len(nics[2].received) == 2
    ftime = EthernetParams().frame_time(1000)
    assert abs(done[1] - done[0]) >= ftime * 0.9


def test_simultaneous_start_collides_and_recovers():
    sim, medium, hosts, nics = build(3)

    def sender(sim, src):
        yield from medium.transmit(Frame(src, 2, 500, src), hosts[src].rng)

    sim.process(sender(sim, 0))
    sim.process(sender(sim, 1))
    sim.run()
    assert medium.collisions >= 1  # both started cold at t=0
    assert len(nics[2].received) == 2  # but both got through


def test_contention_grows_with_stations():
    """More stations contending -> more collisions and lower efficiency
    (Figure 9's Ethernet degradation mechanism).  Note the aggregate
    throughput of a saturated wire barely moves; the damage shows up in
    collisions and access latency."""

    def run(nstations):
        sim, medium, hosts, nics = build(nstations + 1)

        def sender(sim, src):
            for _ in range(10):
                yield from medium.transmit(Frame(src, nstations, 800, None), hosts[src].rng)

        for s in range(nstations):
            sim.process(sender(sim, s))
        sim.run()
        return medium.collisions, sim.now / (10 * nstations)

    c1, t1 = run(1)
    c4, t4 = run(4)
    assert c4 > c1  # contention produces collisions
    assert t4 >= t1  # and at least no improvement in per-frame time


def test_loss_injection():
    sim = Simulator()
    medium = Medium(sim, drop_fn=lambda frame: True)
    host = Host(sim, 0)
    a, b = StubNic(0), StubNic(1)
    medium.attach(a)
    medium.attach(b)

    def sender(sim):
        yield from medium.transmit(Frame(0, 1, 100, None), host.rng)

    sim.process(sender(sim))
    sim.run()
    assert b.received == []
    assert medium.frames_dropped == 1


def test_duplicate_address_rejected():
    sim, medium, hosts, nics = build(2)
    with pytest.raises(NetworkError):
        medium.attach(StubNic(0))


def test_utilization_tracked():
    sim, medium, hosts, nics = build()

    def sender(sim):
        yield from medium.transmit(Frame(0, 1, 1000, None), hosts[0].rng)

    sim.process(sender(sim))
    sim.run()
    assert 0.0 < medium.utilization() <= 1.0


def test_backoff_is_deterministic_per_seed():
    def run_once():
        sim, medium, hosts, nics = build(3)

        def sender(sim, src):
            for _ in range(5):
                yield from medium.transmit(Frame(src, 2, 400, None), hosts[src].rng)

        sim.process(sender(sim, 0))
        sim.process(sender(sim, 1))
        sim.run()
        return sim.now, medium.collisions

    assert run_once() == run_once()


def test_mtu_enforced_by_nic():
    from repro.hw.ethernet import EthernetNic

    sim = Simulator()
    medium = Medium(sim)
    host = Host(sim, 0)
    nic = EthernetNic(host, medium)
    medium.attach(nic)
    with pytest.raises(NetworkError):
        nic.send(1, 2000, None)


def test_nic_survives_excessive_collision_abort(monkeypatch):
    """An excessive-collision abort drops *that frame* only: the tx
    worker keeps draining the queue (a dead worker mutes the station
    forever, which under fault storms turned crashes into deadlocks)."""
    from repro.hw.ethernet import EthernetNic

    sim = Simulator()
    medium = Medium(sim)
    host = Host(sim, 0, seed=1)
    nic = EthernetNic(host, medium)
    medium.attach(nic)
    peer = StubNic(1)
    medium.attach(peer)

    real_transmit = medium.transmit
    calls = []

    def flaky_transmit(frame, rng):
        calls.append(frame.payload)
        if len(calls) == 1:
            raise NetworkError("excessive collisions")
            yield  # pragma: no cover - makes this a generator
        yield from real_transmit(frame, rng)

    monkeypatch.setattr(medium, "transmit", flaky_transmit)
    nic.send(1, 100, "aborted")
    nic.send(1, 100, "delivered")
    sim.run()
    assert nic.tx_aborts == 1
    assert [f.payload for f in peer.received] == ["delivered"]
