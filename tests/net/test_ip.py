"""IP layer tests: fragmentation, reassembly, dispatch."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.cluster import ClusterMachine
from repro.net.ip import IP_HEADER, IpPacket
from repro.net.udp import UdpDatagram
from repro.sim import Simulator


def build(network="ethernet", n=2, drop_fn=None):
    sim = Simulator()
    machine = ClusterMachine(sim, n, network=network, drop_fn=drop_fn)
    return sim, machine


def test_small_datagram_single_fragment():
    sim, m = build()
    m.kernels[0].ip.send(1, "udp", UdpDatagram(1, 2, b"x"), 9)
    assert m.kernels[0].ip.fragments_sent == 1


def test_large_datagram_fragments_on_ethernet():
    sim, m = build("ethernet")
    n = 4000
    m.kernels[0].ip.send(1, "udp", UdpDatagram(1, 2, bytes(n)), n + 8)
    import math

    expected = math.ceil((n + 8) / (1500 - IP_HEADER))
    assert m.kernels[0].ip.fragments_sent == expected


def test_no_fragmentation_needed_on_atm():
    sim, m = build("atm")
    m.kernels[0].ip.send(1, "udp", UdpDatagram(1, 2, bytes(4000)), 4008)
    assert m.kernels[0].ip.fragments_sent == 1


def test_fragmented_datagram_reassembles_and_delivers():
    sim, m = build("ethernet")
    sock = m.kernels[1].udp.bind(7)
    payload = bytes(range(256)) * 20  # 5120 bytes -> several fragments

    def sender(sim):
        yield from m.kernels[0].udp.bind(9).sendto(1, 7, payload)

    def receiver(sim):
        src, data = yield from sock.recvfrom()
        return (src, data)

    sim.process(sender(sim))
    p = sim.process(receiver(sim))
    sim.run()
    src, data = p.value
    assert src == 0
    assert data == payload


def test_lost_fragment_loses_datagram():
    drops = {"n": 0}

    def drop_second(frame):
        drops["n"] += 1
        return drops["n"] == 2  # drop exactly the second frame

    sim, m = build("ethernet", drop_fn=drop_second)
    sock = m.kernels[1].udp.bind(7)

    def sender(sim):
        yield from m.kernels[0].udp.bind(9).sendto(1, 7, bytes(4000))

    sim.process(sender(sim))
    sim.run()
    assert sock.pending == 0  # datagram never delivered
    assert len(m.kernels[1].ip._partials) == 1  # stuck partial


def test_partial_buffer_evicts_oldest():
    sim, m = build("ethernet")
    ip = m.kernels[1].ip
    ip.max_partials = 2

    def gen():
        for i in range(3):
            pkt = IpPacket(0, 1, "udp", ident=i, offset=0, nbytes=10, total=100,
                           payload=UdpDatagram(1, 7, bytes(100)))
            g = ip.on_packet(pkt)
            if g is not None:
                yield from g
        yield sim.timeout(0)

    sim.process(gen())
    sim.run()
    assert len(ip._partials) == 2
    assert (0, 0) not in ip._partials  # the oldest was evicted


def test_wrong_destination_dropped():
    sim, m = build("ethernet", n=3)
    ip = m.kernels[1].ip
    pkt = IpPacket(0, 2, "udp", ident=1, offset=0, nbytes=1, total=1,
                   payload=UdpDatagram(1, 7, b"x"))

    def gen():
        g = ip.on_packet(pkt)
        if g is not None:
            yield from g
        yield sim.timeout(0)

    sim.process(gen())
    sim.run()
    assert ip.datagrams_delivered == 0


@settings(max_examples=20, deadline=None)
@given(size=st.integers(min_value=0, max_value=12000))
def test_property_any_size_survives_fragmentation(size):
    """Datagrams of any size reassemble exactly over the Ethernet MTU."""
    sim, m = build("ethernet")
    sock = m.kernels[1].udp.bind(7)
    payload = bytes(i % 251 for i in range(size))

    def sender(sim):
        yield from m.kernels[0].udp.bind(9).sendto(1, 7, payload)

    def receiver(sim):
        _, data = yield from sock.recvfrom()
        return data

    sim.process(sender(sim))
    p = sim.process(receiver(sim))
    sim.run()
    assert p.value == payload
