"""TCP tests: streams, handshake, windows, retransmission under loss."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConnectionClosed
from repro.hw.cluster import ClusterMachine
from repro.net.kernel import KernelParams
from repro.net.tcp import TcpLayer
from repro.sim import Simulator


def build(network="ethernet", drop_fn=None, kernel_params=None):
    sim = Simulator()
    m = ClusterMachine(sim, 2, network=network, drop_fn=drop_fn, kernel_params=kernel_params)
    return sim, m


def pair(m, pa=5000, pb=5000):
    return TcpLayer.connect_pair(m.kernels[0], m.kernels[1], pa, pb)


def test_basic_stream():
    sim, m = build()
    a, b = pair(m)

    def sender(sim):
        yield from a.send(b"hello world")

    def receiver(sim):
        return (yield from b.recv_exact(11))

    sim.process(sender(sim))
    p = sim.process(receiver(sim))
    sim.run()
    assert p.value == b"hello world"


def test_bidirectional():
    sim, m = build()
    a, b = pair(m)

    def side(conn, tx, n):
        def gen(sim):
            yield from conn.send(tx)
            rx = yield from conn.recv_exact(n)
            return rx

        return gen

    pa = sim.process(side(a, b"ping", 4)(sim))
    pb = sim.process(side(b, b"pong", 4)(sim))
    sim.run()
    assert pa.value == b"pong"
    assert pb.value == b"ping"


def test_segmentation_respects_mss():
    sim, m = build("ethernet")
    a, b = pair(m)
    total = 10000

    def sender(sim):
        yield from a.send(bytes(total))

    def receiver(sim):
        return (yield from b.recv_exact(total))

    sim.process(sender(sim))
    p = sim.process(receiver(sim))
    sim.run()
    assert len(p.value) == total
    import math

    assert a.segments_sent >= math.ceil(total / m.kernels[0].mss)


def test_multiple_reads_accumulate():
    sim, m = build()
    a, b = pair(m)

    def sender(sim):
        yield from a.send(b"abcdef")

    def receiver(sim):
        x = yield from b.recv_exact(2)
        y = yield from b.recv_exact(4)
        return (x, y)

    sim.process(sender(sim))
    p = sim.process(receiver(sim))
    sim.run()
    assert p.value == (b"ab", b"cdef")


def test_handshake_connect_accept():
    sim, m = build()
    lst = m.kernels[1].tcp.listen(80)

    def client(sim):
        conn = yield from m.kernels[0].tcp.connect(1, 80)
        yield from conn.send(b"GET /")
        return conn

    def server(sim):
        conn = yield from lst.accept()
        data = yield from conn.recv_exact(5)
        return data

    pc = sim.process(client(sim))
    ps = sim.process(server(sim))
    sim.run()
    assert ps.value == b"GET /"
    assert pc.value.state == "established"


def test_duplicate_listen_rejected():
    sim, m = build()
    m.kernels[0].tcp.listen(80)
    from repro.errors import NetworkError

    with pytest.raises(NetworkError):
        m.kernels[0].tcp.listen(80)


def test_retransmission_recovers_from_loss():
    """Drop 20%% of frames: the stream still arrives intact, with
    retransmissions recorded."""
    import random

    rng = random.Random(7)
    dropped = {"n": 0}

    def lossy(frame):
        if rng.random() < 0.2:
            dropped["n"] += 1
            return True
        return False

    # short RTO so the test completes quickly
    kp = KernelParams().with_overrides(rto=10_000.0)
    sim, m = build("ethernet", drop_fn=lossy, kernel_params=kp)
    a, b = pair(m)
    payload = bytes(range(256)) * 80  # 20 KB

    def sender(sim):
        yield from a.send(payload)

    def receiver(sim):
        return (yield from b.recv_exact(len(payload)))

    sim.process(sender(sim))
    p = sim.process(receiver(sim))
    sim.run(until=60_000_000.0)
    assert p.value == payload
    assert dropped["n"] > 0
    assert a.retransmissions + b.retransmissions > 0


def test_window_backpressure():
    """With a tiny advertised window, in-flight data never exceeds it."""
    kp = KernelParams().with_overrides(window=2000)
    sim, m = build("ethernet", kernel_params=kp)
    a, b = pair(m)
    total = 20000

    def sender(sim):
        yield from a.send(bytes(total))

    def receiver(sim):
        return (yield from b.recv_exact(total))

    maxin = {"v": 0}

    def monitor(sim):
        while True:
            maxin["v"] = max(maxin["v"], a.snd_nxt - a.snd_una)
            yield sim.timeout(100.0)

    sim.process(sender(sim))
    p = sim.process(receiver(sim))
    sim.process(monitor(sim))
    sim.run(until=10_000_000.0)
    assert len(p.value) == total
    assert maxin["v"] <= 2000


def test_close_wakes_blocked_reader():
    sim, m = build()
    a, b = pair(m)

    def closer(sim):
        yield sim.timeout(5000.0)
        a.close()

    def reader(sim):
        with pytest.raises(ConnectionClosed):
            yield from b.recv_exact(10)
        return True

    sim.process(closer(sim))
    p = sim.process(reader(sim))
    sim.run()
    assert p.value is True


def test_send_on_closed_rejected():
    sim, m = build()
    a, b = pair(m)
    a.close()
    with pytest.raises(ConnectionClosed):
        next(a.send(b"x"))


def test_latency_matches_paper_band():
    """1-byte TCP RTT: ~925 µs Ethernet, ~1065 µs ATM (paper, Fig. 4/5)."""

    def rtt(network):
        sim, m = build(network)
        a, b = pair(m)

        def client(sim):
            t0 = sim.now
            yield from a.send(b"x")
            yield from a.recv_exact(1)
            return sim.now - t0

        def server(sim):
            d = yield from b.recv_exact(1)
            yield from b.send(d)

        p = sim.process(client(sim))
        sim.process(server(sim))
        sim.run()
        return p.value

    eth, atm = rtt("ethernet"), rtt("atm")
    assert 800 <= eth <= 1050, f"ethernet RTT {eth} outside the paper band"
    assert 950 <= atm <= 1200, f"atm RTT {atm} outside the paper band"
    assert atm > eth  # the ATM stack's per-packet cost dominates at 1 byte


def test_bandwidth_ordering_atm_much_faster():
    """Figure 6: TCP bandwidth on ATM is roughly an order of magnitude
    above the 10 Mb/s Ethernet."""

    def bw(network, total=200_000):
        sim, m = build(network)
        a, b = pair(m)

        def client(sim):
            t0 = sim.now
            yield from a.send(bytes(total))
            yield from a.recv_exact(1)
            return total / (sim.now - t0)

        def server(sim):
            yield from b.recv_exact(total)
            yield from b.send(b"k")

        p = sim.process(client(sim))
        sim.process(server(sim))
        sim.run()
        return p.value

    eth, atm = bw("ethernet"), bw("atm")
    assert eth < 1.25  # can't beat the wire
    assert atm > 4 * eth


@settings(max_examples=15, deadline=None)
@given(chunks=st.lists(st.binary(min_size=1, max_size=4000), min_size=1, max_size=8))
def test_property_stream_integrity(chunks):
    """Any sequence of writes is read back as the exact concatenation."""
    sim, m = build("atm")
    a, b = pair(m)
    whole = b"".join(chunks)

    def sender(sim):
        for c in chunks:
            yield from a.send(c)

    def receiver(sim):
        return (yield from b.recv_exact(len(whole)))

    sim.process(sender(sim))
    p = sim.process(receiver(sim))
    sim.run()
    assert p.value == whole


def test_nagle_holds_small_second_write():
    """With Nagle on, a sub-MSS write waits for the previous segment's
    (delayed) acknowledgement; with TCP_NODELAY semantics it does not."""

    def request_time(nagle):
        kp = KernelParams().with_overrides(nagle=nagle)
        sim, m = build("atm", kernel_params=kp)
        a, b = pair(m)

        def client(sim):
            t0 = sim.now
            yield from a.send(b"h" * 25)
            yield from a.send(b"p" * 100)
            yield from a.recv_exact(1)
            return sim.now - t0

        def server(sim):
            yield from b.recv_exact(125)
            yield from b.send(b"k")

        p = sim.process(client(sim))
        sim.process(server(sim))
        sim.run()
        return p.value

    assert request_time(True) > request_time(False) + 1000.0


def test_nagle_full_segments_flow_immediately():
    """Nagle never delays MSS-sized segments."""
    kp = KernelParams().with_overrides(nagle=True)
    sim, m = build("atm", kernel_params=kp)
    a, b = pair(m)
    total = m.kernels[0].mss * 3

    def client(sim):
        t0 = sim.now
        yield from a.send(bytes(total))
        yield from a.recv_exact(1)
        return sim.now - t0

    def server(sim):
        yield from b.recv_exact(total)
        yield from b.send(b"k")

    p = sim.process(client(sim))
    sim.process(server(sim))
    sim.run()
    # no multi-ms delayed-ack stall: full segments went out back to back
    assert p.value < 10_000.0


def test_fast_retransmit_beats_rto():
    """Drop exactly one mid-stream data frame: three duplicate ACKs
    trigger a fast retransmit, recovering orders of magnitude before
    the 200 ms RTO."""
    state = {"data_frames": 0}

    def drop_third_data(frame):
        if frame.nbytes > 500:
            state["data_frames"] += 1
            return state["data_frames"] == 3
        return False

    sim, m = build("atm", drop_fn=drop_third_data)
    a, b = pair(m)
    total = m.kernels[0].mss * 8  # enough segments after the hole

    def sender(sim):
        yield from a.send(bytes(total))

    def receiver(sim):
        data = yield from b.recv_exact(total)
        return sim.now

    sim.process(sender(sim))
    p = sim.process(receiver(sim))
    sim.run()
    assert a.fast_retransmissions >= 1
    # recovery well before the RTO would have fired
    assert p.value < m.kernels[0].params.rto


def test_dupack_counter_resets_on_progress():
    """A normal lossless stream never triggers fast retransmit."""
    sim, m = build("atm")
    a, b = pair(m)
    total = m.kernels[0].mss * 6

    def sender(sim):
        yield from a.send(bytes(total))

    def receiver(sim):
        return (yield from b.recv_exact(total))

    sim.process(sender(sim))
    p = sim.process(receiver(sim))
    sim.run()
    assert len(p.value) == total
    assert a.fast_retransmissions == 0
