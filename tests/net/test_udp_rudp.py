"""UDP and reliable-UDP tests."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import NetworkError
from repro.hw.cluster import ClusterMachine
from repro.net.kernel import KernelParams
from repro.net.rudp import RudpConnection
from repro.sim import Simulator


def build(network="ethernet", drop_fn=None, kernel_params=None):
    sim = Simulator()
    m = ClusterMachine(sim, 2, network=network, drop_fn=drop_fn, kernel_params=kernel_params)
    return sim, m


# ---------------------------------------------------------------------------
# plain UDP
# ---------------------------------------------------------------------------


def test_udp_datagram_delivery():
    sim, m = build()
    sock0 = m.kernels[0].udp.bind(100)
    sock1 = m.kernels[1].udp.bind(200)

    def sender(sim):
        yield from sock0.sendto(1, 200, b"datagram")

    def receiver(sim):
        return (yield from sock1.recvfrom())

    sim.process(sender(sim))
    p = sim.process(receiver(sim))
    sim.run()
    assert p.value == (0, b"datagram")


def test_udp_unbound_port_drops():
    sim, m = build()
    sock0 = m.kernels[0].udp.bind(100)

    def sender(sim):
        yield from sock0.sendto(1, 999, b"void")

    sim.process(sender(sim))
    sim.run()  # no error; datagram vanished


def test_udp_duplicate_bind_rejected():
    sim, m = build()
    m.kernels[0].udp.bind(100)
    with pytest.raises(NetworkError):
        m.kernels[0].udp.bind(100)


def test_udp_queue_overflow_drops():
    sim, m = build()
    sock0 = m.kernels[0].udp.bind(100)
    sock1 = m.kernels[1].udp.bind(200, queue_limit=2)

    def sender(sim):
        for _ in range(5):
            yield from sock0.sendto(1, 200, b"x")

    sim.process(sender(sim))
    sim.run()
    assert sock1.pending == 2
    assert sock1.drops == 3


def test_udp_on_data_callback():
    sim, m = build()
    sock0 = m.kernels[0].udp.bind(100)
    sock1 = m.kernels[1].udp.bind(200)
    hits = []
    sock1.on_data = lambda: hits.append(sim.now)

    def sender(sim):
        yield from sock0.sendto(1, 200, b"x")

    sim.process(sender(sim))
    sim.run()
    assert len(hits) == 1


# ---------------------------------------------------------------------------
# reliable UDP
# ---------------------------------------------------------------------------


def rudp_pair(m, mss=None, rto=None):
    s0 = m.kernels[0].udp.bind(700)
    s1 = m.kernels[1].udp.bind(700)
    kw = {}
    if mss:
        kw["mss"] = mss
    if rto:
        kw["rto"] = rto
    a = RudpConnection(m.kernels[0], s0, 1, 700, **kw)
    b = RudpConnection(m.kernels[1], s1, 0, 700, **kw)
    return a, b


def test_rudp_stream():
    sim, m = build()
    a, b = rudp_pair(m)

    def sender(sim):
        yield from a.send(b"reliable")

    def receiver(sim):
        return (yield from b.recv_exact(8))

    sim.process(sender(sim))
    p = sim.process(receiver(sim))
    sim.run()
    assert p.value == b"reliable"


def test_rudp_recovers_from_loss():
    """Deterministically drop every 4th *data* frame: the stream still
    arrives intact through retransmission."""
    dropped = {"n": 0, "seen": 0}

    def lossy(frame):
        if frame.nbytes > 500:  # a data-bearing frame
            dropped["seen"] += 1
            if dropped["seen"] % 4 == 0:
                dropped["n"] += 1
                return True
        return False

    sim, m = build("ethernet", drop_fn=lossy)
    a, b = rudp_pair(m, rto=8000.0)
    payload = bytes(range(256)) * 40

    def sender(sim):
        yield from a.send(payload)

    def receiver(sim):
        return (yield from b.recv_exact(len(payload)))

    sim.process(sender(sim))
    p = sim.process(receiver(sim))
    sim.run(until=60_000_000.0)
    assert p.value == payload
    assert dropped["n"] > 0
    assert a.retransmissions > 0


def test_rudp_duplicate_suppression():
    """A retransmission that races its original is delivered once."""
    # drop nothing but use a tiny RTO to force spurious retransmissions
    sim, m = build("ethernet")
    a, b = rudp_pair(m, rto=600.0)
    payload = bytes(1000)

    def sender(sim):
        yield from a.send(payload)

    def receiver(sim):
        return (yield from b.recv_exact(len(payload)))

    sim.process(sender(sim))
    p = sim.process(receiver(sim))
    sim.run(until=10_000_000.0)
    assert p.value == payload
    if a.retransmissions:
        assert b.duplicates >= 1


def test_rudp_close_wakes_reader():
    from repro.errors import ConnectionClosed

    sim, m = build()
    a, b = rudp_pair(m)

    def closer(sim):
        yield sim.timeout(3000.0)
        a.close()

    def reader(sim):
        with pytest.raises(ConnectionClosed):
            yield from b.recv_exact(4)
        return True

    sim.process(closer(sim))
    p = sim.process(reader(sim))
    sim.run()
    assert p.value is True


def test_rudp_latency_similar_to_tcp():
    """Paper, Sec. 5.2: the reliable-UDP implementation performs very
    similarly to TCP."""
    from repro.net.tcp import TcpLayer

    def rtt(make_pair):
        sim, m = build("atm")
        a, b = make_pair(m)

        def client(sim):
            t0 = sim.now
            yield from a.send(b"x")
            yield from a.recv_exact(1)
            return sim.now - t0

        def server(sim):
            d = yield from b.recv_exact(1)
            yield from b.send(d)

        p = sim.process(client(sim))
        sim.process(server(sim))
        sim.run()
        return p.value

    tcp = rtt(lambda m: TcpLayer.connect_pair(m.kernels[0], m.kernels[1], 5000, 5000))
    rudp = rtt(rudp_pair)
    assert abs(rudp - tcp) / tcp < 0.45


@settings(max_examples=10, deadline=None)
@given(chunks=st.lists(st.binary(min_size=1, max_size=3000), min_size=1, max_size=5))
def test_property_rudp_stream_integrity(chunks):
    sim, m = build("atm")
    a, b = rudp_pair(m)
    whole = b"".join(chunks)

    def sender(sim):
        for c in chunks:
            yield from a.send(c)

    def receiver(sim):
        return (yield from b.recv_exact(len(whole)))

    sim.process(sender(sim))
    p = sim.process(receiver(sim))
    sim.run()
    assert p.value == whole
