"""ByteQueue: the zero-copy chunk deque behind the TCP/RUDP byte paths.

The reference model is a plain bytearray: every operation on the queue
must produce the same bytes in the same order, whatever the chunk
boundaries look like internally.
"""

import random

import pytest

from repro.net.bytebuf import ByteQueue


class TestBasics:
    def test_empty(self):
        q = ByteQueue()
        assert len(q) == 0
        assert not q
        assert q.take(0) == b""
        assert q.peek(0) == b""

    def test_append_take_roundtrip(self):
        q = ByteQueue()
        q.append(b"hello ")
        q.append(b"world")
        assert len(q) == 11
        assert bytes(q.take(11)) == b"hello world"
        assert len(q) == 0

    def test_take_within_chunk(self):
        q = ByteQueue()
        q.append(b"abcdef")
        assert bytes(q.take(2)) == b"ab"
        assert bytes(q.take(2)) == b"cd"
        assert bytes(q.take(2)) == b"ef"
        assert not q

    def test_take_across_chunks(self):
        q = ByteQueue()
        q.append(b"abc")
        q.append(b"def")
        q.append(b"ghi")
        assert bytes(q.take(5)) == b"abcde"
        assert bytes(q.take(4)) == b"fghi"

    def test_chunk_aligned_take_returns_whole_chunk(self):
        q = ByteQueue()
        chunk = b"exact"
        q.append(chunk)
        q.append(b"rest")
        out = q.take(5)
        assert bytes(out) == b"exact"
        assert bytes(q.take(4)) == b"rest"

    def test_peek_does_not_consume(self):
        q = ByteQueue()
        q.append(b"abc")
        q.append(b"def")
        assert bytes(q.peek(4)) == b"abcd"
        assert bytes(q.peek(4)) == b"abcd"
        assert len(q) == 6
        assert bytes(q.take(6)) == b"abcdef"

    def test_drop(self):
        q = ByteQueue()
        q.append(b"abc")
        q.append(b"defgh")
        q.drop(4)
        assert len(q) == 4
        assert bytes(q.take(4)) == b"efgh"

    def test_clear(self):
        q = ByteQueue()
        q.append(b"abc")
        q.clear()
        assert len(q) == 0
        assert not q

    def test_memoryview_input(self):
        q = ByteQueue()
        data = bytes(range(64))
        q.append(memoryview(data)[10:20])
        assert bytes(q.take(10)) == data[10:20]

    def test_empty_append_ignored(self):
        q = ByteQueue()
        q.append(b"")
        assert len(q) == 0

    def test_take_too_much_raises(self):
        q = ByteQueue()
        q.append(b"abc")
        with pytest.raises(ValueError):
            q.take(4)

    def test_peek_too_much_raises(self):
        q = ByteQueue()
        with pytest.raises(ValueError):
            q.peek(1)

    def test_drop_too_much_raises(self):
        q = ByteQueue()
        q.append(b"abc")
        with pytest.raises(ValueError):
            q.drop(4)


class TestRandomizedVsBytearray:
    """Drive ByteQueue and a bytearray with the same random ops."""

    @pytest.mark.parametrize("seed", range(8))
    def test_equivalence(self, seed):
        rng = random.Random(seed)
        q = ByteQueue()
        ref = bytearray()
        blob = bytes(rng.randrange(256) for _ in range(4096))

        for _ in range(400):
            op = rng.random()
            if op < 0.4:
                # append a random slice, sometimes as a memoryview
                a = rng.randrange(len(blob))
                b = min(len(blob), a + rng.randrange(1, 128))
                piece = blob[a:b]
                q.append(memoryview(piece) if rng.random() < 0.5 else piece)
                ref.extend(piece)
            elif op < 0.7 and ref:
                n = rng.randrange(1, len(ref) + 1)
                got = bytes(q.take(n))
                want = bytes(ref[:n])
                del ref[:n]
                assert got == want
            elif op < 0.85 and ref:
                n = rng.randrange(1, len(ref) + 1)
                assert bytes(q.peek(n)) == bytes(ref[:n])
            elif ref:
                n = rng.randrange(1, len(ref) + 1)
                q.drop(n)
                del ref[:n]
            assert len(q) == len(ref)
            assert bool(q) == bool(ref)

        if ref:
            assert bytes(q.take(len(ref))) == bytes(ref)
