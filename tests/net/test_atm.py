"""ATM tests: cell math, switch forwarding, port contention, SAR offload."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import NetworkError
from repro.hw.atm import AAL34, AAL5, AtmNic, AtmParams, AtmSwitch, aal_cells, aal_wire_bytes
from repro.hw.node import Host
from repro.sim import Simulator


# ---------------------------------------------------------------------------
# adaptation layers
# ---------------------------------------------------------------------------


def test_aal5_cell_counts():
    p = AtmParams()
    assert aal_cells(1, AAL5, p) == 1
    assert aal_cells(40, AAL5, p) == 1  # 40 + 8 trailer = 48, fits one cell
    assert aal_cells(41, AAL5, p) == 2
    assert aal_cells(96, AAL5, p) == 3  # 96+8 = 104 -> 3 cells


def test_aal34_more_cells_than_aal5():
    """AAL3/4's 4-byte per-cell SAR header costs cells (paper, Sec. 5)."""
    p = AtmParams()
    for n in (100, 1000, 9000):
        assert aal_cells(n, AAL34, p) >= aal_cells(n, AAL5, p)


def test_aal34_cell_counts():
    p = AtmParams()
    assert aal_cells(44, AAL34, p) == 1
    assert aal_cells(45, AAL34, p) == 2


def test_wire_bytes_are_whole_cells():
    p = AtmParams()
    assert aal_wire_bytes(100, AAL5, p) % 53 == 0


def test_bad_aal_rejected():
    with pytest.raises(ValueError):
        aal_cells(10, "aal9", AtmParams())
    with pytest.raises(ValueError):
        aal_cells(-1, AAL5, AtmParams())


@given(st.integers(min_value=0, max_value=9000))
def test_aal5_covers_payload_plus_trailer(n):
    p = AtmParams()
    cells = aal_cells(n, AAL5, p)
    assert cells * p.aal5_payload >= n + p.aal5_trailer
    if cells > 1:
        assert (cells - 1) * p.aal5_payload < n + p.aal5_trailer


# ---------------------------------------------------------------------------
# switch + NIC
# ---------------------------------------------------------------------------


def build(n=2):
    sim = Simulator()
    params = AtmParams()
    switch = AtmSwitch(sim, params, nports=max(8, n))
    hosts = [Host(sim, i) for i in range(n)]
    nics = [AtmNic(h, switch) for h in hosts]
    return sim, switch, hosts, nics


def test_pdu_delivered():
    sim, switch, hosts, nics = build()
    got = []
    nics[1].rx_handler = lambda pdu: got.append(pdu)
    nics[0].send(1, 500, "data")
    sim.run()
    assert len(got) == 1
    assert got[0].payload == "data"
    assert got[0].ncells == aal_cells(500, AAL5, switch.params)


def test_latency_scales_with_cells():
    def one_way(nbytes):
        sim, switch, hosts, nics = build()
        t = []
        nics[1].rx_handler = lambda pdu: t.append(sim.now)
        nics[0].send(1, nbytes, None)
        sim.run()
        return t[0]

    small, large = one_way(40), one_way(8000)
    assert large > small
    # the large PDU is serialized twice (input link + output port)
    p = AtmParams()
    extra_cells = aal_cells(8000, AAL5, p) - aal_cells(40, AAL5, p)
    assert large - small >= 2 * extra_cells * p.cell_time() * 0.9


def test_output_port_contention_serializes():
    """Two senders to one receiver share its output port; disjoint pairs
    don't interfere (the ATM advantage in Figure 9)."""
    sim, switch, hosts, nics = build(4)
    arrivals = {}
    nics[2].rx_handler = lambda pdu: arrivals.setdefault(("to2", pdu.src), sim.now)
    nics[3].rx_handler = lambda pdu: arrivals.setdefault(("to3", pdu.src), sim.now)
    # contended: 0->2 and 1->2; then disjoint: 0->2 and 1->3
    nics[0].send(2, 4000, None)
    nics[1].send(2, 4000, None)
    sim.run()
    contended_spread = abs(arrivals[("to2", 0)] - arrivals[("to2", 1)])

    sim2, switch2, hosts2, nics2 = build(4)
    arrivals2 = {}
    nics2[2].rx_handler = lambda pdu: arrivals2.setdefault(("to2", pdu.src), sim2.now)
    nics2[3].rx_handler = lambda pdu: arrivals2.setdefault(("to3", pdu.src), sim2.now)
    nics2[0].send(2, 4000, None)
    nics2[1].send(3, 4000, None)
    sim2.run()
    disjoint_spread = abs(arrivals2[("to2", 0)] - arrivals2[("to3", 1)])

    train = aal_cells(4000, AAL5, switch.params) * switch.params.cell_time()
    assert contended_spread >= train * 0.9
    assert disjoint_spread < train * 0.5


def test_sar_runs_on_i960_not_host():
    sim, switch, hosts, nics = build()
    nics[1].rx_handler = lambda pdu: None
    nics[0].send(1, 8000, None)
    sim.run()
    assert nics[0].i960.busy_time > 0
    assert hosts[0].cpu.busy_time == 0  # host CPU untouched by SAR


def test_oversize_pdu_rejected():
    sim, switch, hosts, nics = build()
    with pytest.raises(NetworkError):
        nics[0].send(1, 20000, None)


def test_unknown_port_rejected():
    sim, switch, hosts, nics = build(2)
    from repro.hw.atm.nic import Pdu

    with pytest.raises(NetworkError):
        switch.forward(Pdu(0, 7, 100, 3, AAL5, None))


def test_loss_injection():
    sim = Simulator()
    params = AtmParams()
    switch = AtmSwitch(sim, params, drop_fn=lambda pdu: True)
    hosts = [Host(sim, i) for i in range(2)]
    nics = [AtmNic(h, switch) for h in hosts]
    got = []
    nics[1].rx_handler = lambda pdu: got.append(pdu)
    nics[0].send(1, 100, None)
    sim.run()
    assert got == []
    assert switch.pdus_dropped == 1
