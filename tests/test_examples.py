"""Examples must keep running: light smoke tests over the example mains."""

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def load(name):
    spec = importlib.util.spec_from_file_location(name, EXAMPLES / f"{name}.py")
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


@pytest.mark.parametrize(
    "name",
    ["quickstart", "linear_solver", "particle_ring", "protocol_anatomy", "heat_diffusion"],
)
def test_example_imports(name):
    mod = load(name)
    assert callable(getattr(mod, "main", None)) or callable(
        getattr(mod, "eager_vs_rendezvous", None)
    )


def test_quickstart_runs(capsys):
    load("quickstart").main()
    out = capsys.readouterr().out
    assert "meiko/lowlatency" in out
    assert "104" in out  # the calibrated endpoint appears


def test_protocol_anatomy_threshold_sweep(capsys):
    mod = load("protocol_anatomy")
    mod.threshold_sweep()
    out = capsys.readouterr().out
    assert "threshold" in out and "180" in out


def test_linear_solver_small(capsys, monkeypatch):
    monkeypatch.setattr(sys, "argv", ["linear_solver.py", "16"])
    load("linear_solver").main()
    out = capsys.readouterr().out
    assert "N=16" in out
    assert "e-" in out  # tiny residuals printed in scientific notation
