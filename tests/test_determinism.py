"""Determinism guard: pinned simulated-time outputs across the stack.

The kernel fast paths (cancellable timers, batch drain), the bucketed
matching engine, and the zero-copy byte paths are all wall-clock
optimisations — they must not move a single simulated microsecond or
reorder a single event.  These goldens were captured before that work
landed; any drift here means an optimisation changed observable
behaviour (event order, RNG draw order, matching cost, or byte
accounting), which is a bug even if every other test still passes.
"""

import pytest

from repro.bench import figures
from repro.mpi import World

# (completion wtime µs rounded to 3 dp, rank, iteration) for a 4-rank
# 5-iteration 64-byte ring with even ranks sending first, seed=3 —
# sorted by (time, rank) so same-time completions compare stably.
GOLDEN_RING_TRACE = {
    "meiko": [
        (97.3, 1, 0), (97.3, 3, 0), (123.6, 0, 0), (123.6, 2, 0),
        (220.9, 1, 1), (220.9, 3, 1), (247.2, 0, 1), (247.2, 2, 1),
        (344.5, 1, 2), (344.5, 3, 2), (370.8, 0, 2), (370.8, 2, 2),
        (468.1, 1, 3), (468.1, 3, 3), (494.4, 0, 3), (494.4, 2, 3),
        (591.7, 1, 4), (591.7, 3, 4), (618.0, 0, 4), (618.0, 2, 4),
    ],
    "ethernet": [
        (817.372, 1, 0), (960.189, 3, 0), (1456.333, 2, 0), (1599.15, 0, 0),
        (2239.744, 3, 1), (2382.561, 1, 1), (3028.705, 0, 1), (3171.522, 2, 1),
        (3962.116, 1, 2), (4101.912, 3, 2), (4601.077, 2, 2), (4740.873, 0, 2),
        (5384.488, 3, 3), (5524.284, 1, 3), (6173.449, 0, 3), (6379.997, 2, 3),
        (7106.86, 1, 4), (7246.035, 3, 4), (7735.821, 2, 4), (7874.996, 0, 4),
    ],
    "atm": [
        (856.569, 1, 0), (856.569, 3, 0), (1538.688, 0, 0), (1538.688, 2, 0),
        (2395.257, 1, 1), (2395.257, 3, 1), (3263.376, 0, 1), (3263.376, 2, 1),
        (4149.945, 1, 2), (4149.945, 3, 2), (4832.064, 0, 2), (4832.064, 2, 2),
        (5688.633, 1, 3), (5688.633, 3, 3), (6556.752, 0, 3), (6556.752, 2, 3),
        (7443.321, 1, 4), (7443.321, 3, 4), (8115.44, 0, 4), (8115.44, 2, 4),
    ],
}

# Figure 2 / Figure 5 round-trip latencies (µs) at pinned sizes.  Each
# point is an independent simulation, so spot-checking a few sizes pins
# the whole pipeline without rerunning the full sweeps.
GOLDEN_FIG02 = {
    "MPI(mpich)": {1: 208.4399999999999, 180: 265.71999999999986, 1024: 308.95282051282044},
    "MPI(low latency)": {1: 104.06999999999995, 180: 159.55999999999995, 1024: 210.35282051282047},
    "Meiko tport": {1: 54.44000000000003, 180: 111.72000000000001, 1024: 154.95282051282052},
}
GOLDEN_FIG05 = {
    "mpi/tcp/atm": {1: 1647.5253662551434, 1024: 1967.5417119341564},
    "mpi/tcp/eth": {1: 1308.9146666666663, 1024: 3097.1186666666677},
    "tcp/atm": {1: 1063.1586995884782, 1024: 1477.1750452674903},
    "tcp/eth": {1: 1006.5480000000002, 1024: 2686.752000000003},
}


def _ring_trace(platform):
    world = World(4, platform=platform, seed=3)
    trace = []

    def main(comm):
        rank = comm.rank
        nxt, prv = (rank + 1) % 4, (rank - 1) % 4
        for i in range(5):
            if rank % 2 == 0:
                yield from comm.send(bytes([i] * 64), dest=nxt, tag=i)
                yield from comm.recv(source=prv, tag=i)
            else:
                yield from comm.recv(source=prv, tag=i)
                yield from comm.send(bytes([i] * 64), dest=nxt, tag=i)
            trace.append((round(comm.wtime(), 3), rank, i))
        return None

    world.run(main)
    return sorted(trace)


@pytest.mark.parametrize("platform", sorted(GOLDEN_RING_TRACE))
def test_ring_trace_pinned(platform):
    """Per-rank completion times of every iteration are pinned.

    The ethernet trace is the sharp one: it runs the full TCP stack with
    retransmit/delayed-ACK timers armed and the shared per-host RNG
    drawing CSMA/CD jitter, so any change in timer draw order shifts
    every subsequent latency.
    """
    assert _ring_trace(platform) == GOLDEN_RING_TRACE[platform]


def test_fig02_meiko_latency_pinned():
    series = figures.fig02_meiko_latency(sizes=(1, 180, 1024))["series"]
    for label, want in GOLDEN_FIG02.items():
        got = dict(series[label])
        for n, v in want.items():
            assert got[n] == pytest.approx(v, abs=1e-9), (label, n)


def test_fig05_tcp_latency_pinned():
    series = figures.fig05_tcp_latency(sizes=(1, 1024))["series"]
    for label, want in GOLDEN_FIG05.items():
        got = dict(series[label])
        for n, v in want.items():
            assert got[n] == pytest.approx(v, abs=1e-9), (label, n)
