"""The differential conformance fuzzer's own test suite.

Covers the pipeline end to end: generator determinism and validity,
trace stability, full-matrix differential agreement, fault-composed
convergence, mutation catching (a deliberately broken device must be
found and shrunk to a tiny repro), and the ``repro fuzz`` CLI.
"""

import io
import json

import pytest

from repro.conformance.corpus import CI_CORPUS, run_corpus
from repro.conformance.executor import (
    FAULT_PLATFORMS,
    canonical_trace,
    check_faulty,
    differential,
    run_program,
)
from repro.conformance.grammar import PROFILES, Program, generate, validate
from repro.conformance.mutations import mutate_overtaking
from repro.conformance.shrink import repro_script, shrink, write_artifacts
from repro.platforms import DEVICE_MATRIX
from tests.conftest import ALL_DEVICES


# ------------------------------------------------------------------ grammar
@pytest.mark.parametrize("seed", range(1, 9))
def test_generated_programs_are_valid(seed):
    program = generate(seed)
    assert validate(program) == []
    assert program.op_count() > 0


@pytest.mark.parametrize("profile", sorted(PROFILES))
def test_generator_is_deterministic(profile):
    a = generate(42, profile=profile)
    b = generate(42, profile=profile)
    assert a.to_dict() == b.to_dict()


def test_different_seeds_differ():
    assert generate(1).to_dict() != generate(2).to_dict()


def test_program_json_roundtrip():
    program = generate(7)
    blob = json.dumps(program.to_dict(), sort_keys=True)
    back = Program.from_dict(json.loads(blob))
    assert back.to_dict() == program.to_dict()
    assert validate(back) == []


def test_profiles_shape_the_op_mix():
    pt2pt = generate(11, profile="pt2pt")
    collective = generate(21, profile="collective")
    assert all(r.kind != "collective" for r in pt2pt.rounds)
    assert any(r.kind == "collective" for r in collective.rounds)
    fault = generate(31, profile="fault")
    assert fault.fault is not None


# ----------------------------------------------------------------- executor
def test_trace_is_stable_per_device(all_devices):
    """Same seed, same device, twice -> byte-identical canonical trace."""
    platform, device = all_devices
    program = generate(3)
    first = canonical_trace(run_program(program, platform, device))
    second = canonical_trace(run_program(program, platform, device))
    assert first == second


@pytest.mark.parametrize("seed", [1, 2, 5])
def test_differential_agreement_across_matrix(seed):
    result = differential(generate(seed))
    assert result.ok, result.summary()
    assert len(result.canons) == len(ALL_DEVICES)
    assert len(set(result.canons.values())) == 1


def test_trace_records_sources_tags_and_payloads():
    program = generate(1)
    trace = run_program(program, "meiko", "lowlatency")
    events = [e for rank in trace["ranks"] for e in rank]
    assert events
    recvs = [e for e in events if e["e"] == "recv"]
    for e in recvs:
        assert e["src"] >= 0 and e["tag"] >= 0 and len(e["d"]) == 16


# ------------------------------------------------------------ fault-composed
def test_fault_composed_converges():
    program = generate(31, profile="fault")
    assert program.fault is not None
    result = check_faulty(program)
    assert result.ok, result.summary()
    assert set(result.canons) == {
        f"{p}-{d}" for p, d in ALL_DEVICES if p in FAULT_PLATFORMS
    }


def test_fault_composed_rejects_meiko():
    from repro.errors import ConfigurationError

    program = generate(31, profile="fault")
    with pytest.raises(ConfigurationError):
        run_program(program, "meiko", "lowlatency", fault=True)


# ----------------------------------------------------- mutation + shrinking
def _overtaking_program():
    """Two same-(src, dst, tag) messages drained in order — the smallest
    workload on which the overtaking mutant is observable."""
    return Program.from_dict({
        "seed": 0,
        "nprocs": 2,
        "rounds": [{
            "kind": "exchange",
            "transfers": [{
                "tid": 1, "src": 1, "dst": 0, "tag": 3, "dtype": "byte",
                "nelems": 4, "reps": 2, "send_kind": "isend",
                "persistent_recv": False, "any_source": False,
                "any_tag": False, "alloc_recv": False,
            }],
            "strategies": {"0": "waitall", "1": "waitall"},
        }],
        "fault": None,
    })


def test_mutated_device_is_caught():
    """A device that violates non-overtaking must fail the differential."""
    program = _overtaking_program()
    assert validate(program) == []
    clean = differential(program)
    assert clean.ok, clean.summary()
    mutated = differential(
        program, mutators={"atm-tcp": mutate_overtaking}
    )
    assert not mutated.ok
    assert "atm-tcp" in mutated.mismatched
    # mutating the *reference* device flags everyone else instead
    ref_mutated = differential(
        program, mutators={"meiko-lowlatency": mutate_overtaking}
    )
    assert not ref_mutated.ok
    assert len(ref_mutated.mismatched) == len(DEVICE_MATRIX) - 1


def test_mutation_found_by_search_and_shrunk(tmp_path):
    """End-to-end acceptance: fuzz seeds until the broken device is
    caught, then shrink the failure to a <=10-op repro."""
    mutators = {"meiko-lowlatency": mutate_overtaking}

    def check(candidate):
        return not differential(candidate, mutators=mutators).ok

    failing = None
    for seed in range(1, 30):
        program = generate(seed, profile="pt2pt")
        if check(program):
            failing = program
            break
    assert failing is not None, "no seed exposed the overtaking mutant"
    small = shrink(failing, check, max_evals=150)
    assert check(small)
    assert small.op_count() <= 10
    json_path, py_path = write_artifacts(small, str(tmp_path), label="mutant")
    saved = Program.from_dict(json.loads(open(json_path).read()))
    assert check(saved)
    assert "differential" in open(py_path).read()


def test_shrink_preserves_validity():
    program = generate(4)

    def check(candidate):  # pretend everything fails: maximal shrinking
        return True

    small = shrink(program, check, max_evals=200)
    assert validate(small) == []
    assert small.op_count() <= program.op_count()


def test_repro_script_replays(tmp_path):
    program = generate(2)
    script = repro_script(program)
    assert "differential" in script and f"seed {program.seed}" in script


# ------------------------------------------------------- ULFM recovery (ft)
def test_ft_profile_generates_recovery_programs():
    program = generate(41, profile="ft")
    assert validate(program) == []
    assert program.ft is not None
    assert all(r.kind == "ft" for r in program.rounds)
    blob = json.dumps(program.to_dict(), sort_keys=True)
    back = Program.from_dict(json.loads(blob))
    assert back.to_dict() == program.to_dict()


def test_ft_profile_recovery_is_identical_across_matrix():
    """The differential property extends to crash recovery: every device
    cell produces the byte-identical canonical trace of the survivors'
    detect/revoke/shrink/agree run."""
    result = differential(generate(43, profile="ft"))
    assert result.ok, result.summary()
    assert len(set(result.canons.values())) == 1


def test_cli_fuzz_ft_profile():
    from repro.cli import main as cli_main

    buf = io.StringIO()
    assert cli_main(["fuzz", "--seed", "42", "--profile", "ft"], out=buf) == 0
    assert "OK" in buf.getvalue()


# ------------------------------------------------------------------- corpus
def test_ci_corpus_is_pinned_and_unique():
    assert len(CI_CORPUS) >= 25
    assert len(set(CI_CORPUS)) == len(CI_CORPUS)
    assert all(profile in PROFILES for _, profile in CI_CORPUS)
    assert any(profile == "ft" for _, profile in CI_CORPUS)


def test_run_corpus_smoke(tmp_path):
    out = io.StringIO()
    summary = run_corpus(
        entries=[(1, "mixed"), (11, "pt2pt")],
        artifacts_dir=str(tmp_path),
        out=out,
    )
    assert summary["ran"] == 2
    assert summary["passed"] == 2
    assert not summary["truncated"]
    assert "corpus OK" in out.getvalue()


def test_run_corpus_budget_truncates():
    summary = run_corpus(budget_s=0.0)
    assert summary["truncated"]
    assert summary["ran"] < summary["total"]


# ---------------------------------------------------------------------- CLI
def test_cli_fuzz_single_seed_deterministic():
    from repro.cli import main as cli_main

    outs = []
    for _ in range(2):
        buf = io.StringIO()
        assert cli_main(["fuzz", "--seed", "2", "--dump-trace"], out=buf) == 0
        outs.append(buf.getvalue())
    assert outs[0] == outs[1]
    assert "OK" in outs[0]


def test_cli_fuzz_corpus_budget():
    from repro.cli import main as cli_main

    buf = io.StringIO()
    rc = cli_main(["fuzz", "--corpus", "ci", "--budget", "5s"], out=buf)
    assert rc == 0, buf.getvalue()


def test_cli_fuzz_requires_a_seed_source():
    from repro.cli import main as cli_main

    buf = io.StringIO()
    assert cli_main(["fuzz"], out=buf) == 2
